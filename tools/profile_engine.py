#!/usr/bin/env python
"""Engine throughput profile: events/sec micro-benches + a macro gate.

Two layers:

1. **Micro** — raw event-queue throughput of the three scheduling
   paths (now-FIFO, near-heap, timer wheel) plus the cancellation
   path, measured as processed events per wall second.  These numbers
   show where :class:`repro.simulation.engine.Environment` spends its
   time and catch accidental O(n) behaviour in the indexed queue.
2. **Macro** — the 1024-client / 4-tenant / 16-iod cell of the
   ``repro-bench scale`` sweep, wall-clock timed end to end.  This is
   the CI canary for "a 4096-client run finishes in CI time": the full
   cell is 4x the clients and 4x the servers, so holding the 1024 cell
   under budget holds the sweep under ~10x the budget.

``--check`` turns the macro timing into a gate: nonzero exit if the
1024-client smoke exceeds ``--budget-s`` wall seconds (default 60 —
roughly 20x the time on the hardware the budget was calibrated on, so
only a genuine complexity regression trips it, not a slow runner).

Run locally with::

    PYTHONPATH=src python tools/profile_engine.py
    PYTHONPATH=src python tools/profile_engine.py --check
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.simulation import Environment  # noqa: E402


# ----------------------------------------------------------------------
# micro: event-queue throughput
# ----------------------------------------------------------------------
def _drive(env: Environment, make_delay, n: int) -> None:
    """One process arming ``n`` timeouts with the given delay pattern."""

    def proc():
        for i in range(n):
            yield env.timeout(make_delay(i))

    env.process(proc())
    env.run()


def micro_profiles(n: int = 200_000) -> dict[str, float]:
    """Events/sec through each scheduling path."""
    out: dict[str, float] = {}

    t0 = time.perf_counter()
    _drive(Environment(), lambda i: 0.0, n)
    out["fifo_events_per_s"] = n / (time.perf_counter() - t0)

    t0 = time.perf_counter()
    _drive(Environment(), lambda i: 1e-4, n)  # < WHEEL_SLOT: near heap
    out["heap_events_per_s"] = n / (time.perf_counter() - t0)

    t0 = time.perf_counter()
    _drive(Environment(), lambda i: 5e-3 + (i % 7) * 1e-3, n)  # wheel
    out["wheel_events_per_s"] = n / (time.perf_counter() - t0)

    # armed-then-cancelled guard timers (the RPC timeout pattern)
    env = Environment()

    def canceller():
        for _ in range(n // 10):
            timers = [env.call_later(10.0, lambda _ev: None) for _ in range(10)]
            for t in timers:
                t.cancel()
            yield env.timeout(1e-3)

    env.process(canceller())
    t0 = time.perf_counter()
    env.run()
    out["cancel_timers_per_s"] = n / (time.perf_counter() - t0)
    assert env.queue_stats() == {"live": 0, "dead": 0}, env.queue_stats()
    return out


# ----------------------------------------------------------------------
# macro: the 1024-client scale-sweep smoke
# ----------------------------------------------------------------------
def macro_profile() -> dict[str, float]:
    """Wall-time the 1024x4x16 scale cell (the CI wall-clock canary)."""
    from repro.bench.scalecmd import run_scale_cell

    t0 = time.perf_counter()
    result, _ = run_scale_cell(1024, 4, 16)
    wall = time.perf_counter() - t0
    return {
        "clients_1024_wall_s": wall,
        "clients_1024_sim_elapsed_s": result.elapsed,
        "clients_1024_mbps": result.bandwidth_mbps,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Profile the simulation engine's event queue."
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="gate mode: fail if the 1024-client smoke exceeds the "
        "wall-clock budget (skips the micro benches)",
    )
    parser.add_argument(
        "--budget-s",
        type=float,
        default=60.0,
        help="wall-clock budget for the 1024-client smoke (default 60)",
    )
    parser.add_argument(
        "--events",
        type=int,
        default=200_000,
        help="events per micro bench (default 200000)",
    )
    args = parser.parse_args(argv)

    if not args.check:
        for name, rate in micro_profiles(args.events).items():
            print(f"{name:>24s}: {rate:12,.0f}")
    macro = macro_profile()
    for name, val in macro.items():
        print(f"{name:>24s}: {val:12,.2f}")
    if args.check and macro["clients_1024_wall_s"] > args.budget_s:
        print(
            f"FAIL: 1024-client smoke took "
            f"{macro['clients_1024_wall_s']:.1f}s "
            f"(> {args.budget_s:.0f}s budget)",
            file=sys.stderr,
        )
        return 1
    if args.check:
        print(
            f"OK: 1024-client smoke within "
            f"{args.budget_s:.0f}s budget",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
