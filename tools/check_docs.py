#!/usr/bin/env python
"""Documentation checks: markdown links + doctests in fenced examples.

Two passes over every tracked ``*.md`` file:

1. **Link check** — every relative markdown link (``[text](target)``)
   must point at a file or directory that exists (anchors are stripped;
   ``http(s)``/``mailto`` targets are skipped — CI must not depend on
   the network).
2. **Doctest check** — every fenced ```` ```python ```` block that
   contains ``>>>`` prompts is run through :mod:`doctest` with
   ``src/`` importable, so the examples in the docs stay executable as
   the code evolves.

Exit status is nonzero iff any check fails.  Run locally with::

    PYTHONPATH=src python tools/check_docs.py
"""

from __future__ import annotations

import doctest
import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent

#: [text](target) — excluding images and in-page anchors.
LINK_RE = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"^```(\w*)\s*$")
SKIP_SCHEMES = ("http://", "https://", "mailto:")
SKIP_DIRS = {".git", ".github", "__pycache__", ".claude", "node_modules"}


def markdown_files() -> list[pathlib.Path]:
    files = []
    for path in sorted(ROOT.rglob("*.md")):
        if not SKIP_DIRS.intersection(p.name for p in path.parents):
            files.append(path)
    return files


def check_links(path: pathlib.Path) -> list[str]:
    problems = []
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        for target in LINK_RE.findall(line):
            if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
                continue
            rel = target.split("#", 1)[0]
            if not rel:
                continue
            resolved = (path.parent / rel).resolve()
            if not resolved.exists():
                problems.append(
                    f"{path.relative_to(ROOT)}:{lineno}: broken link "
                    f"-> {target}"
                )
    return problems


def python_examples(path: pathlib.Path) -> list[tuple[int, str]]:
    """(start_line, source) for each fenced python block with doctests."""
    blocks = []
    lines = path.read_text().splitlines()
    in_block, lang, start, buf = False, "", 0, []
    for lineno, line in enumerate(lines, 1):
        fence = FENCE_RE.match(line)
        if fence and not in_block:
            in_block, lang, start, buf = True, fence.group(1), lineno, []
        elif line.strip() == "```" and in_block:
            if lang == "python" and any(">>>" in ln for ln in buf):
                blocks.append((start, "\n".join(buf) + "\n"))
            in_block = False
        elif in_block:
            buf.append(line)
    return blocks


def check_doctests(path: pathlib.Path) -> list[str]:
    problems = []
    runner = doctest.DocTestRunner(
        optionflags=doctest.ELLIPSIS | doctest.NORMALIZE_WHITESPACE,
        verbose=False,
    )
    parser = doctest.DocTestParser()
    for start, source in python_examples(path):
        name = f"{path.relative_to(ROOT)}:{start}"
        test = parser.get_doctest(source, {}, name, str(path), start)
        out: list[str] = []
        runner.run(test, out=out.append)
        if runner.failures:
            problems.append(f"{name}: doctest failed\n" + "".join(out))
            runner = doctest.DocTestRunner(  # reset failure counter
                optionflags=doctest.ELLIPSIS | doctest.NORMALIZE_WHITESPACE,
                verbose=False,
            )
    return problems


def main() -> int:
    sys.path.insert(0, str(ROOT / "src"))
    files = markdown_files()
    problems: list[str] = []
    examples = 0
    for path in files:
        problems.extend(check_links(path))
        examples += len(python_examples(path))
        problems.extend(check_doctests(path))
    for p in problems:
        print(p, file=sys.stderr)
    print(
        f"checked {len(files)} markdown files, {examples} python "
        f"example(s): {len(problems)} problem(s)"
    )
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
