#!/usr/bin/env python
"""A tour of the datatype → dataloop machinery (paper §3).

Shows, for increasingly structured access patterns, how the MPI
datatype describes the data, what dataloop it compiles to, how large
the two request representations are on the wire, and how partial
processing expands an arbitrary window of the stream.

Run:  python examples/datatype_tour.py
"""

from repro.datatypes import DOUBLE, INT, hvector, struct, subarray, vector
from repro.dataloops import (
    DataloopStream,
    build_dataloop,
    dumps,
    wire_size,
)

PATTERNS = [
    (
        "row of a 2-D array (contiguous)",
        subarray([1000, 1000], [1, 1000], [500, 0], INT),
    ),
    (
        "column of a 2-D array (unit stride vector)",
        vector(1000, 1, 1000, INT),
    ),
    (
        "3-D block of 600^3 ints (the ROMIO test, §4.3)",
        subarray([600, 600, 600], [150, 150, 150], [300, 0, 150], INT),
    ),
    (
        "every 4th element, blocks of 3",
        vector(25_000, 3, 4, DOUBLE),
    ),
    (
        "AoS field extraction (one variable of 24, §4.4)",
        hvector(512, 1, 24 * 8, DOUBLE),
    ),
    (
        "mixed struct (header + strided payload)",
        struct([1, 1], [0, 64], [INT, vector(100, 2, 6, DOUBLE)]),
    ),
]


def main():
    print(f"{'pattern':48s} {'regions':>9s} {'list B':>10s} "
          f"{'dataloop B':>10s} {'ratio':>8s}")
    for name, t in PATTERNS:
        loop = build_dataloop(t)
        nregions = t.flat_region_count()
        list_bytes = nregions * 12  # offset-length pairs on the wire
        loop_bytes = wire_size(loop)
        ratio = list_bytes / loop_bytes
        print(f"{name:48s} {nregions:9,d} {list_bytes:10,d} "
              f"{loop_bytes:10,d} {ratio:7.1f}x")

    print("\nthe 3-D block's dataloop:")
    t = PATTERNS[2][1]
    loop = build_dataloop(t)
    print(loop.describe())
    print(f"serialized: {len(dumps(loop))} bytes for "
          f"{loop.region_count:,} regions of data\n")

    print("partial processing of stream bytes [1000, 1200) "
          "(resumable, bounded batches):")
    stream = DataloopStream(loop, first=1000, last=1200, max_regions=4)
    for i, batch in enumerate(stream):
        print(f"  batch {i}: {batch.to_pairs()}")


if __name__ == "__main__":
    main()
