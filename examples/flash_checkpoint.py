#!/usr/bin/env python
"""FLASH checkpoint (paper §4.4) with real data.

Four ranks hold AMR blocks in memory (arrays-of-structs with guard
cells) and checkpoint the interior cells to a variable-major file — the
access is noncontiguous in memory *and* in file.  The checkpoint is
written with datatype I/O and with two-phase collective I/O, verified
cell-by-cell against a directly computed reference file, and the two
methods' traffic is compared.

Run:  python examples/flash_checkpoint.py
"""

import numpy as np

from repro.bench import FlashWorkload
from repro.datatypes import BYTE
from repro.mpiio import File, Hints, SimMPI
from repro.pvfs import PVFS
from repro.simulation import Environment


def fill_blocks(wl, rank):
    """In-memory blocks: value encodes (rank, var, block, cell)."""
    buf = np.zeros(wl.nblocks * wl.block_mem_bytes, dtype=np.uint8)
    vals = buf.view(np.float64)
    s = wl.side_full
    for b in range(wl.nblocks):
        base = b * wl.block_mem_bytes // 8
        for cell in range(s**3):
            for v in range(wl.nvar):
                vals[base + cell * wl.nvar + v] = (
                    rank * 1e9 + v * 1e6 + b * 1e3 + cell
                )
    return buf


def reference_file(wl, buffers):
    """What the checkpoint file must contain, computed directly."""
    total = wl.bytes_per_client() * wl.n_clients
    out = np.zeros(total, dtype=np.uint8)
    for rank, buf in enumerate(buffers):
        stream = wl.memtype(rank).flatten().gather(buf)
        file_regions = (
            wl.filetype(rank).flatten().shift(wl.displacement(rank, 0))
        )
        file_regions.scatter(out, stream)
    return out


def checkpoint(wl, buffers, method):
    env = Environment()
    fs = PVFS(env, n_servers=8, strip_size=2048)
    mpi = SimMPI(fs, wl.n_clients)
    collective = method == "two_phase"

    def rank_main(ctx):
        f = yield from File.open(ctx, wl.path, Hints())
        f.set_view(
            wl.displacement(ctx.rank, 0), BYTE, wl.filetype(ctx.rank)
        )
        write = f.write_at_all if collective else f.write_at
        yield from write(
            0, wl.memtype(ctx.rank), 1, buffers[ctx.rank], method=method
        )
        return f.counters

    counters = mpi.run(rank_main)
    handle = fs.metadata.files[wl.path].handle
    total = wl.bytes_per_client() * wl.n_clients
    return env.now, counters, fs.read_back(handle, 0, total)


def main():
    wl = FlashWorkload(n_clients=4, nblocks=4, nxb=4, nguard=2, nvar=3)
    print(
        f"{wl.n_clients} ranks x {wl.nblocks} blocks of "
        f"{wl.nxb}^3 interior cells (+{wl.nguard} guards), "
        f"{wl.nvar} variables -> "
        f"{wl.bytes_per_client()} B checkpoint data per rank"
    )
    buffers = [fill_blocks(wl, r) for r in range(wl.n_clients)]
    expect = reference_file(wl, buffers)

    for method in ("datatype_io", "two_phase", "list_io"):
        t, counters, got = checkpoint(wl, buffers, method)
        assert np.array_equal(got, expect), f"{method}: checkpoint corrupt!"
        c = counters[0]
        print(
            f"{method:12s}: sim {t * 1000:8.2f} ms, "
            f"{c.io_ops:4d} FS ops/rank, resent {c.resent_bytes} B"
        )
    print("checkpoint verified bit-for-bit for all methods")
    print("(paper-scale bandwidth sweep: `repro-bench fig12`)")


if __name__ == "__main__":
    main()
