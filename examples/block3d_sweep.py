#!/usr/bin/env python
"""3-D block method sweep with chart output (paper §4.3 in miniature).

Sweeps the five access methods over the block-decomposed 3-D array at
8/27/64 clients (reduced grid), prints bandwidth as an ASCII line chart,
and attributes each configuration's bottleneck using the network
summary — the analysis §4.3 does verbally.

Run:  python examples/block3d_sweep.py
"""

from repro.bench import Block3DWorkload, run_workload
from repro.bench.figures import FigureSeries
from repro.bench.plots import line_chart

GRID = 120  # divisible by 2, 3 and 4
METHODS = ["two_phase", "list_io", "datatype_io"]


def main():
    fig = FigureSeries("3dblock-write (reduced grid)", "clients")
    print(f"{'clients':>8s} {'method':>14s} {'MiB/s':>8s} "
          f"{'server-rx util':>14s} {'bottleneck':>16s}")
    for cpd in (2, 3, 4):
        for method in METHODS:
            wl = Block3DWorkload(
                grid=GRID, clients_per_dim=cpd, is_write=True
            )
            r = run_workload(wl, method, phantom=True)
            fig.add(method, wl.n_clients, r.bandwidth_mbps)
            util = r.network.mean_utilization("ios", "rx")
            print(
                f"{wl.n_clients:>8d} {method:>14s} "
                f"{r.bandwidth_mbps:8.1f} {util:14.0%} "
                f"{r.network.bottleneck(r.pipeline.total):>16s}"
            )
    print()
    print(line_chart(fig))
    print("\n(the full 600-cube sweep: `repro-bench fig10`)")


if __name__ == "__main__":
    main()
