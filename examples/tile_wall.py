#!/usr/bin/env python
"""Tile display wall (paper §4.2) with real pixel data.

Six compute nodes drive a 3×2 projector wall.  A frame is written into
the parallel file system, then every node reads its (overlapping) tile
with each of the five access methods; the pixels are verified against
the frame and the methods' I/O behaviour is compared side by side.

Run:  python examples/tile_wall.py
"""

import numpy as np

from repro.bench import TileWorkload
from repro.datatypes import BYTE, contiguous
from repro.mpiio import File, Hints, SimMPI
from repro.pvfs import PVFS
from repro.simulation import Environment

METHODS = ["posix", "data_sieving", "two_phase", "list_io", "datatype_io"]


def make_frame(wl, seed=7):
    """A deterministic RGB test frame."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, 255, wl.frame_bytes, dtype=np.uint8)


def run_method(wl, frame, method):
    env = Environment()
    fs = PVFS(env, strip_size=1024, n_servers=8)
    mpi = SimMPI(fs, wl.n_clients, procs_per_node=wl.procs_per_node)

    # pre-load the frame into the file system
    meta = fs.metadata.create_now(wl.path)
    fs.write_direct(meta.handle, 0, frame)

    collective = method == "two_phase"

    def rank_main(ctx):
        f = yield from File.open(ctx, wl.path, Hints())
        f.set_view(0, BYTE, wl.filetype(ctx.rank))
        nbytes = wl.bytes_per_client_per_rep()
        out = np.zeros(nbytes, dtype=np.uint8)
        read = f.read_at_all if collective else f.read_at
        yield from read(0, contiguous(nbytes, BYTE), 1, out, method=method)
        # verify against the frame
        expect = wl.filetype(ctx.rank).flatten().gather(frame)
        assert np.array_equal(out, expect), f"tile {ctx.rank} corrupted!"
        return f.counters

    counters = mpi.run(rank_main)
    return env.now, counters[0]


def main():
    # a reduced wall so real pixels flow (the paper-scale geometry is
    # what `repro-bench fig8` simulates)
    wl = TileWorkload(
        tile_w=64, tile_h=48, overlap_x=16, overlap_y=8, repetitions=1
    )
    frame = make_frame(wl)
    print(
        f"display {wl.display_w}x{wl.display_h}px, "
        f"{wl.n_clients} tiles of {wl.tile_w}x{wl.tile_h}, "
        f"frame {wl.frame_bytes / 1024:.1f} KiB"
    )
    print(f"{'method':14s} {'sim time':>10s} {'ops':>6s} "
          f"{'accessed':>10s} {'resent':>8s}")
    for method in METHODS:
        t, c = run_method(wl, frame, method)
        print(
            f"{method:14s} {t * 1000:8.2f}ms {c.io_ops:6d} "
            f"{c.accessed_bytes:10d} {c.resent_bytes:8d}"
        )
    print("all tiles verified against the frame — see `repro-bench fig8` "
          "for the paper-scale bandwidth comparison")


if __name__ == "__main__":
    main()
