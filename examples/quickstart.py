#!/usr/bin/env python
"""Quickstart: a PVFS cluster, an MPI-IO file view, datatype I/O.

Builds a 4-server simulated parallel file system, runs two MPI ranks
that each write a strided column block of a 2-D integer array through
an MPI-IO file view using **datatype I/O**, reads it back, verifies the
bytes, and prints what went over the wire.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.datatypes import INT, contiguous, subarray
from repro.dataloops import build_dataloop, wire_size
from repro.mpiio import File, Hints, SimMPI
from repro.pvfs import PVFS
from repro.simulation import Environment

N = 64  # 64x64 ints
NRANKS = 2


def rank_main(ctx):
    """One MPI rank: write my column block, read it back, verify."""
    f = yield from File.open(ctx, "/demo/array", Hints())

    # my half of the columns, as an MPI subarray type
    cols = N // ctx.size
    filetype = subarray(
        sizes=[N, N],
        subsizes=[N, cols],
        starts=[0, ctx.rank * cols],
        oldtype=INT,
    )
    f.set_view(displacement=0, etype=INT, filetype=filetype)

    # fill a contiguous buffer with my rank's pattern
    nelem = N * cols
    data = np.arange(nelem, dtype=np.int32) + ctx.rank * 1_000_000
    buf = data.view(np.uint8)

    memtype = contiguous(nelem, INT)
    yield from f.write_at(0, memtype, 1, buf, method="datatype_io")

    out = np.zeros_like(buf)
    yield from f.read_at(0, memtype, 1, out, method="datatype_io")
    assert np.array_equal(out, buf), "read-back mismatch!"

    return {
        "rank": ctx.rank,
        "io_ops": f.counters.io_ops,
        "bytes": f.counters.desired_bytes,
        "fs_requests": ctx.fs.counters.requests_sent,
        "filetype": filetype,
    }


def main():
    env = Environment()
    fs = PVFS(env, n_servers=4, strip_size=4096)
    mpi = SimMPI(fs, NRANKS, procs_per_node=1)

    results = mpi.run(rank_main)

    print(f"simulated cluster : {fs.config.n_servers} I/O servers, "
          f"{fs.config.strip_size} B strips")
    print(f"simulated time    : {env.now * 1000:.2f} ms")
    for r in results:
        loop = build_dataloop(r["filetype"])
        print(
            f"rank {r['rank']}: {r['bytes']} B in {r['io_ops']} datatype-I/O "
            f"ops ({r['fs_requests']} server requests); "
            f"dataloop wire size {wire_size(loop)} B vs "
            f"{r['filetype'].flat_region_count() * 12} B as an "
            "offset-length list"
        )

    stats = fs.total_server_stats()
    print(f"servers           : {stats['requests']} requests, "
          f"{stats['accesses_built']} accesses built, "
          f"{stats['bytes_written']} B written, "
          f"{stats['bytes_read']} B read")
    print("OK: all ranks verified their data.")


if __name__ == "__main__":
    main()
