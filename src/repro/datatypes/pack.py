"""Pack/unpack real bytes between typed buffers and contiguous streams.

``pack`` is what an MPI implementation does when it marshals a derived
datatype for transmission; here it is also how the MPI-IO layer moves
data between a user's (possibly noncontiguous) memory buffer and the
contiguous payload of a file-system request.
"""

from __future__ import annotations

import numpy as np

from .base import Datatype

__all__ = ["pack", "unpack", "packed_size"]


def _as_u8(buf) -> np.ndarray:
    arr = np.asarray(buf)
    if arr.dtype != np.uint8:
        arr = arr.view(np.uint8)
    return arr.reshape(-1)


def packed_size(dtype: Datatype, count: int = 1) -> int:
    """Bytes in the packed stream of ``count`` instances."""
    return dtype.size * count


def pack(
    buf, dtype: Datatype, count: int = 1, base_offset: int = 0
) -> np.ndarray:
    """Gather ``count`` instances of ``dtype`` from ``buf`` into a stream.

    ``base_offset`` is the byte position within ``buf`` where instance 0
    is anchored (its typemap displacements are relative to this point;
    displacements may be negative for exotic types, in which case the
    caller must anchor far enough in).
    """
    regions = dtype.flatten(count, base_offset)
    return regions.gather(_as_u8(buf))


def unpack(
    stream, buf, dtype: Datatype, count: int = 1, base_offset: int = 0
) -> None:
    """Scatter a packed ``stream`` into ``buf`` as ``count`` instances."""
    regions = dtype.flatten(count, base_offset)
    regions.scatter(_as_u8(buf), _as_u8(stream))
