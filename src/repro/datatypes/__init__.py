"""MPI-style derived datatypes, from scratch.

This package implements the subset of the MPI datatype system that
MPI-IO needs, with identical semantics:

* predefined (primitive) types — :data:`BYTE`, :data:`INT`,
  :data:`DOUBLE`, ...;
* the full set of derived-type constructors — :func:`contiguous`,
  :func:`vector`, :func:`hvector`, :func:`indexed`, :func:`hindexed`,
  :func:`indexed_block`, :func:`hindexed_block`, :func:`struct`,
  :func:`subarray`, :func:`resized`, :func:`dup`;
* size / extent / lower-bound / upper-bound arithmetic, including
  negative strides and :func:`resized` types;
* ``MPI_Type_get_envelope`` / ``MPI_Type_get_contents`` introspection
  (:meth:`Datatype.envelope` / :meth:`Datatype.contents`) — this is the
  *only* interface the dataloop builder consumes, mirroring the paper's
  portable conversion path;
* flattening to vectorized :class:`~repro.regions.Regions` and
  pack/unpack of real bytes.

Example
-------
>>> from repro.datatypes import vector, INT
>>> t = vector(count=3, blocklength=2, stride=4, oldtype=INT)
>>> t.size, t.extent
(24, 40)
>>> t.flatten().to_pairs()
[(0, 8), (16, 8), (32, 8)]
"""

from .base import (
    Datatype,
    PrimitiveType,
    BYTE,
    CHAR,
    SHORT,
    INT,
    LONG,
    LONG_LONG,
    FLOAT,
    DOUBLE,
    DOUBLE_8,
    UB_MARKER_UNSUPPORTED,
)
from .constructors import (
    contiguous,
    vector,
    hvector,
    indexed,
    hindexed,
    indexed_block,
    hindexed_block,
    struct,
    subarray,
    resized,
    dup,
)
from .darray import (
    DISTRIBUTE_BLOCK,
    DISTRIBUTE_CYCLIC,
    DISTRIBUTE_DFLT_DARG,
    DISTRIBUTE_NONE,
    darray,
)
from .pack import pack, unpack
from .typemap import typemap

__all__ = [
    "Datatype",
    "PrimitiveType",
    "BYTE",
    "CHAR",
    "SHORT",
    "INT",
    "LONG",
    "LONG_LONG",
    "FLOAT",
    "DOUBLE",
    "DOUBLE_8",
    "UB_MARKER_UNSUPPORTED",
    "contiguous",
    "vector",
    "hvector",
    "indexed",
    "hindexed",
    "indexed_block",
    "hindexed_block",
    "struct",
    "subarray",
    "resized",
    "dup",
    "darray",
    "DISTRIBUTE_BLOCK",
    "DISTRIBUTE_CYCLIC",
    "DISTRIBUTE_NONE",
    "DISTRIBUTE_DFLT_DARG",
    "pack",
    "unpack",
    "typemap",
]
