"""``MPI_Type_create_darray``: distributed-array types.

The constructor behind HPF-style decompositions (and ROMIO's
``coll_perf`` test, §4.3): given a process grid and per-dimension
distributions, it builds the datatype describing *this* rank's share of
a global array.  Supported distributions:

* ``DISTRIBUTE_BLOCK`` — contiguous blocks (default block size
  ``ceil(gsize/psize)``, or an explicit darg);
* ``DISTRIBUTE_CYCLIC`` — round-robin blocks of ``darg`` (default 1);
* ``DISTRIBUTE_NONE`` — the dimension is not distributed.

The resulting type's extent is the full array (like ``subarray``), so
tiling instances steps whole arrays.

Construction materializes each dimension's owned index runs, which is
exact for every distribution (including uneven cyclic tails) at the
cost of O(gsize) work per cyclic dimension.
"""

from __future__ import annotations

from typing import Sequence

from ..regions import Regions
from .base import Datatype
from .constructors import hindexed, resized

__all__ = [
    "darray",
    "DarrayType",
    "DISTRIBUTE_BLOCK",
    "DISTRIBUTE_CYCLIC",
    "DISTRIBUTE_NONE",
    "DISTRIBUTE_DFLT_DARG",
]

DISTRIBUTE_BLOCK = "block"
DISTRIBUTE_CYCLIC = "cyclic"
DISTRIBUTE_NONE = "none"
#: sentinel for "default distribution argument"
DISTRIBUTE_DFLT_DARG = -1

_DIST_CODES = {DISTRIBUTE_BLOCK: 0, DISTRIBUTE_CYCLIC: 1, DISTRIBUTE_NONE: 2}


def _owned_runs(gsize: int, dist: str, darg: int, psize: int, coord: int):
    """This coordinate's index runs ``(start, length)`` in one dimension."""
    if dist == DISTRIBUTE_NONE:
        if psize != 1:
            raise ValueError("DISTRIBUTE_NONE requires psize == 1")
        return [(0, gsize)]
    if dist == DISTRIBUTE_BLOCK:
        if darg == DISTRIBUTE_DFLT_DARG:
            b = -(-gsize // psize)
        else:
            b = darg
            if b * psize < gsize:
                raise ValueError(
                    f"block size {b} too small: {b} * {psize} < {gsize}"
                )
        start = coord * b
        length = min(b, gsize - start)
        return [(start, length)] if length > 0 else []
    if dist == DISTRIBUTE_CYCLIC:
        b = 1 if darg == DISTRIBUTE_DFLT_DARG else darg
        if b < 1:
            raise ValueError("cyclic block size must be positive")
        runs = []
        start = coord * b
        step = psize * b
        while start < gsize:
            runs.append((start, min(b, gsize - start)))
            start += step
        return runs
    raise ValueError(f"unknown distribution {dist!r}")


class DarrayType(Datatype):
    """A rank's share of a block/cyclic-distributed global array."""

    __slots__ = (
        "size_arg",
        "rank",
        "gsizes",
        "distribs",
        "dargs",
        "psizes",
        "order",
        "oldtype",
        "_impl",
    )

    combiner = "darray"

    def __init__(
        self,
        size: int,
        rank: int,
        gsizes: Sequence[int],
        distribs: Sequence[str],
        dargs: Sequence[int],
        psizes: Sequence[int],
        order: str,
        oldtype: Datatype,
    ):
        gsizes = [int(g) for g in gsizes]
        psizes = [int(p) for p in psizes]
        dargs = [int(d) for d in dargs]
        distribs = list(distribs)
        n = len(gsizes)
        if not (len(distribs) == len(dargs) == len(psizes) == n):
            raise ValueError("darray argument arrays must have equal length")
        if n == 0:
            raise ValueError("darray needs at least one dimension")
        if order not in ("C", "F"):
            raise ValueError("order must be 'C' or 'F'")
        grid = 1
        for p in psizes:
            if p < 1:
                raise ValueError("psizes must be positive")
            grid *= p
        if grid != size:
            raise ValueError(
                f"process grid {psizes} has {grid} slots for size {size}"
            )
        if not (0 <= rank < size):
            raise ValueError(f"rank {rank} outside communicator of {size}")
        for g in gsizes:
            if g < 1:
                raise ValueError("gsizes must be positive")

        # rank -> grid coordinates (row-major over psizes, per MPI)
        coords = []
        rem = rank
        for p in reversed(psizes):
            coords.append(rem % p)
            rem //= p
        coords.reverse()

        impl = _build_darray_impl(
            gsizes, distribs, dargs, psizes, coords, order, oldtype
        )
        super().__init__(
            impl.size, impl.lb, impl.ub, impl.true_lb, impl.true_ub
        )
        self.size_arg = size
        self.rank = rank
        self.gsizes = tuple(gsizes)
        self.distribs = tuple(distribs)
        self.dargs = tuple(dargs)
        self.psizes = tuple(psizes)
        self.order = order
        self.oldtype = oldtype
        self._impl = impl

    def contents(self):
        n = len(self.gsizes)
        dist_codes = [_DIST_CODES[d] for d in self.distribs]
        order_flag = 0 if self.order == "C" else 1
        return (
            (
                self.size_arg,
                self.rank,
                n,
                *self.gsizes,
                *dist_codes,
                *self.dargs,
                *self.psizes,
                order_flag,
            ),
            (),
            (self.oldtype,),
        )

    def _flatten_one(self) -> Regions:
        return self._impl.flatten()

    def _typemap_into(self, disp, out):
        self._impl._typemap_into(disp, out)

    def describe(self) -> str:
        return (
            f"darray(rank={self.rank}/{self.size_arg}, "
            f"gsizes={list(self.gsizes)}, distribs={list(self.distribs)}, "
            f"psizes={list(self.psizes)})"
        )


def _build_darray_impl(
    gsizes, distribs, dargs, psizes, coords, order, oldtype
) -> Datatype:
    """Dimension-by-dimension construction from owned index runs."""
    n = len(gsizes)
    if order == "F":
        gsizes = list(reversed(gsizes))
        distribs = list(reversed(distribs))
        dargs = list(reversed(dargs))
        psizes = list(reversed(psizes))
        coords = list(reversed(coords))
    # C convention from here: last dimension fastest
    strides = [0] * n
    step = oldtype.extent
    for i in range(n - 1, -1, -1):
        strides[i] = step
        step *= gsizes[i]
    full_bytes = step

    t: Datatype = oldtype
    for i in range(n - 1, -1, -1):
        runs = _owned_runs(
            gsizes[i], distribs[i], dargs[i], psizes[i], coords[i]
        )
        # place `length` copies of t (stride_i apart) at each run start
        bls = [length for _start, length in runs]
        disps = [start * strides[i] for start, _length in runs]
        if strides[i] == t.extent:
            inner = t
        else:
            inner = resized(t, 0, strides[i]) if t.extent != strides[i] else t
        t = hindexed(bls, disps, inner)
    return resized(t, 0, full_bytes)


def darray(
    size: int,
    rank: int,
    gsizes: Sequence[int],
    distribs: Sequence[str],
    dargs: Sequence[int],
    psizes: Sequence[int],
    oldtype: Datatype,
    order: str = "C",
) -> Datatype:
    """``MPI_Type_create_darray`` (see module docstring)."""
    return DarrayType(
        size, rank, gsizes, distribs, dargs, psizes, order, oldtype
    )
