"""Datatype base class, bound arithmetic, and predefined types.

The MPI rules implemented here (MPI-3.1 §4.1):

* ``size``    — number of bytes of actual data in one instance;
* ``lb``/``ub`` — lower/upper bound; ``extent = ub - lb`` is the stride
  between consecutive instances in a ``count > 1`` access;
* ``true_lb``/``true_ub`` — bounds of the actual data, unaffected by
  :func:`~repro.datatypes.resized`;
* an *empty* type (zero primitive entries) has ``size = 0`` and
  ``lb = ub = 0``.

We deliberately do **not** implement the deprecated ``MPI_LB``/``MPI_UB``
marker types (``resized`` subsumes them — the same simplification the
paper's dataloop representation makes) and do not add C struct alignment
padding to ``struct`` extents (use ``resized`` for padded layouts).
"""

from __future__ import annotations

from typing import Iterator, Sequence

from ..regions import Regions

__all__ = [
    "Datatype",
    "PrimitiveType",
    "BYTE",
    "CHAR",
    "SHORT",
    "INT",
    "LONG",
    "LONG_LONG",
    "FLOAT",
    "DOUBLE",
    "DOUBLE_8",
    "UB_MARKER_UNSUPPORTED",
]

UB_MARKER_UNSUPPORTED = (
    "MPI_LB/MPI_UB marker types are not supported; use resized()"
)


class Datatype:
    """Base class for all datatypes.

    Instances are immutable. Subclasses populate the bound attributes in
    ``__init__`` and implement :meth:`_flatten_one`, :meth:`envelope`,
    :meth:`contents`, and :meth:`_typemap_into`.
    """

    __slots__ = ("size", "lb", "ub", "true_lb", "true_ub", "_flat_cache")

    combiner: str = "abstract"

    def __init__(self, size: int, lb: int, ub: int, true_lb: int, true_ub: int):
        self.size = int(size)
        self.lb = int(lb)
        self.ub = int(ub)
        self.true_lb = int(true_lb)
        self.true_ub = int(true_ub)
        self._flat_cache: Regions | None = None

    # ------------------------------------------------------------------
    # bounds
    # ------------------------------------------------------------------
    @property
    def extent(self) -> int:
        """``ub - lb``: the stride between consecutive instances."""
        return self.ub - self.lb

    @property
    def true_extent(self) -> int:
        """Span of the actual data, ignoring ``resized`` adjustments."""
        return self.true_ub - self.true_lb

    @property
    def is_predefined(self) -> bool:
        return isinstance(self, PrimitiveType)

    @property
    def is_contiguous(self) -> bool:
        """True when one instance is a single dense run starting at lb.

        Such types behave exactly like ``contiguous(size, BYTE)`` for
        I/O purposes (tiling ``count`` instances stays dense only when
        ``size == extent``; this property covers a single instance).
        """
        flat = self.flatten()
        return flat.count <= 1 and self.size == self.extent

    # ------------------------------------------------------------------
    # introspection (MPI_Type_get_envelope / _get_contents)
    # ------------------------------------------------------------------
    def envelope(self) -> tuple[int, int, int, str]:
        """Return ``(num_integers, num_addresses, num_datatypes, combiner)``."""
        ints, addrs, types = self.contents()
        return (len(ints), len(addrs), len(types), self.combiner)

    def contents(self) -> tuple[tuple[int, ...], tuple[int, ...], tuple["Datatype", ...]]:
        """Return the constructor arguments as MPI_Type_get_contents does.

        Predefined types raise ``ValueError`` (as in MPI, where calling
        get_contents on a named type is erroneous).
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # flattening
    # ------------------------------------------------------------------
    def _flatten_one(self) -> Regions:
        """Regions of one instance, in typemap traversal order, coalesced."""
        raise NotImplementedError

    def flatten(self, count: int = 1, base_offset: int = 0) -> Regions:
        """Flatten ``count`` consecutive instances into byte regions.

        Instance ``i`` is placed at ``base_offset + i * extent``; within
        an instance, entries sit at their typemap displacements.  The
        result is in packed-stream (traversal) order with sequence-
        adjacent dense runs coalesced — its region count is exactly the
        number of contiguous I/O operations a POSIX-only access needs.
        """
        if count < 0:
            raise ValueError("negative count")
        if self._flat_cache is None:
            self._flat_cache = self._flatten_one()
        one = self._flat_cache
        out = one.tile(count, self.extent).coalesce()
        if base_offset:
            out = out.shift(base_offset)
        return out

    def flat_region_count(self, count: int = 1) -> int:
        """Number of contiguous runs of ``count`` instances (coalesced)."""
        return self.flatten(count).count

    # ------------------------------------------------------------------
    # typemap (reference semantics for testing / small types)
    # ------------------------------------------------------------------
    def _typemap_into(self, disp: int, out: list[tuple[int, int]]) -> None:
        """Append ``(displacement, primitive_size)`` entries at ``disp``."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """One-line human-readable structural description."""
        return f"{self.combiner}(size={self.size}, extent={self.extent})"

    def __repr__(self) -> str:
        return f"<Datatype {self.describe()}>"

    def iter_children(self) -> Iterator["Datatype"]:
        try:
            _, _, types = self.contents()
        except ValueError:
            return
        yield from types

    def depth(self) -> int:
        """Nesting depth of the constructor tree (primitives are 0)."""
        kids = list(self.iter_children())
        if not kids:
            return 0
        return 1 + max(k.depth() for k in kids)


class PrimitiveType(Datatype):
    """A predefined MPI type: a dense block of ``size`` bytes."""

    __slots__ = ("name",)

    combiner = "named"

    def __init__(self, name: str, size: int):
        if size < 0:
            raise ValueError("negative primitive size")
        super().__init__(size=size, lb=0, ub=size, true_lb=0, true_ub=size)
        self.name = name

    def contents(self):
        raise ValueError(
            f"get_contents is invalid on predefined type {self.name}"
        )

    def envelope(self) -> tuple[int, int, int, str]:
        return (0, 0, 0, "named")

    def _flatten_one(self) -> Regions:
        return Regions.single(0, self.size)

    def _typemap_into(self, disp: int, out: list[tuple[int, int]]) -> None:
        if self.size:
            out.append((disp, self.size))

    def describe(self) -> str:
        return f"{self.name}({self.size})"


def _span(points: Sequence[int]) -> tuple[int, int]:
    """Min/max helper for bound arithmetic over candidate displacements."""
    return min(points), max(points)


# Predefined types.  Sizes follow the paper's test platform (IA-32
# Linux): int is 4 bytes, long is 4 bytes on that ABI but we expose the
# LP64 sizes for LONG/LONG_LONG since nothing in the reproduction
# depends on them; the benchmarks only use BYTE, INT and DOUBLE.
BYTE = PrimitiveType("BYTE", 1)
CHAR = PrimitiveType("CHAR", 1)
SHORT = PrimitiveType("SHORT", 2)
INT = PrimitiveType("INT", 4)
LONG = PrimitiveType("LONG", 8)
LONG_LONG = PrimitiveType("LONG_LONG", 8)
FLOAT = PrimitiveType("FLOAT", 4)
DOUBLE = PrimitiveType("DOUBLE", 8)
#: Alias making the FLASH element size (8-byte values) explicit at call sites.
DOUBLE_8 = DOUBLE
