"""Reference typemap computation.

The *typemap* of a datatype is the ordered list of
``(displacement, primitive_size)`` entries it denotes (MPI-3.1 §4.1).
This is the ground-truth semantics; it is exponential to materialize for
large types, so production paths use :meth:`Datatype.flatten` instead.
Tests cross-check flatten/pack against this reference on small types.
"""

from __future__ import annotations

from .base import Datatype

__all__ = ["typemap", "typemap_regions"]


def typemap(dtype: Datatype, count: int = 1) -> list[tuple[int, int]]:
    """Materialize the typemap of ``count`` instances.

    Entries appear in traversal (packed-stream) order; instance ``i`` is
    displaced by ``i * extent``.
    """
    out: list[tuple[int, int]] = []
    for i in range(count):
        dtype._typemap_into(i * dtype.extent, out)
    return out


def typemap_regions(dtype: Datatype, count: int = 1) -> list[tuple[int, int]]:
    """Typemap entries coalesced into maximal contiguous runs.

    Equivalent (by definition) to ``dtype.flatten(count).to_pairs()``;
    computed independently for cross-checking.
    """
    entries = typemap(dtype, count)
    runs: list[tuple[int, int]] = []
    for disp, size in entries:
        if size == 0:
            continue
        if runs and runs[-1][0] + runs[-1][1] == disp:
            runs[-1] = (runs[-1][0], runs[-1][1] + size)
        else:
            runs.append((disp, size))
    return runs
