"""Derived-datatype constructors.

Each factory returns an immutable :class:`~repro.datatypes.base.Datatype`
whose bounds are computed analytically (no typemap materialization) and
whose flattening path is vectorized.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..regions import Regions
from ..vectorize import scalar_fallback
from .base import Datatype

_I64 = np.int64

__all__ = [
    "contiguous",
    "vector",
    "hvector",
    "indexed",
    "hindexed",
    "indexed_block",
    "hindexed_block",
    "struct",
    "subarray",
    "resized",
    "dup",
    "ContiguousType",
    "VectorType",
    "IndexedType",
    "StructType",
    "SubarrayType",
    "ResizedType",
    "DupType",
]


def _check_count(count: int, what: str = "count") -> int:
    count = int(count)
    if count < 0:
        raise ValueError(f"negative {what}: {count}")
    return count


def _check_type(t) -> Datatype:
    if not isinstance(t, Datatype):
        raise TypeError(f"expected a Datatype, got {type(t).__name__}")
    return t


def _block_bounds(disp: int, bl: int, old: Datatype):
    """Bounds contributed by ``bl`` consecutive instances of ``old`` at ``disp``.

    Returns ``(lb, ub, true_lb, true_ub)`` — the true bounds are ``None``
    when ``old`` carries no data (zero-size types still have lb/ub, as
    MPI's old LB/UB marker types did, but no true extent).  Returns
    ``None`` for an empty (``bl == 0``) block.
    """
    if bl == 0:
        return None
    span = (bl - 1) * old.extent
    lo_shift, hi_shift = (span, 0) if span < 0 else (0, span)
    has_data = old.size > 0
    return (
        disp + old.lb + lo_shift,
        disp + old.ub + hi_shift,
        disp + old.true_lb + lo_shift if has_data else None,
        disp + old.true_ub + hi_shift if has_data else None,
    )


def _combine_bounds(blocks) -> tuple[int, int, int, int]:
    """Fold per-block bounds; empty input yields the zero bounds."""
    blocks = [b for b in blocks if b is not None]
    if not blocks:
        return (0, 0, 0, 0)
    lbs, ubs, tlbs, tubs = zip(*blocks)
    tlbs = [x for x in tlbs if x is not None]
    tubs = [x for x in tubs if x is not None]
    return (
        min(lbs),
        max(ubs),
        min(tlbs) if tlbs else 0,
        max(tubs) if tubs else 0,
    )


def _dense_block_regions(
    old: Datatype, disps: np.ndarray, bls: np.ndarray
) -> Regions | None:
    """Vectorized fast path: each block is one dense run.

    Valid when one instance of ``old`` flattens to a single run covering
    its whole extent (``size == extent``); then ``bl`` tiled instances
    are one run of ``bl * size`` bytes.
    """
    one = old.flatten()
    if old.size == 0:
        return Regions.empty()
    if one.count != 1 or old.size != old.extent:
        return None
    o0 = int(one.offsets[0])
    return Regions(disps + o0, bls * old.size)


def _indexed_flatten(
    old: Datatype, disps_bytes: Sequence[int], bls: Sequence[int]
) -> Regions:
    """Flatten blocks of ``old`` at byte displacements, traversal order.

    The general path anchors every ``old`` instance of every block with
    one ``repeat``/``arange`` pass and outer-adds the instance anchors
    against ``old``'s flattening — no per-block Python loop.  The loop
    is retained as the scalar reference (``REPRO_SCALAR_FALLBACK``).
    """
    disps = np.asarray(disps_bytes, dtype=_I64)
    blsa = np.asarray(bls, dtype=_I64)
    fast = _dense_block_regions(old, disps, blsa)
    if fast is not None:
        return fast.coalesce()
    one = old.flatten()
    if scalar_fallback():
        parts = []
        for d, bl in zip(disps.tolist(), blsa.tolist()):
            if bl == 0:
                continue
            parts.append(one.tile(bl, old.extent).shift(d))
        return Regions.concat(parts).coalesce()
    n_inst = int(blsa.sum()) if blsa.size else 0
    r = one.count
    if n_inst == 0 or r == 0:
        return Regions.empty()
    cum_excl = np.concatenate(([0], np.cumsum(blsa)[:-1]))
    anchors = np.repeat(disps, blsa) + (
        np.arange(n_inst, dtype=_I64) - np.repeat(cum_excl, blsa)
    ) * _I64(old.extent)
    offs = (anchors[:, None] + one.offsets[None, :]).reshape(-1)
    lens = np.ascontiguousarray(
        np.broadcast_to(one.lengths[None, :], (n_inst, r))
    ).reshape(-1)
    return Regions(offs, lens, _trusted=True).coalesce()


# ----------------------------------------------------------------------
# contiguous
# ----------------------------------------------------------------------
class ContiguousType(Datatype):
    __slots__ = ("count", "oldtype")

    combiner = "contiguous"

    def __init__(self, count: int, oldtype: Datatype):
        count = _check_count(count)
        old = _check_type(oldtype)
        lb, ub, tlb, tub = _combine_bounds([_block_bounds(0, count, old)])
        super().__init__(count * old.size, lb, ub, tlb, tub)
        self.count = count
        self.oldtype = old

    def contents(self):
        return ((self.count,), (), (self.oldtype,))

    def _flatten_one(self) -> Regions:
        return (
            self.oldtype.flatten()
            .tile(self.count, self.oldtype.extent)
            .coalesce()
        )

    def _typemap_into(self, disp, out):
        for i in range(self.count):
            self.oldtype._typemap_into(disp + i * self.oldtype.extent, out)

    def describe(self) -> str:
        return f"contiguous({self.count}, {self.oldtype.describe()})"


def contiguous(count: int, oldtype: Datatype) -> Datatype:
    """``MPI_Type_contiguous``: ``count`` back-to-back instances."""
    return ContiguousType(count, oldtype)


# ----------------------------------------------------------------------
# vector / hvector
# ----------------------------------------------------------------------
class VectorType(Datatype):
    __slots__ = (
        "count",
        "blocklength",
        "stride",
        "stride_bytes",
        "oldtype",
        "combiner",
    )

    def __init__(
        self,
        count: int,
        blocklength: int,
        stride: int,
        oldtype: Datatype,
        *,
        bytes_stride: bool,
    ):
        count = _check_count(count)
        blocklength = _check_count(blocklength, "blocklength")
        old = _check_type(oldtype)
        stride = int(stride)
        sb = stride if bytes_stride else stride * old.extent
        blocks = [
            _block_bounds(i * sb, blocklength, old) for i in range(min(count, 2))
        ]
        if count > 2:
            blocks.append(_block_bounds((count - 1) * sb, blocklength, old))
        lb, ub, tlb, tub = _combine_bounds(blocks if count else [])
        super().__init__(count * blocklength * old.size, lb, ub, tlb, tub)
        self.count = count
        self.blocklength = blocklength
        self.stride = stride
        self.stride_bytes = sb
        self.oldtype = old
        self.combiner = "hvector" if bytes_stride else "vector"

    def contents(self):
        if self.combiner == "vector":
            return ((self.count, self.blocklength, self.stride), (), (self.oldtype,))
        return ((self.count, self.blocklength), (self.stride,), (self.oldtype,))

    def _flatten_one(self) -> Regions:
        block = (
            self.oldtype.flatten()
            .tile(self.blocklength, self.oldtype.extent)
            .coalesce()
        )
        return block.tile(self.count, self.stride_bytes).coalesce()

    def _typemap_into(self, disp, out):
        for i in range(self.count):
            base = disp + i * self.stride_bytes
            for j in range(self.blocklength):
                self.oldtype._typemap_into(base + j * self.oldtype.extent, out)

    def describe(self) -> str:
        return (
            f"{self.combiner}(count={self.count}, bl={self.blocklength}, "
            f"stride={self.stride}, {self.oldtype.describe()})"
        )


def vector(count: int, blocklength: int, stride: int, oldtype: Datatype) -> Datatype:
    """``MPI_Type_vector``: strided blocks, stride in *elements* of oldtype."""
    return VectorType(count, blocklength, stride, oldtype, bytes_stride=False)


def hvector(count: int, blocklength: int, stride: int, oldtype: Datatype) -> Datatype:
    """``MPI_Type_create_hvector``: strided blocks, stride in *bytes*."""
    return VectorType(count, blocklength, stride, oldtype, bytes_stride=True)


# ----------------------------------------------------------------------
# indexed family
# ----------------------------------------------------------------------
class IndexedType(Datatype):
    __slots__ = (
        "blocklengths",
        "displacements",
        "disps_bytes",
        "oldtype",
        "_uniform_bl",
        "combiner",
    )

    def __init__(
        self,
        blocklengths: Sequence[int],
        displacements: Sequence[int],
        oldtype: Datatype,
        *,
        bytes_disps: bool,
        uniform_bl: bool = False,
    ):
        old = _check_type(oldtype)
        bls = [(_check_count(b, "blocklength")) for b in blocklengths]
        disps = [int(d) for d in displacements]
        if len(bls) != len(disps):
            raise ValueError(
                f"blocklengths ({len(bls)}) and displacements ({len(disps)}) "
                "must have equal length"
            )
        db = disps if bytes_disps else [d * old.extent for d in disps]
        lb, ub, tlb, tub = _combine_bounds(
            _block_bounds(d, bl, old) for d, bl in zip(db, bls)
        )
        super().__init__(sum(bls) * old.size, lb, ub, tlb, tub)
        self.blocklengths = tuple(bls)
        self.displacements = tuple(disps)
        self.disps_bytes = tuple(db)
        self.oldtype = old
        self._uniform_bl = uniform_bl
        if uniform_bl:
            self.combiner = "hindexed_block" if bytes_disps else "indexed_block"
        else:
            self.combiner = "hindexed" if bytes_disps else "indexed"

    @property
    def block_count(self) -> int:
        return len(self.blocklengths)

    def contents(self):
        n = self.block_count
        if self.combiner == "indexed":
            return (
                (n, *self.blocklengths, *self.displacements),
                (),
                (self.oldtype,),
            )
        if self.combiner == "hindexed":
            return ((n, *self.blocklengths), self.displacements, (self.oldtype,))
        bl = self.blocklengths[0] if n else 0
        if self.combiner == "indexed_block":
            return ((n, bl, *self.displacements), (), (self.oldtype,))
        return ((n, bl), self.displacements, (self.oldtype,))

    def _flatten_one(self) -> Regions:
        return _indexed_flatten(self.oldtype, self.disps_bytes, self.blocklengths)

    def _typemap_into(self, disp, out):
        for d, bl in zip(self.disps_bytes, self.blocklengths):
            for j in range(bl):
                self.oldtype._typemap_into(
                    disp + d + j * self.oldtype.extent, out
                )

    def describe(self) -> str:
        return (
            f"{self.combiner}(blocks={self.block_count}, "
            f"{self.oldtype.describe()})"
        )


def indexed(
    blocklengths: Sequence[int],
    displacements: Sequence[int],
    oldtype: Datatype,
) -> Datatype:
    """``MPI_Type_indexed``: displacements in elements of oldtype."""
    return IndexedType(blocklengths, displacements, oldtype, bytes_disps=False)


def hindexed(
    blocklengths: Sequence[int],
    displacements: Sequence[int],
    oldtype: Datatype,
) -> Datatype:
    """``MPI_Type_create_hindexed``: displacements in bytes."""
    return IndexedType(blocklengths, displacements, oldtype, bytes_disps=True)


def indexed_block(
    blocklength: int, displacements: Sequence[int], oldtype: Datatype
) -> Datatype:
    """``MPI_Type_create_indexed_block``: constant blocklength."""
    bls = [blocklength] * len(displacements)
    return IndexedType(
        bls, displacements, oldtype, bytes_disps=False, uniform_bl=True
    )


def hindexed_block(
    blocklength: int, displacements: Sequence[int], oldtype: Datatype
) -> Datatype:
    """``MPI_Type_create_hindexed_block``: constant blocklength, byte disps."""
    bls = [blocklength] * len(displacements)
    return IndexedType(
        bls, displacements, oldtype, bytes_disps=True, uniform_bl=True
    )


# ----------------------------------------------------------------------
# struct
# ----------------------------------------------------------------------
class StructType(Datatype):
    __slots__ = ("blocklengths", "displacements", "types")

    combiner = "struct"

    def __init__(
        self,
        blocklengths: Sequence[int],
        displacements: Sequence[int],
        types: Sequence[Datatype],
    ):
        bls = [(_check_count(b, "blocklength")) for b in blocklengths]
        disps = [int(d) for d in displacements]
        ts = [_check_type(t) for t in types]
        if not (len(bls) == len(disps) == len(ts)):
            raise ValueError(
                "blocklengths, displacements and types must have equal length"
            )
        lb, ub, tlb, tub = _combine_bounds(
            _block_bounds(d, bl, t) for d, bl, t in zip(disps, bls, ts)
        )
        super().__init__(
            sum(bl * t.size for bl, t in zip(bls, ts)), lb, ub, tlb, tub
        )
        self.blocklengths = tuple(bls)
        self.displacements = tuple(disps)
        self.types = tuple(ts)

    def contents(self):
        n = len(self.types)
        return ((n, *self.blocklengths), self.displacements, self.types)

    def _flatten_one(self) -> Regions:
        # homogeneous structs (one shared field type) reduce to the
        # indexed broadcast; heterogeneous ones tile per field
        if (
            self.types
            and all(t is self.types[0] for t in self.types)
            and not scalar_fallback()
        ):
            return _indexed_flatten(
                self.types[0], self.displacements, self.blocklengths
            )
        parts = []
        for d, bl, t in zip(self.displacements, self.blocklengths, self.types):
            if bl == 0 or t.size == 0:
                continue
            parts.append(t.flatten().tile(bl, t.extent).shift(d))
        return Regions.concat(parts).coalesce()

    def _typemap_into(self, disp, out):
        for d, bl, t in zip(self.displacements, self.blocklengths, self.types):
            for j in range(bl):
                t._typemap_into(disp + d + j * t.extent, out)

    def describe(self) -> str:
        return f"struct(fields={len(self.types)})"


def struct(
    blocklengths: Sequence[int],
    displacements: Sequence[int],
    types: Sequence[Datatype],
) -> Datatype:
    """``MPI_Type_create_struct``: heterogeneous fields at byte displacements."""
    return StructType(blocklengths, displacements, types)


# ----------------------------------------------------------------------
# resized / dup
# ----------------------------------------------------------------------
class ResizedType(Datatype):
    __slots__ = ("oldtype",)

    combiner = "resized"

    def __init__(self, oldtype: Datatype, lb: int, extent: int):
        old = _check_type(oldtype)
        super().__init__(
            old.size, int(lb), int(lb) + int(extent), old.true_lb, old.true_ub
        )
        self.oldtype = old

    def contents(self):
        return ((), (self.lb, self.extent), (self.oldtype,))

    def _flatten_one(self) -> Regions:
        return self.oldtype.flatten()

    def _typemap_into(self, disp, out):
        self.oldtype._typemap_into(disp, out)

    def describe(self) -> str:
        return (
            f"resized(lb={self.lb}, extent={self.extent}, "
            f"{self.oldtype.describe()})"
        )


def resized(oldtype: Datatype, lb: int, extent: int) -> Datatype:
    """``MPI_Type_create_resized``: override lb and extent."""
    return ResizedType(oldtype, lb, extent)


class DupType(Datatype):
    __slots__ = ("oldtype",)

    combiner = "dup"

    def __init__(self, oldtype: Datatype):
        old = _check_type(oldtype)
        super().__init__(old.size, old.lb, old.ub, old.true_lb, old.true_ub)
        self.oldtype = old

    def contents(self):
        return ((), (), (self.oldtype,))

    def _flatten_one(self) -> Regions:
        return self.oldtype.flatten()

    def _typemap_into(self, disp, out):
        self.oldtype._typemap_into(disp, out)

    def describe(self) -> str:
        return f"dup({self.oldtype.describe()})"


def dup(oldtype: Datatype) -> Datatype:
    """``MPI_Type_dup``."""
    return DupType(oldtype)


# ----------------------------------------------------------------------
# subarray
# ----------------------------------------------------------------------
ORDER_C = "C"
ORDER_F = "F"


def _build_subarray_impl(
    sizes: Sequence[int],
    subsizes: Sequence[int],
    starts: Sequence[int],
    order: str,
    old: Datatype,
) -> Datatype:
    """Equivalent nested-vector construction of a subarray type."""
    n = len(sizes)
    if order == ORDER_F:
        sizes = list(reversed(sizes))
        subsizes = list(reversed(subsizes))
        starts = list(reversed(starts))
    # After normalization, the last dimension varies fastest (C order).
    t: Datatype = contiguous(subsizes[-1], old)
    row_bytes = old.extent
    dim_strides = [0] * n  # byte stride of one step in dimension i
    stride = old.extent
    for i in range(n - 1, -1, -1):
        dim_strides[i] = stride
        stride *= sizes[i]
    full_bytes = stride  # product(sizes) * old.extent
    del row_bytes
    for i in range(n - 2, -1, -1):
        t = hvector(subsizes[i], 1, dim_strides[i], t)
    start_off = sum(starts[i] * dim_strides[i] for i in range(n))
    placed = hindexed([1], [start_off], t)
    return resized(placed, 0, full_bytes)


class SubarrayType(Datatype):
    """``MPI_Type_create_subarray``.

    The resulting type's extent is the full array, with the sub-block at
    its ``starts`` displacement — so tiling instances steps whole arrays.
    Internally delegates to an equivalent nested-``hvector`` construction.
    """

    __slots__ = ("ndims", "sizes", "subsizes", "starts", "order", "oldtype", "_impl")

    combiner = "subarray"

    def __init__(
        self,
        sizes: Sequence[int],
        subsizes: Sequence[int],
        starts: Sequence[int],
        order: str,
        oldtype: Datatype,
    ):
        old = _check_type(oldtype)
        sizes = [int(s) for s in sizes]
        subsizes = [int(s) for s in subsizes]
        starts = [int(s) for s in starts]
        n = len(sizes)
        if n == 0:
            raise ValueError("subarray needs at least one dimension")
        if not (len(subsizes) == len(starts) == n):
            raise ValueError("sizes, subsizes, starts must have equal length")
        if order not in (ORDER_C, ORDER_F):
            raise ValueError(f"order must be 'C' or 'F', got {order!r}")
        for i in range(n):
            if sizes[i] <= 0 or subsizes[i] <= 0:
                raise ValueError("sizes and subsizes must be positive")
            if starts[i] < 0 or starts[i] + subsizes[i] > sizes[i]:
                raise ValueError(
                    f"dimension {i}: sub-block [{starts[i]}, "
                    f"{starts[i] + subsizes[i]}) outside array of {sizes[i]}"
                )
        impl = _build_subarray_impl(sizes, subsizes, starts, order, old)
        super().__init__(impl.size, impl.lb, impl.ub, impl.true_lb, impl.true_ub)
        self.ndims = n
        self.sizes = tuple(sizes)
        self.subsizes = tuple(subsizes)
        self.starts = tuple(starts)
        self.order = order
        self.oldtype = old
        self._impl = impl

    def contents(self):
        order_flag = 0 if self.order == ORDER_C else 1
        return (
            (self.ndims, *self.sizes, *self.subsizes, *self.starts, order_flag),
            (),
            (self.oldtype,),
        )

    def _flatten_one(self) -> Regions:
        return self._impl.flatten()

    def _typemap_into(self, disp, out):
        self._impl._typemap_into(disp, out)

    def describe(self) -> str:
        return (
            f"subarray(sizes={list(self.sizes)}, subsizes={list(self.subsizes)}, "
            f"starts={list(self.starts)}, order={self.order})"
        )


def subarray(
    sizes: Sequence[int],
    subsizes: Sequence[int],
    starts: Sequence[int],
    oldtype: Datatype,
    order: str = ORDER_C,
) -> Datatype:
    """``MPI_Type_create_subarray`` (default C order)."""
    return SubarrayType(sizes, subsizes, starts, order, oldtype)
