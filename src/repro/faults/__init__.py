"""Deterministic, config-gated fault injection for the simulated cluster.

Arm with ``PVFSConfig(faults=FaultConfig(...))``: disk slowdowns and
stalls in the server storage stage, dropped and duplicated data-path
messages, and server crash windows — all drawn from seeded,
counter-keyed streams so a ``(workload, seed, fault config)`` triple
replays bit-for-bit.  Clients survive through per-RPC timeouts with
exponential backoff and bounded retries; exhausted retries raise a
typed :class:`~repro.pvfs.errors.RetriesExhausted`.  ``faults=None``
(the default) is float-equality identical to a build that never heard
of fault injection.  See ``docs/observability.md`` (Part III).
"""

from .core import (
    NULL_FAULTS,
    SEVERITY_LEVELS,
    FaultConfig,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    NullFaults,
    severity_config,
)

__all__ = [
    "FaultConfig",
    "FaultPlan",
    "FaultEvent",
    "FaultInjector",
    "NullFaults",
    "NULL_FAULTS",
    "SEVERITY_LEVELS",
    "severity_config",
]
