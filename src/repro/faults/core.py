"""Deterministic fault injection: the mechanism behind ``repro.faults``.

Arm it with ``PVFSConfig(faults=FaultConfig(...))``.  Three fault
families thread through the simulated cluster:

* **disk** — transient slowdowns (the media takes ``disk_slow_factor``×
  its modelled time) and full stalls (a flat ``disk_stall_seconds``
  penalty), charged inside the server storage stage so every observer
  (StageTimes, metrics histograms, ``server.storage`` spans) stays
  reconciled;
* **network** — client↔iod data-path messages are dropped (the bytes
  cross the wire, the mailbox never hears of them) or duplicated (a
  ghost copy arrives one extra latency later);
* **server crash** — windows of simulated time during which an I/O
  daemon discards incoming I/O requests (its control path stays up,
  like a wedged data thread).

Clients survive all three through per-RPC timeouts with exponential
backoff and bounded retries (:mod:`repro.pvfs.client`); a request whose
every retry times out surfaces a typed
:class:`~repro.pvfs.errors.RetriesExhausted`, never a hang.

Determinism is the design center: every fault decision is drawn from a
:class:`FaultPlan` — counter-keyed BLAKE2b streams seeded by
``FaultConfig.seed``, never the wall clock — so a given ``(workload,
seed, fault config)`` triple replays bit-for-bit, and the recorded
:class:`FaultEvent` log is directly comparable across runs.  The
injector is zero-overhead when disarmed: ``faults=None`` leaves the
:data:`NULL_FAULTS` singleton in place (every site is one attribute
test), and an armed-but-inert config (all probabilities zero, no crash
windows) is float-equality identical to ``faults=None``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from hashlib import blake2b
from typing import Optional

from ..metrics import NULL_METRICS
from ..trace import NULL_TRACER

__all__ = [
    "FaultConfig",
    "FaultPlan",
    "FaultEvent",
    "FaultInjector",
    "NullFaults",
    "NULL_FAULTS",
    "SEVERITY_LEVELS",
    "severity_config",
]


@dataclass(frozen=True)
class FaultConfig:
    """Static fault-injection parameters (all probabilities per event).

    The default instance is *inert*: armed (decision sites run) but
    injecting nothing — useful for bit-identity tests.  Probabilities
    apply per decision site: per storage stage with media time for the
    disk families, per faultable message for the network families.
    """

    #: Seed of the deterministic draw streams (:class:`FaultPlan`).
    seed: int = 0
    #: Probability a storage stage runs slow.
    disk_slow_prob: float = 0.0
    #: Slowdown multiplier: a slow stage takes ``factor``× its modelled
    #: media time (the extra ``(factor-1)·disk_time`` is the fault).
    disk_slow_factor: float = 2.0
    #: Probability a storage stage stalls outright.
    disk_stall_prob: float = 0.0
    #: Flat stall duration added to a stalled stage, seconds.
    disk_stall_seconds: float = 5e-3
    #: Probability a client↔iod data-path message is dropped.
    net_drop_prob: float = 0.0
    #: Probability such a message is duplicated (ghost copy delivered
    #: one extra latency later; dropped messages are never duplicated).
    net_dup_prob: float = 0.0
    #: Crash windows ``(server_index, t_start, t_end)`` in simulated
    #: seconds: the daemon discards I/O requests while ``t_start <= now
    #: < t_end`` (metadata and control traffic keep flowing).
    server_crashes: tuple = ()
    #: Client-side per-RPC response timeout, simulated seconds.  This
    #: is the *base* deadline: it doubles per consecutive timeout of
    #: the same request (TCP RTO style), so a transfer whose legitimate
    #: wire time exceeds the base still completes instead of timing out
    #: forever.
    rpc_timeout: float = 50e-3
    #: Bound on resends after timeouts before the client gives up with
    #: :class:`~repro.pvfs.errors.RetriesExhausted`.
    max_retries: int = 8
    #: Base backoff before a timed-out request is resent; doubles per
    #: consecutive timeout (exponential backoff).
    retry_backoff: float = 1e-3
    #: Collective failover: consecutive timeouts of one aggregated
    #: ``OP_COLL`` request before the aggregator hands its rounds to
    #: the next surviving candidate (``repro.pvfs.collective``).  Must
    #: stay below ``max_retries`` to leave the new aggregator budget;
    #: re-election is attempted once the escalation ladder reaches this
    #: rung and a surviving candidate exists, otherwise the plain
    #: ladder continues to ``RetriesExhausted``.
    coll_reelect_after: int = 3

    def __post_init__(self):
        for name in (
            "disk_slow_prob", "disk_stall_prob",
            "net_drop_prob", "net_dup_prob",
        ):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p!r}")
        if self.disk_slow_factor < 1.0:
            raise ValueError("disk_slow_factor must be >= 1")
        if self.disk_stall_seconds < 0:
            raise ValueError("disk_stall_seconds must be non-negative")
        if self.rpc_timeout <= 0:
            raise ValueError("rpc_timeout must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.retry_backoff < 0:
            raise ValueError("retry_backoff must be non-negative")
        if self.coll_reelect_after < 1:
            raise ValueError("coll_reelect_after must be >= 1")
        for win in self.server_crashes:
            if len(win) != 3:
                raise ValueError(
                    "server_crashes entries are (server, t0, t1) triples"
                )
            s, t0, t1 = win
            if s < 0 or t0 < 0 or t1 < t0:
                raise ValueError(f"bad crash window {win!r}")

    @property
    def can_inject(self) -> bool:
        """False iff this config is inert (nothing can ever be injected).

        An inert config must be float-equality identical to
        ``faults=None``, so the client arms its RPC timers only when
        this is True — a timer on a legitimately-slow RPC would
        otherwise inject a spurious resend.
        """
        return bool(
            self.disk_slow_prob
            or self.disk_stall_prob
            or self.net_drop_prob
            or self.net_dup_prob
            or self.server_crashes
        )


class FaultPlan:
    """Counter-keyed deterministic draw streams.

    ``draw(kind)`` hashes ``seed:kind:counter`` with BLAKE2b and maps
    the digest to a uniform float in ``[0, 1)``; each kind advances its
    own counter.  No wall clock, no shared RNG state — the *n*-th draw
    of a kind is a pure function of ``(seed, kind, n)``, so replays are
    bit-for-bit and adding a new fault family never perturbs the
    streams of existing ones.
    """

    __slots__ = ("seed", "_counters")

    def __init__(self, seed: int):
        self.seed = seed
        self._counters: dict[str, int] = {}

    def draw(self, kind: str) -> float:
        n = self._counters.get(kind, 0)
        self._counters[kind] = n + 1
        digest = blake2b(
            f"{self.seed}:{kind}:{n}".encode(), digest_size=8
        ).digest()
        return int.from_bytes(digest, "big") / 2.0**64


@dataclass
class FaultEvent:
    """One injected fault, as recorded in the injector's event log."""

    seq: int  #: position in the log (0-based)
    t: float  #: simulated instant of the decision
    kind: str  #: e.g. ``net.drop``, ``disk.stall``, ``rpc.timeout``
    where: str  #: actor or link, e.g. ``iod3`` or ``cl0->ios2``
    info: dict = field(default_factory=dict)

    def key(self) -> tuple:
        """Hashable, order-stable form used by determinism tests."""
        return (
            self.seq,
            self.t,
            self.kind,
            self.where,
            tuple(sorted(self.info.items())),
        )


class FaultInjector:
    """Decision sites + event log + observability for one file system.

    One injector per :class:`~repro.pvfs.system.PVFS` when
    ``config.faults`` is set.  The instrumented layers call the
    decision sites (``net_fault``, ``disk_penalty``, ``server_down``)
    and the recorders (``crash_drop``, ``rpc_timeout`` …); every
    injected fault appends a :class:`FaultEvent`, bumps a counter,
    emits a ``fault.*`` trace span (when tracing) and a
    ``repro_fault_events`` metric (when metering).
    """

    enabled = True

    def __init__(self, env, config: FaultConfig, tracer=None, metrics=None):
        self.env = env
        self.config = config
        self.plan = FaultPlan(config.seed)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.events: list[FaultEvent] = []
        # per-family counters (all mirrored in summary())
        self.drops = 0
        self.dups = 0
        self.disk_slowdowns = 0
        self.disk_stalls = 0
        self.stall_seconds = 0.0  #: total injected disk fault time
        self.crash_drops = 0
        self.timeouts = 0
        self.failovers = 0
        self.exhausted = 0
        self.coll_resends = 0
        self.coll_reelections = 0

    @property
    def armed(self) -> bool:
        """True iff the config can inject at all (see
        :attr:`FaultConfig.can_inject`); clients arm RPC timers only
        then, keeping inert configs bit-identical to ``faults=None``."""
        return self.config.can_inject

    @property
    def degraded(self) -> bool:
        """True iff at least one fault was actually injected."""
        return bool(self.events)

    def event_log(self) -> list[tuple]:
        """The full event log as comparable tuples (determinism tests)."""
        return [ev.key() for ev in self.events]

    def summary(self) -> dict:
        """Deterministic per-run fault accounting (benchmarks, tests)."""
        return {
            "events": len(self.events),
            "drops": self.drops,
            "dups": self.dups,
            "disk_slowdowns": self.disk_slowdowns,
            "disk_stalls": self.disk_stalls,
            "stall_seconds": self.stall_seconds,
            "crash_drops": self.crash_drops,
            "timeouts": self.timeouts,
            "failovers": self.failovers,
            "exhausted": self.exhausted,
            "coll_resends": self.coll_resends,
            "coll_reelections": self.coll_reelections,
        }

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def _record(
        self,
        kind: str,
        where: str,
        t0: Optional[float] = None,
        t1: Optional[float] = None,
        trace_id: int = -1,
        parent=None,
        **info,
    ) -> None:
        now = self.env.now
        t0 = now if t0 is None else t0
        t1 = t0 if t1 is None else t1
        self.events.append(
            FaultEvent(len(self.events), t0, kind, where, info)
        )
        if self.metrics.enabled:
            self.metrics.fault(kind)
        if self.tracer.enabled and trace_id >= 0:
            self.tracer.add(
                f"fault.{kind}", "fault", where, t0, t1,
                trace_id=trace_id, parent=parent, **info,
            )

    # ------------------------------------------------------------------
    # network faults (called by Network.send for faultable messages)
    # ------------------------------------------------------------------
    def net_fault(self, src: str, dst: str, nbytes: int, payload) -> Optional[str]:
        """Decide one faultable message's fate: None, 'drop' or 'dup'."""
        cfg = self.config
        verdict = None
        if cfg.net_drop_prob > 0 and (
            self.plan.draw("net.drop") < cfg.net_drop_prob
        ):
            verdict = "drop"
            self.drops += 1
        elif cfg.net_dup_prob > 0 and (
            self.plan.draw("net.dup") < cfg.net_dup_prob
        ):
            verdict = "dup"
            self.dups += 1
        if verdict is None:
            return None
        self._record(
            f"net.{verdict}",
            f"{src}->{dst}",
            trace_id=getattr(payload, "trace_id", -1),
            parent=getattr(payload, "trace_parent", None),
            nbytes=nbytes,
            req_id=getattr(payload, "req_id", -1),
        )
        return verdict

    # ------------------------------------------------------------------
    # disk faults (called by the schedulers' storage stage)
    # ------------------------------------------------------------------
    def disk_penalty(
        self,
        where: str,
        disk_time: float,
        *,
        t_start: float,
        trace_id: int = -1,
        parent=None,
    ) -> float:
        """Extra storage-stage seconds injected for this request.

        ``t_start`` is the simulated instant the storage stage begins;
        fault spans are laid end-to-end after the unperturbed media
        time (``t_start + disk_time``), so the ``server.storage`` span
        still covers the whole effective stage and per-stage
        reconciliations stay exact.
        """
        cfg = self.config
        extra = 0.0
        t = t_start + disk_time
        if cfg.disk_slow_prob > 0 and (
            self.plan.draw("disk.slow") < cfg.disk_slow_prob
        ):
            slow = disk_time * (cfg.disk_slow_factor - 1.0)
            extra += slow
            self.disk_slowdowns += 1
            self.stall_seconds += slow
            if self.metrics.enabled:
                self.metrics.fault_stall(slow)
            self._record(
                "disk.slow", where, t, t + slow,
                trace_id=trace_id, parent=parent, extra_s=slow,
            )
            t += slow
        if cfg.disk_stall_prob > 0 and (
            self.plan.draw("disk.stall") < cfg.disk_stall_prob
        ):
            stall = cfg.disk_stall_seconds
            extra += stall
            self.disk_stalls += 1
            self.stall_seconds += stall
            if self.metrics.enabled:
                self.metrics.fault_stall(stall)
            self._record(
                "disk.stall", where, t, t + stall,
                trace_id=trace_id, parent=parent, extra_s=stall,
            )
        return extra

    # ------------------------------------------------------------------
    # server crashes (called by the daemon receive loop)
    # ------------------------------------------------------------------
    def server_down(self, index: int) -> bool:
        """Is server ``index`` inside one of its crash windows now?"""
        now = self.env.now
        for s, t0, t1 in self.config.server_crashes:
            if s == index and t0 <= now < t1:
                return True
        return False

    def crash_drop(self, index: int, req) -> None:
        """Record an I/O request discarded by a crashed daemon."""
        self.crash_drops += 1
        self._record(
            "server.crash",
            f"iod{index}",
            trace_id=getattr(req, "trace_id", -1),
            parent=getattr(req, "trace_parent", None),
            req_id=getattr(req, "req_id", -1),
            client=getattr(req, "client", ""),
        )

    # ------------------------------------------------------------------
    # client failover (called by the PVFS client's retry loop)
    # ------------------------------------------------------------------
    def rpc_timeout(self, client: str, req, attempt: int, span=None) -> None:
        self.timeouts += 1
        self._record(
            "rpc.timeout", client,
            trace_id=getattr(req, "trace_id", -1), parent=span,
            req_id=req.req_id, server=req.server, attempt=attempt,
        )

    def rpc_failover(self, client: str, req, attempts: int, span=None) -> None:
        """A request succeeded after at least one timeout + resend."""
        self.failovers += 1
        self._record(
            "rpc.failover", client,
            trace_id=getattr(req, "trace_id", -1), parent=span,
            req_id=req.req_id, server=req.server, attempts=attempts,
        )

    def rpc_exhausted(self, client: str, req, attempts: int, span=None) -> None:
        self.exhausted += 1
        self._record(
            "rpc.exhausted", client,
            trace_id=getattr(req, "trace_id", -1), parent=span,
            req_id=req.req_id, server=req.server, attempts=attempts,
        )

    # ------------------------------------------------------------------
    # collective failover (called by the collective ack/handoff layer)
    # ------------------------------------------------------------------
    def coll_resend(
        self, client: str, server: int, round_no: int,
        attempt: int, *, kind: str, trace_id: int = -1, span=None,
    ) -> None:
        """A collective data segment was resent (write) or re-fetched
        (read) after its per-(round, server) ack timed out."""
        self.coll_resends += 1
        self._record(
            "coll.resend", client,
            trace_id=trace_id, parent=span,
            server=server, round=round_no, attempt=attempt, what=kind,
        )

    def coll_reelection(
        self, client: str, server: int, from_agg: int, to_agg: int,
        rounds: int, *, trace_id: int = -1, span=None,
    ) -> None:
        """An aggregator's rounds were handed to a surviving candidate
        after its composite request timed out past the ladder."""
        self.coll_reelections += 1
        self._record(
            "coll.reelect", client,
            trace_id=trace_id, parent=span,
            server=server, from_agg=from_agg, to_agg=to_agg,
            rounds=rounds,
        )

    def coll_exhausted(
        self, client: str, server: int, round_no: int, attempts: int,
        *, trace_id: int = -1, span=None,
    ) -> None:
        """Every resend of a collective segment timed out (the caller
        raises :class:`~repro.pvfs.errors.RetriesExhausted`)."""
        self.exhausted += 1
        self._record(
            "rpc.exhausted", client,
            trace_id=trace_id, parent=span,
            req_id=-1, server=server, round=round_no, attempts=attempts,
        )


class NullFaults:
    """Disarmed fault injection: every site is a no-op behind
    ``enabled=False`` (the ``NULL_TRACER``/``NULL_METRICS`` pattern)."""

    enabled = False
    config = None
    events: list = []
    armed = False

    @property
    def degraded(self) -> bool:
        return False

    def event_log(self) -> list:
        return []

    def summary(self) -> dict:
        return {}

    def net_fault(self, src, dst, nbytes, payload) -> None:
        return None

    def disk_penalty(self, where, disk_time, **kw) -> float:
        return 0.0

    def server_down(self, index) -> bool:
        return False

    def crash_drop(self, index, req) -> None:
        pass

    def rpc_timeout(self, client, req, attempt, span=None) -> None:
        pass

    def rpc_failover(self, client, req, attempts, span=None) -> None:
        pass

    def rpc_exhausted(self, client, req, attempts, span=None) -> None:
        pass

    def coll_resend(self, client, server, round_no, attempt, **kw) -> None:
        pass

    def coll_reelection(
        self, client, server, from_agg, to_agg, rounds, **kw
    ) -> None:
        pass

    def coll_exhausted(self, client, server, round_no, attempts, **kw) -> None:
        pass


#: Shared disarmed singleton; ``PVFS`` uses it when ``config.faults`` is None.
NULL_FAULTS = NullFaults()


#: Severity levels of the ``repro-bench faults`` sweep, mildest first.
SEVERITY_LEVELS = ("none", "light", "moderate", "heavy")


def severity_config(level: str, seed: int = 1234) -> Optional[FaultConfig]:
    """The benchmark sweep's named severity presets.

    ``none`` returns ``None`` (fault machinery fully disarmed — the
    fault-free reference point of the sweep); the others scale all
    three fault families together, with ``heavy`` adding a server
    crash window early in the run to exercise client failover.
    """
    if level == "none":
        return None
    if level == "light":
        return FaultConfig(
            seed=seed,
            disk_slow_prob=0.05,
            net_drop_prob=0.01,
            net_dup_prob=0.01,
        )
    if level == "moderate":
        return FaultConfig(
            seed=seed,
            disk_slow_prob=0.15,
            disk_slow_factor=3.0,
            disk_stall_prob=0.02,
            disk_stall_seconds=2e-3,
            net_drop_prob=0.03,
            net_dup_prob=0.02,
        )
    if level == "heavy":
        return FaultConfig(
            seed=seed,
            disk_slow_prob=0.3,
            disk_slow_factor=4.0,
            disk_stall_prob=0.05,
            disk_stall_seconds=5e-3,
            net_drop_prob=0.08,
            net_dup_prob=0.05,
            # one iod loses its data path for the first 20 simulated ms
            server_crashes=((1, 0.0, 0.02),),
            rpc_timeout=25e-3,
        )
    raise ValueError(
        f"unknown severity {level!r}; choose from {SEVERITY_LEVELS}"
    )
