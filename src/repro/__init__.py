"""repro — datatype I/O in a parallel file system.

A from-scratch Python reproduction of

    A. Ching, A. Choudhary, W. Liao, R. Ross, W. Gropp.
    "Efficient Structured Data Access in Parallel File Systems",
    IEEE CLUSTER 2003.

The package provides, bottom-up:

* :mod:`repro.regions` — vectorized offset/length region sets;
* :mod:`repro.datatypes` — an MPI derived-datatype engine;
* :mod:`repro.dataloops` — the MPICH2-style dataloop component the
  paper builds on (conversion, partial processing, wire encoding);
* :mod:`repro.simulation` — a discrete-event cluster simulator with a
  calibrated cost model;
* :mod:`repro.storage` — server-side byte stores and disk timing;
* :mod:`repro.pvfs` — a PVFS-like parallel file system supporting
  contiguous, list and **datatype I/O** at the file-system interface;
* :mod:`repro.mpiio` — a ROMIO-like MPI-IO layer with POSIX, data
  sieving, two-phase, list I/O and datatype I/O access methods over
  simulated MPI ranks;
* :mod:`repro.bench` — the paper's three benchmarks and the harness
  regenerating every table and figure (also: ``repro-bench`` CLI).

Quick taste::

    from repro.simulation import Environment
    from repro.pvfs import PVFS
    from repro.mpiio import SimMPI, File
    from repro.datatypes import INT, subarray, contiguous

    env = Environment()
    fs = PVFS(env, n_servers=16)          # the paper's configuration
    mpi = SimMPI(fs, nprocs=8)

    def rank_main(ctx):
        f = yield from File.open(ctx, "/data")
        f.set_view(0, INT, subarray([64]*3, [32]*3, [0]*3, INT))
        yield from f.write_at(0, contiguous(32**3, INT), 1, my_buf,
                              method="datatype_io")
        return f.counters

    counters = mpi.run(rank_main)
"""

from . import (
    bench,
    dataloops,
    datatypes,
    mpiio,
    pvfs,
    regions,
    simulation,
    storage,
)
from .regions import Regions

__version__ = "1.0.0"

__all__ = [
    "Regions",
    "regions",
    "datatypes",
    "dataloops",
    "simulation",
    "storage",
    "pvfs",
    "mpiio",
    "bench",
    "__version__",
]
