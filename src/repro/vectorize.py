"""Scalar-fallback switch for the vectorized numpy core.

Every vectorized hot path (dataloop streaming, datatype flattening,
region set algebra, sieving/two-phase planning) retains its original
per-region Python implementation as a *reference*.  Setting the
``REPRO_SCALAR_FALLBACK`` environment variable (or calling
:func:`set_scalar_fallback`) routes those paths through the reference
code instead.  Both modes must produce byte-identical region sets and
bit-identical simulated costs — only wall-clock time may differ; the
``repro-bench hotpaths`` command measures exactly that gap.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

__all__ = ["scalar_fallback", "set_scalar_fallback", "scalar_mode"]


def _env_truthy(val: str | None) -> bool:
    return (val or "").strip().lower() not in ("", "0", "false", "no", "off")


_scalar: bool = _env_truthy(os.environ.get("REPRO_SCALAR_FALLBACK"))


def scalar_fallback() -> bool:
    """True when hot paths must use the scalar reference implementations."""
    return _scalar


def set_scalar_fallback(on: bool) -> bool:
    """Set the fallback flag; returns the previous value."""
    global _scalar
    prev = _scalar
    _scalar = bool(on)
    return prev


@contextmanager
def scalar_mode(on: bool = True):
    """Temporarily force scalar (or vectorized) mode."""
    prev = set_scalar_fallback(on)
    try:
        yield
    finally:
        set_scalar_fallback(prev)
