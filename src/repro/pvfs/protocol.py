"""Request/response message types and wire-size accounting.

Wire sizes matter: the network model charges for them, and the
difference between a list I/O request (12 bytes per offset–length pair,
§4.2's ~9 KB for 768 pairs) and a datatype I/O request (a serialized
dataloop of constant size for regular patterns) is one of the paper's
central effects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from ..dataloops import Dataloop, wire_size
from ..regions import Regions

__all__ = [
    "MetaRequest",
    "MetaResponse",
    "IORequest",
    "IOResponse",
    "DataloopWindow",
    "CollOp",
    "CollPart",
    "CollSegment",
    "CollAck",
    "CollFetch",
    "OP_CONTIG",
    "OP_LIST",
    "OP_DTYPE",
    "OP_COLL",
    "OP_KINDS",
]

OP_CONTIG = "contig"
OP_LIST = "list"
OP_DTYPE = "dtype"
OP_COLL = "coll"
OP_KINDS = (OP_CONTIG, OP_LIST, OP_DTYPE, OP_COLL)


@dataclass
class MetaRequest:
    """Namespace operation sent to the metadata server."""

    op: str  # 'open' | 'stat' | 'unlink' | 'localsize'
    path: str = ""
    create: bool = True
    handle: int = -1
    req_id: int = -1
    reply_to: Any = None

    def wire_bytes(self, header: int) -> int:
        return header + len(self.path)


@dataclass
class MetaResponse:
    req_id: int
    handle: int = -1
    size: int = 0
    n_servers: int = 0
    strip_size: int = 0
    error: Optional[str] = None


@dataclass
class DataloopWindow:
    """The file side of a datatype I/O request (paper Fig. 6).

    ``loop`` describes the file type; the access covers packed-stream
    bytes ``[first, last)`` of the type tiled from byte ``displacement``
    — exactly the (displacement, datatype, offset-into-datatype) triple
    of the datatype I/O interface.
    """

    loop: Dataloop
    displacement: int
    first: int
    last: int

    @property
    def stream_bytes(self) -> int:
        return self.last - self.first

    def tile_count(self) -> int:
        size = self.loop.data_size
        if size <= 0 or self.last <= 0:
            return 0
        return -(-self.last // size)

    def wire_bytes(self) -> int:
        # serialized dataloop + displacement/first/last
        return wire_size(self.loop) + 24


@dataclass
class CollPart:
    """One participating rank's slice of a collective round.

    The server re-expands the rank's dataloop over the round's stream
    window ``[first, last)`` itself — region lists never cross the wire
    (the same invariant datatype I/O relies on).  ``view`` indexes into
    the owning :class:`CollOp`'s deduplicated view table, so FLASH-style
    identical views are shipped once per request, not once per rank.
    """

    client: str  # PVFS client name (payload/scatter identity)
    reply_to: Any  # the rank's PVFS client mailbox (read scatter)
    view: int  # index into CollOp.views
    displacement: int
    first: int  # round window in the rank's packed stream
    last: int
    nbytes: int  # this rank's bytes on this server this round

    #: Wire bytes per participant entry: client id + view index +
    #: displacement + window + length.
    WIRE = 40


@dataclass
class CollOp:
    """Aggregated descriptor for one (server, round) collective request.

    ``views`` holds the *deduplicated* dataloops referenced by
    ``parts``; it is shipped only in round 0 (``views_on_wire``) — later
    rounds reference the same loops by 8-byte handles, mirroring the
    datatype-cache trick one level up.
    """

    coll_id: tuple  # (file handle, collective epoch, is_write)
    round_no: int
    rounds: int  # total rounds of this collective on this server
    views: tuple  # deduplicated Dataloop table for parts[.].view
    parts: tuple  # CollPart per participating rank, rank order
    views_on_wire: bool = True  # False: ship 8-byte view handles

    def descriptor_bytes(self) -> int:
        size = len(self.parts) * CollPart.WIRE + 24
        if self.views_on_wire:
            size += sum(wire_size(v) + 8 for v in self.views)
        else:
            size += 8 * len(self.views)
        return size


@dataclass
class CollSegment:
    """One rank's data for one (server, round) of a collective.

    Writes: rank → server, carrying the round slice of the rank's
    packed stream (the server splits it against its own expansion).
    Reads: server → rank, carrying the slice the rank scatters into its
    memory type.  Segments are data-path only — the matching
    :class:`CollOp` request is the control path.
    """

    coll_id: tuple
    round_no: int
    server: int
    client: str
    nbytes: int
    payload: Optional[np.ndarray] = None  # None = phantom
    trace_id: int = -1  # trace correlation (ints survive the wire)
    trace_parent: int = -1
    #: Write-side only, armed fault configs: the sending rank's mailbox,
    #: so the server can ack the segment (and re-ack a replay of an
    #: already-retired round straight from its receive loop).
    reply_to: Any = None

    def wire_bytes(self, costs) -> int:
        return costs.header_bytes + self.nbytes


@dataclass
class CollAck:
    """Per-(round, server) write acknowledgement (fault tolerance).

    Sent server → rank after a collective write round's data has been
    applied, confirming receipt of that rank's :class:`CollSegment`.
    Only emitted when fault injection is armed — the fault-free path
    relies on the composite request's :class:`IOResponse` alone, and
    acks there would perturb the bit-identical baseline.
    """

    coll_id: tuple
    round_no: int
    server: int
    client: str
    trace_id: int = -1
    trace_parent: int = -1

    def wire_bytes(self, costs) -> int:
        return costs.header_bytes


@dataclass
class CollFetch:
    """Read-side retransmit request (fault tolerance).

    A rank whose expected read :class:`CollSegment` timed out asks the
    server to resend it from its retained scatter buffer.  Header-only
    control traffic; armed fault configs only.
    """

    coll_id: tuple
    round_no: int
    server: int
    client: str
    reply_to: Any = None
    trace_id: int = -1
    trace_parent: int = -1

    def wire_bytes(self, costs) -> int:
        return costs.header_bytes


@dataclass
class IORequest:
    """An I/O request to one server.

    Exactly one of ``regions`` (contig / list I/O: the physical regions
    for *this* server, already in stream order), ``window`` (datatype
    I/O: the dataloop plus stream window; the server computes its own
    regions) or ``coll`` (collective datatype I/O: the aggregated
    per-round descriptor) is set.
    """

    handle: int
    is_write: bool
    op_kind: str  # OP_CONTIG | OP_LIST | OP_DTYPE | OP_COLL
    regions: Optional[Regions] = None
    window: Optional[DataloopWindow] = None
    coll: Optional[CollOp] = None
    payload: Optional[np.ndarray] = None  # write data (None = phantom)
    payload_nbytes: int = 0
    op_count: int = 1  # collapsed synchronous ops (sim batching)
    phantom: bool = False  # reads: account sizes, skip real bytes
    cached_dtype: bool = False  # datatype cache hit: ship a handle
    listio_pairs: int = 0  # offset-length pairs carried on the wire
    req_id: int = -1
    reply_to: Any = None
    client: str = ""
    #: Tenant index (``PVFSConfig.tenants``); crosses the wire so the
    #: server's weighted-fair admission can classify the request.  0 is
    #: the default tenant (the only one when tenancy is off).
    tenant: int = 0
    server: int = -1  # destination I/O server index
    #: Tracing (``PVFSConfig.trace``): the I/O job's trace id and the
    #: client-side RPC span id this request belongs to.  Plain ints so
    #: the linkage survives the trip across the simulated wire; ``-1``
    #: (the default) means the request is untraced.
    trace_id: int = -1
    trace_parent: int = -1
    #: Server-side only, never set by clients: the plan computed
    #: eagerly while a collective write round's data segments were
    #: still in flight (``repro.pvfs.pipeline.preplan_collective``).
    #: Consumed (and cleared) by ``CollectiveHandler.plan``.
    preplanned: Any = None

    def validate(self) -> None:
        """Check structural well-formedness (the server's decode stage).

        A malformed request must produce an error response, not kill the
        daemon, so this raises :class:`~repro.pvfs.errors.ProtocolError`
        with a message the server can ship back.
        """
        from .errors import ProtocolError

        if self.op_kind not in OP_KINDS:
            raise ProtocolError(f"unknown op kind {self.op_kind!r}")
        if self.op_kind == OP_DTYPE:
            if self.window is None:
                raise ProtocolError(
                    "datatype request without a dataloop window"
                )
        elif self.op_kind == OP_COLL:
            if self.coll is None or not self.coll.parts:
                raise ProtocolError(
                    "collective request without an aggregated descriptor"
                )
        elif self.regions is None:
            raise ProtocolError(
                f"{self.op_kind} request without an access region list"
            )

    def descriptor_bytes(self, costs) -> int:
        """Wire bytes of the request *description* (excl. payload)."""
        size = costs.header_bytes * self.op_count
        if self.op_kind == OP_LIST:
            size += self.listio_pairs * costs.listio_pair_bytes
        elif self.op_kind == OP_CONTIG:
            size += 16 * self.op_count
        elif self.op_kind == OP_DTYPE:
            if self.cached_dtype:
                # registered dataloop: 8-byte handle + window triple
                size += 32
            else:
                size += self.window.wire_bytes()
        elif self.op_kind == OP_COLL:
            size += self.coll.descriptor_bytes()
        return size

    def wire_bytes(self, costs) -> int:
        # Collective write data travels as CollSegments on the data
        # path; the request itself is control-only either direction.
        if self.op_kind == OP_COLL:
            return self.descriptor_bytes(costs)
        return self.descriptor_bytes(costs) + (
            self.payload_nbytes if self.is_write else 0
        )


@dataclass
class IOResponse:
    req_id: int
    payload: Optional[np.ndarray] = None  # read data stream (None = phantom)
    nbytes: int = 0  # data bytes represented (even when phantom)
    accesses_built: int = 0  # server-side access-list length
    error: Optional[str] = None
    #: Admission control: the server's bounded request queue was full
    #: and the request was not processed — the client should back off
    #: and resend (only possible with ``server_threads > 1``).
    rejected: bool = False
    #: Tracing: copied from the request so the response's network
    #: transfer span joins the same trace, parented under the client's
    #: RPC span (which provably covers the transfer interval).
    trace_id: int = -1
    trace_parent: int = -1

    def wire_bytes(self, costs, is_write: bool) -> int:
        return costs.header_bytes + (0 if is_write else self.nbytes)
