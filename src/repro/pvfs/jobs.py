"""PVFS *job* and *access* structures (paper §3.1, Ligon & Ross [10]).

For every client/server pair involved in an I/O operation, PVFS builds a
``job`` pointing to a list of ``accesses`` — contiguous regions (in
memory on the client, in file on the server) to move over the network.
This is the flattened representation the paper's prototype still builds
from dataloops on both ends (§3.2: "the dataloops are converted into the
job and access structures on servers and clients"); the cost model
charges for exactly these lists.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..regions import Regions
from .distribution import Distribution, ServerSplit

__all__ = ["Job", "ServerPlan", "build_jobs"]


@dataclass
class ServerPlan:
    """The server-side counterpart of a :class:`Job`: the outcome of the
    pipeline's *plan* stage for one request.

    ``regions`` is the access list the storage stage will move,
    ``built``/``scanned`` are the access-construction counters the
    paper's analysis charges for (§3.2/§4.3), and ``proc_cost`` is the
    simulated CPU seconds the construction took.
    """

    regions: Regions
    built: int = 0
    scanned: int = 0
    proc_cost: float = 0.0
    #: CPU seconds of expansion-cache lookup/assembly on a hit.  Kept
    #: separate from ``proc_cost`` so stage accounting is exclusive:
    #: ``proc_cost`` flows into ``StageTimes.plan`` and ``cache_cost``
    #: into ``StageTimes.cache`` — the same second is never charged to
    #: both.  The scheduler's total busy charge is their sum.
    cache_cost: float = 0.0
    #: The expansion cache satisfied (part of) the plan stage.
    cache_hit: bool = False
    #: Optional coalesced region list for the *disk arm* when it differs
    #: from the data-movement order (collective requests union many
    #: ranks' regions: data moves per rank, the arm sweeps the merged
    #: extent).  ``None`` means the storage stage uses ``regions``.
    disk_regions: Regions | None = None


class Job:
    """Accesses one server performs for one client operation."""

    __slots__ = ("client", "server", "handle", "is_write", "split")

    def __init__(
        self,
        client: str,
        server: int,
        handle: int,
        is_write: bool,
        split: ServerSplit,
    ):
        self.client = client
        self.server = server
        self.handle = handle
        self.is_write = is_write
        self.split = split

    @property
    def accesses(self) -> Regions:
        """Physical file regions on the server (the access list)."""
        return self.split.regions

    @property
    def access_count(self) -> int:
        return self.split.regions.count

    @property
    def nbytes(self) -> int:
        return self.split.nbytes

    @property
    def stream_pos(self) -> np.ndarray:
        return self.split.stream_pos

    def __repr__(self) -> str:
        kind = "write" if self.is_write else "read"
        return (
            f"<Job {self.client}->srv{self.server} {kind} "
            f"{self.access_count} accesses, {self.nbytes}B>"
        )


def build_jobs(
    client: str,
    handle: int,
    is_write: bool,
    logical_regions: Regions,
    dist: Distribution,
) -> dict[int, Job]:
    """Split a logical access into per-server jobs (client side)."""
    return {
        server: Job(client, server, handle, is_write, split)
        for server, split in dist.split(logical_regions).items()
    }
