"""Byte-range lock manager.

PVFS itself has no locking (paper §4.1), which is why ROMIO disables
data-sieving *writes* on it.  This manager exists so the sieving write
path can be implemented and tested against a configuration that does
advertise locking (``PVFSConfig(supports_locking=True)``), as the paper
discusses for other file systems — including the serialization of
overlapping writers it warns about, which falls out of the FIFO
conflict queue here.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .errors import LockUnsupported

if TYPE_CHECKING:  # pragma: no cover
    from .system import PVFS

__all__ = ["LockManager", "LockToken"]


class LockToken:
    """A granted byte-range lock."""

    __slots__ = ("handle", "lo", "hi", "owner", "released")

    def __init__(self, handle: int, lo: int, hi: int, owner: str):
        self.handle = handle
        self.lo = lo
        self.hi = hi
        self.owner = owner
        self.released = False

    def overlaps(self, handle: int, lo: int, hi: int) -> bool:
        return handle == self.handle and lo < self.hi and hi > self.lo


class LockManager:
    """Exclusive byte-range locks with FIFO waiting.

    Lives on the metadata server's node; acquiring costs one round trip
    (charged by the caller through ``lock_rpc_time``).
    """

    def __init__(self, system: "PVFS"):
        self.system = system
        self._held: list[LockToken] = []
        self._waiters: list[tuple[LockToken, object]] = []
        self.acquisitions = 0
        self.contentions = 0

    def acquire(self, handle: int, lo: int, hi: int, owner: str):
        """Generator: resolves with a LockToken once granted."""
        if not self.system.config.supports_locking:
            raise LockUnsupported(
                "this file system does not support byte-range locking"
            )
        if hi <= lo:
            raise ValueError("empty lock range")
        env = self.system.env
        token = LockToken(handle, lo, hi, owner)
        if self._conflicts(token) or self._waiters:
            # queue behind existing waiters even if currently free, for
            # FIFO fairness; release() moves us to _held before firing
            self.contentions += 1
            ev = env.event()
            self._waiters.append((token, ev))
            yield ev
        else:
            self._held.append(token)
            self.acquisitions += 1
        return token

    def release(self, token: LockToken) -> None:
        if token.released:
            raise RuntimeError("double release of lock")
        token.released = True
        self._held.remove(token)
        # grant FIFO waiters whose ranges are now free
        remaining = []
        for waiter, ev in self._waiters:
            if not self._conflicts(waiter):
                self._held.append(waiter)
                self.acquisitions += 1
                ev.succeed()
            else:
                remaining.append((waiter, ev))
        self._waiters = remaining

    def _conflicts(self, token: LockToken) -> bool:
        return any(
            h.overlaps(token.handle, token.lo, token.hi) for h in self._held
        )

    @property
    def held_count(self) -> int:
        return len(self._held)
