"""PVFS cluster assembly.

:class:`PVFS` wires together the network, the I/O servers, the metadata
server and a lock manager, and hands out clients.  It also offers a few
non-simulated inspection helpers (``logical_size``, ``read_back``) used
by tests and examples to verify data without perturbing the simulated
clock.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..regions import Regions
from ..simulation import (
    CostModel,
    Environment,
    Network,
    ServerPipelineSummary,
    summarize_servers,
)
from ..faults import NULL_FAULTS, FaultInjector
from ..metrics import NULL_METRICS, MetricsHub
from ..trace import NULL_TRACER, TraceRecorder
from .client import PVFSClient
from .config import PVFSConfig
from .locks import LockManager
from .metadata import MetadataServer
from .server import IOServer

__all__ = ["PVFS"]


class PVFS:
    """A running parallel file system inside a simulation environment."""

    def __init__(
        self,
        env: Environment,
        config: Optional[PVFSConfig] = None,
        costs: Optional[CostModel] = None,
        net: Optional[Network] = None,
        **config_overrides,
    ):
        if config is None:
            config = PVFSConfig(**config_overrides)
        elif config_overrides:
            raise ValueError("pass either config or overrides, not both")
        self.env = env
        self.config = config
        self.costs = costs or CostModel()
        self.net = net or Network(env, self.costs)
        #: Span recorder (``repro.trace``); live only with
        #: ``config.trace``, otherwise the zero-overhead singleton.
        self.tracer = TraceRecorder(env) if config.trace else NULL_TRACER
        self.net.tracer = self.tracer
        #: Metrics hub (``repro.metrics``); live only with
        #: ``config.metrics``, otherwise the zero-overhead singleton.
        self.metrics = (
            MetricsHub(env, config.metrics_interval)
            if config.metrics
            else NULL_METRICS
        )
        self.net.metrics = self.metrics
        #: Fault injector (``repro.faults``); live only with
        #: ``config.faults``, otherwise the disarmed singleton.
        self.faults = (
            FaultInjector(
                env, config.faults, tracer=self.tracer, metrics=self.metrics
            )
            if config.faults is not None
            else NULL_FAULTS
        )
        self.net.faults = self.faults
        #: Shared per-collective failover state (armed fault configs
        #: only): coll_id -> :class:`~repro.pvfs.collective.CollRecovery`.
        #: Ranks on one simulated cluster coordinate re-elections and
        #: the completion gate through it; rank 0 clears the entry at
        #: the collective's closing barrier.
        self.coll_recovery: dict = {}

        self.servers: list[IOServer] = []
        for i in range(config.n_servers):
            node = self.net.node(f"ios{i}")
            mailbox = self.net.mailbox(node, f"iod{i}")
            server = IOServer(self, i, node, mailbox)
            self.servers.append(server)
            env.process(server.run(), name=f"iod{i}")

        meta_node = self.servers[config.metadata_server].node
        meta_mb = self.net.mailbox(meta_node, "mgr")
        self.metadata = MetadataServer(self, meta_mb)
        env.process(self.metadata.run(), name="mgr")

        self.locks = LockManager(self)
        self._clients: list[PVFSClient] = []

        if config.metrics:
            # the sampler snapshots server/NIC state from the engine's
            # clock hook — never from simulation events, so enabling
            # metrics cannot perturb event ordering or timings
            self.metrics.bind(self)
            env.clock_hook = self.metrics.on_clock

    # ------------------------------------------------------------------
    def client(
        self,
        node_name: str,
        name: Optional[str] = None,
        tenant: int = 0,
    ) -> PVFSClient:
        """Create a client on the named node (created if needed).

        ``tenant`` indexes into ``PVFSConfig.tenants`` and is stamped on
        every request the client issues; ignored when tenancy is off.
        """
        node = self.net.node(node_name)
        client = PVFSClient(
            self, node, name or f"c{len(self._clients)}", tenant=tenant
        )
        self._clients.append(client)
        return client

    @property
    def clients(self) -> list[PVFSClient]:
        return list(self._clients)

    # ------------------------------------------------------------------
    # non-simulated inspection helpers (no clock movement)
    # ------------------------------------------------------------------
    def logical_size(self, handle: int) -> int:
        """Current logical file size, computed directly."""
        meta = self.metadata.by_handle.get(handle)
        if meta is None:
            return 0
        size = 0
        for server in self.servers:
            size = max(
                size,
                meta.dist.logical_size_from_local(
                    server.index, server.store.local_size(handle)
                ),
            )
        return size

    def read_back(self, handle: int, offset: int, nbytes: int) -> np.ndarray:
        """Directly read logical bytes (tests/examples verification)."""
        meta = self.metadata.lookup(handle)
        out = np.zeros(nbytes, dtype=np.uint8)
        split = meta.dist.split(Regions.single(offset, nbytes))
        for s, share in split.items():
            data = self.servers[s].store.read_regions(
                handle, share.regions
            )
            Regions(
                share.stream_pos, share.regions.lengths, _trusted=True
            ).scatter(out, data)
        return out

    def write_direct(self, handle: int, offset: int, data) -> None:
        """Directly write logical bytes (test fixture setup)."""
        data = np.asarray(data).view(np.uint8).reshape(-1)
        meta = self.metadata.lookup(handle)
        split = meta.dist.split(Regions.single(offset, data.size))
        for s, share in split.items():
            payload = Regions(
                share.stream_pos, share.regions.lengths, _trusted=True
            ).gather(data)
            self.servers[s].store.write_regions(
                handle, share.regions, payload
            )

    # ------------------------------------------------------------------
    def total_server_stats(self) -> dict[str, int]:
        """Aggregate counters across all I/O servers."""
        out = {
            "requests": 0,
            "ops": 0,
            "accesses_built": 0,
            "regions_scanned": 0,
            "bytes_read": 0,
            "bytes_written": 0,
            "disk_seeks": 0,
        }
        for s in self.servers:
            out["requests"] += s.requests
            out["ops"] += s.ops
            out["accesses_built"] += s.accesses_built
            out["regions_scanned"] += s.regions_scanned
            out["bytes_read"] += s.bytes_read
            out["bytes_written"] += s.bytes_written
            out["disk_seeks"] += s.disk.total_seeks
        return out

    def pipeline_summary(self) -> ServerPipelineSummary:
        """Per-stage (decode/plan/storage/respond) server time, queue
        depths and admission-control rejections across all servers."""
        return summarize_servers(self.servers)
