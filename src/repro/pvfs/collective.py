"""Server-side assembly state and failover plumbing for collective I/O.

A collective write round reaches a server as one aggregated
:class:`~repro.pvfs.protocol.IORequest` (control path, from the
aggregator) plus one :class:`~repro.pvfs.protocol.CollSegment` per
participating rank (data path, straight from each rank).  Control and
data race freely on the wire, so the daemon parks whichever side
arrives first: :class:`CollectiveState` keys both on
``(coll_id, round_no)`` and releases the request to the scheduler the
moment the round's last expected segment is in.

Completed rounds are retained (``keep_done``) so an idempotent resend
of the request — after an admission rejection or a fault-layer drop —
still finds its payload, and (armed fault configs only) so a replayed
write segment can be re-acknowledged and a lost read scatter segment
re-fetched (:class:`~repro.pvfs.protocol.CollFetch`) without charging
the expansion pipeline twice.

:class:`CollRecovery` is the client-side shared state of one
collective's fault story: the surviving-aggregator ladder, handoff
bookkeeping, and the completion gate that keeps every aggregator rank
servicing its mailbox until no re-elected work remains anywhere.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from .protocol import CollOp, CollSegment

__all__ = ["CollectiveState", "CollRecovery", "CollHandoff", "_CollWake"]


class _Round:
    __slots__ = ("segments", "msg", "expected", "resp")

    def __init__(self):
        self.segments: dict[str, "CollSegment"] = {}
        self.msg = None  # parked request message, if any
        self.expected: Optional[frozenset] = None
        self.resp = None  # retained write response (resend replay)


class CollectiveState:
    """Per-server bookkeeping for in-flight collective rounds."""

    def __init__(self, keep_done: int = 4):
        self._rounds: dict[tuple, _Round] = {}
        self._done: dict[tuple, _Round] = {}
        self._done_order: deque = deque()
        self.keep_done = keep_done
        # Read-side retransmit buffer (armed fault configs only):
        # (coll_id, round_no, client) -> the scatter CollSegment, so a
        # CollFetch after a dropped delivery is served from memory
        # instead of re-running the expansion pipeline.
        self._read_cache: dict[tuple, "CollSegment"] = {}
        self._read_order: deque = deque()
        self.keep_reads = 4096

    def _round(self, key: tuple) -> _Round:
        e = self._rounds.get(key)
        if e is None:
            e = self._rounds[key] = _Round()
        return e

    @staticmethod
    def _complete(e: _Round) -> bool:
        return e.expected is not None and e.expected <= e.segments.keys()

    # ------------------------------------------------------------------
    def done_round(self, key: tuple) -> Optional[_Round]:
        """The retained state of an already-served write round, if any."""
        return self._done.get(key)

    def ingest_segment(self, seg: "CollSegment"):
        """File one rank's data segment.

        Returns the parked request *message* when this segment completes
        a waiting round (the caller submits it), else ``None``.  A
        segment replayed for an already-retired round is ignored — the
        caller re-acknowledges it from :meth:`done_round` instead of
        letting a ghost duplicate grow a fresh half-round entry.
        """
        if (seg.coll_id, seg.round_no) in self._done:
            return None
        e = self._round((seg.coll_id, seg.round_no))
        e.segments[seg.client] = seg
        if e.msg is not None and self._complete(e):
            msg, e.msg = e.msg, None
            return msg
        return None

    def park(self, msg, req) -> bool:
        """Try to park a collective write request until its data is in.

        Returns ``True`` when parked; ``False`` when every expected
        segment has already arrived (submit immediately).
        """
        c: "CollOp" = req.coll
        key = (c.coll_id, c.round_no)
        if key in self._done:
            return False  # idempotent resend of a completed round
        e = self._round(key)
        e.expected = frozenset(p.client for p in c.parts)
        if self._complete(e):
            return False
        e.msg = msg
        return True

    # ------------------------------------------------------------------
    def _lookup(self, key: tuple) -> Optional[_Round]:
        e = self._rounds.get(key)
        if e is not None:
            return e
        return self._done.get(key)

    def assemble_payload(self, c: "CollOp") -> Optional[np.ndarray]:
        """Concatenate the round's segment payloads in participant
        order (``None`` when the round is phantom)."""
        e = self._lookup((c.coll_id, c.round_no))
        if e is None:
            raise KeyError(
                f"no assembled segments for collective round {c.coll_id}"
                f"#{c.round_no}"
            )
        payloads = []
        for part in c.parts:
            seg = e.segments[part.client]
            if seg.payload is None:
                return None  # phantom round: account sizes only
            payloads.append(seg.payload)
        if len(payloads) == 1:
            return payloads[0]
        return np.concatenate(payloads)

    def retire(self, coll_id: tuple, round_no: int, resp=None) -> None:
        """Move a served write round to the bounded done-ring.

        ``resp`` (the round's write response) is retained so an
        idempotent request resend is answered by replaying it instead
        of re-running the pipeline.
        """
        key = (coll_id, round_no)
        e = self._rounds.pop(key, None)
        if e is None:
            return
        e.resp = resp
        self._done[key] = e
        self._done_order.append(key)
        while len(self._done_order) > self.keep_done:
            self._done.pop(self._done_order.popleft(), None)

    # ------------------------------------------------------------------
    def cache_read_segment(self, seg: "CollSegment") -> None:
        """Retain one scattered read segment for CollFetch service."""
        key = (seg.coll_id, seg.round_no, seg.client)
        if key not in self._read_cache:
            self._read_order.append(key)
        self._read_cache[key] = seg
        while len(self._read_order) > self.keep_reads:
            self._read_cache.pop(self._read_order.popleft(), None)

    def fetch_read_segment(self, key: tuple) -> Optional["CollSegment"]:
        return self._read_cache.get(key)


class CollHandoff:
    """Mailbox marker: re-elected rounds handed to this rank.

    Dropped straight into the target aggregator's client mailbox (the
    zero-cost shared-state channel — like the client's own timeout
    markers, it models a local failure-detector signal, not wire
    traffic).  The receiving rank rebuilds and re-issues the composite
    requests for ``rounds`` on ``server``.
    """

    __slots__ = ("rec", "server", "rounds", "from_agg")

    def __init__(self, rec: "CollRecovery", server: int, rounds, from_agg: int):
        self.rec = rec
        self.server = server
        self.rounds = tuple(rounds)
        self.from_agg = from_agg


class _CollWake:
    """Mailbox marker: re-check the collective completion gate."""

    __slots__ = ("rec",)

    def __init__(self, rec: "CollRecovery"):
        self.rec = rec


class CollRecovery:
    """Shared per-collective failover state (one instance per coll_id).

    Lives in ``PVFS.coll_recovery`` so every participating rank's
    client sees the same aggregator death list, handoff counters and
    completion gate.  Pure shared memory — ranks on one simulated
    cluster coordinate through it exactly like the communicator's
    barrier state.
    """

    def __init__(
        self,
        coll_id: tuple,
        n_agg: int,
        agg_ranks: tuple,
        build_request: Callable[[int, int], Any],
    ):
        self.coll_id = coll_id
        self.n_agg = n_agg
        self.agg_ranks = tuple(agg_ranks)
        #: ``build_request(server, round_no) -> IORequest`` — rebuilds
        #: the aggregated descriptor for one (server, round) with views
        #: on the wire (the new aggregator never shipped them before).
        self.build_request = build_request
        #: Aggregator slots whose requests timed out past the ladder.
        self.dead: set[int] = set()
        #: Aggregator slot -> that rank's client mailbox (registered by
        #: every aggregator before any request is posted, so a handoff
        #: target is always addressable).
        self.mailboxes: dict[int, Any] = {}
        #: Handoffs issued but not yet fully re-served.
        self.pending_handoffs = 0
        #: Aggregator ranks that reached the completion gate.
        self.arrived = 0
        #: Gate waiters: client name -> mailbox to drop a wake into.
        self.waiting: dict[str, Any] = {}
        self.done = False

    def elect(self, from_agg: int) -> Optional[int]:
        """The next surviving aggregator slot after ``from_agg``.

        Deterministic: candidates are scanned in ring order from the
        failed slot, so every rank derives the same winner without any
        extra communication.  ``None`` when every slot is dead.
        """
        for k in range(1, self.n_agg):
            cand = (from_agg + k) % self.n_agg
            if cand not in self.dead:
                return cand
        return None

    # ------------------------------------------------------------------
    def arrive(self, client: str, mailbox) -> None:
        self.arrived += 1
        self.waiting[client] = mailbox
        self.maybe_release()

    def maybe_release(self) -> None:
        """Release the gate when every aggregator arrived and no
        re-elected work is still outstanding anywhere."""
        if self.done:
            return
        if self.arrived >= self.n_agg and self.pending_handoffs == 0:
            self.done = True
            for mb in self.waiting.values():
                mb._store.put(_CollWake(self))
