"""Server-side assembly state for collective datatype I/O.

A collective write round reaches a server as one aggregated
:class:`~repro.pvfs.protocol.IORequest` (control path, from the
aggregator) plus one :class:`~repro.pvfs.protocol.CollSegment` per
participating rank (data path, straight from each rank).  Control and
data race freely on the wire, so the daemon parks whichever side
arrives first: :class:`CollectiveState` keys both on
``(coll_id, round_no)`` and releases the request to the scheduler the
moment the round's last expected segment is in.

Completed rounds are retained briefly (``keep_done``) so an idempotent
resend of the request — after an admission rejection or a fault-layer
drop — still finds its payload.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from .protocol import CollOp, CollSegment

__all__ = ["CollectiveState"]


class _Round:
    __slots__ = ("segments", "msg", "expected")

    def __init__(self):
        self.segments: dict[str, "CollSegment"] = {}
        self.msg = None  # parked request message, if any
        self.expected: Optional[frozenset] = None


class CollectiveState:
    """Per-server bookkeeping for in-flight collective rounds."""

    def __init__(self, keep_done: int = 4):
        self._rounds: dict[tuple, _Round] = {}
        self._done: deque = deque()
        self.keep_done = keep_done

    def _round(self, key: tuple) -> _Round:
        e = self._rounds.get(key)
        if e is None:
            e = self._rounds[key] = _Round()
        return e

    @staticmethod
    def _complete(e: _Round) -> bool:
        return e.expected is not None and e.expected <= e.segments.keys()

    # ------------------------------------------------------------------
    def ingest_segment(self, seg: "CollSegment"):
        """File one rank's data segment.

        Returns the parked request *message* when this segment completes
        a waiting round (the caller submits it), else ``None``.
        """
        e = self._round((seg.coll_id, seg.round_no))
        e.segments[seg.client] = seg
        if e.msg is not None and self._complete(e):
            msg, e.msg = e.msg, None
            return msg
        return None

    def park(self, msg, req) -> bool:
        """Try to park a collective write request until its data is in.

        Returns ``True`` when parked; ``False`` when every expected
        segment has already arrived (submit immediately).
        """
        c: "CollOp" = req.coll
        key = (c.coll_id, c.round_no)
        for done_key, done_e in self._done:
            if done_key == key:
                return False  # idempotent resend of a completed round
        e = self._round(key)
        e.expected = frozenset(p.client for p in c.parts)
        if self._complete(e):
            return False
        e.msg = msg
        return True

    # ------------------------------------------------------------------
    def _lookup(self, key: tuple) -> Optional[_Round]:
        e = self._rounds.get(key)
        if e is not None:
            return e
        for done_key, done_e in self._done:
            if done_key == key:
                return done_e
        return None

    def assemble_payload(self, c: "CollOp") -> Optional[np.ndarray]:
        """Concatenate the round's segment payloads in participant
        order (``None`` when the round is phantom)."""
        e = self._lookup((c.coll_id, c.round_no))
        if e is None:
            raise KeyError(
                f"no assembled segments for collective round {c.coll_id}"
                f"#{c.round_no}"
            )
        payloads = []
        for part in c.parts:
            seg = e.segments[part.client]
            if seg.payload is None:
                return None  # phantom round: account sizes only
            payloads.append(seg.payload)
        if len(payloads) == 1:
            return payloads[0]
        return np.concatenate(payloads)

    def retire(self, coll_id: tuple, round_no: int) -> None:
        """Move a served write round to the bounded done-ring."""
        key = (coll_id, round_no)
        e = self._rounds.pop(key, None)
        if e is None:
            return
        self._done.append((key, e))
        while len(self._done) > self.keep_done:
            self._done.popleft()
