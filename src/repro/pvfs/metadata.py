"""Metadata server.

Owns the namespace (path → handle) and per-file striping parameters.
As in PVFS, clients talk to it only at open/stat time; all data traffic
goes directly to the I/O servers afterwards.  ``stat`` queries every
I/O server for its local file size and inverts the distribution mapping
to compute the logical EOF, which is how PVFS 1.x derived file sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from .distribution import Distribution
from .protocol import MetaRequest, MetaResponse

if TYPE_CHECKING:  # pragma: no cover
    from .system import PVFS

__all__ = ["FileMeta", "MetadataServer"]


@dataclass
class FileMeta:
    path: str
    handle: int
    dist: Distribution


class MetadataServer:
    """The manager daemon, co-located with one I/O server's node."""

    def __init__(self, system: "PVFS", mailbox):
        self.system = system
        self.mailbox = mailbox
        self.files: dict[str, FileMeta] = {}
        self.by_handle: dict[int, FileMeta] = {}
        self._next_handle = 1000
        self.requests_served = 0

    # ------------------------------------------------------------------
    # direct (non-simulated) helpers used by servers and tests
    # ------------------------------------------------------------------
    def lookup(self, handle: int) -> FileMeta:
        return self.by_handle[handle]

    def create_now(self, path: str) -> FileMeta:
        """Create a file without simulated traffic (setup convenience)."""
        meta = self.files.get(path)
        if meta is None:
            cfg = self.system.config
            meta = FileMeta(
                path,
                self._next_handle,
                Distribution(cfg.n_servers, cfg.strip_size),
            )
            self._next_handle += 1
            self.files[path] = meta
            self.by_handle[meta.handle] = meta
        return meta

    # ------------------------------------------------------------------
    # simulated request loop
    # ------------------------------------------------------------------
    def run(self):
        env = self.system.env
        net = self.system.net
        costs = self.system.costs
        self._backlog = []
        while True:
            if self._backlog:
                msg = self._backlog.pop(0)
            else:
                msg = yield self.mailbox.get()
            req: MetaRequest = msg.payload
            self.requests_served += 1
            yield env.timeout(costs.fs_op_server_cost)
            if req.op == "open":
                resp = self._open(req)
            elif req.op == "stat":
                resp = yield from self._stat(req)
            elif req.op == "unlink":
                resp = self._unlink(req)
            else:
                resp = MetaResponse(req.req_id, error=f"bad op {req.op!r}")
            yield from net.send(
                self.mailbox,
                req.reply_to,
                costs.header_bytes,
                payload=resp,
            )

    def _open(self, req: MetaRequest) -> MetaResponse:
        meta = self.files.get(req.path)
        if meta is None:
            if not req.create:
                return MetaResponse(
                    req.req_id, error=f"no such file: {req.path}"
                )
            meta = self.create_now(req.path)
        return MetaResponse(
            req.req_id,
            handle=meta.handle,
            size=self.system.logical_size(meta.handle),
            n_servers=meta.dist.n_servers,
            strip_size=meta.dist.strip_size,
        )

    def _stat(self, req: MetaRequest):
        meta = self.by_handle.get(req.handle)
        if meta is None:
            return MetaResponse(req.req_id, error="bad handle")
        # Query each I/O server for its local size over the wire.
        env = self.system.env
        net = self.system.net
        costs = self.system.costs
        size = 0
        for server in self.system.servers:
            yield from net.send(
                self.mailbox,
                server.mailbox,
                costs.header_bytes,
                payload=("localsize", req.handle, self.mailbox),
            )
            # Other meta requests may land while we wait for the
            # server's reply (an int); stash them for the main loop.
            while True:
                msg = yield self.mailbox.get()
                if isinstance(msg.payload, MetaRequest):
                    self._backlog.append(msg)
                    continue
                break
            local = msg.payload
            size = max(
                size, meta.dist.logical_size_from_local(server.index, local)
            )
        return MetaResponse(req.req_id, handle=meta.handle, size=size)

    def _unlink(self, req: MetaRequest) -> MetaResponse:
        meta = self.files.pop(req.path, None)
        if meta is None:
            return MetaResponse(req.req_id, error=f"no such file: {req.path}")
        self.by_handle.pop(meta.handle, None)
        for server in self.system.servers:
            server.store.remove(meta.handle)
        return MetaResponse(req.req_id, handle=meta.handle)
