"""File-system configuration."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..faults import FaultConfig

__all__ = ["PVFSConfig", "TenantConfig"]


@dataclass(frozen=True)
class TenantConfig:
    """One tenant of a multi-tenant deployment.

    Requests are tagged with their tenant's index in
    ``PVFSConfig.tenants`` and classified into per-tenant admission
    queues at each I/O daemon, served by deficit round-robin: tenant
    *i*'s long-run share of admitted bytes during contention is
    ``weight_i / sum(weights)``.
    """

    #: Label used in metrics (`repro_tenant_*`), traces, and reports.
    name: str
    #: Relative weighted-fair share (deficit round-robin quantum scale).
    weight: float = 1.0
    #: Optional token-bucket rate limit, bytes of admitted I/O per
    #: simulated second.  ``None`` — no limit (weighted share only).
    rate_limit: Optional[float] = None
    #: Token-bucket depth in bytes; bounds how far a quiet tenant can
    #: burst above ``rate_limit``.  Defaults to 64 KiB or one second of
    #: tokens, whichever is larger.
    burst_bytes: Optional[int] = None

    def __post_init__(self):
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if not (self.weight > 0):
            raise ValueError("tenant weight must be positive")
        if self.rate_limit is not None and not (self.rate_limit > 0):
            raise ValueError("tenant rate_limit must be positive")
        if self.burst_bytes is not None and self.burst_bytes < 1:
            raise ValueError("tenant burst_bytes must be positive")

    @property
    def burst(self) -> float:
        """Effective token-bucket depth in bytes."""
        if self.burst_bytes is not None:
            return float(self.burst_bytes)
        if self.rate_limit is None:
            return float("inf")
        return max(65536.0, self.rate_limit)


@dataclass(frozen=True)
class PVFSConfig:
    """Static parameters of a PVFS deployment.

    Defaults follow the paper's benchmark configuration (§4.1): 16 I/O
    servers, 64 KiB strips (1 MiB stripe across all servers), one of
    the I/O server nodes doubling as the metadata server, list I/O
    bounded at 64 regions per request, and no file locking (which is
    why ROMIO cannot do data-sieving *writes* on PVFS).
    """

    #: Number of I/O servers.
    n_servers: int = 16
    #: Strip size in bytes (contiguous run per server per stripe).
    strip_size: int = 65536
    #: Index of the I/O server whose node hosts the metadata server.
    metadata_server: int = 0
    #: Maximum offset–length pairs per list I/O request (paper §2.4:
    #: "in our implementation by a factor of 64").
    list_io_max_regions: int = 64
    #: Maximum regions a server materializes per processing batch while
    #: expanding a dataloop (partial-processing bound, §3.2).
    dataloop_batch_regions: int = 65536
    #: Full-featured datatype I/O (the PVFS2 forecast of §5): servers
    #: and clients stream directly from the dataloop instead of first
    #: materializing job/access lists.  Changes timing, never results.
    direct_dataloop: bool = False
    #: Datatype caching (§5, "similar to that seen in some remote
    #: memory access implementations"): clients cache converted
    #: dataloops and their expansions, and servers remember dataloops
    #: they have seen, so repeated operations skip the per-operation
    #: conversion cost and ship an 8-byte handle instead of the
    #: serialized dataloop.  Changes timing and wire sizes, never
    #: results.
    datatype_cache: bool = False
    #: Server-side dataloop expansion cache: each I/O daemon memoizes
    #: the per-server splits (physical regions + stream positions) its
    #: dataloop expansions produce, keyed by loop fingerprint +
    #: stripe-normalized displacement + window, exploiting the
    #: lcm(extent, stripe) periodicity of round-robin striping.  A hit
    #: charges ``server_cache_hit_cost`` instead of the per-region scan
    #: cost.  Changes timing, never results; ``False`` reproduces the
    #: uncached expansion bit for bit.
    expand_cache: bool = True
    #: Bound on total regions held across one server's cache entries
    #: (one region = three int64 words).
    expand_cache_max_regions: int = 1_048_576
    #: Largest per-period region count the cache will store as a
    #: reusable period entry (periods beyond this fall back to exact
    #: per-window entries).
    expand_cache_period_regions: int = 262_144
    #: Worker threads per I/O daemon.  ``1`` (default) is the paper's
    #: single-threaded iod: requests serialize through one loop and the
    #: CPU work of read-side access-list construction stalls the
    #: transmit pump (§4.3).  ``N > 1`` models a modern multi-threaded
    #: server: plan and storage stages of distinct requests overlap (up
    #: to N at once, disk arm still serialized) and a dedicated network
    #: thread keeps pumping responses.  Changes timing, never results.
    server_threads: int = 1
    #: Bound on requests admitted per server (queued + in service) when
    #: ``server_threads > 1``.  Beyond it the server rejects the request
    #: outright and the client backs off and resends (admission control
    #: / backpressure).  Ignored in single-threaded mode, where the
    #: paper's unbounded mailbox queueing is preserved.
    server_queue_depth: int = 64
    #: Client back-off before resending a rejected request (seconds).
    server_retry_backoff: float = 2.0e-3
    #: End-to-end request tracing (``repro.trace``): every I/O job gets
    #: a trace id that follows it from the MPI-IO entry point through
    #: the client, across the simulated network, and through every
    #: server pipeline stage; spans collect in the file system's
    #: :class:`~repro.trace.TraceRecorder` for Chrome/Perfetto export.
    #: Recording is purely observational — enabling it never moves the
    #: simulated clock, so timings and counters are bit-identical with
    #: tracing on or off.  Off by default (zero overhead: every
    #: instrumentation site is a single attribute test).
    trace: bool = False
    #: Metrics collection (``repro.metrics``): counters, latency
    #: histograms per pipeline stage, and a periodic sampler that
    #: snapshots queue depths, cache hit rates, bytes in flight, and
    #: NIC utilization into time series keyed to the simulated clock.
    #: Like tracing, collection is purely observational — the sampler
    #: rides the engine's clock hook and never creates events, so
    #: metrics-on runs are bit-identical to metrics-off.  Off by
    #: default (every site is a single attribute test).
    metrics: bool = False
    #: Sampling cadence of the metrics time series, in simulated
    #: seconds (default 1 ms; typical paper-scale runs span tens of
    #: milliseconds to seconds).
    metrics_interval: float = 1e-3
    #: Deterministic fault injection (``repro.faults``): a
    #: :class:`~repro.faults.FaultConfig` arms seeded disk
    #: slowdown/stall, message drop/duplication and server-crash
    #: injection, plus the client's timeout + exponential-backoff
    #: failover path.  Every fault decision is drawn from counter-keyed
    #: streams seeded by ``FaultConfig.seed`` (never the wall clock),
    #: so a (workload, seed, fault config) triple replays bit-for-bit.
    #: ``None`` (default) disarms the machinery entirely and is
    #: float-equality identical to a build without it.
    faults: Optional[FaultConfig] = None
    #: Multi-tenant weighted-fair admission (``None`` — off): a tuple
    #: of :class:`TenantConfig`.  When set, each I/O daemon classifies
    #: incoming requests by their tenant id into per-tenant queues and
    #: admits them by deficit round-robin (weights), optionally paced
    #: by per-tenant token buckets (``rate_limit``), with starvation
    #: accounting.  ``None`` preserves the paper's FIFO mailbox
    #: admission bit for bit.
    tenants: Optional[tuple[TenantConfig, ...]] = None
    #: Whether byte-range locking is available (PVFS: no).
    supports_locking: bool = False
    #: Collapse runs of consecutive synchronous requests from one
    #: client to the same server set into one simulated exchange
    #: (preserves per-op cost accounting; see DESIGN.md §5).
    sim_batching: bool = True

    def __post_init__(self):
        if self.n_servers < 1:
            raise ValueError("need at least one I/O server")
        if self.strip_size < 1:
            raise ValueError("strip_size must be positive")
        if not (0 <= self.metadata_server < self.n_servers):
            raise ValueError("metadata_server out of range")
        if self.list_io_max_regions < 1:
            raise ValueError("list_io_max_regions must be positive")
        if self.expand_cache_max_regions < 1:
            raise ValueError("expand_cache_max_regions must be positive")
        if self.expand_cache_period_regions < 1:
            raise ValueError("expand_cache_period_regions must be positive")
        if self.server_threads < 1:
            raise ValueError("server_threads must be positive")
        if self.server_queue_depth < self.server_threads:
            raise ValueError(
                "server_queue_depth must be at least server_threads"
            )
        if self.server_retry_backoff < 0:
            raise ValueError("server_retry_backoff must be non-negative")
        if self.metrics_interval <= 0:
            raise ValueError("metrics_interval must be positive")
        if self.tenants is not None:
            if not isinstance(self.tenants, tuple) or not self.tenants:
                raise ValueError(
                    "tenants must be None or a non-empty tuple of "
                    "TenantConfig"
                )
            for t in self.tenants:
                if not isinstance(t, TenantConfig):
                    raise ValueError(
                        "tenants entries must be TenantConfig instances"
                    )
            names = [t.name for t in self.tenants]
            if len(set(names)) != len(names):
                raise ValueError("tenant names must be unique")
        if self.faults is not None and not isinstance(
            self.faults, FaultConfig
        ):
            raise ValueError("faults must be a FaultConfig or None")
        if self.faults is not None:
            for s, _t0, _t1 in self.faults.server_crashes:
                if s >= self.n_servers:
                    raise ValueError(
                        f"crash window names server {s} but the file "
                        f"system has {self.n_servers}"
                    )
