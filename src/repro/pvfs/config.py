"""File-system configuration."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PVFSConfig"]


@dataclass(frozen=True)
class PVFSConfig:
    """Static parameters of a PVFS deployment.

    Defaults follow the paper's benchmark configuration (§4.1): 16 I/O
    servers, 64 KiB strips (1 MiB stripe across all servers), one of
    the I/O server nodes doubling as the metadata server, list I/O
    bounded at 64 regions per request, and no file locking (which is
    why ROMIO cannot do data-sieving *writes* on PVFS).
    """

    #: Number of I/O servers.
    n_servers: int = 16
    #: Strip size in bytes (contiguous run per server per stripe).
    strip_size: int = 65536
    #: Index of the I/O server whose node hosts the metadata server.
    metadata_server: int = 0
    #: Maximum offset–length pairs per list I/O request (paper §2.4:
    #: "in our implementation by a factor of 64").
    list_io_max_regions: int = 64
    #: Maximum regions a server materializes per processing batch while
    #: expanding a dataloop (partial-processing bound, §3.2).
    dataloop_batch_regions: int = 65536
    #: Full-featured datatype I/O (the PVFS2 forecast of §5): servers
    #: and clients stream directly from the dataloop instead of first
    #: materializing job/access lists.  Changes timing, never results.
    direct_dataloop: bool = False
    #: Datatype caching (§5, "similar to that seen in some remote
    #: memory access implementations"): clients cache converted
    #: dataloops and their expansions, and servers remember dataloops
    #: they have seen, so repeated operations skip the per-operation
    #: conversion cost and ship an 8-byte handle instead of the
    #: serialized dataloop.  Changes timing and wire sizes, never
    #: results.
    datatype_cache: bool = False
    #: Whether byte-range locking is available (PVFS: no).
    supports_locking: bool = False
    #: Collapse runs of consecutive synchronous requests from one
    #: client to the same server set into one simulated exchange
    #: (preserves per-op cost accounting; see DESIGN.md §5).
    sim_batching: bool = True

    def __post_init__(self):
        if self.n_servers < 1:
            raise ValueError("need at least one I/O server")
        if self.strip_size < 1:
            raise ValueError("strip_size must be positive")
        if not (0 <= self.metadata_server < self.n_servers):
            raise ValueError("metadata_server out of range")
        if self.list_io_max_regions < 1:
            raise ValueError("list_io_max_regions must be positive")
