"""Round-robin striping distribution (PVFS's default and only
distribution in 1.5.x).

Logical byte ``x`` lives in global strip ``k = x // strip_size``, on
server ``k % n_servers``, at physical offset
``(k // n_servers) * strip_size + x % strip_size`` within that server's
local file.  All mappings here are vectorized over region sets.
"""

from __future__ import annotations

import numpy as np

from ..regions import Regions

__all__ = ["Distribution", "ServerSplit"]

_I64 = np.int64


class ServerSplit:
    """One server's share of an access.

    Attributes
    ----------
    regions:
        Physical regions on the server's local file, ordered by the
        position of their data in the request's packed stream.
    stream_pos:
        For each region, the byte position of its data within the
        request's packed stream.
    """

    __slots__ = ("server", "regions", "stream_pos")

    def __init__(self, server: int, regions: Regions, stream_pos: np.ndarray):
        self.server = server
        self.regions = regions
        self.stream_pos = stream_pos

    @property
    def nbytes(self) -> int:
        return self.regions.total_bytes

    def stream_regions(self) -> Regions:
        """Regions into the packed stream (for gather/scatter)."""
        return Regions(self.stream_pos, self.regions.lengths, _trusted=True)

    def __eq__(self, other) -> bool:
        if not isinstance(other, ServerSplit):
            return NotImplemented
        return (
            self.server == other.server
            and self.regions == other.regions
            and np.array_equal(self.stream_pos, other.stream_pos)
        )

    def __repr__(self) -> str:
        return (
            f"<ServerSplit srv={self.server} n={self.regions.count} "
            f"bytes={self.nbytes}>"
        )


class Distribution:
    """Striping arithmetic for one file layout."""

    __slots__ = ("n_servers", "strip_size")

    def __init__(self, n_servers: int, strip_size: int):
        if n_servers < 1 or strip_size < 1:
            raise ValueError("invalid distribution parameters")
        self.n_servers = n_servers
        self.strip_size = strip_size

    # ------------------------------------------------------------------
    # scalar mappings
    # ------------------------------------------------------------------
    def server_of(self, offset: int) -> int:
        return (offset // self.strip_size) % self.n_servers

    def logical_to_physical(self, offset: int) -> int:
        k = offset // self.strip_size
        return (k // self.n_servers) * self.strip_size + offset % self.strip_size

    def physical_to_logical(self, server: int, phys: int) -> int:
        j = phys // self.strip_size
        k = j * self.n_servers + server
        return k * self.strip_size + phys % self.strip_size

    def logical_size_from_local(self, server: int, local_size: int) -> int:
        """Logical file size implied by a server's local file size."""
        if local_size <= 0:
            return 0
        return self.physical_to_logical(server, local_size - 1) + 1

    # ------------------------------------------------------------------
    # vectorized region splitting
    # ------------------------------------------------------------------
    def split(self, regions: Regions) -> dict[int, ServerSplit]:
        """Split a logical access among servers.

        The input's sequence order is the packed-stream order; each
        server's share preserves that order and records where each of
        its pieces sits in the stream.
        """
        if not regions.count:
            return {}
        S = _I64(self.strip_size)
        n = self.n_servers
        offs = regions.offsets
        lens = regions.lengths
        if int(offs.min()) < 0:
            raise ValueError("negative file offset in access")

        stream_starts = np.concatenate(
            ([0], np.cumsum(lens)[:-1])
        ).astype(_I64, copy=False)

        k0 = offs // S
        k1 = (offs + lens - 1) // S
        counts = (k1 - k0 + 1).astype(_I64)
        total = int(counts.sum())

        rid = np.repeat(np.arange(regions.count, dtype=_I64), counts)
        cum = np.concatenate(([0], np.cumsum(counts)[:-1])).astype(_I64)
        intra = np.arange(total, dtype=_I64) - np.repeat(cum, counts)
        k = k0[rid] + intra

        r_off = offs[rid]
        r_end = r_off + lens[rid]
        sub_start = np.maximum(r_off, k * S)
        sub_end = np.minimum(r_end, (k + 1) * S)
        sub_len = sub_end - sub_start
        spos = stream_starts[rid] + (sub_start - r_off)
        server = (k % n).astype(_I64)
        phys = (k // n) * S + (sub_start - k * S)

        order = np.argsort(server, kind="stable")
        server_sorted = server[order]
        bounds = np.searchsorted(server_sorted, np.arange(n + 1, dtype=_I64))

        out: dict[int, ServerSplit] = {}
        for s in range(n):
            lo, hi = int(bounds[s]), int(bounds[s + 1])
            if lo == hi:
                continue
            sel = order[lo:hi]
            out[s] = ServerSplit(
                s,
                Regions(phys[sel], sub_len[sel], _trusted=True),
                spos[sel],
            )
        return out

    def server_regions(self, regions: Regions, server: int) -> ServerSplit:
        """Just one server's share (what an I/O server itself computes).

        Vectorized directly over the strips congruent to ``server`` so a
        server scanning a shipped dataloop never materializes other
        servers' pieces.
        """
        empty = ServerSplit(
            server, Regions.empty(), np.empty(0, dtype=_I64)
        )
        if not regions.count:
            return empty
        S = _I64(self.strip_size)
        n = self.n_servers
        offs = regions.offsets
        lens = regions.lengths
        stream_starts = np.concatenate(
            ([0], np.cumsum(lens)[:-1])
        ).astype(_I64, copy=False)

        k0 = offs // S
        k1 = (offs + lens - 1) // S
        # first strip >= k0 owned by `server`
        ka = k0 + ((server - k0) % n)
        counts = np.maximum((k1 - ka) // n + 1, 0)
        counts[ka > k1] = 0
        total = int(counts.sum())
        if total == 0:
            return empty
        keep = counts > 0
        ridx = np.flatnonzero(keep)
        countsk = counts[ridx]
        rid = np.repeat(ridx, countsk)
        cum = np.concatenate(([0], np.cumsum(countsk)[:-1])).astype(_I64)
        intra = np.arange(total, dtype=_I64) - np.repeat(cum, countsk)
        k = ka[rid] + intra * n

        r_off = offs[rid]
        r_end = r_off + lens[rid]
        sub_start = np.maximum(r_off, k * S)
        sub_end = np.minimum(r_end, (k + 1) * S)
        spos = stream_starts[rid] + (sub_start - r_off)
        phys = (k // n) * S + (sub_start - k * S)
        return ServerSplit(
            server,
            Regions(phys, sub_end - sub_start, _trusted=True),
            spos,
        )
