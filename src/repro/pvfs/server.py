"""PVFS I/O server (iod).

The daemon is a receive loop feeding a staged request pipeline
(decode → plan → storage → respond; see :mod:`repro.pvfs.pipeline`).
Request kinds dispatch through the pluggable handler registry, and a
scheduler chosen by ``PVFSConfig.server_threads`` decides how stages
interleave across requests:

* ``server_threads=1`` (default) — the paper's single-threaded loop:
  requests serialize, and the asymmetry between read and write region
  processing (reads: on the critical path before data can flow;
  writes: hidden behind sink-side buffering) produces the 3-D block
  read decline of paper §4.3;
* ``server_threads=N`` — a multi-threaded daemon with a bounded
  admission queue and overlapped plan/storage stages.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..simulation.stats import StageTimes
from ..storage import BlockStore, DiskModel
from .collective import CollectiveState
from .expand_cache import ExpansionCache
from .pipeline import TenantAdmission, make_scheduler, preplan_collective
from .protocol import OP_COLL, CollSegment, IORequest

if TYPE_CHECKING:  # pragma: no cover
    from .system import PVFS

__all__ = ["IOServer"]


class IOServer:
    """One I/O daemon with its local store and disk."""

    def __init__(self, system: "PVFS", index: int, node, mailbox):
        self.system = system
        self.index = index
        self.node = node
        self.mailbox = mailbox
        self.store = BlockStore()
        self.disk = DiskModel(system.costs)
        cfg = system.config
        self.expand_cache = (
            ExpansionCache(
                cfg.expand_cache_max_regions,
                cfg.expand_cache_period_regions,
            )
            if cfg.expand_cache
            else None
        )
        self.scheduler = make_scheduler(self)
        #: Collective-round assembly (segment/request rendezvous).
        self.coll = CollectiveState()
        #: Weighted-fair admission (``PVFSConfig.tenants``); ``None``
        #: keeps the paper's FIFO mailbox admission bit for bit.
        self.admission = (
            TenantAdmission(system.env, cfg.tenants)
            if cfg.tenants is not None
            else None
        )
        # counters
        self.requests = 0
        self.ops = 0
        self.accesses_built = 0
        self.regions_scanned = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.stage_times = StageTimes()

    # ------------------------------------------------------------------
    def backlog(self) -> int:
        """Requests waiting to be served: undrained mailbox messages
        plus anything parked in the per-tenant admission queues."""
        depth = len(self.mailbox)
        if self.admission is not None:
            depth += self.admission.queued
        return depth

    def queue_depth(self) -> int:
        """Requests waiting in the mailbox plus any admitted in flight.

        Pure observation (no clock movement) — the metrics sampler
        calls this from the engine clock hook.
        """
        depth = self.backlog()
        if self.scheduler.concurrent:
            depth += self.scheduler.inflight
        return depth

    # ------------------------------------------------------------------
    def record_plan(self, plan) -> None:
        """Account a finished plan stage (counters + cache snapshot)."""
        self.accesses_built += plan.built
        self.regions_scanned += plan.scanned
        cache = self.expand_cache
        if cache is not None:
            st = self.stage_times
            st.cache_hits = cache.hits
            st.cache_misses = cache.misses
            st.cache_evictions = cache.evictions
            st.cache_regions_held = cache.regions_held
            st.cache_bytes_held = cache.bytes_held

    # ------------------------------------------------------------------
    def _preplan(self, req: IORequest):
        """Eagerly decode+plan a just-parked collective write round.

        Single-threaded daemons do the work inline (it is daemon CPU,
        exactly like any other stage); threaded daemons hand it to a
        pool worker so the dispatcher keeps draining the mailbox.
        """
        if self.scheduler.concurrent:
            self.system.env.process(
                self._preplan_worker(req),
                name=f"iod{self.index}.preplan{req.req_id}",
            )
            return
        yield from preplan_collective(self, req)

    def _preplan_worker(self, req: IORequest):
        sched = self.scheduler
        yield sched.threads.request()
        try:
            # the round may have completed (and been planned the slow
            # way) while this worker waited for a thread
            if req.preplanned is None:
                yield from preplan_collective(self, req)
        finally:
            sched.threads.release()

    # ------------------------------------------------------------------
    def run(self):
        if self.admission is not None:
            yield from self._run_tenanted()
            return
        env = self.system.env
        net = self.system.net
        costs = self.system.costs
        while True:
            msg = yield self.mailbox.get()
            payload = msg.payload
            if isinstance(payload, tuple) and payload[0] == "localsize":
                _, handle, reply_to = payload
                yield env.timeout(costs.fs_op_server_cost)
                yield from net.send(
                    self.mailbox,
                    reply_to,
                    costs.header_bytes,
                    payload=self.store.local_size(handle),
                )
                continue
            if isinstance(payload, CollSegment):
                # collective data path: file the segment; when it
                # completes a parked round, release that request
                yield env.timeout(costs.per_message_cpu)
                ready = self.coll.ingest_segment(payload)
                if ready is not None:
                    queue_wait = 0.0
                    if self.system.tracer.enabled or self.system.metrics.enabled:
                        queue_wait = env.now - ready.t_enqueued
                    yield from self.scheduler.submit(ready.payload, queue_wait)
                continue
            req: IORequest = payload
            faults = self.system.faults
            if faults.enabled and faults.server_down(self.index):
                # crashed daemon: the request is silently discarded —
                # the client's RPC timer is the only recovery path
                faults.crash_drop(self.index, req)
                continue
            if (
                req.op_kind == OP_COLL
                and req.is_write
                and self.coll.park(msg, req)
            ):
                # collective write: plan the round now (the control
                # request outruns the data), then wait for its segments
                yield from self._preplan(req)
                continue
            queue_wait = 0.0
            if self.system.tracer.enabled or self.system.metrics.enabled:
                queue_wait = env.now - msg.t_enqueued
            # the scheduler owns error containment: a malformed or
            # failing request becomes an error response, never a dead
            # daemon
            yield from self.scheduler.submit(req, queue_wait)

    def _run_tenanted(self):
        """Receive loop with weighted-fair admission between mailbox
        and scheduler.

        One mailbox wakeup absorbs the whole backlog (a batched drain,
        no per-message event hop), control messages are handled as they
        arrive, and I/O requests are filed into per-tenant queues; the
        :class:`~repro.pvfs.pipeline.TenantAdmission` rotation then
        decides service order.  A ``sleep`` verdict (all backlogged
        tenants token-blocked) parks the daemon until the earliest
        bucket refill — new arrivals during the nap are drained on the
        next pass.
        """
        env = self.system.env
        net = self.system.net
        costs = self.system.costs
        adm = self.admission
        mailbox = self.mailbox
        while True:
            if adm.queued == 0 and len(mailbox) == 0:
                msg = yield mailbox.get()
                batch = [msg]
                batch.extend(mailbox.drain())
            else:
                batch = mailbox.drain()
            for msg in batch:
                payload = msg.payload
                if isinstance(payload, tuple) and payload[0] == "localsize":
                    _, handle, reply_to = payload
                    yield env.timeout(costs.fs_op_server_cost)
                    yield from net.send(
                        self.mailbox,
                        reply_to,
                        costs.header_bytes,
                        payload=self.store.local_size(handle),
                    )
                    continue
                if isinstance(payload, CollSegment):
                    yield env.timeout(costs.per_message_cpu)
                    ready = self.coll.ingest_segment(payload)
                    if ready is not None:
                        adm.enqueue(ready)
                    continue
                req = payload
                if (
                    req.op_kind == OP_COLL
                    and req.is_write
                    and self.coll.park(msg, req)
                ):
                    yield from self._preplan(req)
                    continue
                adm.enqueue(msg)
            verdict = adm.next()
            if verdict is None:
                continue
            if verdict[0] == "sleep":
                yield env.timeout(verdict[1])
                continue
            _, msg, queue_wait = verdict
            req: IORequest = msg.payload
            faults = self.system.faults
            if faults.enabled and faults.server_down(self.index):
                # crashed daemon: the admitted request is discarded —
                # the client's RPC timer is the only recovery path
                faults.crash_drop(self.index, req)
                continue
            yield from self.scheduler.submit(req, queue_wait)
