"""PVFS I/O server (iod).

The daemon is a receive loop feeding a staged request pipeline
(decode → plan → storage → respond; see :mod:`repro.pvfs.pipeline`).
Request kinds dispatch through the pluggable handler registry, and a
scheduler chosen by ``PVFSConfig.server_threads`` decides how stages
interleave across requests:

* ``server_threads=1`` (default) — the paper's single-threaded loop:
  requests serialize, and the asymmetry between read and write region
  processing (reads: on the critical path before data can flow;
  writes: hidden behind sink-side buffering) produces the 3-D block
  read decline of paper §4.3;
* ``server_threads=N`` — a multi-threaded daemon with a bounded
  admission queue and overlapped plan/storage stages.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..simulation.stats import StageTimes
from ..storage import BlockStore, DiskModel
from .collective import CollectiveState
from .expand_cache import ExpansionCache
from .pipeline import TenantAdmission, make_scheduler, preplan_collective
from .protocol import (
    OP_COLL,
    CollAck,
    CollFetch,
    CollSegment,
    IORequest,
    IOResponse,
)

if TYPE_CHECKING:  # pragma: no cover
    from .system import PVFS

__all__ = ["IOServer"]


class IOServer:
    """One I/O daemon with its local store and disk."""

    def __init__(self, system: "PVFS", index: int, node, mailbox):
        self.system = system
        self.index = index
        self.node = node
        self.mailbox = mailbox
        self.store = BlockStore()
        self.disk = DiskModel(system.costs)
        cfg = system.config
        self.expand_cache = (
            ExpansionCache(
                cfg.expand_cache_max_regions,
                cfg.expand_cache_period_regions,
            )
            if cfg.expand_cache
            else None
        )
        self.scheduler = make_scheduler(self)
        #: Collective-round assembly (segment/request rendezvous).
        #: Armed fault configs keep a deep done-ring: a round must stay
        #: replayable (idempotent request resends, segment re-acks) for
        #: as long as some rank's recovery ladder may still replay it.
        self.coll = CollectiveState(
            keep_done=4096
            if cfg.faults is not None and cfg.faults.can_inject
            else 4
        )
        #: Weighted-fair admission (``PVFSConfig.tenants``); ``None``
        #: keeps the paper's FIFO mailbox admission bit for bit.
        self.admission = (
            TenantAdmission(system.env, cfg.tenants)
            if cfg.tenants is not None
            else None
        )
        # counters
        self.requests = 0
        self.ops = 0
        self.accesses_built = 0
        self.regions_scanned = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.stage_times = StageTimes()

    # ------------------------------------------------------------------
    def backlog(self) -> int:
        """Requests waiting to be served: undrained mailbox messages
        plus anything parked in the per-tenant admission queues."""
        depth = len(self.mailbox)
        if self.admission is not None:
            depth += self.admission.queued
        return depth

    def queue_depth(self) -> int:
        """Requests waiting in the mailbox plus any admitted in flight.

        Pure observation (no clock movement) — the metrics sampler
        calls this from the engine clock hook.
        """
        depth = self.backlog()
        if self.scheduler.concurrent:
            depth += self.scheduler.inflight
        return depth

    # ------------------------------------------------------------------
    def record_plan(self, plan) -> None:
        """Account a finished plan stage (counters + cache snapshot)."""
        self.accesses_built += plan.built
        self.regions_scanned += plan.scanned
        cache = self.expand_cache
        if cache is not None:
            st = self.stage_times
            st.cache_hits = cache.hits
            st.cache_misses = cache.misses
            st.cache_evictions = cache.evictions
            st.cache_regions_held = cache.regions_held
            st.cache_bytes_held = cache.bytes_held

    # ------------------------------------------------------------------
    def _preplan(self, req: IORequest):
        """Eagerly decode+plan a just-parked collective write round.

        Single-threaded daemons do the work inline (it is daemon CPU,
        exactly like any other stage); threaded daemons hand it to a
        pool worker so the dispatcher keeps draining the mailbox.
        """
        if req.preplanned is not None:
            # an idempotent resend (or a duplicated delivery) of a
            # still-parked round: the plan is already computed and
            # charged — re-planning would double-bill the daemon CPU
            return
        if self.scheduler.concurrent:
            self.system.env.process(
                self._preplan_worker(req),
                name=f"iod{self.index}.preplan{req.req_id}",
            )
            return
        yield from preplan_collective(self, req)

    def _preplan_worker(self, req: IORequest):
        sched = self.scheduler
        yield sched.threads.request()
        try:
            # the round may have completed (and been planned the slow
            # way) while this worker waited for a thread
            if req.preplanned is None:
                yield from preplan_collective(self, req)
        finally:
            sched.threads.release()

    # ------------------------------------------------------------------
    # collective data path (shared by both receive loops)
    # ------------------------------------------------------------------
    def _ingest_coll_segment(self, seg: CollSegment):
        """File one collective data segment.

        Returns the released parked request *message* when the segment
        completes a waiting round, else ``None``.  A crashed daemon
        loses segments exactly like requests; a replay of an
        already-applied round is re-acknowledged from the done-ring
        (armed fault configs only — ``reply_to`` is never set
        otherwise) because the original ack was evidently lost.
        """
        env = self.system.env
        net = self.system.net
        costs = self.system.costs
        faults = self.system.faults
        if faults.enabled and faults.server_down(self.index):
            faults.crash_drop(self.index, seg)
            return None
        yield env.timeout(costs.per_message_cpu)
        done = self.coll.done_round((seg.coll_id, seg.round_no))
        if done is not None:
            if seg.reply_to is not None:
                ack = CollAck(
                    seg.coll_id,
                    seg.round_no,
                    self.index,
                    seg.client,
                    trace_id=seg.trace_id,
                    trace_parent=seg.trace_parent,
                )
                yield from net.send(
                    self.mailbox,
                    seg.reply_to,
                    ack.wire_bytes(costs),
                    payload=ack,
                    pace=False,
                    faultable=True,
                )
            return None
        return self.coll.ingest_segment(seg)

    def _serve_coll_fetch(self, fetch: CollFetch):
        """Re-send a retained read scatter segment (armed configs only).

        A miss is deliberately silent: the round has not been served
        yet (its composite request is itself in some rank's recovery
        ladder), and the asking rank's fetch ladder simply retries.
        No stage time or stage span is charged — retransmit service is
        receive-loop work, mirroring the segment ingest cost model.
        """
        env = self.system.env
        net = self.system.net
        costs = self.system.costs
        faults = self.system.faults
        if faults.enabled and faults.server_down(self.index):
            faults.crash_drop(self.index, fetch)
            return
        yield env.timeout(costs.per_message_cpu)
        seg = self.coll.fetch_read_segment(
            (fetch.coll_id, fetch.round_no, fetch.client)
        )
        if seg is not None:
            yield from net.send(
                self.mailbox,
                fetch.reply_to,
                seg.wire_bytes(costs),
                payload=seg,
                pace=False,
                faultable=True,
            )

    def _replay_coll_request(self, req: IORequest):
        """Replay the stored response of an already-applied write round.

        Returns ``True`` when the request was consumed (response
        replayed, or dropped by a crash window).  Reached only by
        idempotent resends — the fault-free path never re-delivers a
        request for a retired round — so the pipeline is never re-run
        and no disk or stage work is double-charged.
        """
        if req.op_kind != OP_COLL or not req.is_write:
            return False
        done = self.coll.done_round((req.coll.coll_id, req.coll.round_no))
        if done is None or done.resp is None:
            return False
        env = self.system.env
        net = self.system.net
        costs = self.system.costs
        faults = self.system.faults
        if faults.enabled and faults.server_down(self.index):
            faults.crash_drop(self.index, req)
            return True
        yield env.timeout(costs.per_message_cpu)
        # re-stamp with the incoming request's identity: a re-elected
        # aggregator re-issues the round under a fresh req_id (and a
        # fresh rpc span), and the replay must resolve *that* waiter
        resp = IOResponse(
            req.req_id,
            nbytes=done.resp.nbytes,
            accesses_built=done.resp.accesses_built,
            trace_id=req.trace_id,
            trace_parent=req.trace_parent,
        )
        yield from net.send(
            self.mailbox,
            req.reply_to,
            resp.wire_bytes(costs, True),
            payload=resp,
            pace=False,
            faultable=True,
        )
        return True

    # ------------------------------------------------------------------
    def run(self):
        if self.admission is not None:
            yield from self._run_tenanted()
            return
        env = self.system.env
        net = self.system.net
        costs = self.system.costs
        while True:
            msg = yield self.mailbox.get()
            payload = msg.payload
            if isinstance(payload, tuple) and payload[0] == "localsize":
                _, handle, reply_to = payload
                yield env.timeout(costs.fs_op_server_cost)
                yield from net.send(
                    self.mailbox,
                    reply_to,
                    costs.header_bytes,
                    payload=self.store.local_size(handle),
                )
                continue
            if isinstance(payload, CollSegment):
                # collective data path: file the segment; when it
                # completes a parked round, release that request
                ready = yield from self._ingest_coll_segment(payload)
                if ready is not None:
                    queue_wait = 0.0
                    if self.system.tracer.enabled or self.system.metrics.enabled:
                        queue_wait = env.now - ready.t_enqueued
                    yield from self.scheduler.submit(ready.payload, queue_wait)
                continue
            if isinstance(payload, CollFetch):
                yield from self._serve_coll_fetch(payload)
                continue
            req: IORequest = payload
            faults = self.system.faults
            if faults.enabled and faults.server_down(self.index):
                # crashed daemon: the request is silently discarded —
                # the client's RPC timer is the only recovery path
                faults.crash_drop(self.index, req)
                continue
            if (yield from self._replay_coll_request(req)):
                continue
            if (
                req.op_kind == OP_COLL
                and req.is_write
                and self.coll.park(msg, req)
            ):
                # collective write: plan the round now (the control
                # request outruns the data), then wait for its segments
                yield from self._preplan(req)
                continue
            queue_wait = 0.0
            if self.system.tracer.enabled or self.system.metrics.enabled:
                queue_wait = env.now - msg.t_enqueued
            # the scheduler owns error containment: a malformed or
            # failing request becomes an error response, never a dead
            # daemon
            yield from self.scheduler.submit(req, queue_wait)

    def _run_tenanted(self):
        """Receive loop with weighted-fair admission between mailbox
        and scheduler.

        One mailbox wakeup absorbs the whole backlog (a batched drain,
        no per-message event hop), control messages are handled as they
        arrive, and I/O requests are filed into per-tenant queues; the
        :class:`~repro.pvfs.pipeline.TenantAdmission` rotation then
        decides service order.  A ``sleep`` verdict (all backlogged
        tenants token-blocked) parks the daemon until the earliest
        bucket refill — new arrivals during the nap are drained on the
        next pass.
        """
        env = self.system.env
        net = self.system.net
        costs = self.system.costs
        adm = self.admission
        mailbox = self.mailbox
        while True:
            if adm.queued == 0 and len(mailbox) == 0:
                msg = yield mailbox.get()
                batch = [msg]
                batch.extend(mailbox.drain())
            else:
                batch = mailbox.drain()
            for msg in batch:
                payload = msg.payload
                if isinstance(payload, tuple) and payload[0] == "localsize":
                    _, handle, reply_to = payload
                    yield env.timeout(costs.fs_op_server_cost)
                    yield from net.send(
                        self.mailbox,
                        reply_to,
                        costs.header_bytes,
                        payload=self.store.local_size(handle),
                    )
                    continue
                if isinstance(payload, CollSegment):
                    ready = yield from self._ingest_coll_segment(payload)
                    if ready is not None:
                        adm.enqueue(ready)
                    continue
                if isinstance(payload, CollFetch):
                    yield from self._serve_coll_fetch(payload)
                    continue
                req = payload
                if (yield from self._replay_coll_request(req)):
                    continue
                if (
                    req.op_kind == OP_COLL
                    and req.is_write
                    and self.coll.park(msg, req)
                ):
                    yield from self._preplan(req)
                    continue
                adm.enqueue(msg)
            verdict = adm.next()
            if verdict is None:
                continue
            if verdict[0] == "sleep":
                yield env.timeout(verdict[1])
                continue
            _, msg, queue_wait = verdict
            req: IORequest = msg.payload
            faults = self.system.faults
            if faults.enabled and faults.server_down(self.index):
                # crashed daemon: the admitted request is discarded —
                # the client's RPC timer is the only recovery path
                faults.crash_drop(self.index, req)
                continue
            yield from self.scheduler.submit(req, queue_wait)
