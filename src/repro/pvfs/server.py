"""PVFS I/O server (iod).

A single-threaded request loop, as in PVFS: parse → build the
job/access structures → move data against the local store → respond.
Being single-threaded is what serializes concurrent clients' requests
at a busy server, and the asymmetry between read and write region
processing (reads: on the critical path before data can flow; writes:
hidden behind sink-side buffering) is what produces the 3-D block read
decline of paper §4.3.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..dataloops import DataloopStream
from ..regions import Regions
from ..storage import BlockStore, DiskModel
from .protocol import OP_DTYPE, IORequest, IOResponse
from .distribution import ServerSplit

if TYPE_CHECKING:  # pragma: no cover
    from .system import PVFS

__all__ = ["IOServer"]


class IOServer:
    """One I/O daemon with its local store and disk."""

    def __init__(self, system: "PVFS", index: int, node, mailbox):
        self.system = system
        self.index = index
        self.node = node
        self.mailbox = mailbox
        self.store = BlockStore()
        self.disk = DiskModel(system.costs)
        # counters
        self.requests = 0
        self.ops = 0
        self.accesses_built = 0
        self.regions_scanned = 0
        self.bytes_read = 0
        self.bytes_written = 0

    # ------------------------------------------------------------------
    def run(self):
        env = self.system.env
        net = self.system.net
        costs = self.system.costs
        while True:
            msg = yield self.mailbox.get()
            payload = msg.payload
            if isinstance(payload, tuple) and payload[0] == "localsize":
                _, handle, reply_to = payload
                yield env.timeout(costs.fs_op_server_cost)
                yield from net.send(
                    self.mailbox,
                    reply_to,
                    costs.header_bytes,
                    payload=self.store.local_size(handle),
                )
                continue
            req: IORequest = payload
            try:
                yield from self._handle_io(req)
            except Exception as exc:  # noqa: BLE001 - daemon must survive
                # a malformed request must not kill the daemon: report
                # the error back to the client instead
                resp = IOResponse(
                    req.req_id, error=f"{type(exc).__name__}: {exc}"
                )
                yield from net.send(
                    self.mailbox,
                    req.reply_to,
                    costs.header_bytes,
                    payload=resp,
                    pace=False,
                )

    # ------------------------------------------------------------------
    def _handle_io(self, req: IORequest):
        env = self.system.env
        net = self.system.net
        costs = self.system.costs
        cfg = self.system.config
        self.requests += 1
        self.ops += req.op_count

        # request parse/dispatch
        yield env.timeout(costs.fs_op_server_cost * req.op_count)

        # ----- build the access list -----
        if req.op_kind == OP_DTYPE:
            split, scanned = self._expand_window(req)
            regions = split.regions
            built = regions.count
            self.regions_scanned += scanned
            if cfg.direct_dataloop:
                # PVFS2-style: stream directly from the dataloop; only
                # the scan arithmetic remains, no list construction.
                proc = scanned * costs.server_region_scan_cost
            else:
                per_region = (
                    costs.server_region_write_cost
                    if req.is_write
                    else costs.server_region_read_cost
                )
                proc = (
                    scanned * costs.server_region_scan_cost
                    + built * per_region
                )
        else:
            regions = req.regions
            built = regions.count
            per_region = (
                costs.server_region_write_cost
                if req.is_write
                else costs.server_region_read_cost
            )
            proc = built * per_region
        self.accesses_built += built

        # ----- disk + data movement -----
        disk_time = self.disk.access_time(regions)
        busy = proc + disk_time
        if busy > 0:
            if not req.is_write:
                # The iod is single-threaded: while its CPU builds
                # access lists (or blocks in read syscalls) it is not
                # pumping earlier responses out of the socket buffers.
                # Reads therefore stall the transmit pump — the effect
                # behind the 3-D block read decline (§4.3).  Writes are
                # sink-side; TCP buffering hides the processing.
                node = self.node
                node.tx_busy_until = max(node.tx_busy_until, env.now) + busy
            yield env.timeout(busy)

        nbytes = regions.total_bytes
        if req.is_write:
            if req.payload is not None:
                self.store.write_regions(req.handle, regions, req.payload)
            else:
                self.store.note_write(req.handle, regions)
            self.bytes_written += nbytes
            resp = IOResponse(req.req_id, nbytes=nbytes, accesses_built=built)
        else:
            if req.phantom:
                self.store.note_read(regions)
                data = None
            else:
                data = self.store.read_regions(req.handle, regions)
            self.bytes_read += nbytes
            resp = IOResponse(
                req.req_id, payload=data, nbytes=nbytes, accesses_built=built
            )

        # non-blocking response: the daemon hands the reply to the
        # socket layer and services the next request while it drains
        yield from net.send(
            self.mailbox,
            req.reply_to,
            resp.wire_bytes(costs, req.is_write),
            payload=resp,
            pace=False,
        )

    # ------------------------------------------------------------------
    def _expand_window(self, req: IORequest) -> tuple[ServerSplit, int]:
        """Expand the shipped dataloop; keep only this server's pieces.

        Uses partial processing: the window is expanded in bounded
        batches, each immediately intersected with the local strips, so
        intermediate offset–length storage never exceeds the batch
        bound (paper §3.2).
        """
        cfg = self.system.config
        win = req.window
        meta = self.system.metadata.lookup(req.handle)
        dist = meta.dist

        stream = DataloopStream(
            win.loop,
            count=win.tile_count(),
            base_offset=win.displacement,
            first=win.first,
            last=win.last,
            max_regions=cfg.dataloop_batch_regions,
        )
        parts: list[Regions] = []
        sposs: list[np.ndarray] = []
        scanned = 0
        base = 0
        for batch in stream:
            scanned += batch.count
            split = dist.server_regions(batch, self.index)
            if split.regions.count:
                parts.append(split.regions)
                sposs.append(split.stream_pos + base)
            base += batch.total_bytes
        if parts:
            regions = Regions.concat(parts)
            spos = np.concatenate(sposs)
        else:
            regions = Regions.empty()
            spos = np.empty(0, dtype=np.int64)
        return ServerSplit(self.index, regions, spos), scanned
