"""Server-side dataloop expansion cache.

The paper's workloads ship the *same* dataloop from every client on
every iteration — only the window and displacement differ.  Expanding
it anew per request (partial processing + striping split) is the
dominant server-side CPU term for structured access (§3.2, and the
list-I/O analysis of *Noncontiguous I/O through PVFS*).  This module
caches the result: the :class:`~repro.pvfs.distribution.ServerSplit`
(physical regions + stream positions) an expansion produces.

Two complementary entry kinds live in one LRU, bounded by total regions
held (``expand_cache_max_regions``), not entry count:

* **exact entries** — keyed by ``(fingerprint, displacement mod P,
  n_servers, strip_size, first, last, tile_count)`` where
  ``P = strip_size * n_servers`` (the stripe period).  Round-robin
  striping is periodic in ``P``: shifting an access by a multiple of
  ``P`` keeps the same server and shifts physical offsets by
  ``strip_size`` per stripe, so entries are stored at the
  ``displacement mod P`` basis and shifted on hit — displacements that
  differ by whole stripes share one entry.
* **period entries** — keyed by ``(fingerprint, displacement mod P,
  n_servers, strip_size)`` alone.  A loop tiled with extent ``e`` meets
  the stripe pattern with period ``L = lcm(e, P)``: ``m = L // e``
  instances (``m * data_size`` stream bytes) after which this server's
  split repeats exactly, shifted by ``(L // P) * strip_size`` physical
  bytes per period.  One period's split is cached and *any* window over
  the same view is assembled as head + broadcast-tiled body + tail —
  different clients' windows hit the same entry instead of creating
  distinct ones.

Assembling from pieces cuts regions at seams that a monolithic
expansion would have coalesced; :func:`coalesce_split` repairs exactly
those seams (stream-contiguous, physically contiguous, not on a strip
boundary), provably reproducing the monolithic result — the striping
split never merges across strip boundaries and the physical→logical map
is a bijection per server, so mid-strip physical contiguity implies
logical contiguity.

The cache-off path (:func:`expand_window` with ``aligned=False``) is
the pre-cache expansion, bit for bit.

Map to the paper and the rest of the stack:

* :func:`expand_window` — the paper's §3.2 partial-processing loop
  (bounded-batch dataloop expansion) fused with the per-server striping
  intersection; what ``server_region_scan_cost`` meters.
* :class:`ExpansionCache` — the memo over that expansion; an
  optimization *on top of* the paper's design exploiting its insight
  that the dataloop (the file view) is reused across iterations while
  only the window moves.  Owned per server, consulted by
  ``DatatypeHandler.plan`` (``repro.pvfs.pipeline``).
* :func:`coalesce_split` — the seam repair making piecewise assembly
  indistinguishable from monolithic expansion.

Cost attribution is exclusive: a hit charges the flat
``server_cache_hit_cost`` to the pipeline's *cache* stage while the
plan stage keeps only real construction work — ``StageTimes.cache``
and the ``server.cache`` trace span (``docs/observability.md``) make
the saved scan time directly visible in ``repro-bench json``/``trace``.
Hit/miss/eviction/bytes-held counters surface through
``PVFS.pipeline_summary()``.
"""

from __future__ import annotations

import math
from collections import OrderedDict

import numpy as np

from ..dataloops import DataloopStream, Dataloop
from ..regions import Regions
from .distribution import Distribution, ServerSplit

__all__ = ["ExpansionCache", "expand_window", "coalesce_split"]

_I64 = np.int64


def expand_window(
    loop: Dataloop,
    tile_count: int,
    displacement: int,
    first: int,
    last: int,
    dist: Distribution,
    server: int,
    batch_regions: int,
    aligned: bool = False,
) -> tuple[ServerSplit, int]:
    """Expand stream bytes ``[first, last)`` of the tiled loop and keep
    this server's share.  Returns ``(split, scanned)`` where ``scanned``
    counts the offset–length pairs the partial processing produced
    (what ``server_region_scan_cost`` charges for).

    ``aligned=False`` is the original uncached server path, unchanged.
    ``aligned=True`` batches at whole-instance boundaries and repairs
    the resulting seams — same result, periodicity-friendly structure
    (used to build cache period entries).
    """
    stream = DataloopStream(
        loop,
        count=tile_count,
        base_offset=displacement,
        first=first,
        last=last,
        max_regions=batch_regions,
    )
    if aligned:
        batches = (r for _, _, r in stream.instance_aligned_batches())
    else:
        batches = iter(stream)
    parts: list[Regions] = []
    sposs: list[np.ndarray] = []
    scanned = 0
    base = 0
    for batch in batches:
        scanned += batch.count
        split = dist.server_regions(batch, server)
        if split.regions.count:
            parts.append(split.regions)
            sposs.append(split.stream_pos + base)
        base += batch.total_bytes
    if parts:
        regions = Regions.concat(parts)
        spos = np.concatenate(sposs)
    else:
        regions = Regions.empty()
        spos = np.empty(0, dtype=_I64)
    out = ServerSplit(server, regions, spos)
    if aligned:
        out = coalesce_split(out, dist.strip_size)
    return out, scanned


def coalesce_split(split: ServerSplit, strip_size: int) -> ServerSplit:
    """Merge split entries a monolithic expansion would have produced as
    one region.

    Two consecutive entries merge iff they are stream-contiguous,
    physically contiguous, *and* their junction is not on a strip
    boundary (the striping split always cuts there, so merging across
    one would diverge from the uncached result).  Applied to a
    piecewise-assembled split this restores exactly the monolithic
    output; applied to a monolithic output it is the identity.
    """
    regs = split.regions
    n = regs.count
    if n < 2:
        return split
    offs = regs.offsets
    lens = regs.lengths
    spos = split.stream_pos
    ends = offs + lens
    joint = (
        (spos[:-1] + lens[:-1] == spos[1:])
        & (ends[:-1] == offs[1:])
        & (ends[:-1] % strip_size != 0)
    )
    if not joint.any():
        return split
    boundary = np.empty(n, dtype=bool)
    boundary[0] = True
    boundary[1:] = ~joint
    starts_idx = np.flatnonzero(boundary)
    last_idx = np.empty(starts_idx.size, dtype=np.int64)
    last_idx[:-1] = starts_idx[1:] - 1
    last_idx[-1] = n - 1
    new_offs = offs[starts_idx]
    return ServerSplit(
        split.server,
        Regions(new_offs, ends[last_idx] - new_offs, _trusted=True),
        spos[starts_idx],
    )


def _shift_split(split: ServerSplit, delta: int) -> ServerSplit:
    """Physical shift of a split (stream positions unchanged)."""
    if delta == 0 or not split.regions.count:
        return split
    return ServerSplit(
        split.server, split.regions.shift(delta), split.stream_pos
    )


class ExpansionCache:
    """LRU cache of one server's expansion results.

    Bounded by total regions held across all entries (one region costs
    three ``int64`` words: offset, length, stream position).  Entries
    whose region count alone exceeds the bound are never inserted.
    """

    def __init__(self, max_regions: int, period_regions: int):
        if max_regions < 1:
            raise ValueError("max_regions must be positive")
        if period_regions < 1:
            raise ValueError("period_regions must be positive")
        self.max_regions = int(max_regions)
        self.period_regions = int(period_regions)
        self._lru: OrderedDict[tuple, tuple[ServerSplit, int]] = OrderedDict()
        # counters (surfaced through StageTimes / repro-bench json)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.regions_held = 0

    @property
    def bytes_held(self) -> int:
        """Approximate bytes of cached split arrays (3 int64 per region)."""
        return self.regions_held * 24

    def __len__(self) -> int:
        return len(self._lru)

    # ------------------------------------------------------------------
    def expand(
        self,
        win,
        dist: Distribution,
        server: int,
        batch_regions: int,
    ) -> tuple[ServerSplit, int, bool]:
        """Expand a :class:`~repro.pvfs.protocol.DataloopWindow` for one
        server, through the cache.  Returns ``(split, scanned, hit)``.
        """
        loop = win.loop
        d = win.displacement
        first, last = win.first, win.last
        tile_count = win.tile_count()
        if d < 0 or last <= first or loop.data_size <= 0:
            # degenerate or unsupported (negative displacements fail
            # later validation); bypass the cache entirely
            split, scanned = expand_window(
                loop, tile_count, d, first, last, dist, server, batch_regions
            )
            return split, scanned, False

        P = dist.strip_size * dist.n_servers
        d0 = d % P
        shift = (d // P) * dist.strip_size
        fp = loop.fingerprint()
        base_key = (fp, d0, dist.n_servers, dist.strip_size, server)

        wkey = ("w", *base_key, first, last, tile_count)
        cached = self._get(wkey)
        if cached is not None:
            self.hits += 1
            return _shift_split(cached, shift), 0, True

        # ---- periodicity path: assemble from one cached period -------
        ds = loop.data_size
        ext = loop.extent
        if ext > 0:
            L = math.lcm(ext, P)
            m = L // ext  # instances per period
            ps = m * ds  # stream bytes per period
            ja = -(-first // ps)  # first whole period in the window
            jb = last // ps  # one past the last whole period
            if ja < jb and m * loop.region_count <= self.period_regions:
                return self._expand_periodic(
                    loop, d0, shift, first, last, tile_count, dist, server,
                    batch_regions, base_key, L, m, ps, ja, jb,
                )

        # ---- exact path: compute at the d0 basis and memoize ---------
        self.misses += 1
        split, scanned = expand_window(
            loop, tile_count, d0, first, last, dist, server, batch_regions
        )
        self._put(wkey, split)
        return _shift_split(split, shift), scanned, False

    # ------------------------------------------------------------------
    def _expand_periodic(
        self, loop, d0, shift, first, last, tile_count, dist, server,
        batch_regions, base_key, L, m, ps, ja, jb,
    ) -> tuple[ServerSplit, int, bool]:
        pkey = ("p", *base_key)
        pent = self._get(pkey)
        hit = pent is not None
        scanned = 0
        if not hit:
            self.misses += 1
            pent, scanned = expand_window(
                loop, m, d0, 0, ps, dist, server, batch_regions, aligned=True
            )
            self._put(pkey, pent)
        else:
            self.hits += 1

        # one period = L logical bytes = L // P whole stripes; on this
        # server that is (L // P) strips of physical space
        step_phys = (L // (dist.strip_size * dist.n_servers)) * dist.strip_size

        parts: list[Regions] = []
        sposs: list[np.ndarray] = []
        head, head_scanned = expand_window(
            loop, tile_count, d0, first, ja * ps, dist, server, batch_regions
        )
        scanned += head_scanned
        if head.regions.count:
            parts.append(head.regions)
            sposs.append(head.stream_pos)

        npd = jb - ja
        pr = pent.regions
        if pr.count:
            jidx = np.arange(ja, jb, dtype=_I64)
            offs = (
                jidx[:, None] * _I64(step_phys) + pr.offsets[None, :]
            ).reshape(-1)
            lens = np.ascontiguousarray(
                np.broadcast_to(pr.lengths[None, :], (npd, pr.count))
            ).reshape(-1)
            spos = (
                jidx[:, None] * _I64(ps)
                - _I64(first)
                + pent.stream_pos[None, :]
            ).reshape(-1)
            parts.append(Regions(offs, lens, _trusted=True))
            sposs.append(spos)

        tail, tail_scanned = expand_window(
            loop, tile_count, d0, jb * ps, last, dist, server, batch_regions
        )
        scanned += tail_scanned
        if tail.regions.count:
            parts.append(tail.regions)
            sposs.append(tail.stream_pos + _I64(jb * ps - first))

        if parts:
            regions = Regions.concat(parts)
            spos = np.concatenate(sposs)
        else:
            regions = Regions.empty()
            spos = np.empty(0, dtype=_I64)
        out = coalesce_split(
            ServerSplit(server, regions, spos), dist.strip_size
        )
        return _shift_split(out, shift), scanned, hit

    # ------------------------------------------------------------------
    # LRU bookkeeping
    # ------------------------------------------------------------------
    def _get(self, key) -> ServerSplit | None:
        ent = self._lru.get(key)
        if ent is None:
            return None
        self._lru.move_to_end(key)
        return ent[0]

    def _put(self, key, split: ServerSplit) -> None:
        cost = max(1, split.regions.count)
        if cost > self.max_regions:
            return
        old = self._lru.pop(key, None)
        if old is not None:
            self.regions_held -= old[1]
        while self._lru and self.regions_held + cost > self.max_regions:
            _, (_, evicted_cost) = self._lru.popitem(last=False)
            self.regions_held -= evicted_cost
            self.evictions += 1
        self._lru[key] = (split, cost)
        self.regions_held += cost
