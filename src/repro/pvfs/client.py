"""PVFS client library.

Exposes the three file-system access interfaces the paper compares:

* :meth:`PVFSClient.read` / :meth:`~PVFSClient.write` — contiguous
  (POSIX-style) access;
* :meth:`PVFSClient.read_list` / :meth:`~PVFSClient.write_list` —
  **list I/O** (§2.4): each operation carries at most
  ``list_io_max_regions`` offset–length pairs, so the number of
  file-system operations stays linear in the region count;
* :meth:`PVFSClient.read_dtype` / :meth:`~PVFSClient.write_dtype` —
  **datatype I/O** (§3): one operation ships a dataloop plus a stream
  window; servers expand it themselves.

All I/O methods are generators to be driven inside a simulation process
(``yield from client.read(...)``).  Data is real unless ``phantom`` is
requested (paper-scale timing runs account sizes without moving bytes).

Simulation batching (``PVFSConfig.sim_batching``): runs of consecutive
synchronous list/contig operations that touch an identical server set
are collapsed into one exchange whose *accounted* cost (per-op client
and server fixed costs, round-trip latencies, wire bytes) equals the
sum of the individual operations — see DESIGN.md §5.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional, Sequence, TYPE_CHECKING

import numpy as np

from ..dataloops import Dataloop, DataloopStream
from ..regions import Regions
from .collective import CollHandoff, CollRecovery, _CollWake
from .distribution import Distribution
from .errors import PVFSError, RetriesExhausted
from .jobs import Job, build_jobs
from .protocol import (
    OP_CONTIG,
    OP_DTYPE,
    OP_LIST,
    CollAck,
    CollFetch,
    CollSegment,
    DataloopWindow,
    IORequest,
    IOResponse,
    MetaRequest,
    MetaResponse,
)

if TYPE_CHECKING:  # pragma: no cover
    from .system import PVFS

__all__ = ["PVFSClient", "FileHandle", "ClientCounters"]

#: In-flight collective data segments per (rank, server) socket.  1 is
#: a blocking socket (NICs idle at every handoff, and one slow server
#: stalls the rank's sequential send loop); large values degenerate to
#: an unpaced blast whose wire order no longer tracks the round order
#: (an early-starting rank would park entire later rounds ahead of a
#: late rank's round 0, stalling the round pipeline).  Two keeps every
#: server's pipe full while bounding the order skew to one round.
COLL_SEND_WINDOW = 2


@dataclass
class ClientCounters:
    """Per-client accounting used by the characteristics tables."""

    io_ops: int = 0  #: file-system level operations issued
    requests_sent: int = 0  #: messages to I/O servers (incl. resends)
    request_desc_bytes: int = 0  #: request description bytes on the wire
    bytes_read: int = 0  #: file data received
    bytes_written: int = 0  #: file data sent
    regions_shipped: int = 0  #: offset-length pairs sent in list requests
    retries: int = 0  #: resends after server admission-control rejection
    timeouts: int = 0  #: RPC response timeouts (fault injection only)
    failovers: int = 0  #: requests that succeeded after >=1 timeout

    def reset(self) -> None:
        self.io_ops = 0
        self.requests_sent = 0
        self.request_desc_bytes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.regions_shipped = 0
        self.retries = 0
        self.timeouts = 0
        self.failovers = 0


@dataclass
class FileHandle:
    """Client-side file state cached at open (PVFS does the same)."""

    handle: int
    path: str
    dist: Distribution
    size: int = 0


class _TimeoutMarker:
    """Sentinel an armed RPC timer drops straight into the client
    mailbox.  Using the mailbox itself (rather than an ``AnyOf`` wait)
    keeps the timed receive path's event-hop structure identical to the
    untimed one, so arming an inert fault config cannot perturb
    timings."""

    __slots__ = ("owner", "live")

    def __init__(self, owner: int):
        self.owner = owner  #: req_id the timer belongs to
        self.live = True  #: cleared once the owning wait has resolved


class _OpGroup:
    """Consecutive list/contig ops collapsed into one exchange."""

    __slots__ = ("ops", "signature", "stream_base", "nbytes")

    def __init__(self, signature):
        self.signature = signature
        self.ops: list[tuple[Regions, dict[int, Job]]] = []
        self.stream_base: list[int] = []
        self.nbytes = 0

    def add(self, regions: Regions, jobs: dict[int, Job]) -> None:
        self.stream_base.append(self.nbytes)
        self.ops.append((regions, jobs))
        self.nbytes += regions.total_bytes


class PVFSClient:
    """A file-system client living on one cluster node."""

    def __init__(self, system: "PVFS", node, name: str, tenant: int = 0):
        self.system = system
        self.node = node
        self.name = name
        #: Tenant index (``PVFSConfig.tenants``); stamped on every
        #: outgoing :class:`IORequest` so server-side admission can
        #: queue it fairly.  0 — the only valid value when no tenants
        #: are configured — is the default tenant.
        self.tenant = tenant
        self.mailbox = system.net.mailbox(node, f"pvfs:{name}")
        self.counters = ClientCounters()
        self._next_req = 0
        # datatype cache (PVFSConfig.datatype_cache): converted loops,
        # expansion results, and per-server registration state
        self._converted_loops: set[int] = set()
        self._expansion_cache: dict[tuple, "Regions"] = {}
        self._server_knows_loop: set[tuple[int, int]] = set()
        # responses that arrived while another operation was waiting
        # (concurrent nonblocking operations share this mailbox)
        self._resp_stash: dict[int, object] = {}
        # collective data segments that surfaced while some other wait
        # held the mailbox, keyed (coll_id, server, round)
        self._coll_stash: dict[tuple, CollSegment] = {}
        # per-server completion times of in-flight collective segments
        # (the sliding send windows of coll_send_segment)
        self._coll_inflight: dict[int, deque[float]] = {}
        # request ids already answered — late or duplicated responses
        # (fault injection) are discarded instead of stashed
        self._done_reqs: set[int] = set()
        # collective fault tolerance (armed configs): write-round acks
        # that surfaced while another wait held the mailbox, keyed
        # (coll_id, server, round), and re-election handoffs awaiting
        # service by this rank
        self._coll_acks: set[tuple] = set()
        self._coll_handoffs: list[CollHandoff] = []

    # ------------------------------------------------------------------
    # metadata operations
    # ------------------------------------------------------------------
    def open(self, path: str, create: bool = True):
        """Open (optionally creating) a file; returns a FileHandle."""
        resp = yield from self._meta_rpc(
            MetaRequest("open", path=path, create=create)
        )
        return FileHandle(
            handle=resp.handle,
            path=path,
            dist=Distribution(resp.n_servers, resp.strip_size),
            size=resp.size,
        )

    def stat(self, fh: FileHandle):
        """Query the current logical file size."""
        resp = yield from self._meta_rpc(
            MetaRequest("stat", handle=fh.handle)
        )
        fh.size = resp.size
        return resp.size

    def unlink(self, path: str):
        yield from self._meta_rpc(MetaRequest("unlink", path=path))

    def _meta_rpc(self, req: MetaRequest):
        env = self.system.env
        costs = self.system.costs
        req.req_id = self._req_id()
        req.reply_to = self.mailbox
        yield from self.system.net.send(
            self.mailbox,
            self.system.metadata.mailbox,
            req.wire_bytes(costs.header_bytes),
            payload=req,
        )
        resp: MetaResponse = yield from self._await_response(req.req_id)
        if resp.error:
            raise PVFSError(resp.error)
        return resp

    def _await_response(self, req_id: int):
        """Receive the response for ``req_id``, stashing others.

        Multiple operations may be outstanding concurrently (nonblocking
        MPI-IO); responses are matched by request id.  With fault
        injection armed, another wait's timeout marker may surface here:
        live foreign markers are held and re-queued on exit (re-queueing
        immediately would bounce them straight back to this waiter),
        dead ones are dropped.
        """
        env = self.system.env
        costs = self.system.costs
        held: list[_TimeoutMarker] = []
        try:
            while True:
                if req_id in self._resp_stash:
                    return self._resp_stash.pop(req_id)
                msg = yield self.mailbox.get()
                if isinstance(msg, _TimeoutMarker):
                    if msg.live:
                        held.append(msg)
                    continue
                if isinstance(msg, CollHandoff):
                    self._coll_handoffs.append(msg)
                    continue
                if isinstance(msg, _CollWake):
                    continue
                yield env.timeout(costs.per_message_cpu)
                resp = msg.payload
                if isinstance(resp, CollSegment):
                    key = (resp.coll_id, resp.server, resp.round_no)
                    self._coll_stash[key] = resp
                    continue
                if isinstance(resp, CollAck):
                    self._coll_acks.add(
                        (resp.coll_id, resp.server, resp.round_no)
                    )
                    continue
                rid = getattr(resp, "req_id", None)
                if rid == req_id:
                    return resp
                if rid not in self._done_reqs:
                    self._resp_stash[rid] = resp
        finally:
            for m in held:
                if m.live:
                    self.mailbox._store.put(m)

    def _await_response_timed(self, req_id: int, timeout: float):
        """Like :meth:`_await_response`, bounded by an RPC timer.

        Returns the matched response, or ``None`` on timeout.  The
        timer drops a :class:`_TimeoutMarker` into the mailbox (see
        that class for why); the marker is killed on exit so a late
        firing after the response arrived injects nothing.  Late and
        duplicated responses for already-answered requests are consumed
        and discarded.
        """
        env = self.system.env
        costs = self.system.costs
        marker = _TimeoutMarker(req_id)

        def _fire(_ev, m=marker):
            if m.live:
                self.mailbox._store.put(m)

        timer = env.call_later(timeout, _fire)
        held: list[_TimeoutMarker] = []
        try:
            while True:
                if req_id in self._resp_stash:
                    return self._resp_stash.pop(req_id)
                msg = yield self.mailbox.get()
                if isinstance(msg, _TimeoutMarker):
                    if msg is marker:
                        return None
                    if msg.live:
                        held.append(msg)
                    continue
                if isinstance(msg, CollHandoff):
                    self._coll_handoffs.append(msg)
                    continue
                if isinstance(msg, _CollWake):
                    continue
                yield env.timeout(costs.per_message_cpu)
                resp = msg.payload
                if isinstance(resp, CollSegment):
                    key = (resp.coll_id, resp.server, resp.round_no)
                    self._coll_stash[key] = resp
                    continue
                if isinstance(resp, CollAck):
                    self._coll_acks.add(
                        (resp.coll_id, resp.server, resp.round_no)
                    )
                    continue
                rid = getattr(resp, "req_id", None)
                if rid == req_id:
                    return resp
                if rid not in self._done_reqs:
                    self._resp_stash[rid] = resp
        finally:
            marker.live = False
            timer.cancel()  # the guard is moot; leave no dead queue entry
            for m in held:
                if m.live:
                    self.mailbox._store.put(m)

    # ------------------------------------------------------------------
    # contiguous (POSIX-style) access
    # ------------------------------------------------------------------
    def read(
        self, fh: FileHandle, offset: int, nbytes: int, phantom=False,
        trace=None,
    ):
        """Read one contiguous logical range; returns the byte stream."""
        stream = yield from self._simple_ops(
            fh,
            [Regions.single(offset, nbytes)],
            OP_CONTIG,
            is_write=False,
            data=None,
            phantom=phantom,
            trace=trace,
        )
        return stream

    def write(
        self, fh, offset: int, data=None, nbytes: Optional[int] = None,
        trace=None,
    ):
        """Write one contiguous range (``data=None`` for phantom writes)."""
        if data is not None:
            data = np.asarray(data).view(np.uint8).reshape(-1)
            nbytes = data.size
        elif nbytes is None:
            raise ValueError("phantom write needs nbytes")
        yield from self._simple_ops(
            fh,
            [Regions.single(offset, nbytes)],
            OP_CONTIG,
            is_write=True,
            data=data,
            phantom=data is None,
            trace=trace,
        )

    # ------------------------------------------------------------------
    # one-operation-per-region sequences (POSIX I/O; also the list I/O
    # degenerate case of single-region operations)
    # ------------------------------------------------------------------
    def read_posix(self, fh, regions: Regions, phantom=False, trace=None):
        """Issue one synchronous contiguous read per region, in order."""
        stream = yield from self._sequence(
            fh, regions, OP_CONTIG, is_write=False, data=None,
            phantom=phantom, trace=trace,
        )
        return stream

    def write_posix(self, fh, regions: Regions, data=None, trace=None):
        """Issue one synchronous contiguous write per region, in order."""
        if data is not None:
            data = np.asarray(data).view(np.uint8).reshape(-1)
        yield from self._sequence(
            fh, regions, OP_CONTIG, is_write=True, data=data,
            phantom=data is None, trace=trace,
        )

    def read_sequence(self, fh, regions, op_kind, phantom=False, trace=None):
        """One operation per region with explicit kind (list I/O fast path)."""
        stream = yield from self._sequence(
            fh, regions, op_kind, is_write=False, data=None,
            phantom=phantom, trace=trace,
        )
        return stream

    def write_sequence(self, fh, regions, op_kind, data=None, trace=None):
        if data is not None:
            data = np.asarray(data).view(np.uint8).reshape(-1)
        yield from self._sequence(
            fh, regions, op_kind, is_write=True, data=data,
            phantom=data is None, trace=trace,
        )

    def _sequence(
        self, fh, regions: Regions, op_kind, *, is_write, data, phantom,
        trace=None,
    ):
        """Vectorized synchronous one-op-per-region sequence.

        Runs of consecutive operations whose region lies within a single
        strip of the same server collapse into one exchange (when
        ``sim_batching``); regions crossing strip boundaries fall back
        to the generic per-operation path, preserving order.
        """
        env = self.system.env
        costs = self.system.costs
        cfg = self.system.config
        n = regions.count
        if n == 0:
            return None if (is_write or phantom) else np.zeros(0, np.uint8)
        if data is not None and data.size != regions.total_bytes:
            raise ValueError("data stream does not match regions")
        tracer = self.system.tracer
        op_span = None
        if tracer.enabled:
            op_span = tracer.begin(
                f"pvfs.{op_kind}",
                "client",
                self.name,
                trace_id=trace.trace_id if trace is not None else -1,
                parent=trace,
                is_write=is_write,
                ops=n,
                nbytes=regions.total_bytes,
            )

        S = fh.dist.strip_size
        nserv = fh.dist.n_servers
        offs = regions.offsets
        lens = regions.lengths
        ends = np.cumsum(lens)
        starts = ends - lens
        k0 = offs // S
        k1 = (offs + lens - 1) // S
        srv = np.where(k0 == k1, k0 % nserv, -1).astype(np.int64)

        if cfg.sim_batching:
            change = np.flatnonzero(np.diff(srv) != 0) + 1
            bounds = np.concatenate(([0], change, [n]))
        else:
            bounds = np.arange(n + 1)

        out = (
            None
            if (is_write or phantom)
            else np.zeros(regions.total_bytes, dtype=np.uint8)
        )
        self.counters.io_ops += n
        handled_generic = 0  # bytes counted by _simple_ops fallbacks

        for a, b in zip(bounds[:-1], bounds[1:]):
            a, b = int(a), int(b)
            if srv[a] == -1:
                # strip-crossing pieces: generic path, one op at a time
                for i in range(a, b):
                    piece = regions[i : i + 1]
                    sl = slice(int(starts[i]), int(ends[i]))
                    pdata = None if data is None else data[sl]
                    self.counters.io_ops -= 1  # _simple_ops recounts
                    st = yield from self._simple_ops(
                        fh,
                        [piece],
                        op_kind,
                        is_write=is_write,
                        data=pdata,
                        phantom=phantom,
                        trace=op_span,
                    )
                    if out is not None and st is not None:
                        out[sl] = st
                    handled_generic += int(lens[i])
                continue
            g = b - a
            extra = (g - 1) * (2 * costs.latency + 2 * costs.per_message_cpu)
            yield env.timeout(g * costs.fs_op_client_cost + extra)
            phys = (k0[a:b] // nserv) * S + offs[a:b] % S
            merged = Regions(phys, lens[a:b].copy(), _trusted=True)
            sl = slice(int(starts[a]), int(ends[b - 1]))
            payload = None
            if is_write and data is not None:
                payload = data[sl]
            req = IORequest(
                handle=fh.handle,
                is_write=is_write,
                op_kind=op_kind,
                regions=merged,
                payload=payload,
                payload_nbytes=merged.total_bytes if is_write else 0,
                op_count=g,
                phantom=phantom,
                listio_pairs=g if op_kind == OP_LIST else 0,
                req_id=self._req_id(),
                reply_to=self.mailbox,
                client=self.name,
                tenant=self.tenant,
                server=int(srv[a]),
            )
            responses = yield from self._io_round(
                [(req, None, merged)], op_span
            )
            resp = responses[req.req_id]
            if out is not None and resp.payload is not None:
                out[sl] = resp.payload

        if is_write:
            self.counters.bytes_written += regions.total_bytes - handled_generic
        else:
            self.counters.bytes_read += regions.total_bytes - handled_generic
        if op_span is not None:
            tracer.end(op_span)
        return out

    # ------------------------------------------------------------------
    # list I/O
    # ------------------------------------------------------------------
    def read_list(self, fh, ops: Sequence[Regions], phantom=False, trace=None):
        """List I/O read: each element is one operation's file regions.

        Returns the packed stream of all operations, concatenated in
        order (or ``None`` when phantom).
        """
        self._check_listio(ops)
        stream = yield from self._simple_ops(
            fh, ops, OP_LIST, is_write=False, data=None, phantom=phantom,
            trace=trace,
        )
        return stream

    def write_list(self, fh, ops: Sequence[Regions], data=None, trace=None):
        """List I/O write of the packed stream ``data`` (None = phantom)."""
        self._check_listio(ops)
        if data is not None:
            data = np.asarray(data).view(np.uint8).reshape(-1)
        yield from self._simple_ops(
            fh, ops, OP_LIST, is_write=True, data=data, phantom=data is None,
            trace=trace,
        )

    def _check_listio(self, ops: Sequence[Regions]) -> None:
        limit = self.system.config.list_io_max_regions
        for op in ops:
            if op.count > limit:
                raise PVFSError(
                    f"list I/O operation with {op.count} regions exceeds "
                    f"the {limit}-region request bound"
                )

    # ------------------------------------------------------------------
    # datatype I/O
    # ------------------------------------------------------------------
    def read_dtype(
        self,
        fh,
        loop: Dataloop,
        displacement: int = 0,
        first: int = 0,
        last: Optional[int] = None,
        phantom: bool = False,
        trace=None,
    ):
        """Datatype I/O read of stream bytes [first, last) of the tiled loop."""
        stream = yield from self._dtype_op(
            fh, loop, displacement, first, last, False, None, phantom,
            trace=trace,
        )
        return stream

    def write_dtype(
        self,
        fh,
        loop: Dataloop,
        displacement: int = 0,
        first: int = 0,
        last: Optional[int] = None,
        data=None,
        trace=None,
    ):
        """Datatype I/O write; ``data`` is the packed stream (None=phantom)."""
        if data is not None:
            data = np.asarray(data).view(np.uint8).reshape(-1)
        yield from self._dtype_op(
            fh, loop, displacement, first, last, True, data, data is None,
            trace=trace,
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _req_id(self) -> int:
        self._next_req += 1
        return self._next_req

    def _simple_ops(
        self, fh, ops, op_kind, *, is_write, data, phantom, trace=None
    ):
        """Run a sequence of synchronous contig/list operations."""
        env = self.system.env
        costs = self.system.costs
        cfg = self.system.config

        total_bytes = sum(op.total_bytes for op in ops)
        if data is not None and data.size != total_bytes:
            raise ValueError(
                f"data stream of {data.size} bytes vs operations totalling "
                f"{total_bytes} bytes"
            )
        tracer = self.system.tracer
        op_span = None
        if tracer.enabled:
            op_span = tracer.begin(
                f"pvfs.{op_kind}",
                "client",
                self.name,
                trace_id=trace.trace_id if trace is not None else -1,
                parent=trace,
                is_write=is_write,
                ops=len(ops),
                nbytes=total_bytes,
            )
        out = (
            None
            if (is_write or phantom)
            else np.zeros(total_bytes, dtype=np.uint8)
        )
        self.counters.io_ops += len(ops)

        # group consecutive ops by server signature
        groups: list[_OpGroup] = []
        stream_cursor = 0
        for op in ops:
            jobs = build_jobs(self.name, fh.handle, is_write, op, fh.dist)
            sig = tuple(sorted(jobs))
            if (
                cfg.sim_batching
                and groups
                and groups[-1].signature == sig
            ):
                groups[-1].add(op, jobs)
            else:
                g = _OpGroup(sig)
                g.add(op, jobs)
                groups.append(g)

        for group in groups:
            gsize = len(group.ops)
            # per-op client fixed cost, plus the round-trip latencies
            # and message CPU the collapsed ops would have paid
            extra = (gsize - 1) * (
                2 * costs.latency + 2 * costs.per_message_cpu
            )
            yield env.timeout(gsize * costs.fs_op_client_cost + extra)

            # merge the group's jobs per server
            requests = []
            for server in group.signature:
                regs = []
                spos = []
                pairs = 0
                for (op_regions, jobs), base in zip(
                    group.ops, group.stream_base
                ):
                    job = jobs.get(server)
                    if job is None or not job.access_count:
                        continue
                    regs.append(job.accesses)
                    spos.append(job.stream_pos + (stream_cursor + base))
                    pairs += job.access_count
                if not regs:
                    continue
                merged = Regions.concat(regs)
                sposa = np.concatenate(spos)
                payload = None
                if is_write and data is not None:
                    payload = Regions(
                        sposa, merged.lengths, _trusted=True
                    ).gather(data)
                req = IORequest(
                    handle=fh.handle,
                    is_write=is_write,
                    op_kind=op_kind,
                    regions=merged,
                    payload=payload,
                    payload_nbytes=merged.total_bytes if is_write else 0,
                    op_count=gsize,
                    phantom=phantom,
                    listio_pairs=pairs if op_kind == OP_LIST else 0,
                    req_id=self._req_id(),
                    reply_to=self.mailbox,
                    client=self.name,
                    tenant=self.tenant,
                    server=server,
                )
                requests.append((req, sposa, merged))

            responses = yield from self._io_round(requests, op_span)
            if out is not None:
                for req, sposa, merged in requests:
                    resp = responses[req.req_id]
                    if resp.payload is not None:
                        Regions(
                            sposa, merged.lengths, _trusted=True
                        ).scatter(out, resp.payload)
            stream_cursor += group.nbytes

        if is_write:
            self.counters.bytes_written += total_bytes
        else:
            self.counters.bytes_read += total_bytes
        if op_span is not None:
            tracer.end(op_span)
        return out

    def _dtype_op(
        self, fh, loop, displacement, first, last, is_write, data, phantom,
        trace=None,
    ):
        env = self.system.env
        costs = self.system.costs
        cfg = self.system.config

        if last is None:
            last = loop.data_size
        window = DataloopWindow(loop, displacement, first, last)
        nbytes = window.stream_bytes
        if data is not None and data.size != nbytes:
            raise ValueError(
                f"data stream of {data.size} bytes vs window of {nbytes}"
            )
        tracer = self.system.tracer
        op_span = None
        if tracer.enabled:
            op_span = tracer.begin(
                "pvfs.dtype",
                "client",
                self.name,
                trace_id=trace.trace_id if trace is not None else -1,
                parent=trace,
                is_write=is_write,
                nbytes=nbytes,
                dataloop=loop.fingerprint().hex(),
            )
        self.counters.io_ops += 1

        # dataloop (re)conversion at every operation, as in the
        # prototype — unless datatype caching (§5) remembers this loop
        yield from self.charge_convert(loop)

        # client-side expansion into job/access structures (cached per
        # (loop, window) when datatype caching is on; the tile reader's
        # per-frame operations differ only by displacement)
        regions = yield from self.expand_view(loop, displacement, first, last)
        yield env.timeout(costs.fs_op_client_cost)

        cache_on = cfg.datatype_cache
        jobs = build_jobs(self.name, fh.handle, is_write, regions, fh.dist)
        out = (
            None
            if (is_write or phantom)
            else np.zeros(nbytes, dtype=np.uint8)
        )
        requests = []
        for server in sorted(jobs):
            job = jobs[server]
            if not job.access_count:
                continue
            cached = False
            if cache_on:
                key = (server, id(loop))
                cached = key in self._server_knows_loop
                self._server_knows_loop.add(key)
            payload = None
            if is_write and data is not None:
                payload = Regions(
                    job.stream_pos, job.accesses.lengths, _trusted=True
                ).gather(data)
            req = IORequest(
                handle=fh.handle,
                is_write=is_write,
                op_kind=OP_DTYPE,
                window=window,
                payload=payload,
                payload_nbytes=job.nbytes if is_write else 0,
                phantom=phantom,
                cached_dtype=cached,
                req_id=self._req_id(),
                reply_to=self.mailbox,
                client=self.name,
                tenant=self.tenant,
                server=server,
            )
            requests.append((req, job))

        responses = yield from self._io_round(
            [(req, job.stream_pos, job.accesses) for req, job in requests],
            op_span,
        )
        if out is not None:
            for req, job in requests:
                resp = responses[req.req_id]
                if resp.payload is not None:
                    Regions(
                        job.stream_pos, job.accesses.lengths, _trusted=True
                    ).scatter(out, resp.payload)

        if is_write:
            self.counters.bytes_written += nbytes
        else:
            self.counters.bytes_read += nbytes
        if op_span is not None:
            tracer.end(op_span)
        return out

    # ------------------------------------------------------------------
    # datatype-side primitives (shared by the independent datatype path
    # and the collective datatype driver)
    # ------------------------------------------------------------------
    def charge_convert(self, loop: Dataloop):
        """Charge one dataloop conversion (datatype-cache aware)."""
        env = self.system.env
        costs = self.system.costs
        cache_on = self.system.config.datatype_cache
        if cache_on and id(loop) in self._converted_loops:
            yield env.timeout(2e-6)  # cache lookup
        else:
            yield env.timeout(
                costs.dataloop_convert_base
                + loop.node_count() * costs.dataloop_node_cost
            )
            if cache_on:
                self._converted_loops.add(id(loop))

    def expand_view(self, loop: Dataloop, displacement, first, last):
        """Expand a file view window into logical file regions, charging
        the per-region client construction cost (cached per
        (loop, window) when datatype caching is on)."""
        env = self.system.env
        costs = self.system.costs
        cfg = self.system.config
        cache_on = cfg.datatype_cache
        exp_key = (id(loop), first, last)
        cached_regions = (
            self._expansion_cache.get(exp_key) if cache_on else None
        )
        if cached_regions is not None:
            regions = cached_regions.shift(displacement)
            yield env.timeout(2e-6)
            return regions
        window = DataloopWindow(loop, displacement, first, last)
        regions = DataloopStream(
            loop,
            count=window.tile_count(),
            base_offset=0,
            first=first,
            last=last,
            max_regions=cfg.dataloop_batch_regions,
        ).regions()
        factor = (
            costs.direct_region_factor if cfg.direct_dataloop else 1.0
        )
        if regions.count:
            yield env.timeout(
                regions.count * costs.client_region_cost * factor
            )
        if cache_on:
            self._expansion_cache[exp_key] = regions
        return regions.shift(displacement)

    # ------------------------------------------------------------------
    # collective datatype I/O primitives
    # ------------------------------------------------------------------
    def coll_send_segment(self, server: int, seg: CollSegment):
        """Ship one collective data segment straight to a server.

        Segments are data-path messages: a fixed header plus the round
        slice of this rank's packed stream.  They sit inside the fault
        injector's drop set (a no-op unless a non-inert config is
        armed); recovery is the per-(round, server) ack ladder of
        :meth:`coll_complete`, which resends idempotently — the server
        dedups replayed rounds by (coll id, round).  Flow control is a
        sliding window of :data:`COLL_SEND_WINDOW` in-flight segments
        *per server socket*: an unpaced blast would order the whole
        run's bytes by send-initiation time (letting an early-starting
        rank park entire later rounds ahead of a late rank's round 0,
        stalling the round pipeline), while fully paced sends leave
        NICs idle at every segment handoff.  Per-server windows keep
        the wire order at each server tracking the round order without
        coupling independent sockets — one momentarily-backlogged
        server never starves the rest of the stripe.
        """
        costs = self.system.costs
        env = self.system.env
        window = self._coll_inflight.setdefault(server, deque())
        while len(window) >= COLL_SEND_WINDOW:
            t = window.popleft()
            if t > env.now:
                yield env.timeout(t - env.now)
        self.counters.request_desc_bytes += costs.header_bytes
        end = yield from self.system.net.send(
            self.mailbox,
            self.system.servers[server].mailbox,
            seg.wire_bytes(costs),
            payload=seg,
            pace=False,
            faultable=True,
        )
        window.append(end)

    def coll_collect(self, coll_id: tuple, expected):
        """Receive this rank's data segments of a collective read.

        ``expected`` is an iterable of ``(server, round)`` pairs; the
        matching segments are returned as a dict keyed by those pairs.
        Unrelated traffic surfacing on the mailbox (responses for the
        aggregator role, other collectives' segments) is stashed for
        its own waiter, mirroring :meth:`_await_response`.
        """
        env = self.system.env
        costs = self.system.costs
        want = {(coll_id, s, r) for (s, r) in expected}
        got: dict[tuple, CollSegment] = {}
        for key in list(want):
            seg = self._coll_stash.pop(key, None)
            if seg is not None:
                got[key[1:]] = seg
                want.discard(key)
        held: list[_TimeoutMarker] = []
        try:
            while want:
                msg = yield self.mailbox.get()
                if isinstance(msg, _TimeoutMarker):
                    if msg.live:
                        held.append(msg)
                    continue
                if isinstance(msg, CollHandoff):
                    self._coll_handoffs.append(msg)
                    continue
                if isinstance(msg, _CollWake):
                    continue
                yield env.timeout(costs.per_message_cpu)
                resp = msg.payload
                if isinstance(resp, CollSegment):
                    key = (resp.coll_id, resp.server, resp.round_no)
                    if key in want:
                        got[key[1:]] = resp
                        want.discard(key)
                    else:
                        self._coll_stash[key] = resp
                    continue
                if isinstance(resp, CollAck):
                    self._coll_acks.add(
                        (resp.coll_id, resp.server, resp.round_no)
                    )
                    continue
                rid = getattr(resp, "req_id", None)
                if rid not in self._done_reqs:
                    self._resp_stash[rid] = resp
        finally:
            for m in held:
                if m.live:
                    self.mailbox._store.put(m)
        return got

    def coll_post(self, requests: Sequence[IORequest], span=None):
        """Send aggregated collective requests without awaiting replies.

        The aggregator role posts its control requests *before*
        streaming its own data segments — awaiting inline (as
        :meth:`_io_round` does) would deadlock: every round needs this
        rank's segments to complete.  Returns the bookkeeping that
        :meth:`coll_finish` needs to collect the responses later.
        """
        env = self.system.env
        tracer = self.system.tracer
        metrics = self.system.metrics
        t_sent: dict[int, float] = {}
        rpc_spans: dict[int, object] = {}
        if tracer.enabled and span is not None:
            for req in requests:
                rpc = tracer.begin(
                    "rpc",
                    "client",
                    self.name,
                    trace_id=span.trace_id,
                    parent=span,
                    server=req.server,
                    op_kind=req.op_kind,
                    desc_bytes=req.descriptor_bytes(self.system.costs),
                )
                req.trace_id = span.trace_id
                req.trace_parent = rpc.span_id
                rpc_spans[req.req_id] = rpc
        for req in requests:
            if metrics.enabled:
                t_sent[req.req_id] = env.now
            yield from self._send_io(req)
        return t_sent, rpc_spans

    def coll_finish(self, requests: Sequence[IORequest], posted):
        """Collect one response per request posted by :meth:`coll_post`.

        Mirrors the response half of :meth:`_io_round`, including the
        reject/backoff/resend loop of the bounded-admission server
        (segments already ingested survive a rejection, and the server's
        done-ring deduplicates a resend of an already-applied round).
        """
        t_sent, rpc_spans = posted
        env = self.system.env
        cfg = self.system.config
        tracer = self.system.tracer
        metrics = self.system.metrics
        responses: dict[int, IOResponse] = {}
        for req in requests:
            rpc = rpc_spans.get(req.req_id)
            while True:
                resp: IOResponse = yield from self._await_response(
                    req.req_id
                )
                if resp.rejected:
                    self.counters.retries += 1
                    if metrics.enabled:
                        metrics.retry()
                    if rpc is not None:
                        rpc.attrs["retries"] = rpc.attrs.get("retries", 0) + 1
                    if cfg.server_retry_backoff > 0:
                        yield env.timeout(cfg.server_retry_backoff)
                    yield from self._send_io(req)
                    continue
                if resp.error:
                    if rpc is not None:
                        tracer.end(rpc, error=resp.error)
                    raise PVFSError(resp.error)
                responses[resp.req_id] = resp
                if metrics.enabled:
                    metrics.observe_rpc(
                        env.now - t_sent[req.req_id], req.op_kind
                    )
                if rpc is not None:
                    tracer.end(rpc, nbytes=resp.nbytes)
                break
        return responses

    # ------------------------------------------------------------------
    # collective fault tolerance (armed fault configs only)
    # ------------------------------------------------------------------
    def _coll_recv(self, abs_deadline: float):
        """Receive one mailbox item before an absolute deadline.

        Returns the unwrapped payload for wire traffic (charging the
        per-message CPU), the raw marker for zero-cost shared-state
        signals (:class:`CollHandoff`, ``_CollWake``), or ``None`` once
        the deadline passes.  Live foreign timeout markers are held and
        re-queued on exit, exactly as in :meth:`_await_response`.
        """
        env = self.system.env
        costs = self.system.costs
        if abs_deadline <= env.now:
            return None
        marker = _TimeoutMarker(-1)

        def _fire(_ev, m=marker):
            if m.live:
                self.mailbox._store.put(m)

        timer = env.call_later(abs_deadline - env.now, _fire)
        held: list[_TimeoutMarker] = []
        try:
            while True:
                msg = yield self.mailbox.get()
                if isinstance(msg, _TimeoutMarker):
                    if msg is marker:
                        return None
                    if msg.live:
                        held.append(msg)
                    continue
                if isinstance(msg, (CollHandoff, _CollWake)):
                    return msg
                yield env.timeout(costs.per_message_cpu)
                return msg.payload
        finally:
            marker.live = False
            timer.cancel()
            for m in held:
                if m.live:
                    self.mailbox._store.put(m)

    def coll_complete(
        self,
        rec: CollRecovery,
        *,
        sent_segs=None,
        expect=None,
        requests: Sequence[IORequest] = (),
        posted=None,
        my_agg: Optional[int] = None,
        span=None,
        handoff: Optional[CollHandoff] = None,
    ):
        """Fault-tolerant completion engine for one rank's collective.

        One unified RTO loop drives every outstanding obligation of
        this rank — reusing the PR-5 timeout/backoff/dedup machinery,
        but over *all* items at once rather than request-by-request,
        because the collective's recovery paths are interdependent: a
        composite request completes only when every rank's segment is
        in, and a rank's segment ack arrives only after some aggregator
        re-delivers the round's request.  Sequential per-item waits
        would deadlock on exactly the fault patterns this exists for.

        * ``sent_segs`` — ``{(server, round): CollSegment}`` this rank
          streamed for a write; each entry waits for its
          :class:`CollAck` and is resent (idempotently — the server
          dedups by (coll id, round), and a replay of a completed round
          is re-acknowledged from the done-ring) on an RTO ladder.
        * ``expect`` — ``(server, round)`` read segments owed to this
          rank; an overdue entry sends a :class:`CollFetch`, served
          from the server's retained scatter buffer.
        * ``requests``/``posted`` — the aggregator role's composite
          requests (from :meth:`coll_post`): the PR-5 ladder plus
          **aggregator re-election** — at ``coll_reelect_after``
          consecutive timeouts the rounds are handed to the next
          surviving aggregator slot (deterministic ring scan), and
          :class:`RetriesExhausted` surfaces only once every candidate
          slot is dead and the ladder is spent.

        Returns ``(responses, segments)``.  Every deadline doubles per
        consecutive timeout and every resend backs off exponentially,
        so a crash window either ends inside the ladder or the run
        fails typed — never a hang.
        """
        env = self.system.env
        cfg = self.system.config
        costs = self.system.costs
        net = self.system.net
        tracer = self.system.tracer
        metrics = self.system.metrics
        faults = self.system.faults
        fcfg = faults.config
        base = fcfg.rpc_timeout
        eps = 1e-12

        t_sent, rpc_spans = posted if posted is not None else ({}, {})
        responses: dict[int, IOResponse] = {}
        got: dict[tuple, CollSegment] = {}

        # pending items; deadlines are absolute simulated instants
        acks: dict[tuple, list] = {}  # (srv, rnd) -> [attempts, deadline, seg]
        fetches: dict[tuple, list] = {}  # (srv, rnd) -> [attempts, deadline]
        reqs: dict[int, list] = {}  # req_id -> [attempts, deadline, req, hctr]

        now = env.now
        if sent_segs:
            for (server, rno), seg in sent_segs.items():
                if (rec.coll_id, server, rno) in self._coll_acks:
                    self._coll_acks.discard((rec.coll_id, server, rno))
                    continue
                acks[(server, rno)] = [0, now + base, seg]
        if expect:
            for server, rno in expect:
                seg = self._coll_stash.pop((rec.coll_id, server, rno), None)
                if seg is not None:
                    got[(server, rno)] = seg
                    continue
                fetches[(server, rno)] = [0, now + base]
        for req in requests:
            reqs[req.req_id] = [0, now + base, req, None]

        tid = span.trace_id if span is not None else -1
        pid = span.span_id if span is not None else -1

        def _integrate(h: CollHandoff):
            """Adopt a re-election handoff: rebuild and post its rounds
            (views on the wire — this rank never shipped them)."""
            built = []
            for rno in h.rounds:
                req = rec.build_request(h.server, rno)
                req.req_id = self._req_id()
                req.reply_to = self.mailbox
                req.client = self.name
                req.tenant = self.tenant
                built.append(req)
            if not built:
                rec.pending_handoffs -= 1
                rec.maybe_release()
                return
            yield env.timeout(costs.fs_op_client_cost)
            ts, sp = yield from self.coll_post(built, span)
            t_sent.update(ts)
            rpc_spans.update(sp)
            counter = [len(built)]
            t = env.now + base
            for req in built:
                reqs[req.req_id] = [0, t, req, counter]

        def _resolve_handoff(st):
            counter = st[3]
            if counter is not None:
                counter[0] -= 1
                if counter[0] == 0:
                    rec.pending_handoffs -= 1
                    rec.maybe_release()

        def _exhaust(server, rno, attempts, what):
            faults.coll_exhausted(
                self.name, server, rno, attempts, trace_id=tid, span=span
            )
            raise RetriesExhausted(
                f"collective {what} for round {rno} on iod{server} from "
                f"{self.name} gave up after {attempts} timeouts",
                job_id=-1,
                server=server,
                client=self.name,
                attempts=attempts,
            )

        if handoff is not None:
            yield from _integrate(handoff)

        while acks or fetches or reqs or self._coll_handoffs:
            while self._coll_handoffs:
                yield from _integrate(self._coll_handoffs.pop(0))
            if not (acks or fetches or reqs):
                break
            deadline = min(
                min((st[1] for st in acks.values()), default=float("inf")),
                min((st[1] for st in fetches.values()), default=float("inf")),
                min((st[1] for st in reqs.values()), default=float("inf")),
            )
            msg = yield from self._coll_recv(deadline)
            if msg is None:
                # ---- deadline: escalate every overdue item
                now = env.now + eps
                for key in [k for k, st in acks.items() if st[1] <= now]:
                    st = acks[key]
                    st[0] += 1
                    if st[0] > fcfg.max_retries:
                        _exhaust(key[0], key[1], st[0], "write ack")
                    backoff = fcfg.retry_backoff * (2 ** (st[0] - 1))
                    if backoff > 0:
                        yield env.timeout(backoff)
                    faults.coll_resend(
                        self.name, key[0], key[1], st[0],
                        kind="segment", trace_id=tid, span=span,
                    )
                    if metrics.enabled:
                        metrics.coll_resend()
                    yield from self.coll_send_segment(key[0], st[2])
                    st[1] = env.now + base * (2 ** min(st[0], 20))
                for key in [k for k, st in fetches.items() if st[1] <= now]:
                    st = fetches[key]
                    st[0] += 1
                    if st[0] > fcfg.max_retries:
                        _exhaust(key[0], key[1], st[0], "read segment")
                    backoff = fcfg.retry_backoff * (2 ** (st[0] - 1))
                    if backoff > 0:
                        yield env.timeout(backoff)
                    faults.coll_resend(
                        self.name, key[0], key[1], st[0],
                        kind="fetch", trace_id=tid, span=span,
                    )
                    if metrics.enabled:
                        metrics.coll_resend()
                    fetch = CollFetch(
                        rec.coll_id, key[1], key[0], self.name,
                        reply_to=self.mailbox,
                        trace_id=tid, trace_parent=pid,
                    )
                    self.counters.requests_sent += 1
                    self.counters.request_desc_bytes += costs.header_bytes
                    yield from net.send(
                        self.mailbox,
                        self.system.servers[key[0]].mailbox,
                        fetch.wire_bytes(costs),
                        payload=fetch,
                        pace=False,
                        faultable=True,
                    )
                    st[1] = env.now + base * (2 ** min(st[0], 20))
                for rid in [r for r, st in reqs.items() if st[1] <= now]:
                    st = reqs.get(rid)
                    if st is None:
                        continue  # moved by a re-election this same pass
                    st[0] += 1
                    req = st[2]
                    rpc = rpc_spans.get(rid)
                    self.counters.timeouts += 1
                    if metrics.enabled:
                        metrics.timeout()
                    faults.rpc_timeout(self.name, req, st[0], rpc)
                    if (
                        my_agg is not None
                        and st[0] >= fcfg.coll_reelect_after
                    ):
                        cand = rec.elect(my_agg)
                        if cand is not None:
                            self._coll_reelect(
                                rec, my_agg, cand, req.server,
                                reqs, rpc_spans, span,
                            )
                            continue
                    if st[0] > fcfg.max_retries:
                        faults.rpc_exhausted(self.name, req, st[0], rpc)
                        err = (
                            f"server iod{req.server} unresponsive: "
                            f"collective request {rid} from {self.name} "
                            f"gave up after {st[0]} timeouts"
                        )
                        if rpc is not None:
                            tracer.end(rpc, error=err)
                        raise RetriesExhausted(
                            err, job_id=rid, server=req.server,
                            client=self.name, attempts=st[0],
                        )
                    backoff = fcfg.retry_backoff * (2 ** (st[0] - 1))
                    if backoff > 0:
                        yield env.timeout(backoff)
                    yield from self._send_io(req)
                    st[1] = env.now + base * (2 ** min(st[0], 20))
                continue
            # ---- arrivals
            if isinstance(msg, CollHandoff):
                yield from _integrate(msg)
                continue
            if isinstance(msg, _CollWake):
                continue
            if isinstance(msg, CollAck):
                if msg.coll_id == rec.coll_id:
                    acks.pop((msg.server, msg.round_no), None)
                else:
                    self._coll_acks.add(
                        (msg.coll_id, msg.server, msg.round_no)
                    )
                continue
            if isinstance(msg, CollSegment):
                key = (msg.server, msg.round_no)
                if msg.coll_id == rec.coll_id:
                    if key in fetches:
                        del fetches[key]
                        got[key] = msg
                    # else: duplicate of an already-received round
                else:
                    self._coll_stash[
                        (msg.coll_id, msg.server, msg.round_no)
                    ] = msg
                continue
            resp = msg
            rid = getattr(resp, "req_id", None)
            st = reqs.get(rid)
            if st is None:
                if rid not in self._done_reqs:
                    self._resp_stash[rid] = resp
                continue
            req = st[2]
            rpc = rpc_spans.get(rid)
            if resp.rejected:
                self.counters.retries += 1
                if metrics.enabled:
                    metrics.retry()
                if rpc is not None:
                    rpc.attrs["retries"] = rpc.attrs.get("retries", 0) + 1
                if cfg.server_retry_backoff > 0:
                    yield env.timeout(cfg.server_retry_backoff)
                yield from self._send_io(req)
                st[1] = env.now + base * (2 ** min(st[0], 20))
                continue
            if resp.error:
                if rpc is not None:
                    tracer.end(rpc, error=resp.error)
                raise PVFSError(resp.error)
            del reqs[rid]
            self._done_reqs.add(rid)
            responses[rid] = resp
            if st[0]:
                self.counters.failovers += 1
                if metrics.enabled:
                    metrics.failover()
                faults.rpc_failover(self.name, req, st[0], rpc)
            if metrics.enabled and rid in t_sent:
                metrics.observe_rpc(env.now - t_sent[rid], req.op_kind)
            if rpc is not None:
                tracer.end(rpc, nbytes=resp.nbytes, timeouts=st[0])
            _resolve_handoff(st)
        return responses, got

    def _coll_reelect(
        self, rec: CollRecovery, from_agg: int, to_agg: int, server: int,
        reqs: dict, rpc_spans: dict, span,
    ) -> None:
        """Hand every pending composite request for ``server`` to the
        elected surviving aggregator slot.

        Pure shared-state bookkeeping (the handoff marker models a
        local failure-detector signal, like the client's own timeout
        markers — no wire traffic, no simulated time): the moved
        request ids are marked done so late responses are discarded,
        their rpc spans closed, and ``pending_handoffs`` incremented
        *before* the marker lands so the completion gate can never
        release between the two.
        """
        tracer = self.system.tracer
        metrics = self.system.metrics
        faults = self.system.faults
        rec.dead.add(from_agg)
        moved = [
            (rid, st) for rid, st in reqs.items() if st[2].server == server
        ]
        rounds = sorted(st[2].coll.round_no for _, st in moved)
        rec.pending_handoffs += 1
        for rid, st in moved:
            del reqs[rid]
            self._done_reqs.add(rid)
            rpc = rpc_spans.pop(rid, None)
            if rpc is not None:
                tracer.end(rpc, reelected=True, timeouts=st[0])
            counter = st[3]
            if counter is not None:
                # a handed-off handoff releases its old counter (the
                # fresh pending_handoffs above keeps the gate closed)
                counter[0] -= 1
                if counter[0] == 0:
                    rec.pending_handoffs -= 1
        faults.coll_reelection(
            self.name, server, from_agg, to_agg, len(rounds),
            trace_id=span.trace_id if span is not None else -1, span=span,
        )
        if metrics.enabled:
            metrics.coll_reelect()
        rec.mailboxes[to_agg]._store.put(
            CollHandoff(rec, server, rounds, from_agg)
        )

    def coll_gate(self, rec: CollRecovery, my_agg=None, span=None):
        """Completion gate for aggregator ranks (armed faults only).

        Collective semantics require that no aggregator leaves while
        re-elected work is outstanding anywhere: a rank already at the
        closing barrier stops servicing its mailbox, and a handoff
        parked there would strand the surviving aggregators' rounds.
        Each aggregator therefore *arrives* here and keeps serving
        stray traffic (late duplicates, re-election handoffs) until
        every aggregator has arrived and no handoff is pending; the
        releasing rank drops a zero-cost wake marker into every
        waiter's mailbox.  Non-aggregator ranks never take handoffs
        and go straight to the barrier.
        """
        env = self.system.env
        costs = self.system.costs
        while self._coll_handoffs:
            yield from self.coll_complete(
                rec, my_agg=my_agg, span=span,
                handoff=self._coll_handoffs.pop(0),
            )
        rec.arrive(self.name, self.mailbox)
        while not rec.done:
            msg = yield self.mailbox.get()
            if isinstance(msg, _TimeoutMarker):
                continue  # a finished wait's dead marker
            if isinstance(msg, _CollWake):
                continue  # loop condition re-checks rec.done
            if isinstance(msg, CollHandoff):
                yield from self.coll_complete(
                    rec, my_agg=my_agg, span=span, handoff=msg,
                )
                continue
            yield env.timeout(costs.per_message_cpu)
            resp = msg.payload
            if isinstance(resp, CollSegment):
                if resp.coll_id != rec.coll_id:
                    self._coll_stash[
                        (resp.coll_id, resp.server, resp.round_no)
                    ] = resp
                continue
            if isinstance(resp, CollAck):
                if resp.coll_id != rec.coll_id:
                    self._coll_acks.add(
                        (resp.coll_id, resp.server, resp.round_no)
                    )
                continue
            rid = getattr(resp, "req_id", None)
            if rid not in self._done_reqs:
                self._resp_stash[rid] = resp

    def _io_round(self, requests, span=None):
        """Send all requests, then collect every response.

        A server running with a bounded admission queue may reject a
        request outright (``IOResponse.rejected``); the client backs off
        ``server_retry_backoff`` seconds and resends until admitted —
        the backpressure loop of the multi-threaded server model.

        When tracing, each request gets its own ``rpc`` round-trip span
        under ``span`` (the operation span); the request carries the
        trace id and the rpc span id so server-side and network spans
        join the same trace.
        """
        env = self.system.env
        cfg = self.system.config
        tracer = self.system.tracer
        metrics = self.system.metrics
        t_sent: dict[int, float] = {}
        rpc_spans: dict[int, object] = {}
        if tracer.enabled and span is not None:
            for req, _spos, _regions in requests:
                rpc = tracer.begin(
                    "rpc",
                    "client",
                    self.name,
                    trace_id=span.trace_id,
                    parent=span,
                    server=req.server,
                    op_kind=req.op_kind,
                    desc_bytes=req.descriptor_bytes(self.system.costs),
                )
                req.trace_id = span.trace_id
                req.trace_parent = rpc.span_id
                rpc_spans[req.req_id] = rpc
        faults = self.system.faults
        responses: dict[int, IOResponse] = {}
        for req, _spos, _regions in requests:
            if metrics.enabled:
                t_sent[req.req_id] = env.now
            yield from self._send_io(req)
        for req, _spos, _regions in requests:
            rpc = rpc_spans.get(req.req_id)
            if faults.enabled and faults.armed:
                resp = yield from self._collect_faulty(
                    req, rpc, t_sent.get(req.req_id, 0.0)
                )
                responses[resp.req_id] = resp
                continue
            while True:
                resp: IOResponse = yield from self._await_response(
                    req.req_id
                )
                if resp.rejected:
                    self.counters.retries += 1
                    if metrics.enabled:
                        metrics.retry()
                    if rpc is not None:
                        rpc.attrs["retries"] = rpc.attrs.get("retries", 0) + 1
                    if cfg.server_retry_backoff > 0:
                        yield env.timeout(cfg.server_retry_backoff)
                    yield from self._send_io(req)
                    continue
                if resp.error:
                    if rpc is not None:
                        tracer.end(rpc, error=resp.error)
                    raise PVFSError(resp.error)
                responses[resp.req_id] = resp
                if metrics.enabled:
                    # accumulates rejection backoff + resends: the
                    # latency the operation actually experienced
                    metrics.observe_rpc(
                        env.now - t_sent[req.req_id], req.op_kind
                    )
                if rpc is not None:
                    tracer.end(rpc, nbytes=resp.nbytes)
                break
        return responses

    def _collect_faulty(self, req: IORequest, rpc, t_sent: float):
        """Collect one response under an armed fault injector.

        The one recovery path for dropped messages and crashed servers:
        a per-RPC timeout with exponential backoff and bounded resends.
        Because striped transfers fan one operation out over many
        requests, resending just the timed-out request *is* job-level
        resume — the already-answered stripes are never re-shipped.
        Every attempt reuses the request id, so writes are idempotent
        and duplicated responses deduplicate naturally.  A request
        whose every retry times out raises
        :class:`~repro.pvfs.errors.RetriesExhausted` — never a hang.
        """
        env = self.system.env
        cfg = self.system.config
        tracer = self.system.tracer
        metrics = self.system.metrics
        faults = self.system.faults
        fcfg = faults.config
        attempts = 0
        while True:
            # the deadline doubles per consecutive timeout (TCP RTO
            # style): a base deadline shorter than a large transfer's
            # legitimate wire time would otherwise time out forever,
            # while crashed-server recovery stays one base deadline away
            deadline = fcfg.rpc_timeout * (2 ** min(attempts, 20))
            resp = yield from self._await_response_timed(
                req.req_id, deadline
            )
            if resp is None:
                attempts += 1
                self.counters.timeouts += 1
                if metrics.enabled:
                    metrics.timeout()
                faults.rpc_timeout(self.name, req, attempts, rpc)
                if attempts > fcfg.max_retries:
                    faults.rpc_exhausted(self.name, req, attempts, rpc)
                    msg = (
                        f"server iod{req.server} unresponsive: request "
                        f"{req.req_id} from {self.name} gave up after "
                        f"{attempts} timeouts"
                    )
                    if rpc is not None:
                        tracer.end(rpc, error=msg)
                    raise RetriesExhausted(
                        msg,
                        job_id=req.req_id,
                        server=req.server,
                        client=self.name,
                        attempts=attempts,
                    )
                backoff = fcfg.retry_backoff * (2 ** (attempts - 1))
                if backoff > 0:
                    yield env.timeout(backoff)
                yield from self._send_io(req)
                continue
            if resp.rejected:
                self.counters.retries += 1
                if metrics.enabled:
                    metrics.retry()
                if rpc is not None:
                    rpc.attrs["retries"] = rpc.attrs.get("retries", 0) + 1
                if cfg.server_retry_backoff > 0:
                    yield env.timeout(cfg.server_retry_backoff)
                yield from self._send_io(req)
                continue
            if resp.error:
                if rpc is not None:
                    tracer.end(rpc, error=resp.error)
                raise PVFSError(resp.error)
            self._done_reqs.add(req.req_id)
            if attempts:
                self.counters.failovers += 1
                if metrics.enabled:
                    metrics.failover()
                faults.rpc_failover(self.name, req, attempts, rpc)
            if metrics.enabled:
                metrics.observe_rpc(env.now - t_sent, req.op_kind)
            if rpc is not None:
                tracer.end(rpc, nbytes=resp.nbytes, timeouts=attempts)
            return resp

    def _send_io(self, req: IORequest):
        """Ship one I/O request (counted; used for sends and resends)."""
        net = self.system.net
        costs = self.system.costs
        dst = self.system.servers[req.server].mailbox
        self.counters.requests_sent += 1
        self.counters.request_desc_bytes += req.descriptor_bytes(costs)
        self.counters.regions_shipped += req.listio_pairs
        # non-blocking sockets: requests to distinct servers are in
        # flight concurrently; the NIC reservations still serialize
        # the actual bytes
        yield from net.send(
            self.mailbox,
            dst,
            req.wire_bytes(costs),
            payload=req,
            pace=False,
            faultable=True,
        )
