"""A PVFS-like parallel file system (paper §3.1).

Functionally real (bytes move, reads verify) and temporally simulated
(every message and disk access advances the discrete-event clock).

Components, mirroring PVFS 1.5.x:

* a **metadata server** (:mod:`~repro.pvfs.metadata`) owning the
  namespace and per-file striping parameters; clients contact it only
  at open/stat time;
* **I/O servers** (:mod:`~repro.pvfs.server`), daemons driving a staged
  request pipeline (decode → plan → storage → respond,
  :mod:`~repro.pvfs.pipeline`) that turns incoming access descriptions
  into PVFS *job*/*access* structures (:mod:`~repro.pvfs.jobs`) and
  moves data against their local :class:`~repro.storage.BlockStore`;
  single-threaded by default (the paper's iod), multi-threaded with a
  bounded admission queue via ``PVFSConfig.server_threads``;
* a **client library** (:mod:`~repro.pvfs.client`) supporting the three
  access interfaces the paper compares at the file-system level:
  contiguous (POSIX-style) I/O, **list I/O** (bounded offset–length
  lists, §2.4) and **datatype I/O** (shipped dataloops, §3);
* round-robin **striping** (:mod:`~repro.pvfs.distribution`), 64 KiB
  strips over 16 servers by default, exactly the paper's layout.

Use :class:`PVFS` to assemble a cluster::

    env = Environment()
    fs = PVFS(env, n_servers=16)
    client = fs.client("c0")
"""

from .config import PVFSConfig, TenantConfig
from .system import PVFS
from .client import PVFSClient, FileHandle
from .distribution import Distribution
from .jobs import Job, ServerPlan, build_jobs
from .errors import (
    PVFSError,
    FileNotFound,
    LockUnsupported,
    ProtocolError,
    RetriesExhausted,
    ServerTimeout,
)
from .pipeline import (
    HANDLER_REGISTRY,
    RequestHandler,
    register_handler,
    resolve_handler,
)

__all__ = [
    "PVFS",
    "PVFSConfig",
    "TenantConfig",
    "PVFSClient",
    "FileHandle",
    "Distribution",
    "Job",
    "ServerPlan",
    "build_jobs",
    "PVFSError",
    "FileNotFound",
    "LockUnsupported",
    "ProtocolError",
    "RetriesExhausted",
    "ServerTimeout",
    "HANDLER_REGISTRY",
    "RequestHandler",
    "register_handler",
    "resolve_handler",
]
