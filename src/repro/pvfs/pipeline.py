"""Staged server request pipeline.

Every I/O request moves through four explicit stages:

``decode`` → ``plan`` → ``storage`` → ``respond``

* **decode** — parse/validate the request and charge the per-operation
  dispatch cost (``fs_op_server_cost``);
* **plan** — build the access structures: intersect shipped regions
  with local strips, or expand a shipped dataloop window with partial
  processing (§3.2); produces a :class:`~repro.pvfs.jobs.ServerPlan`;
* **storage** — move bytes against the local :class:`BlockStore` and
  charge disk positioning + transfer time;
* **respond** — hand the reply to the socket layer.

The three request kinds (contiguous/POSIX, list I/O, datatype I/O) plus
the PVFS2-style ``direct_dataloop`` streaming variant are pluggable
:class:`RequestHandler` classes in a registry — new request kinds
register themselves instead of growing an ``if/elif`` chain in the
daemon.

Two schedulers drive the pipeline:

* :class:`SerialScheduler` (``server_threads=1``, the default) is the
  paper's single-threaded iod: stages of one request run back-to-back
  inside the daemon loop, plan + storage charge one combined busy
  period, and read-side CPU work stalls the transmit pump — bit-for-bit
  the seed's timing (§4.3's read decline depends on it);
* :class:`ThreadedScheduler` (``server_threads=N``) models a modern
  multi-threaded daemon: a dispatcher admits requests into a bounded
  queue (rejecting with backpressure when full; clients back off and
  resend), up to N workers run plan/storage stages of distinct requests
  concurrently, the single disk arm still serializes media time, and
  responses are pumped by a dedicated network thread (no tx stall).

Both schedulers record per-stage times into the server's
:class:`~repro.simulation.stats.StageTimes`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import replace
from typing import TYPE_CHECKING

from ..regions import Regions
from ..simulation.resources import Resource
from .distribution import ServerSplit
from .errors import ProtocolError
from .expand_cache import expand_window
from .jobs import ServerPlan
from .protocol import (
    OP_COLL,
    OP_CONTIG,
    OP_DTYPE,
    OP_LIST,
    CollAck,
    CollSegment,
    DataloopWindow,
    IORequest,
    IOResponse,
)

if TYPE_CHECKING:  # pragma: no cover
    from .server import IOServer

__all__ = [
    "RequestHandler",
    "ContiguousHandler",
    "ListIOHandler",
    "DatatypeHandler",
    "DirectDataloopHandler",
    "CollectiveHandler",
    "preplan_collective",
    "HANDLER_REGISTRY",
    "register_handler",
    "resolve_handler",
    "SerialScheduler",
    "ThreadedScheduler",
    "TenantAdmission",
    "make_scheduler",
]


# ----------------------------------------------------------------------
# handler registry
# ----------------------------------------------------------------------
#: op-kind key → handler class.  Variant handlers use ``kind:variant``
#: keys; :func:`resolve_handler` falls back to the bare kind.
HANDLER_REGISTRY: dict[str, type["RequestHandler"]] = {}


def register_handler(cls: type["RequestHandler"]) -> type["RequestHandler"]:
    """Class decorator: register a handler under its ``registry_key``."""
    key = cls.registry_key
    if not key:
        raise ValueError(f"{cls.__name__} has no registry_key")
    HANDLER_REGISTRY[key] = cls
    return cls


def resolve_handler(op_kind: str, config) -> "RequestHandler":
    """Pick the handler instance for a request kind under ``config``.

    Datatype requests resolve to the streaming variant when the file
    system runs in ``direct_dataloop`` mode; unknown kinds raise
    :class:`ProtocolError` (reported to the client, not fatal).
    """
    key = op_kind
    if op_kind == OP_DTYPE and config.direct_dataloop:
        key = OP_DTYPE + ":direct"
    cls = HANDLER_REGISTRY.get(key) or HANDLER_REGISTRY.get(op_kind)
    if cls is None:
        raise ProtocolError(f"no handler registered for op kind {op_kind!r}")
    return cls.instance()


class RequestHandler:
    """One request kind's decode and plan stages.

    Handlers are stateless singletons; per-request state lives in the
    request and the :class:`~repro.pvfs.jobs.ServerPlan` they return.
    """

    #: registry key (op kind, optionally ``kind:variant``)
    registry_key: str = ""
    _instance: "RequestHandler | None" = None

    @classmethod
    def instance(cls) -> "RequestHandler":
        inst = cls.__dict__.get("_instance")
        if inst is None:
            inst = cls()
            cls._instance = inst
        return inst

    # -- decode --------------------------------------------------------
    def decode(self, server: "IOServer", req: IORequest) -> float:
        """Validate the request; return the parse/dispatch CPU cost."""
        req.validate()
        return server.system.costs.fs_op_server_cost * req.op_count

    # -- plan ----------------------------------------------------------
    def plan(self, server: "IOServer", req: IORequest) -> ServerPlan:
        """Build the access list and account its construction cost."""
        raise NotImplementedError


class _ShippedRegionsHandler(RequestHandler):
    """Base for kinds whose request already carries this server's
    physical regions (the client did the striping split)."""

    def plan(self, server: "IOServer", req: IORequest) -> ServerPlan:
        costs = server.system.costs
        regions = req.regions
        built = regions.count
        per_region = (
            costs.server_region_write_cost
            if req.is_write
            else costs.server_region_read_cost
        )
        return ServerPlan(
            regions=regions, built=built, proc_cost=built * per_region
        )


@register_handler
class ContiguousHandler(_ShippedRegionsHandler):
    """POSIX-style contiguous operations (possibly sim-batched runs)."""

    registry_key = OP_CONTIG


@register_handler
class ListIOHandler(_ShippedRegionsHandler):
    """List I/O: bounded offset–length lists shipped on the wire (§2.4)."""

    registry_key = OP_LIST


@register_handler
class DatatypeHandler(RequestHandler):
    """Datatype I/O: expand the shipped dataloop window locally (§3.2).

    Uses partial processing: the window is expanded in bounded batches,
    each immediately intersected with the local strips, so intermediate
    offset–length storage never exceeds the batch bound.  When the
    server runs an expansion cache (``expand_cache=True``), the cache is
    consulted first: a hit replaces the per-region scan charge for the
    cached portion with a flat ``server_cache_hit_cost``.
    """

    registry_key = OP_DTYPE

    def plan(self, server: "IOServer", req: IORequest) -> ServerPlan:
        costs = server.system.costs
        split, scanned, hit = self._expand_window(server, req)
        regions = split.regions
        built = regions.count
        # exclusive attribution: construction cost goes to the plan
        # stage, the flat hit charge to the cache stage — never both
        return ServerPlan(
            regions=regions,
            built=built,
            scanned=scanned,
            proc_cost=self._proc_cost(costs, req, built, scanned),
            cache_cost=costs.server_cache_hit_cost if hit else 0.0,
            cache_hit=hit,
        )

    def _proc_cost(self, costs, req, built: int, scanned: int) -> float:
        per_region = (
            costs.server_region_write_cost
            if req.is_write
            else costs.server_region_read_cost
        )
        return scanned * costs.server_region_scan_cost + built * per_region

    def _expand_window(
        self, server: "IOServer", req: IORequest
    ) -> tuple[ServerSplit, int, bool]:
        cfg = server.system.config
        win = req.window
        meta = server.system.metadata.lookup(req.handle)
        dist = meta.dist
        cache = server.expand_cache
        if cache is not None:
            return cache.expand(
                win, dist, server.index, cfg.dataloop_batch_regions
            )
        split, scanned = expand_window(
            win.loop,
            win.tile_count(),
            win.displacement,
            win.first,
            win.last,
            dist,
            server.index,
            cfg.dataloop_batch_regions,
        )
        return split, scanned, False


@register_handler
class DirectDataloopHandler(DatatypeHandler):
    """PVFS2-style streaming variant (§5): data moves straight from the
    dataloop cursor, so only the scan arithmetic is charged — no
    job/access list construction cost."""

    registry_key = OP_DTYPE + ":direct"

    def _proc_cost(self, costs, req, built: int, scanned: int) -> float:
        return scanned * costs.server_region_scan_cost


@register_handler
class CollectiveHandler(RequestHandler):
    """Collective datatype I/O: one aggregated request per (server,
    round) carrying the deduplicated views and every participating
    rank's round window.

    The server re-expands each participant's dataloop over its round
    window — through the expansion cache, so FLASH-style identical
    views collapse to one expansion plus cheap hits — and *coalesces*
    the union into one merged extent list: the job/access structures
    (and the disk arm's sweep) are built per merged extent, while data
    still moves per rank so each participant's bytes stay in its own
    packed-stream order.  Write payloads arrive out-of-band as
    :class:`~repro.pvfs.protocol.CollSegment` messages (the server
    parks the request until the round's segments are in); read results
    are scattered back to the ranks by :meth:`finish`.
    """

    registry_key = OP_COLL

    def decode(self, server: "IOServer", req: IORequest) -> float:
        if req.preplanned is not None:
            # decode was already charged when the parked round was
            # pre-planned (preplan_collective)
            return 0.0
        return super().decode(server, req)

    def plan(self, server: "IOServer", req: IORequest) -> ServerPlan:
        pre = req.preplanned
        if pre is not None:
            # the construction work was charged while the round's data
            # was still arriving; only payload assembly remains.  The
            # clone keeps the real built/scanned counters (recorded
            # once, here) but zero CPU cost.
            req.preplanned = None
            plan = replace(
                pre, proc_cost=0.0, cache_cost=0.0, cache_hit=False
            )
        else:
            plan = self.build_plan(server, req)
        if req.is_write:
            req.payload = server.coll.assemble_payload(req.coll)
        return plan

    def build_plan(self, server: "IOServer", req: IORequest) -> ServerPlan:
        """The construction work of the plan stage, payload assembly
        excluded — callable before the round's data has arrived."""
        costs = server.system.costs
        cfg = server.system.config
        c = req.coll
        meta = server.system.metadata.lookup(req.handle)
        dist = meta.dist
        cache = server.expand_cache
        batch = cfg.dataloop_batch_regions
        splits = []
        scanned = 0
        hit = False
        cache_cost = 0.0
        for part in c.parts:
            win = DataloopWindow(
                c.views[part.view], part.displacement, part.first, part.last
            )
            if cache is not None:
                split, n, h = cache.expand(win, dist, server.index, batch)
                if h:
                    hit = True
                    cache_cost += costs.server_cache_hit_cost
            else:
                split, n = expand_window(
                    win.loop,
                    win.tile_count(),
                    win.displacement,
                    win.first,
                    win.last,
                    dist,
                    server.index,
                    batch,
                )
            splits.append(split)
            scanned += n
        # data order: each rank's regions stay contiguous and in its own
        # stream order (payload/scatter correctness) ...
        regions = Regions.concat([s.regions for s in splits])
        # ... while the job/access structures and the disk arm work on
        # the merged extent list (adjacent ranks' blocks coalesce)
        merged = regions.normalized()
        built = merged.count
        per_region = (
            costs.server_region_write_cost
            if req.is_write
            else costs.server_region_read_cost
        )
        proc = (
            scanned * costs.server_region_scan_cost
            # one vectorized merge pass over the per-rank region union
            + regions.count * costs.server_region_scan_cost
            + built * per_region
        )
        plan = ServerPlan(
            regions=regions,
            built=built,
            scanned=scanned,
            proc_cost=proc,
            cache_cost=cache_cost,
            cache_hit=hit,
            disk_regions=merged,
        )
        return plan

    def finish(self, server: "IOServer", req: IORequest, plan, resp, span=None):
        """Post-storage hook: scatter a read's composite stream back to
        the participating ranks (one data segment each) and ack the
        aggregator with a header-only response."""
        c = req.coll
        costs = server.system.costs
        net = server.system.net
        env = server.system.env
        metrics = server.system.metrics
        faults = server.system.faults
        armed = faults.enabled and faults.armed
        if req.is_write:
            server.coll.retire(c.coll_id, c.round_no, resp)
            if not armed:
                return resp
            # Per-(round, server) acknowledgements (fault tolerance):
            # each rank's segment is confirmed applied, releasing its
            # ack-ladder entry.  Accounted exactly like the read
            # scatter — respond stage time plus one server.scatter
            # span — so blame reconciliation stays exact.
            t0 = env.now
            for part in c.parts:
                ack = CollAck(
                    coll_id=c.coll_id,
                    round_no=c.round_no,
                    server=server.index,
                    client=part.client,
                )
                if span is not None:
                    ack.trace_id = req.trace_id
                    ack.trace_parent = span.span_id
                yield from net.send(
                    server.mailbox,
                    part.reply_to,
                    ack.wire_bytes(costs),
                    payload=ack,
                    pace=False,
                    faultable=True,
                )
            dt = env.now - t0
            server.stage_times.respond += dt
            if metrics.enabled:
                metrics.observe_stage("respond", dt)
            if span is not None:
                server.system.tracer.add(
                    "server.scatter",
                    "server",
                    f"iod{server.index}",
                    t0,
                    env.now,
                    trace_id=req.trace_id,
                    parent=span,
                    nbytes=0,
                    parts=len(c.parts),
                )
            return resp
        stream = resp.payload
        t0 = env.now
        off = 0
        for part in c.parts:
            payload = None
            if stream is not None:
                payload = stream[off : off + part.nbytes]
            off += part.nbytes
            seg = CollSegment(
                coll_id=c.coll_id,
                round_no=c.round_no,
                server=server.index,
                client=part.client,
                nbytes=part.nbytes,
                payload=payload,
            )
            if span is not None:
                seg.trace_id = req.trace_id
                seg.trace_parent = span.span_id
            if armed:
                # retain for CollFetch service (a dropped delivery is
                # re-sent from memory, not re-expanded)
                server.coll.cache_read_segment(seg)
            yield from net.send(
                server.mailbox,
                part.reply_to,
                seg.wire_bytes(costs),
                payload=seg,
                pace=False,
                faultable=armed,
            )
        server.stage_times.respond += env.now - t0
        if metrics.enabled:
            metrics.observe_stage("respond", env.now - t0)
            metrics.tenant_bytes(req.tenant, resp.nbytes)
        if span is not None:
            server.system.tracer.add(
                "server.scatter",
                "server",
                f"iod{server.index}",
                t0,
                env.now,
                trace_id=req.trace_id,
                parent=span,
                nbytes=resp.nbytes,
                parts=len(c.parts),
            )
        return IOResponse(req.req_id, nbytes=0, accesses_built=plan.built)


# ----------------------------------------------------------------------
# shared stage bodies
# ----------------------------------------------------------------------
def preplan_collective(server: "IOServer", req: IORequest):
    """Decode + plan a parked collective write round eagerly.

    The aggregated request travels ahead of the round's data segments,
    so the daemon can do the expensive construction work (window
    re-expansion, striping split, extent merge) during wire time it
    would otherwise spend idle waiting for data.  When the last
    segment lands, only payload assembly, disk and respond remain —
    the post-reception tail of the collective shrinks from a full
    plan+storage period to (nearly) the disk time alone.

    Charges and stage accounting are identical to the deferred path;
    they just happen earlier.  ``record_plan`` is *not* called here —
    the submit-time pass records the built/scanned counters exactly
    once via the cached plan.  Spans, too, are recorded here rather
    than at submit time (where the stages are zero-width): they parent
    directly under the aggregator's rpc span, as siblings of the later
    ``server.request``.
    """
    env = server.system.env
    st = server.stage_times
    metrics = server.system.metrics
    tracer = server.system.tracer
    traced = tracer.enabled and req.trace_id >= 0
    actor = f"iod{server.index}"
    handler = resolve_handler(req.op_kind, server.system.config)
    t0 = env.now
    yield env.timeout(handler.decode(server, req))
    dt = env.now - t0
    st.decode += dt
    if metrics.enabled:
        metrics.observe_stage("decode", dt)
    if traced:
        tracer.add(
            "server.decode",
            "server",
            actor,
            t0,
            env.now,
            trace_id=req.trace_id,
            parent=req.trace_parent,
            preplanned=True,
        )
    plan = handler.build_plan(server, req)
    cpu = plan.proc_cost + plan.cache_cost
    t1 = env.now
    if cpu > 0:
        yield env.timeout(cpu)
    st.plan += plan.proc_cost
    st.cache += plan.cache_cost
    if metrics.enabled:
        metrics.observe_stage("plan", plan.proc_cost)
        metrics.observe_stage("cache", plan.cache_cost)
    if traced:
        t2 = t1 + plan.proc_cost
        tracer.add(
            "server.plan",
            "server",
            actor,
            t1,
            t2,
            trace_id=req.trace_id,
            parent=req.trace_parent,
            built=plan.built,
            scanned=plan.scanned,
            preplanned=True,
        )
        if plan.cache_cost > 0 or plan.cache_hit:
            tracer.add(
                "server.cache",
                "server",
                actor,
                t2,
                t2 + plan.cache_cost,
                trace_id=req.trace_id,
                parent=req.trace_parent,
                hit=plan.cache_hit,
                preplanned=True,
            )
    req.preplanned = plan


def move_data(server: "IOServer", req: IORequest, plan: ServerPlan):
    """The storage stage's data movement (no simulated time here; the
    scheduler charges the disk time).  Returns the response."""
    regions = plan.regions
    nbytes = regions.total_bytes
    if req.is_write:
        if req.payload is not None:
            server.store.write_regions(req.handle, regions, req.payload)
        else:
            server.store.note_write(req.handle, regions)
        server.bytes_written += nbytes
        return IOResponse(
            req.req_id, nbytes=nbytes, accesses_built=plan.built
        )
    if req.phantom:
        server.store.note_read(regions)
        data = None
    else:
        data = server.store.read_regions(req.handle, regions)
    server.bytes_read += nbytes
    return IOResponse(
        req.req_id, payload=data, nbytes=nbytes, accesses_built=plan.built
    )


def send_error(server: "IOServer", req: IORequest, exc: Exception):
    """Report a failed request back to the client (daemon survives)."""
    costs = server.system.costs
    resp = IOResponse(req.req_id, error=f"{type(exc).__name__}: {exc}")
    resp.trace_id = req.trace_id
    resp.trace_parent = req.trace_parent
    yield from server.system.net.send(
        server.mailbox,
        req.reply_to,
        costs.header_bytes,
        payload=resp,
        pace=False,
        faultable=True,
    )


def _respond(server: "IOServer", req: IORequest, resp: IOResponse, parent=None):
    """Respond stage: non-blocking handoff to the socket layer; the
    reply drains while the daemon services the next request."""
    env = server.system.env
    tracer = server.system.tracer
    metrics = server.system.metrics
    traced = tracer.enabled and req.trace_id >= 0
    if traced:
        # the response's net.xfer span parents under the client's RPC
        # span (the transfer outlives this respond span)
        resp.trace_id = req.trace_id
        resp.trace_parent = req.trace_parent
    t0 = env.now
    yield from server.system.net.send(
        server.mailbox,
        req.reply_to,
        resp.wire_bytes(server.system.costs, req.is_write),
        payload=resp,
        pace=False,
        faultable=True,
    )
    dt = env.now - t0
    server.stage_times.respond += dt
    if metrics.enabled:
        metrics.observe_stage("respond", dt)
        metrics.tenant_bytes(req.tenant, resp.nbytes)
    if traced:
        tracer.add(
            "server.respond",
            "server",
            f"iod{server.index}",
            t0,
            env.now,
            trace_id=req.trace_id,
            parent=parent,
            nbytes=resp.nbytes if not req.is_write else 0,
        )


def _record_busy_spans(tracer, server, req, span, plan, t1, disk_time):
    """Record the plan/cache/storage sub-spans of one busy period.

    The stages are laid end-to-end from ``t1`` in charge order (plan
    construction, cache hit charge, disk service), so the per-stage
    span sums reconcile exactly with :class:`StageTimes` even under the
    serial scheduler's single combined timeout.
    """
    actor = f"iod{server.index}"
    t2 = t1 + plan.proc_cost
    attrs = {"built": plan.built, "scanned": plan.scanned}
    if req.window is not None:
        attrs["dataloop"] = req.window.loop.fingerprint().hex()
    tracer.add(
        "server.plan",
        "server",
        actor,
        t1,
        t2,
        trace_id=req.trace_id,
        parent=span,
        **attrs,
    )
    t3 = t2 + plan.cache_cost
    if plan.cache_cost > 0 or plan.cache_hit:
        tracer.add(
            "server.cache",
            "server",
            actor,
            t2,
            t3,
            trace_id=req.trace_id,
            parent=span,
            hit=plan.cache_hit,
        )
    tracer.add(
        "server.storage",
        "server",
        actor,
        t3,
        t3 + disk_time,
        trace_id=req.trace_id,
        parent=span,
        nbytes=plan.regions.total_bytes,
        regions=plan.regions.count,
    )


# ----------------------------------------------------------------------
# schedulers
# ----------------------------------------------------------------------
class SerialScheduler:
    """The paper's single-threaded iod, expressed over the pipeline.

    Stage charging is bit-for-bit the seed implementation: one decode
    timeout, then plan + storage as a single combined busy period during
    which (for reads) the node's transmit horizon is pushed out — the
    stalled socket pump behind the §4.3 read decline.
    """

    concurrent = False

    def __init__(self, server: "IOServer"):
        self.server = server

    def submit(self, req: IORequest, queue_wait: float = 0.0):
        server = self.server
        env = server.system.env
        metrics = server.system.metrics
        st = server.stage_times
        queued = server.backlog() + 1  # waiting + the one in hand
        if queued > st.peak_queue:
            st.peak_queue = queued
        t_start = env.now
        if metrics.enabled:
            metrics.observe_queue_wait(queue_wait)
            metrics.tenant_queue_wait(req.tenant, queue_wait)
        tracer = server.system.tracer
        span = None
        if tracer.enabled and req.trace_id >= 0:
            attrs = {}
            if server.system.config.tenants is not None:
                attrs["tenant"] = req.tenant
            span = tracer.begin(
                "server.request",
                "server",
                f"iod{server.index}",
                trace_id=req.trace_id,
                parent=req.trace_parent,
                op_kind=req.op_kind,
                is_write=req.is_write,
                op_count=req.op_count,
                queue_wait=queue_wait,
                **attrs,
            )
        try:
            yield from self._serve(req, span)
        except Exception as exc:  # noqa: BLE001 - daemon must survive
            if span is not None:
                span.attrs["error"] = f"{type(exc).__name__}: {exc}"
            yield from send_error(server, req, exc)
        finally:
            if span is not None:
                tracer.end(span)
            if metrics.enabled:
                # end-to-end: mailbox wait + everything through respond
                total = queue_wait + env.now - t_start
                metrics.observe_request(total)
                metrics.tenant_request(req.tenant, total)

    def _serve(self, req: IORequest, span=None):
        server = self.server
        env = server.system.env
        st = server.stage_times
        tracer = server.system.tracer
        metrics = server.system.metrics
        traced = span is not None

        # ----- decode -----
        handler = resolve_handler(req.op_kind, server.system.config)
        server.requests += 1
        server.ops += req.op_count
        st.requests += 1
        t0 = env.now
        yield env.timeout(handler.decode(server, req))
        dt = env.now - t0
        st.decode += dt
        if metrics.enabled:
            metrics.observe_stage("decode", dt)
        if traced:
            tracer.add(
                "server.decode",
                "server",
                f"iod{server.index}",
                t0,
                env.now,
                trace_id=req.trace_id,
                parent=span,
            )

        # ----- plan + storage timing (one busy period) -----
        plan = handler.plan(server, req)
        server.record_plan(plan)
        disk_time = server.disk.access_time(
            plan.regions if plan.disk_regions is None else plan.disk_regions
        )
        faults = server.system.faults
        if faults.enabled and disk_time > 0:
            # injected slowdown/stall folds into the effective media
            # time, so StageTimes, the storage histogram and the
            # storage span all agree without special-casing
            disk_time += faults.disk_penalty(
                f"iod{server.index}",
                disk_time,
                t_start=env.now + plan.proc_cost + plan.cache_cost,
                trace_id=req.trace_id,
                parent=span,
            )
        busy = plan.proc_cost + plan.cache_cost + disk_time
        t1 = env.now
        if busy > 0:
            if not req.is_write:
                # The iod is single-threaded: while its CPU builds
                # access lists (or blocks in read syscalls) it is not
                # pumping earlier responses out of the socket buffers.
                # Reads therefore stall the transmit pump — the effect
                # behind the 3-D block read decline (§4.3).  Writes are
                # sink-side; TCP buffering hides the processing.
                node = server.node
                node.tx_busy_until = max(node.tx_busy_until, env.now) + busy
            yield env.timeout(busy)
        st.plan += plan.proc_cost
        st.cache += plan.cache_cost
        st.storage += disk_time
        if metrics.enabled:
            metrics.observe_stage("plan", plan.proc_cost)
            metrics.observe_stage("cache", plan.cache_cost)
            metrics.observe_stage("storage", disk_time)
        if traced:
            _record_busy_spans(tracer, server, req, span, plan, t1, disk_time)

        # ----- storage data movement + respond -----
        resp = move_data(server, req, plan)
        finish = getattr(handler, "finish", None)
        if finish is not None:
            resp = yield from finish(server, req, plan, resp, span)
        yield from _respond(server, req, resp, span)


class ThreadedScheduler:
    """Multi-threaded iod with a bounded admission queue.

    The dispatcher (the daemon's receive loop) either admits a request —
    spawning a worker that queues on the thread pool — or, when
    ``server_queue_depth`` requests are already in the building, rejects
    it immediately so the client backs off and resends.  Workers overlap
    plan/storage stages of distinct requests; one disk arm per server
    still serializes media time; responses never stall on request CPU
    (a dedicated network thread pumps the sockets).
    """

    concurrent = True

    def __init__(self, server: "IOServer"):
        self.server = server
        env = server.system.env
        cfg = server.system.config
        self.threads = Resource(
            env, capacity=cfg.server_threads, name=f"iod{server.index}.cpu"
        )
        self.disk_arm = Resource(
            env, capacity=1, name=f"iod{server.index}.disk"
        )
        self.inflight = 0

    def submit(self, req: IORequest, queue_wait: float = 0.0):
        server = self.server
        cfg = server.system.config
        st = server.stage_times
        tracer = server.system.tracer
        if self.inflight >= cfg.server_queue_depth:
            # admission control: explicit rejection, client will retry
            st.rejected += 1
            resp = IOResponse(req.req_id, rejected=True)
            if tracer.enabled and req.trace_id >= 0:
                resp.trace_id = req.trace_id
                resp.trace_parent = req.trace_parent
                now = server.system.env.now
                tracer.add(
                    "server.reject",
                    "server",
                    f"iod{server.index}",
                    now,
                    now,
                    trace_id=req.trace_id,
                    parent=req.trace_parent,
                    inflight=self.inflight,
                )
            yield from server.system.net.send(
                server.mailbox,
                req.reply_to,
                server.system.costs.header_bytes,
                payload=resp,
                pace=False,
            )
            return
        self.inflight += 1
        if self.inflight > st.peak_queue:
            st.peak_queue = self.inflight
        metrics = server.system.metrics
        if metrics.enabled:
            metrics.observe_queue_wait(queue_wait)
            metrics.tenant_queue_wait(req.tenant, queue_wait)
        span = None
        if tracer.enabled and req.trace_id >= 0:
            attrs = {}
            if server.system.config.tenants is not None:
                attrs["tenant"] = req.tenant
            span = tracer.begin(
                "server.request",
                "server",
                f"iod{server.index}",
                trace_id=req.trace_id,
                parent=req.trace_parent,
                op_kind=req.op_kind,
                is_write=req.is_write,
                op_count=req.op_count,
                queue_wait=queue_wait,
                **attrs,
            )
        server.system.env.process(
            self._worker(req, span, queue_wait),
            name=f"iod{server.index}.req{req.req_id}",
        )

    def _worker(self, req: IORequest, span=None, queue_wait: float = 0.0):
        server = self.server
        env = server.system.env
        tracer = server.system.tracer
        metrics = server.system.metrics
        t_start = env.now
        try:
            t0 = env.now
            yield self.threads.request()
            if span is not None:
                # admission-to-thread wait under the bounded pool
                span.attrs["thread_wait"] = env.now - t0
            try:
                yield from self._serve(req, span)
            finally:
                self.threads.release()
        except Exception as exc:  # noqa: BLE001 - daemon must survive
            if span is not None:
                span.attrs["error"] = f"{type(exc).__name__}: {exc}"
            yield from send_error(server, req, exc)
        finally:
            self.inflight -= 1
            if span is not None:
                tracer.end(span)
            if metrics.enabled:
                # end-to-end: mailbox wait + everything through respond
                total = queue_wait + env.now - t_start
                metrics.observe_request(total)
                metrics.tenant_request(req.tenant, total)

    def _serve(self, req: IORequest, span=None):
        server = self.server
        env = server.system.env
        st = server.stage_times
        tracer = server.system.tracer
        metrics = server.system.metrics
        traced = span is not None
        actor = f"iod{server.index}"

        # ----- decode -----
        handler = resolve_handler(req.op_kind, server.system.config)
        server.requests += 1
        server.ops += req.op_count
        st.requests += 1
        t0 = env.now
        yield env.timeout(handler.decode(server, req))
        dt = env.now - t0
        st.decode += dt
        if metrics.enabled:
            metrics.observe_stage("decode", dt)
        if traced:
            tracer.add(
                "server.decode",
                "server",
                actor,
                t0,
                env.now,
                trace_id=req.trace_id,
                parent=span,
            )

        # ----- plan (concurrent across requests, up to N threads) -----
        plan = handler.plan(server, req)
        server.record_plan(plan)
        t1 = env.now
        cpu = plan.proc_cost + plan.cache_cost
        if cpu > 0:
            yield env.timeout(cpu)
        st.plan += plan.proc_cost
        st.cache += plan.cache_cost
        if metrics.enabled:
            metrics.observe_stage("plan", plan.proc_cost)
            metrics.observe_stage("cache", plan.cache_cost)
        if traced:
            t2 = t1 + plan.proc_cost
            attrs = {"built": plan.built, "scanned": plan.scanned}
            if req.window is not None:
                attrs["dataloop"] = req.window.loop.fingerprint().hex()
            tracer.add(
                "server.plan",
                "server",
                actor,
                t1,
                t2,
                trace_id=req.trace_id,
                parent=span,
                **attrs,
            )
            if plan.cache_cost > 0 or plan.cache_hit:
                tracer.add(
                    "server.cache",
                    "server",
                    actor,
                    t2,
                    t2 + plan.cache_cost,
                    trace_id=req.trace_id,
                    parent=span,
                    hit=plan.cache_hit,
                )

        # ----- storage (one disk arm per server) -----
        yield self.disk_arm.request()
        try:
            t3 = env.now
            disk_time = server.disk.access_time(
                plan.regions if plan.disk_regions is None else plan.disk_regions
            )
            faults = server.system.faults
            if faults.enabled and disk_time > 0:
                disk_time += faults.disk_penalty(
                    f"iod{server.index}",
                    disk_time,
                    t_start=t3,
                    trace_id=req.trace_id,
                    parent=span,
                )
            if disk_time > 0:
                yield env.timeout(disk_time)
        finally:
            self.disk_arm.release()
        st.storage += disk_time
        if metrics.enabled:
            metrics.observe_stage("storage", disk_time)
        if traced:
            tracer.add(
                "server.storage",
                "server",
                actor,
                t3,
                t3 + disk_time,
                trace_id=req.trace_id,
                parent=span,
                nbytes=plan.regions.total_bytes,
                regions=plan.regions.count,
            )

        resp = move_data(server, req, plan)
        finish = getattr(handler, "finish", None)
        if finish is not None:
            resp = yield from finish(server, req, plan, resp, span)
        yield from _respond(server, req, resp, span)


# ----------------------------------------------------------------------
# multi-tenant admission
# ----------------------------------------------------------------------
class TenantAdmission:
    """Weighted-fair admission over per-tenant request queues.

    Classic deficit round-robin (DRR): each tenant owns a FIFO queue
    and a deficit counter.  When the rotation visits a backlogged
    tenant its deficit grows by a quantum proportional to its
    ``TenantConfig.weight``; the head request is admitted while the
    deficit covers its byte cost.  During sustained contention tenant
    *i* therefore receives ``weight_i / sum(weights)`` of the admitted
    bytes regardless of request sizes or arrival order.

    Optional per-tenant token buckets (``rate_limit`` bytes/s, depth
    ``burst``) pace admission below the fair share; when every
    backlogged tenant is token-blocked, :meth:`next` returns a
    deterministic ``("sleep", dt)`` verdict — the earliest instant a
    bucket refills — so the daemon parks without busy-waiting.
    Requests costing more than a bucket's depth drain the full bucket
    (the standard cap; otherwise they could never be admitted).

    Starvation accounting: per-tenant admitted counts/bytes and mean/
    max admission waits, exposed via :meth:`report` and the
    ``repro_tenant_*`` metrics.

    The class is pure bookkeeping — it never touches the simulation
    clock itself, so its decisions are exactly reproducible.
    """

    def __init__(self, env, tenants, quantum_bytes: int = 65536):
        self.env = env
        self.tenants = list(tenants)
        n = len(self.tenants)
        max_w = max(t.weight for t in self.tenants)
        #: DRR quantum per tenant, scaled so the heaviest tenant gains
        #: ``quantum_bytes`` per rotation.
        self.quantum = [
            quantum_bytes * t.weight / max_w for t in self.tenants
        ]
        self.queues: list[deque] = [deque() for _ in range(n)]
        self.deficit = [0.0] * n
        self.queued = 0  #: total requests waiting across all queues
        self._rr = 0  #: next tenant in the rotation
        self._serving: int | None = None  #: tenant mid-quantum, if any
        # token buckets (full at t=0)
        self.tokens = [t.burst for t in self.tenants]
        self._t_refill = env.now
        # starvation accounting
        self.admitted = [0] * n
        self.admitted_bytes = [0] * n
        self.total_wait = [0.0] * n
        self.max_wait = [0.0] * n

    # ------------------------------------------------------------------
    @staticmethod
    def _cost(req: IORequest) -> int:
        """Admission cost in bytes (descriptor-level knowledge only)."""
        if req.is_write or req.op_kind == OP_COLL:
            # collective reads also declare their round bytes up front
            nb = req.payload_nbytes
        elif req.regions is not None:
            nb = req.regions.total_bytes
        elif req.window is not None:
            nb = req.window.stream_bytes
        else:
            nb = 0
        return max(int(nb), 1)

    def enqueue(self, msg) -> None:
        """File an arriving request message under its tenant."""
        i = msg.payload.tenant
        if not (0 <= i < len(self.queues)):
            i = 0  # unknown tenant ids fall into the default queue
        self.queues[i].append(msg)
        self.queued += 1

    def _refill(self) -> None:
        now = self.env.now
        dt = now - self._t_refill
        if dt > 0:
            for i, t in enumerate(self.tenants):
                if t.rate_limit is not None:
                    self.tokens[i] = min(
                        t.burst, self.tokens[i] + t.rate_limit * dt
                    )
            self._t_refill = now

    def next(self):
        """The next admission decision.

        Returns ``("admit", msg, wait_s)`` for the request to serve,
        ``("sleep", dt)`` when every backlogged tenant is token-blocked
        (retry in ``dt`` simulated seconds), or ``None`` when idle.
        """
        if not self.queued:
            return None
        self._refill()
        n = len(self.queues)
        blocked: list[float] = []
        visits = 0
        deficit_growing = False
        while True:
            if self._serving is None:
                if visits >= n:
                    # one full rotation with no admission
                    if not deficit_growing:
                        dt = min(blocked) if blocked else 1e-3
                        return ("sleep", max(dt, 1e-9))
                    visits = 0
                    blocked = []
                    deficit_growing = False
                i = self._rr
                self._rr = (i + 1) % n
                visits += 1
                if not self.queues[i]:
                    self.deficit[i] = 0.0  # idle tenants bank nothing
                    continue
                self.deficit[i] += self.quantum[i]
                self._serving = i
            i = self._serving
            q = self.queues[i]
            if not q:
                self.deficit[i] = 0.0
                self._serving = None
                continue
            msg = q[0]
            cost = self._cost(msg.payload)
            if self.deficit[i] < cost:
                # quantum exhausted: the next rotation grows it
                deficit_growing = True
                self._serving = None
                continue
            t = self.tenants[i]
            if t.rate_limit is not None:
                charge = min(cost, t.burst)
                if self.tokens[i] < charge:
                    blocked.append((charge - self.tokens[i]) / t.rate_limit)
                    self._serving = None
                    continue
                self.tokens[i] -= charge
            q.popleft()
            self.queued -= 1
            self.deficit[i] -= cost
            wait = self.env.now - msg.t_enqueued
            self.admitted[i] += 1
            self.admitted_bytes[i] += cost
            self.total_wait[i] += wait
            if wait > self.max_wait[i]:
                self.max_wait[i] = wait
            return ("admit", msg, wait)

    # ------------------------------------------------------------------
    def report(self) -> list[dict]:
        """Per-tenant admission/starvation summary."""
        out = []
        for i, t in enumerate(self.tenants):
            a = self.admitted[i]
            out.append(
                {
                    "tenant": t.name,
                    "weight": t.weight,
                    "admitted": a,
                    "admitted_bytes": self.admitted_bytes[i],
                    "mean_wait_s": self.total_wait[i] / a if a else 0.0,
                    "max_wait_s": self.max_wait[i],
                    "queued": len(self.queues[i]),
                }
            )
        return out


def make_scheduler(server: "IOServer"):
    """Pick the scheduler for the configured concurrency level."""
    if server.system.config.server_threads == 1:
        return SerialScheduler(server)
    return ThreadedScheduler(server)
