"""PVFS error types."""

from __future__ import annotations

__all__ = [
    "PVFSError",
    "FileNotFound",
    "FileExists",
    "LockUnsupported",
    "ProtocolError",
    "ServerTimeout",
    "RetriesExhausted",
]


class PVFSError(Exception):
    """Base class for file-system errors."""


class ProtocolError(PVFSError):
    """A request that violates the wire protocol (malformed message).

    Raised by the server's decode stage; the daemon reports it back to
    the client instead of dying.
    """


class FileNotFound(PVFSError):
    """Open of a non-existent path without create."""


class FileExists(PVFSError):
    """Exclusive create of an existing path."""


class LockUnsupported(PVFSError):
    """Byte-range locking requested on a file system without it.

    PVFS does not support locking, which is why ROMIO cannot perform
    data-sieving writes on it (paper §4.1).
    """


class ServerTimeout(PVFSError):
    """An I/O RPC received no response within the fault-injection
    timeout (``FaultConfig.rpc_timeout``).

    Carries the job (request) id, the target server index, the issuing
    client name and the attempt count, so degraded-mode failures are
    attributable without digging through traces.
    """

    def __init__(
        self,
        message: str,
        *,
        job_id: int = -1,
        server: int = -1,
        client: str = "",
        attempts: int = 0,
    ):
        super().__init__(message)
        self.job_id = job_id
        self.server = server
        self.client = client
        self.attempts = attempts


class RetriesExhausted(ServerTimeout):
    """Every bounded retry of one request timed out; the client gave up.

    The terminal failure of the failover path: raised (never a hang)
    after ``FaultConfig.max_retries`` resends each missed their
    ``rpc_timeout`` deadline.  Subclasses :class:`ServerTimeout`, so
    callers can catch either the terminal or the whole timeout family.
    """
