"""PVFS error types."""

from __future__ import annotations

__all__ = [
    "PVFSError",
    "FileNotFound",
    "FileExists",
    "LockUnsupported",
    "ProtocolError",
]


class PVFSError(Exception):
    """Base class for file-system errors."""


class ProtocolError(PVFSError):
    """A request that violates the wire protocol (malformed message).

    Raised by the server's decode stage; the daemon reports it back to
    the client instead of dying.
    """


class FileNotFound(PVFSError):
    """Open of a non-existent path without create."""


class FileExists(PVFSError):
    """Exclusive create of an existing path."""


class LockUnsupported(PVFSError):
    """Byte-range locking requested on a file system without it.

    PVFS does not support locking, which is why ROMIO cannot perform
    data-sieving writes on it (paper §4.1).
    """
