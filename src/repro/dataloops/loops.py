"""The :class:`Dataloop` descriptor.

A dataloop describes how one instance of a type lays its data out in a
byte space, using exactly five kinds (paper §3.2 / Gropp et al. [6]):

``contig``
    ``count`` repetitions of the child placed back-to-back (stride is
    the child's extent).  Final form: ``count`` dense elements.
``vector``
    ``count`` blocks of ``blocksize`` child instances, block *i* at byte
    ``i * stride``.
``blockindexed``
    ``count`` blocks of constant ``blocksize`` at explicit byte offsets.
``indexed``
    ``count`` blocks of per-block sizes at explicit byte offsets.
``struct``
    heterogeneous fields: ``blocksizes[i]`` instances of
    ``children[i]`` at byte ``offsets[i]``.

A loop with ``is_final`` has no child; its unit is a dense element of
``el_size`` bytes.  Every loop records its ``extent`` (the byte stride
between consecutive instances when tiled), which is all that remains of
MPI's LB/UB machinery.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..regions import Regions
from ..vectorize import scalar_fallback

__all__ = ["Dataloop", "KINDS"]

KINDS = ("contig", "vector", "blockindexed", "indexed", "struct")

_I64 = np.int64


def _tile_blocks(
    block_offsets: np.ndarray,
    blocksizes: np.ndarray,
    step: int,
    flat: Regions,
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenated per-block tilings of ``flat``, fully vectorized.

    Block ``j`` contributes ``blocksizes[j]`` instances of ``flat`` at
    byte stride ``step``, anchored at ``block_offsets[j]`` — the
    region sequence of an ``indexed`` loop (or a ``struct`` whose
    fields share one child).  Equivalent to the per-block Python loop
    ``flat.tile(bs, step).shift(off)`` + concat, but built with one
    ``repeat``/``arange`` broadcast.  Returns ``(offsets, lengths)``.
    """
    n_inst = int(blocksizes.sum()) if blocksizes.size else 0
    r = flat.count
    if n_inst == 0 or r == 0:
        e = np.empty(0, dtype=_I64)
        return e, e
    cum_excl = np.concatenate(([0], np.cumsum(blocksizes)[:-1]))
    # per-instance anchor: block offset + instance-within-block * step
    inst = np.repeat(block_offsets, blocksizes) + (
        np.arange(n_inst, dtype=_I64) - np.repeat(cum_excl, blocksizes)
    ) * _I64(step)
    offs = (inst[:, None] + flat.offsets[None, :]).reshape(-1)
    lens = np.ascontiguousarray(
        np.broadcast_to(flat.lengths[None, :], (n_inst, r))
    ).reshape(-1)
    return offs, lens


class Dataloop:
    """Immutable dataloop node.

    Use the classmethod constructors; the raw ``__init__`` performs full
    validation and computes derived stream metrics:

    ``data_size``
        packed-stream bytes produced by one instance;
    ``region_count``
        leaf runs per instance (before any cross-block coalescing) — an
        exact count of the offset–length pairs processing will create;
    ``depth``
        nesting depth (final loops are depth 1).
    """

    __slots__ = (
        "kind",
        "count",
        "extent",
        "is_final",
        "el_size",
        "blocksize",
        "blocksizes",
        "stride",
        "offsets",
        "children",
        "data_size",
        "region_count",
        "depth",
        "_block_stream_cum",
        "_flat_cache",
        "_block_flat_cache",
        "_run_table",
        "_fingerprint",
    )

    def __init__(
        self,
        kind: str,
        count: int,
        extent: int,
        *,
        is_final: bool = False,
        el_size: int = 0,
        blocksize: int = 0,
        blocksizes: Optional[Sequence[int]] = None,
        stride: int = 0,
        offsets: Optional[Sequence[int]] = None,
        children: Sequence["Dataloop"] = (),
    ):
        if kind not in KINDS:
            raise ValueError(f"unknown dataloop kind {kind!r}")
        if count < 0:
            raise ValueError("negative count")
        self.kind = kind
        self.count = int(count)
        self.extent = int(extent)
        self.is_final = bool(is_final)
        self.el_size = int(el_size)
        self.blocksize = int(blocksize)
        self.stride = int(stride)
        self.blocksizes = (
            None
            if blocksizes is None
            else np.asarray(blocksizes, dtype=_I64)
        )
        self.offsets = (
            None if offsets is None else np.asarray(offsets, dtype=_I64)
        )
        self.children = tuple(children)
        self._validate()
        self._compute_metrics()
        self._flat_cache: Regions | None = None
        self._block_flat_cache: Regions | None = None
        self._run_table: tuple | None = None
        self._fingerprint: bytes | None = None

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        k = self.kind
        if self.is_final:
            if k == "struct":
                raise ValueError("struct loops cannot be final")
            if self.children:
                raise ValueError("final loops have no children")
            if self.el_size <= 0:
                raise ValueError("final loops need a positive el_size")
        else:
            if k == "struct":
                if self.blocksizes is None or self.offsets is None:
                    raise ValueError("struct needs blocksizes and offsets")
                if not (
                    len(self.children)
                    == len(self.blocksizes)
                    == len(self.offsets)
                    == self.count
                ):
                    raise ValueError(
                        "struct children/blocksizes/offsets must match count"
                    )
            else:
                if len(self.children) != 1:
                    raise ValueError(f"non-final {k} loop needs one child")
        if k in ("vector", "blockindexed"):
            if self.blocksize < 0:
                raise ValueError("negative blocksize")
        if k in ("blockindexed", "indexed"):
            if self.offsets is None or len(self.offsets) != self.count:
                raise ValueError(f"{k} needs {self.count} offsets")
        if k == "indexed":
            if self.blocksizes is None or len(self.blocksizes) != self.count:
                raise ValueError("indexed needs per-block sizes")

    def _compute_metrics(self) -> None:
        k = self.kind
        if self.is_final:
            unit_bytes = self.el_size
            unit_regions = 1
        elif k != "struct":
            unit_bytes = self.children[0].data_size
            unit_regions = self.children[0].region_count

        if k == "contig":
            self.data_size = self.count * unit_bytes
            # final contig is a single dense run
            self.region_count = 1 if self.is_final else self.count * unit_regions
            block_bytes = None
        elif k == "vector":
            per_block = self.blocksize * unit_bytes
            self.data_size = self.count * per_block
            self.region_count = self.count * (
                1 if self.is_final else self.blocksize * unit_regions
            )
            block_bytes = None
        elif k == "blockindexed":
            per_block = self.blocksize * unit_bytes
            self.data_size = self.count * per_block
            self.region_count = self.count * (
                1 if self.is_final else self.blocksize * unit_regions
            )
            block_bytes = None
        elif k == "indexed":
            sizes = self.blocksizes * unit_bytes
            self.data_size = int(sizes.sum()) if self.count else 0
            if self.is_final:
                self.region_count = self.count
            else:
                self.region_count = int(self.blocksizes.sum()) * unit_regions
            block_bytes = sizes
        else:  # struct
            sizes = np.array(
                [
                    int(bs) * ch.data_size
                    for bs, ch in zip(self.blocksizes, self.children)
                ],
                dtype=_I64,
            )
            self.data_size = int(sizes.sum()) if self.count else 0
            self.region_count = int(
                sum(
                    int(bs) * ch.region_count
                    for bs, ch in zip(self.blocksizes, self.children)
                )
            )
            block_bytes = sizes

        # cumulative stream start of each block (indexed/struct only)
        if block_bytes is not None and self.count:
            cum = np.empty(self.count + 1, dtype=_I64)
            cum[0] = 0
            np.cumsum(block_bytes, out=cum[1:])
            self._block_stream_cum = cum
        else:
            self._block_stream_cum = None

        if self.is_final:
            self.depth = 1
        elif k == "struct":
            self.depth = 1 + max(
                (c.depth for c in self.children), default=0
            )
        else:
            self.depth = 1 + self.children[0].depth

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def final_contig(cls, count: int, el_size: int, extent: int | None = None):
        """``count`` dense elements of ``el_size`` bytes."""
        if extent is None:
            extent = count * el_size
        return cls("contig", count, extent, is_final=True, el_size=el_size)

    @classmethod
    def contig(cls, count: int, child: "Dataloop", extent: int | None = None):
        if extent is None:
            extent = count * child.extent
        return cls("contig", count, extent, children=(child,))

    @classmethod
    def final_vector(
        cls,
        count: int,
        blocksize: int,
        stride: int,
        el_size: int,
        extent: int | None = None,
    ):
        if extent is None:
            extent = (
                (count - 1) * stride + blocksize * el_size if count else 0
            )
        return cls(
            "vector",
            count,
            extent,
            is_final=True,
            el_size=el_size,
            blocksize=blocksize,
            stride=stride,
        )

    @classmethod
    def vector(
        cls,
        count: int,
        blocksize: int,
        stride: int,
        child: "Dataloop",
        extent: int | None = None,
    ):
        if extent is None:
            extent = (
                (count - 1) * stride + blocksize * child.extent if count else 0
            )
        return cls(
            "vector",
            count,
            extent,
            blocksize=blocksize,
            stride=stride,
            children=(child,),
        )

    @classmethod
    def final_blockindexed(
        cls,
        blocksize: int,
        offsets: Sequence[int],
        el_size: int,
        extent: int,
    ):
        return cls(
            "blockindexed",
            len(offsets),
            extent,
            is_final=True,
            el_size=el_size,
            blocksize=blocksize,
            offsets=offsets,
        )

    @classmethod
    def blockindexed(
        cls,
        blocksize: int,
        offsets: Sequence[int],
        child: "Dataloop",
        extent: int,
    ):
        return cls(
            "blockindexed",
            len(offsets),
            extent,
            blocksize=blocksize,
            offsets=offsets,
            children=(child,),
        )

    @classmethod
    def final_indexed(
        cls,
        blocksizes: Sequence[int],
        offsets: Sequence[int],
        el_size: int,
        extent: int,
    ):
        return cls(
            "indexed",
            len(offsets),
            extent,
            is_final=True,
            el_size=el_size,
            blocksizes=blocksizes,
            offsets=offsets,
        )

    @classmethod
    def indexed(
        cls,
        blocksizes: Sequence[int],
        offsets: Sequence[int],
        child: "Dataloop",
        extent: int,
    ):
        return cls(
            "indexed",
            len(offsets),
            extent,
            blocksizes=blocksizes,
            offsets=offsets,
            children=(child,),
        )

    @classmethod
    def struct(
        cls,
        blocksizes: Sequence[int],
        offsets: Sequence[int],
        children: Sequence["Dataloop"],
        extent: int,
    ):
        return cls(
            "struct",
            len(children),
            extent,
            blocksizes=blocksizes,
            offsets=offsets,
            children=children,
        )

    # ------------------------------------------------------------------
    @classmethod
    def resized(cls, loop: "Dataloop", extent: int) -> "Dataloop":
        """Copy of ``loop`` with a different extent (no other overhead)."""
        if extent == loop.extent:
            return loop
        return cls(
            loop.kind,
            loop.count,
            extent,
            is_final=loop.is_final,
            el_size=loop.el_size,
            blocksize=loop.blocksize,
            blocksizes=loop.blocksizes,
            stride=loop.stride,
            offsets=loop.offsets,
            children=loop.children,
        )

    # ------------------------------------------------------------------
    # structure inspection
    # ------------------------------------------------------------------
    def node_count(self) -> int:
        """Number of dataloop nodes in this tree."""
        return 1 + sum(c.node_count() for c in self.children)

    def fingerprint(self) -> bytes:
        """Stable content digest of the tree (memoized).

        Equal iff the serialized forms are equal — the identity a server
        uses to key its expansion cache on a re-shipped loop.
        """
        if self._fingerprint is None:
            from .serialize import fingerprint as _fingerprint

            self._fingerprint = _fingerprint(self)
        return self._fingerprint

    def describe(self, indent: int = 0) -> str:
        """Multi-line structural dump (for debugging and docs)."""
        pad = "  " * indent
        parts = [f"{self.kind}(count={self.count}, extent={self.extent}"]
        if self.is_final:
            parts.append(f", final el_size={self.el_size}")
        if self.kind == "vector":
            parts.append(f", blocksize={self.blocksize}, stride={self.stride}")
        if self.kind == "blockindexed":
            parts.append(f", blocksize={self.blocksize}, #offsets={self.count}")
        if self.kind == "indexed":
            parts.append(f", #blocks={self.count}")
        parts.append(")")
        lines = [pad + "".join(parts)]
        for c in self.children:
            lines.append(c.describe(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<Dataloop {self.kind} count={self.count} "
            f"data_size={self.data_size} regions={self.region_count} "
            f"depth={self.depth}>"
        )

    # ------------------------------------------------------------------
    # full flattening (analysis path; the streaming path lives in
    # segment.py and never materializes more than a chunk)
    # ------------------------------------------------------------------
    def flatten_full(self) -> Regions:
        """All regions of one instance, traversal order, coalesced."""
        if self._flat_cache is None:
            self._flat_cache = self._flatten_one().coalesce()
        return self._flat_cache

    def _flatten_one(self) -> Regions:
        """One instance's regions, traversal order, uncoalesced.

        Final loops and contig/vector interiors are inherently
        vectorized (``tile`` broadcasts).  The per-block kinds —
        blockindexed, indexed, and structs whose fields share a child —
        are built with a single ``repeat``/broadcast pass; the original
        per-block loop is retained as the scalar reference.
        """
        k = self.kind
        if self.is_final or k in ("contig", "vector") or scalar_fallback():
            return self._flatten_one_scalar()
        if k == "blockindexed":
            child = self.children[0]
            block = (
                child.flatten_full().tile(self.blocksize, child.extent).coalesce()
            )
            if not self.count or not block.count:
                return Regions.empty()
            offs = (self.offsets[:, None] + block.offsets[None, :]).reshape(-1)
            lens = np.ascontiguousarray(
                np.broadcast_to(
                    block.lengths[None, :], (self.count, block.count)
                )
            ).reshape(-1)
            return Regions(offs, lens, _trusted=True)
        if k == "indexed":
            child = self.children[0]
            offs, lens = _tile_blocks(
                self.offsets, self.blocksizes, child.extent, child.flatten_full()
            )
            return Regions(offs, lens, _trusted=True)
        # struct: one broadcast when every field shares the same child
        if self.children and all(c is self.children[0] for c in self.children):
            ch = self.children[0]
            offs, lens = _tile_blocks(
                self.offsets, self.blocksizes, ch.extent, ch.flatten_full()
            )
            return Regions(offs, lens, _trusted=True)
        return self._flatten_one_scalar()

    def _block_run_table(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Uncoalesced per-block expansion of one instance (memoized).

        For indexed/struct loops only: returns ``(offsets, lengths,
        cum)`` where rows ``cum[j]:cum[j+1]`` are exactly the regions
        the streaming walk emits for a fully covered block/field ``j``
        (the child's coalesced flattening tiled across the block).
        ``DataloopStream`` slices runs of whole blocks out of this
        table instead of looping per block.
        """
        if self._run_table is None:
            if self.kind == "indexed":
                child = self.children[0]
                flat = child.flatten_full()
                offs, lens = _tile_blocks(
                    self.offsets, self.blocksizes, child.extent, flat
                )
                counts = self.blocksizes * _I64(flat.count)
            elif self.kind == "struct":
                flats = [ch.flatten_full() for ch in self.children]
                if self.children and all(
                    c is self.children[0] for c in self.children
                ):
                    offs, lens = _tile_blocks(
                        self.offsets,
                        self.blocksizes,
                        self.children[0].extent,
                        flats[0],
                    )
                else:
                    cat = Regions.concat(
                        [
                            flat.tile(int(bs), ch.extent).shift(int(off))
                            for flat, bs, ch, off in zip(
                                flats,
                                self.blocksizes,
                                self.children,
                                self.offsets,
                            )
                        ]
                    )
                    offs, lens = cat.offsets, cat.lengths
                counts = np.array(
                    [
                        int(bs) * flat.count
                        for bs, flat in zip(self.blocksizes, flats)
                    ],
                    dtype=_I64,
                )
            else:
                raise ValueError("run table requires an indexed/struct loop")
            cum = np.empty(self.count + 1, dtype=_I64)
            cum[0] = 0
            if self.count:
                np.cumsum(counts, out=cum[1:])
            self._run_table = (offs, lens, cum)
        return self._run_table

    def _flatten_one_scalar(self) -> Regions:
        k = self.kind
        if self.is_final:
            if k == "contig":
                return Regions.single(0, self.count * self.el_size)
            if k == "vector":
                offs = np.arange(self.count, dtype=_I64) * _I64(self.stride)
                lens = np.full(
                    self.count, self.blocksize * self.el_size, dtype=_I64
                )
                return Regions(offs, lens)
            if k == "blockindexed":
                lens = np.full(
                    self.count, self.blocksize * self.el_size, dtype=_I64
                )
                return Regions(self.offsets.copy(), lens)
            # indexed
            return Regions(self.offsets.copy(), self.blocksizes * self.el_size)

        if k == "struct":
            parts = []
            for i in range(self.count):
                bs = int(self.blocksizes[i])
                off = int(self.offsets[i])
                ch = self.children[i]
                parts.append(
                    ch.flatten_full().tile(bs, ch.extent).shift(off)
                )
            return Regions.concat(parts)

        child = self.children[0]
        inner = child.flatten_full()
        if k == "contig":
            return inner.tile(self.count, child.extent)
        if k == "vector":
            block = inner.tile(self.blocksize, child.extent).coalesce()
            return block.tile(self.count, self.stride)
        if k == "blockindexed":
            block = inner.tile(self.blocksize, child.extent).coalesce()
            parts = [
                block.shift(int(o)) for o in self.offsets
            ]
            return Regions.concat(parts)
        # indexed
        parts = []
        for i in range(self.count):
            bs = int(self.blocksizes[i])
            parts.append(
                inner.tile(bs, child.extent).shift(int(self.offsets[i]))
            )
        return Regions.concat(parts)
