"""Binary wire encoding of dataloops.

Datatype I/O ships the file type's dataloop inside the I/O request
(paper §3.2: "we provide functionality for shipping dataloops as part
of I/O requests").  The encoded size is therefore part of the request
message size the network model charges for — the central advantage over
list I/O, whose request size grows linearly with the region count.

Layout (little-endian), depth-first preorder:

==========  =====================================================
bytes       field
==========  =====================================================
1           kind (index into ``KINDS``)
1           flags (bit 0: final)
8           count (u64)
8           extent (i64)
8           el_size (final) / 0
8           blocksize (vector/blockindexed) / stride (0 otherwise)
8           stride (vector) / 0
varies      offsets array (blockindexed/indexed/struct): count × i64
varies      blocksizes array (indexed/struct): count × i64
==========  =====================================================

struct nodes are followed by their ``count`` encoded children; other
non-final nodes by exactly one child.
"""

from __future__ import annotations

import hashlib
import struct as _struct

import numpy as np

from .loops import KINDS, Dataloop

__all__ = ["dumps", "loads", "wire_size", "fingerprint"]

_HDR = _struct.Struct("<BBQqqqq")
MAGIC = b"DLP1"


def _encode_node(loop: Dataloop, out: list[bytes]) -> None:
    kind_idx = KINDS.index(loop.kind)
    flags = 1 if loop.is_final else 0
    out.append(
        _HDR.pack(
            kind_idx,
            flags,
            loop.count,
            loop.extent,
            loop.el_size,
            loop.blocksize,
            loop.stride,
        )
    )
    if loop.kind in ("blockindexed", "indexed", "struct"):
        out.append(loop.offsets.astype("<i8").tobytes())
    if loop.kind in ("indexed", "struct"):
        out.append(loop.blocksizes.astype("<i8").tobytes())
    for child in loop.children:
        _encode_node(child, out)


def dumps(loop: Dataloop) -> bytes:
    """Serialize a dataloop tree to bytes."""
    out: list[bytes] = [MAGIC]
    _encode_node(loop, out)
    return b"".join(out)


def _decode_node(buf: memoryview, pos: int) -> tuple[Dataloop, int]:
    kind_idx, flags, count, extent, el_size, blocksize, stride = _HDR.unpack_from(
        buf, pos
    )
    pos += _HDR.size
    kind = KINDS[kind_idx]
    is_final = bool(flags & 1)
    offsets = None
    blocksizes = None
    if kind in ("blockindexed", "indexed", "struct"):
        offsets = np.frombuffer(buf, dtype="<i8", count=count, offset=pos).astype(
            np.int64
        )
        pos += 8 * count
    if kind in ("indexed", "struct"):
        blocksizes = np.frombuffer(
            buf, dtype="<i8", count=count, offset=pos
        ).astype(np.int64)
        pos += 8 * count
    children: list[Dataloop] = []
    nchildren = count if kind == "struct" else (0 if is_final else 1)
    for _ in range(nchildren):
        child, pos = _decode_node(buf, pos)
        children.append(child)
    loop = Dataloop(
        kind,
        count,
        extent,
        is_final=is_final,
        el_size=el_size,
        blocksize=blocksize,
        blocksizes=blocksizes,
        stride=stride,
        offsets=offsets,
        children=children,
    )
    return loop, pos


def loads(data: bytes) -> Dataloop:
    """Deserialize bytes produced by :func:`dumps`."""
    if data[:4] != MAGIC:
        raise ValueError("not a serialized dataloop (bad magic)")
    loop, pos = _decode_node(memoryview(data), 4)
    if pos != len(data):
        raise ValueError(
            f"trailing bytes after dataloop: consumed {pos} of {len(data)}"
        )
    return loop


def fingerprint(loop: Dataloop) -> bytes:
    """Stable 16-byte content digest of a dataloop tree.

    Two loops have equal fingerprints iff their serialized forms are
    identical (same kinds, counts, strides, offsets, extents), which is
    what a server needs to recognize a re-shipped loop without a
    structural comparison.  Memoized on the loop via
    :meth:`Dataloop.fingerprint`.
    """
    return hashlib.blake2b(dumps(loop), digest_size=16).digest()


def wire_size(loop: Dataloop) -> int:
    """Encoded size in bytes, computed without serializing."""
    return len(MAGIC) + _node_size(loop)


def _node_size(loop: Dataloop) -> int:
    size = _HDR.size
    if loop.kind in ("blockindexed", "indexed", "struct"):
        size += 8 * loop.count
    if loop.kind in ("indexed", "struct"):
        size += 8 * loop.count
    for child in loop.children:
        size += _node_size(child)
    return size
