"""Convert MPI datatypes to dataloops.

The conversion is the "recursive process built by using
``MPI_Type_get_envelope`` and ``MPI_Type_get_contents``" of paper §3.2:
it consumes **only** the portable introspection interface of
:class:`~repro.datatypes.Datatype` (plus size/extent queries, which MPI
also provides portably), never internal representation details, so it
would work against any MPI implementation's types.

Regularity-preserving collapses applied while building (these are what
keep the representation concise and the processing fast):

* ``contiguous`` of a dense final loop merges into one final loop;
* ``vector``/``hvector`` whose block is dense becomes a *final vector*;
* a vector whose stride equals its block span degenerates to contig;
* ``indexed`` families with a dense child become final
  ``blockindexed``/``indexed`` loops (uniform block size detected);
* ``resized`` only rewrites the extent — zero-overhead, as the paper
  notes for the dataloop representation;
* ``subarray`` expands to nested vectors (as in MPICH).
"""

from __future__ import annotations

from ..datatypes.base import Datatype
from .loops import Dataloop

__all__ = ["build_dataloop"]


def _is_dense_final_contig(loop: Dataloop) -> bool:
    """One run covering the whole extent — blocks of these tile densely."""
    return (
        loop.is_final
        and loop.kind == "contig"
        and loop.extent == loop.data_size
    )


def _contig(count: int, child: Dataloop) -> Dataloop:
    if count == 1:
        return child
    if _is_dense_final_contig(child):
        return Dataloop.final_contig(count * child.count, child.el_size)
    return Dataloop.contig(count, child)


def _vector(count: int, bl: int, stride_bytes: int, child: Dataloop) -> Dataloop:
    if count == 0 or bl == 0:
        return _empty_loop()
    if stride_bytes == bl * child.extent:
        # blocks tile back-to-back: plain contig
        return _contig(count * bl, child)
    if count == 1:
        return _contig(bl, child)
    if _is_dense_final_contig(child):
        return Dataloop.final_vector(
            count, bl * child.count, stride_bytes, child.el_size
        )
    if bl == 1:
        return Dataloop.vector(count, 1, stride_bytes, child)
    return Dataloop.vector(count, bl, stride_bytes, child)


def _indexed(bls, offs_bytes, child: Dataloop, extent: int) -> Dataloop:
    pairs = [(int(b), int(o)) for b, o in zip(bls, offs_bytes) if b > 0]
    if not pairs:
        return _empty_loop()
    bls = [p[0] for p in pairs]
    offs = [p[1] for p in pairs]
    if len(bls) == 1 and offs[0] == 0:
        return Dataloop.resized(_contig(bls[0], child), extent)
    uniform = len(set(bls)) == 1
    if _is_dense_final_contig(child):
        el = child.el_size
        elem_bls = [b * child.count for b in bls]
        if uniform:
            return Dataloop.final_blockindexed(elem_bls[0], offs, el, extent)
        return Dataloop.final_indexed(elem_bls, offs, el, extent)
    if uniform:
        return Dataloop.blockindexed(bls[0], offs, child, extent)
    return Dataloop.indexed(bls, offs, child, extent)


def _empty_loop() -> Dataloop:
    return Dataloop.final_contig(0, 1, extent=0)


def build_dataloop(dtype: Datatype) -> Dataloop:
    """Build the dataloop of one instance of ``dtype``.

    The returned loop's ``extent`` always equals ``dtype.extent`` and
    its ``data_size`` equals ``dtype.size``.
    """
    loop = _build(dtype)
    return Dataloop.resized(loop, dtype.extent)


def _build(dtype: Datatype) -> Dataloop:
    _, _, _, combiner = dtype.envelope()

    if combiner == "named":
        if dtype.size == 0:
            return _empty_loop()
        return Dataloop.final_contig(1, dtype.size, extent=dtype.extent)

    ints, addrs, types = dtype.contents()

    if combiner == "dup":
        return build_dataloop(types[0])

    if combiner == "resized":
        return Dataloop.resized(build_dataloop(types[0]), dtype.extent)

    if combiner == "contiguous":
        (count,) = ints
        if count == 0:
            return _empty_loop()
        return _contig(count, build_dataloop(types[0]))

    if combiner == "vector":
        count, bl, stride = ints
        old = types[0]
        return _vector(count, bl, stride * old.extent, build_dataloop(old))

    if combiner == "hvector":
        count, bl = ints
        (stride,) = addrs
        return _vector(count, bl, stride, build_dataloop(types[0]))

    if combiner == "indexed":
        n = ints[0]
        bls = ints[1 : 1 + n]
        disps = ints[1 + n : 1 + 2 * n]
        old = types[0]
        offs = [d * old.extent for d in disps]
        return _indexed(bls, offs, build_dataloop(old), dtype.extent)

    if combiner == "hindexed":
        n = ints[0]
        bls = ints[1 : 1 + n]
        return _indexed(bls, addrs, build_dataloop(types[0]), dtype.extent)

    if combiner == "indexed_block":
        n, bl = ints[0], ints[1]
        disps = ints[2 : 2 + n]
        old = types[0]
        offs = [d * old.extent for d in disps]
        return _indexed([bl] * n, offs, build_dataloop(old), dtype.extent)

    if combiner == "hindexed_block":
        n, bl = ints[0], ints[1]
        return _indexed(
            [bl] * n, addrs, build_dataloop(types[0]), dtype.extent
        )

    if combiner == "struct":
        n = ints[0]
        bls = list(ints[1 : 1 + n])
        disps = list(addrs)
        children = []
        kept_bls = []
        kept_offs = []
        for bl, d, t in zip(bls, disps, types):
            if bl == 0 or t.size == 0:
                continue
            children.append(build_dataloop(t))
            kept_bls.append(bl)
            kept_offs.append(d)
        if not children:
            return _empty_loop()
        if len(children) == 1 and kept_offs[0] == 0:
            return Dataloop.resized(
                _contig(kept_bls[0], children[0]), dtype.extent
            )
        return Dataloop.struct(kept_bls, kept_offs, children, dtype.extent)

    if combiner == "subarray":
        n = ints[0]
        sizes = list(ints[1 : 1 + n])
        subsizes = list(ints[1 + n : 1 + 2 * n])
        starts = list(ints[1 + 2 * n : 1 + 3 * n])
        order_flag = ints[1 + 3 * n]
        old = types[0]
        if order_flag == 1:  # Fortran order: reverse to C convention
            sizes.reverse()
            subsizes.reverse()
            starts.reverse()
        child = build_dataloop(old)
        strides = [0] * n
        step = old.extent
        for i in range(n - 1, -1, -1):
            strides[i] = step
            step *= sizes[i]
        full_bytes = step
        t = _contig(subsizes[-1], child)
        for i in range(n - 2, -1, -1):
            t = _vector(subsizes[i], 1, strides[i], t)
        start_off = sum(starts[i] * strides[i] for i in range(n))
        if start_off:
            t = _indexed([1], [start_off], t, full_bytes)
        return Dataloop.resized(t, full_bytes)

    if combiner == "darray":
        return _build_darray(dtype, ints, types[0])

    raise ValueError(f"unsupported combiner {combiner!r}")


def _build_darray(dtype: Datatype, ints, old: Datatype) -> Dataloop:
    """darray → dataloop, re-deriving the owned runs from the contents
    (sharing the run arithmetic with the datatype constructor, the way
    MPICH's dataloop code shares its darray helpers)."""
    from ..datatypes.darray import _DIST_CODES, _owned_runs

    code_to_dist = {v: k for k, v in _DIST_CODES.items()}
    size, rank, n = ints[0], ints[1], ints[2]
    pos = 3
    gsizes = list(ints[pos : pos + n])
    pos += n
    distribs = [code_to_dist[c] for c in ints[pos : pos + n]]
    pos += n
    dargs = list(ints[pos : pos + n])
    pos += n
    psizes = list(ints[pos : pos + n])
    pos += n
    order_flag = ints[pos]

    coords = []
    rem = rank
    for p in reversed(psizes):
        coords.append(rem % p)
        rem //= p
    coords.reverse()

    if order_flag == 1:  # Fortran order
        gsizes.reverse()
        distribs.reverse()
        dargs.reverse()
        psizes.reverse()
        coords.reverse()

    strides = [0] * n
    step = old.extent
    for i in range(n - 1, -1, -1):
        strides[i] = step
        step *= gsizes[i]
    full_bytes = step

    loop = build_dataloop(old)
    for i in range(n - 1, -1, -1):
        runs = _owned_runs(
            gsizes[i], distribs[i], dargs[i], psizes[i], coords[i]
        )
        child = Dataloop.resized(loop, strides[i])
        bls = [length for _s, length in runs]
        offs = [s * strides[i] for s, _l in runs]
        loop = _indexed(bls, offs, child, gsizes[i] * strides[i])
    return Dataloop.resized(loop, full_bytes)
