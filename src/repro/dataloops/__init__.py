"""Dataloops: the concise structured-access representation (paper §3.2).

This package reimplements the MPICH2 *dataloop* component the paper's
prototype reuses:

* :class:`Dataloop` — the five descriptor kinds of the paper
  (``contig``, ``vector``, ``blockindexed``, ``indexed``, ``struct``),
  with leaf ("final") loops carrying an element size.  MPI LB/UB are
  eliminated; only the extent is retained, so ``resized`` types process
  with no extra overhead — exactly the simplifications §3.2 describes.
* :func:`build_dataloop` — recursive conversion of an MPI datatype into
  a dataloop using **only** envelope/contents introspection (the
  portable path the paper uses via ``MPI_Type_get_envelope`` /
  ``MPI_Type_get_contents``), with regularity-preserving collapses.
* :class:`DataloopStream` — *partial processing*: a resumable cursor
  that expands any byte subrange of the (tiled) dataloop's packed
  stream into bounded batches of offset–length pairs.  This is what
  both PVFS clients and I/O servers run to create their job/access
  structures, and what bounds intermediate list storage.
* :func:`dumps` / :func:`loads` — the binary wire encoding shipped
  inside datatype I/O requests; its size is what goes over the
  simulated network.
"""

from .loops import Dataloop
from .builder import build_dataloop
from .segment import DataloopStream, stream_regions
from .serialize import dumps, fingerprint, loads, wire_size

__all__ = [
    "Dataloop",
    "build_dataloop",
    "DataloopStream",
    "stream_regions",
    "dumps",
    "loads",
    "wire_size",
    "fingerprint",
]
