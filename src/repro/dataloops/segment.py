"""Partial dataloop processing (paper §3.2).

:class:`DataloopStream` is our equivalent of MPICH2's segment code: it
walks a dataloop (tiled ``count`` times from ``base_offset``) and emits
the offset–length pairs corresponding to an arbitrary byte subrange
``[first, last)`` of the type's packed data stream, in bounded batches
of at most ``max_regions`` pairs.

Two properties matter to the paper's argument and are preserved here:

* **partial processing** — a consumer (a PVFS I/O server building its
  access list, or a client packing a memory type) can process any slice
  of the stream without expanding the rest, and can stop/resume at
  batch boundaries, bounding intermediate offset–length storage;
* **regularity exploitation** — final (leaf) loops are expanded with
  vectorized arithmetic, never one Python iteration per region; interior
  loops only iterate over the blocks actually overlapped by the range,
  with instance skipping done by division on the stream position.

Fully covered interior subtrees whose region count is at most
``cache_threshold`` are expanded once via the loop's cached full
flattening and then shifted per instance, which is both faster and
identical in output.

Runs of *whole* instances (and whole vector/blockindexed/indexed/struct
blocks) take a vectorized fast path: instead of one Python iteration
per instance, the cached flattening is replicated with broadcast
arithmetic (``tile``/``shift``, an outer add against the block offsets,
or a slice of the loop's per-block run table) in chunks of up to
``max_regions`` regions.  The materialized region sequence is
unchanged; only the internal batch boundaries may shift for windows
larger than ``max_regions`` regions.  ``REPRO_SCALAR_FALLBACK`` (see
:mod:`repro.vectorize`) disables the run-table path for reference
measurements.

:meth:`DataloopStream.instance_aligned_batches` exposes the same
expansion with batch boundaries aligned to whole top-level instances
(multiples of ``loop.data_size`` in stream space) — the periodicity
metadata the server-side expansion cache needs.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..regions import Regions
from ..vectorize import scalar_fallback
from .loops import Dataloop

__all__ = ["DataloopStream", "stream_regions"]

_I64 = np.int64


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


class DataloopStream:
    """Iterate the regions of ``count`` tiled instances of ``loop``.

    Parameters
    ----------
    loop:
        The dataloop to process.
    count:
        Number of consecutive instances (instance *i* at
        ``base_offset + i * loop.extent``).
    base_offset:
        Byte offset of instance 0's origin.
    first, last:
        Half-open subrange of the packed stream to expand, in bytes;
        ``last=None`` means the full stream (``count * data_size``).
    max_regions:
        Upper bound on regions per emitted batch.
    cache_threshold:
        Maximum region count for which a fully covered subtree may be
        expanded from its cached flattening.
    """

    def __init__(
        self,
        loop: Dataloop,
        count: int = 1,
        base_offset: int = 0,
        first: int = 0,
        last: int | None = None,
        max_regions: int = 65536,
        cache_threshold: int = 4096,
    ):
        if count < 0:
            raise ValueError("negative count")
        if max_regions <= 0:
            raise ValueError("max_regions must be positive")
        total = count * loop.data_size
        if last is None:
            last = total
        first = max(0, min(int(first), total))
        last = max(first, min(int(last), total))
        self.loop = loop
        self.count = count
        self.base_offset = int(base_offset)
        self.first = first
        self.last = last
        self.max_regions = int(max_regions)
        self.cache_threshold = int(cache_threshold)

    # ------------------------------------------------------------------
    @property
    def stream_bytes(self) -> int:
        """Bytes of packed stream this cursor will produce regions for."""
        return self.last - self.first

    def __iter__(self) -> Iterator[Regions]:
        """Yield coalesced batches of at most ``max_regions`` regions."""
        if self.first >= self.last:
            return
        pending: list[Regions] = []
        npending = 0
        for batch in self._raw_batches():
            if not batch.count:
                continue
            pending.append(batch)
            npending += batch.count
            if npending >= self.max_regions:
                merged = Regions.concat(pending).coalesce()
                while merged.count >= self.max_regions:
                    yield merged[: self.max_regions]
                    merged = merged[self.max_regions :]
                pending = [merged] if merged.count else []
                npending = merged.count
        if pending:
            merged = Regions.concat(pending).coalesce()
            while merged.count > self.max_regions:
                yield merged[: self.max_regions]
                merged = merged[self.max_regions :]
            if merged.count:
                yield merged

    def regions(self) -> Regions:
        """Materialize the whole range (analysis/testing convenience)."""
        return Regions.concat(list(self)).coalesce()

    def instance_aligned_batches(self) -> Iterator[tuple[int, int, Regions]]:
        """Yield ``(i0, i1, regions)`` batches cut at instance boundaries.

        Each batch covers whole top-level instances ``[i0, i1)`` (the
        window edges excepted), i.e. batch boundaries sit at multiples of
        ``loop.data_size`` in stream space rather than at arbitrary
        ``max_regions`` cuts.  ``dataloop_batch_regions`` remains the
        bound: a batch holds at most ``max_regions`` regions unless a
        single instance alone exceeds it (then batches are one instance
        each).  This is the extent-aligned view a periodicity-exploiting
        consumer (the server expansion cache) needs.
        """
        unit = self.loop.data_size
        if unit <= 0 or self.first >= self.last:
            return
        a0 = self.first // unit
        a1 = _ceil_div(self.last, unit)
        ipb = max(1, self.max_regions // max(self.loop.region_count, 1))
        for c0 in range(a0, a1, ipb):
            c1 = min(c0 + ipb, a1)
            sub = DataloopStream(
                self.loop,
                count=self.count,
                base_offset=self.base_offset,
                first=max(self.first, c0 * unit),
                last=min(self.last, c1 * unit),
                max_regions=self.max_regions,
                cache_threshold=self.cache_threshold,
            )
            batch = sub.regions()
            if batch.count:
                yield c0, c1, batch

    # ------------------------------------------------------------------
    # recursive walk
    # ------------------------------------------------------------------
    def _raw_batches(self) -> Iterator[Regions]:
        yield from self._walk_instances(
            self.loop,
            self.count,
            self.base_offset,
            self.loop.extent,
            self.first,
            self.last,
        )

    def _walk_instances(
        self,
        loop: Dataloop,
        n: int,
        base: int,
        step: int,
        s0: int,
        s1: int,
    ) -> Iterator[Regions]:
        """``n`` instances of ``loop`` at ``base + i*step``; clip [s0,s1)."""
        unit = loop.data_size
        if unit == 0 or n == 0 or s0 >= s1:
            return
        i0 = max(s0 // unit, 0)
        i1 = min(_ceil_div(s1, unit), n)
        i = i0
        while i < i1:
            rel0 = max(s0 - i * unit, 0)
            rel1 = min(s1 - i * unit, unit)
            if (
                rel0 == 0
                and rel1 == unit
                and loop.region_count <= self.cache_threshold
            ):
                # maximal run of whole instances [i, iw): replicate the
                # cached flattening with broadcast tile/shift instead of
                # one Python iteration per instance
                iw = max(min(i1, s1 // unit), i + 1)
                flat = loop.flatten_full()
                if iw - i == 1:
                    yield flat.shift(base + i * step)
                else:
                    ipb = max(1, self.max_regions // max(flat.count, 1))
                    for c0 in range(i, iw, ipb):
                        c1 = min(c0 + ipb, iw)
                        yield flat.tile(c1 - c0, step).shift(
                            base + c0 * step
                        )
                i = iw
            else:
                yield from self._walk(loop, base + i * step, rel0, rel1)
                i += 1

    def _walk(
        self, loop: Dataloop, base: int, s0: int, s1: int
    ) -> Iterator[Regions]:
        """One instance of ``loop`` at ``base``, stream clip [s0, s1)."""
        if s0 >= s1:
            return
        if loop.is_final:
            yield from self._final(loop, base, s0, s1)
            return
        k = loop.kind
        if k == "contig":
            child = loop.children[0]
            yield from self._walk_instances(
                child, loop.count, base, child.extent, s0, s1
            )
        elif k == "vector":
            child = loop.children[0]
            block_bytes = loop.blocksize * child.data_size
            if block_bytes == 0:
                return
            j0 = max(s0 // block_bytes, 0)
            j1 = min(_ceil_div(s1, block_bytes), loop.count)
            block_flat = self._block_flat(loop, child)
            j = j0
            while j < j1:
                rel0 = max(s0 - j * block_bytes, 0)
                rel1 = min(s1 - j * block_bytes, block_bytes)
                if block_flat is not None and rel0 == 0 and rel1 == block_bytes:
                    # maximal run of whole blocks [j, jw): one tile/shift
                    jw = max(min(j1, s1 // block_bytes), j + 1)
                    ipb = max(1, self.max_regions // max(block_flat.count, 1))
                    for c0 in range(j, jw, ipb):
                        c1 = min(c0 + ipb, jw)
                        yield block_flat.tile(c1 - c0, loop.stride).shift(
                            base + c0 * loop.stride
                        )
                    j = jw
                else:
                    yield from self._walk_instances(
                        child,
                        loop.blocksize,
                        base + j * loop.stride,
                        child.extent,
                        rel0,
                        rel1,
                    )
                    j += 1
        elif k == "blockindexed":
            child = loop.children[0]
            block_bytes = loop.blocksize * child.data_size
            if block_bytes == 0:
                return
            j0 = max(s0 // block_bytes, 0)
            j1 = min(_ceil_div(s1, block_bytes), loop.count)
            block_flat = self._block_flat(loop, child)
            j = j0
            while j < j1:
                rel0 = max(s0 - j * block_bytes, 0)
                rel1 = min(s1 - j * block_bytes, block_bytes)
                if block_flat is not None and rel0 == 0 and rel1 == block_bytes:
                    # whole blocks at explicit offsets: outer-add the
                    # block flattening against the offsets array
                    jw = max(min(j1, s1 // block_bytes), j + 1)
                    nb = block_flat.count
                    ipb = max(1, self.max_regions // max(nb, 1))
                    for c0 in range(j, jw, ipb):
                        c1 = min(c0 + ipb, jw)
                        offs = (
                            (base + loop.offsets[c0:c1])[:, None]
                            + block_flat.offsets[None, :]
                        ).reshape(-1)
                        lens = np.ascontiguousarray(
                            np.broadcast_to(
                                block_flat.lengths[None, :], (c1 - c0, nb)
                            )
                        ).reshape(-1)
                        yield Regions(offs, lens, _trusted=True)
                    j = jw
                else:
                    yield from self._walk_instances(
                        child,
                        loop.blocksize,
                        base + int(loop.offsets[j]),
                        child.extent,
                        rel0,
                        rel1,
                    )
                    j += 1
        elif k == "indexed" or k == "struct":
            # indexed/struct share the cursor logic; only the per-block
            # child differs.  Runs of fully covered blocks are sliced
            # out of the loop's cached run table in one numpy step
            # instead of one Python iteration (and one tile/shift)
            # per block.
            cum = loop._block_stream_cum
            j0 = int(np.searchsorted(cum, s0, side="right")) - 1
            j0 = max(j0, 0)
            j1 = int(np.searchsorted(cum, s1, side="left"))
            j1 = min(j1, loop.count)
            use_table = (
                loop.region_count <= self.cache_threshold
                and not scalar_fallback()
            )
            j = j0
            while j < j1:
                block_bytes = int(cum[j + 1] - cum[j])
                rel0 = max(s0 - int(cum[j]), 0)
                rel1 = min(s1 - int(cum[j]), block_bytes)
                if use_table and rel0 == 0 and rel1 == block_bytes:
                    # maximal run of whole blocks [j, jw)
                    jw = int(np.searchsorted(cum, s1, side="right")) - 1
                    jw = max(min(jw, j1), j + 1)
                    yield from self._table_run(loop, base, j, jw)
                    j = jw
                else:
                    child = (
                        loop.children[j] if k == "struct" else loop.children[0]
                    )
                    yield from self._walk_instances(
                        child,
                        int(loop.blocksizes[j]),
                        base + int(loop.offsets[j]),
                        child.extent,
                        rel0,
                        rel1,
                    )
                    j += 1

    def _table_run(
        self, loop: Dataloop, base: int, j: int, jw: int
    ) -> Iterator[Regions]:
        """Regions of fully covered indexed/struct blocks ``[j, jw)``.

        Slices the loop's cached run table in ``max_regions`` chunks;
        the region sequence matches the per-block walk exactly.
        """
        offs, lens, rcum = loop._block_run_table()
        a, b = int(rcum[j]), int(rcum[jw])
        for c0 in range(a, b, self.max_regions):
            c1 = min(c0 + self.max_regions, b)
            yield Regions(
                offs[c0:c1] + _I64(base), lens[c0:c1], _trusted=True
            )

    def _block_flat(self, loop: Dataloop, child: Dataloop) -> Regions | None:
        """Cached coalesced flattening of one whole vector/blockindexed
        block (``blocksize`` child instances), or ``None`` when the block
        is too large to cache."""
        if loop.blocksize * child.region_count > self.cache_threshold:
            return None
        if loop._block_flat_cache is None:
            loop._block_flat_cache = (
                child.flatten_full().tile(loop.blocksize, child.extent).coalesce()
            )
        return loop._block_flat_cache

    # ------------------------------------------------------------------
    def _final(
        self, loop: Dataloop, base: int, s0: int, s1: int
    ) -> Iterator[Regions]:
        """Vectorized expansion of a final loop's stream range."""
        k = loop.kind
        el = loop.el_size
        if k == "contig":
            # one dense run: stream position == byte position
            yield Regions.single(base + s0, s1 - s0)
            return

        if k == "vector" or k == "blockindexed":
            block_bytes = loop.blocksize * el
            if block_bytes == 0:
                return
            j0 = max(s0 // block_bytes, 0)
            j1 = min(_ceil_div(s1, block_bytes), loop.count)
            if j0 >= j1:
                return
            chunk = self.max_regions
            for c0 in range(j0, j1, chunk):
                c1 = min(c0 + chunk, j1)
                if k == "vector":
                    offs = base + np.arange(c0, c1, dtype=_I64) * _I64(
                        loop.stride
                    )
                else:
                    offs = base + loop.offsets[c0:c1].astype(_I64)
                lens = np.full(c1 - c0, block_bytes, dtype=_I64)
                if c0 == j0:
                    delta = s0 - j0 * block_bytes
                    if delta > 0:
                        offs = offs.copy()
                        offs[0] += delta
                        lens[0] -= delta
                if c1 == j1:
                    over = j1 * block_bytes - s1
                    if over > 0:
                        lens[-1] -= over
                yield Regions(offs, lens)
            return

        # indexed final
        cum = loop._block_stream_cum
        j0 = int(np.searchsorted(cum, s0, side="right")) - 1
        j0 = max(j0, 0)
        j1 = int(np.searchsorted(cum, s1, side="left"))
        j1 = min(j1, loop.count)
        if j0 >= j1:
            return
        chunk = self.max_regions
        for c0 in range(j0, j1, chunk):
            c1 = min(c0 + chunk, j1)
            offs = base + loop.offsets[c0:c1].astype(_I64)
            lens = (loop.blocksizes[c0:c1] * el).astype(_I64)
            if c0 == j0:
                delta = s0 - int(cum[j0])
                if delta > 0:
                    offs = offs.copy()
                    offs[0] += delta
                    lens = lens.copy()
                    lens[0] -= delta
            if c1 == j1:
                over = int(cum[j1]) - s1
                if over > 0:
                    lens = lens.copy() if c0 != j0 else lens
                    lens[-1] -= over
            yield Regions(offs, lens)


def stream_regions(
    loop: Dataloop,
    count: int = 1,
    base_offset: int = 0,
    first: int = 0,
    last: int | None = None,
) -> Regions:
    """All regions of the given stream range, fully materialized."""
    return DataloopStream(
        loop, count=count, base_offset=base_offset, first=first, last=last
    ).regions()
