"""Fairness arithmetic for multi-tenant runs.

Jain's fairness index (Jain, Chiu & Hawe 1984) condenses a vector of
per-tenant throughputs into a single number in ``(0, 1]``: 1 means a
perfectly even split; ``k/n`` means *k* of *n* tenants share everything
while the rest starve.  ``repro-bench scale`` reports it per sweep
cell, and the CI smoke gate requires >= 0.9 for equal-weight tenants.

For *weighted* tenants, normalize first — feed ``throughput / weight``
so the ideal weighted split also scores 1.
"""

from __future__ import annotations

from typing import Iterable

__all__ = ["jain_index"]


def jain_index(values: Iterable[float]) -> float:
    """Jain's fairness index of a throughput vector.

    ``(sum x)^2 / (n * sum x^2)``, with the empty and all-zero vectors
    defined as perfectly fair (nobody is being short-changed).

    >>> jain_index([10.0, 10.0, 10.0, 10.0])
    1.0
    >>> round(jain_index([8.0, 4.0, 2.0, 1.0]), 3)
    0.662
    >>> jain_index([5.0, 0.0, 0.0, 0.0])  # one tenant hogs all: 1/n
    0.25
    >>> jain_index([])
    1.0
    """
    xs = [float(v) for v in values]
    n = len(xs)
    if n == 0:
        return 1.0
    s = sum(xs)
    sq = sum(x * x for x in xs)
    if sq == 0.0:
        return 1.0
    return (s * s) / (n * sq)
