"""Exposition formats for a :class:`~repro.metrics.hub.MetricsHub`.

* :func:`openmetrics` — the OpenMetrics / Prometheus text exposition
  format.  Counters render as ``<name>_total``, histograms as
  cumulative ``_bucket{le=...}`` samples plus ``_sum``/``_count``, and
  sampled time series as gauges carrying their **last** sampled value
  (the exposition format has no series type; a real Prometheus server
  would build the series by scraping repeatedly — full series data
  lives in the JSON export).
* :func:`validate_openmetrics` — a small grammar checker for the text
  format (the acceptance gate: exported text must parse).
* :func:`metrics_json` — everything the registry holds, including full
  series points, as a JSON-ready dict (``METRICS_*.json`` artifacts).
* :func:`imbalance_report` — the per-server load-imbalance /
  stripe-hotspot summary: max-over-mean busy seconds and bytes served,
  naming the hottest server (paper §4's load-skew argument in data).
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING

from .registry import LABEL_NAME_RE, METRIC_NAME_RE

if TYPE_CHECKING:  # pragma: no cover
    from .hub import MetricsHub

__all__ = [
    "openmetrics",
    "validate_openmetrics",
    "metrics_json",
    "imbalance_report",
]


def _fmt(v) -> str:
    """Render a sample value: Prometheus-style ``1.0`` for whole floats."""
    if isinstance(v, bool):  # pragma: no cover - defensive
        raise TypeError("boolean sample value")
    if isinstance(v, int):
        return str(v)
    if v == int(v) and abs(v) < 1e15:
        return f"{v:.1f}"
    return repr(v)


def _escape(v: str) -> str:
    return v.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels(labels: dict, extra: str = "") -> str:
    parts = [f'{k}="{_escape(v)}"' for k, v in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def openmetrics(hub: "MetricsHub") -> str:
    """Render the hub's registry as OpenMetrics text (ends ``# EOF``)."""
    lines: list[str] = []
    for fam in hub.registry.families.values():
        kind = "gauge" if fam.kind == "series" else fam.kind
        lines.append(f"# TYPE {fam.name} {kind}")
        if fam.help:
            lines.append(f"# HELP {fam.name} {_escape(fam.help)}")
        for labels, inst in fam.labeled():
            if fam.kind == "counter":
                lines.append(
                    f"{fam.name}_total{_labels(labels)} {_fmt(inst.value)}"
                )
            elif fam.kind == "gauge":
                lines.append(
                    f"{fam.name}{_labels(labels)} {_fmt(inst.value)}"
                )
            elif fam.kind == "series":
                lines.append(f"{fam.name}{_labels(labels)} {_fmt(inst.last)}")
            else:  # histogram
                cum = inst.cumulative()
                for bound, c in zip(inst.bounds, cum):
                    le = _labels(labels, f'le="{format(bound, "g")}"')
                    lines.append(f"{fam.name}_bucket{le} {c}")
                le = _labels(labels, 'le="+Inf"')
                lines.append(f"{fam.name}_bucket{le} {cum[-1]}")
                lines.append(
                    f"{fam.name}_sum{_labels(labels)} {_fmt(inst.sum)}"
                )
                lines.append(
                    f"{fam.name}_count{_labels(labels)} {inst.count}"
                )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# grammar checking
# ----------------------------------------------------------------------
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)$"
)
_LABEL_PAIR_RE = re.compile(
    r'^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"$'
)
_SUFFIXES = {
    "counter": ("_total",),
    "gauge": ("",),
    "histogram": ("_bucket", "_sum", "_count"),
}


def validate_openmetrics(text: str) -> list[str]:
    """Check ``text`` against the exposition-format grammar.

    Returns a list of problems (empty = valid).  Checks: exactly one
    ``# EOF`` and it is the final line; every sample is preceded by a
    ``# TYPE`` for its family and uses a suffix legal for that kind;
    metric/label names match the grammar; values parse as numbers;
    histogram buckets are cumulative non-decreasing and the ``+Inf``
    bucket equals ``_count``.
    """
    problems: list[str] = []
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    if not lines or lines[-1] != "# EOF":
        problems.append("missing final # EOF line")
    if sum(1 for ln in lines if ln == "# EOF") > 1:
        problems.append("multiple # EOF lines")

    types: dict[str, str] = {}
    # (family, labels-minus-le) -> list of (bound, cumulative count)
    buckets: dict[tuple, list[tuple[float, int]]] = {}
    counts: dict[tuple, float] = {}

    for i, line in enumerate(lines, 1):
        if line == "# EOF":
            if i != len(lines):
                problems.append(f"line {i}: # EOF before end of input")
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in (
                "counter",
                "gauge",
                "histogram",
                "summary",
                "untyped",
            ):
                problems.append(f"line {i}: malformed TYPE line")
                continue
            name = parts[2]
            if not METRIC_NAME_RE.match(name):
                problems.append(f"line {i}: bad metric name {name!r}")
            if name in types:
                problems.append(f"line {i}: duplicate TYPE for {name!r}")
            types[name] = parts[3]
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("#"):
            problems.append(f"line {i}: unknown comment {line!r}")
            continue
        if not line:
            problems.append(f"line {i}: blank line")
            continue

        m = _SAMPLE_RE.match(line)
        if not m:
            problems.append(f"line {i}: unparsable sample {line!r}")
            continue
        sample = m.group("name")
        family = kind = None
        for fam, ty in types.items():
            for suffix in _SUFFIXES.get(ty, ("",)):
                if sample == fam + suffix:
                    family, kind = fam, ty
                    break
            if family:
                break
        if family is None:
            problems.append(
                f"line {i}: sample {sample!r} has no preceding TYPE"
            )
            continue

        labels: dict[str, str] = {}
        raw = m.group("labels")
        ok = True
        if raw:
            for pair in raw.split(","):
                pm = _LABEL_PAIR_RE.match(pair)
                if not pm:
                    problems.append(f"line {i}: bad label pair {pair!r}")
                    ok = False
                    break
                ln = pm.group("name")
                if not LABEL_NAME_RE.match(ln):  # pragma: no cover
                    problems.append(f"line {i}: bad label name {ln!r}")
                labels[ln] = pm.group("value")
        if not ok:
            continue
        try:
            value = float(m.group("value"))
        except ValueError:
            problems.append(
                f"line {i}: bad sample value {m.group('value')!r}"
            )
            continue

        if kind == "histogram":
            key_labels = tuple(
                sorted((k, v) for k, v in labels.items() if k != "le")
            )
            key = (family, key_labels)
            if sample == family + "_bucket":
                if "le" not in labels:
                    problems.append(f"line {i}: bucket without le label")
                    continue
                le = labels["le"]
                bound = float("inf") if le == "+Inf" else float(le)
                buckets.setdefault(key, []).append((bound, int(value)))
            elif sample == family + "_count":
                counts[key] = value

    for (family, key_labels), pairs in buckets.items():
        bounds = [b for b, _ in pairs]
        cums = [c for _, c in pairs]
        if bounds != sorted(bounds):
            problems.append(f"{family}: bucket bounds not sorted")
        if cums != sorted(cums):
            problems.append(f"{family}: bucket counts not cumulative")
        if bounds and bounds[-1] != float("inf"):
            problems.append(f"{family}: missing +Inf bucket")
        key = (family, key_labels)
        if key in counts and cums and cums[-1] != counts[key]:
            problems.append(
                f"{family}: +Inf bucket {cums[-1]} != count {counts[key]}"
            )
    return problems


# ----------------------------------------------------------------------
# JSON export
# ----------------------------------------------------------------------
def metrics_json(hub: "MetricsHub") -> dict:
    """The whole registry as a JSON-ready dict (schema 1).

    Unlike the text exposition this keeps full series points
    (``t``/``value``/``dt`` triples) and adds interpolated quantile
    estimates to histograms.  Everything is derived from the simulated
    clock, so the document is deterministic — safe to diff run-to-run.
    """
    families = []
    for fam in hub.registry.families.values():
        metrics = []
        for labels, inst in fam.labeled():
            entry: dict = {"labels": labels}
            if fam.kind in ("counter", "gauge"):
                entry["value"] = inst.value
            elif fam.kind == "histogram":
                entry.update(
                    bounds=list(inst.bounds),
                    counts=list(inst.counts),
                    sum=inst.sum,
                    count=inst.count,
                    p50=inst.quantile(0.50),
                    p95=inst.quantile(0.95),
                    p99=inst.quantile(0.99),
                )
            else:  # series
                entry.update(
                    t=list(inst.t),
                    values=list(inst.values),
                    dt=list(inst.dt),
                    integral=inst.integral(),
                )
            metrics.append(entry)
        families.append(
            {
                "name": fam.name,
                "kind": fam.kind,
                "help": fam.help,
                "metrics": metrics,
            }
        )
    return {
        "schema": 1,
        "interval_s": hub.interval,
        "samples": hub.samples,
        "families": families,
    }


# ----------------------------------------------------------------------
# load-imbalance / stripe-hotspot report
# ----------------------------------------------------------------------
def imbalance_report(servers) -> dict:
    """Per-server load skew: max-over-mean busy seconds and bytes served.

    ``servers`` is any iterable of I/O servers (ducktyped: ``index``,
    ``stage_times``, ``bytes_read``, ``bytes_written``).  A
    ``max_over_mean`` of 1.0 means perfectly balanced striping; large
    values flag a stripe hotspot (one daemon absorbing a
    disproportionate share of the access pattern).
    """
    rows = []
    for s in servers:
        rows.append(
            {
                "server": s.index,
                "busy_s": s.stage_times.busy,
                "requests": s.stage_times.requests,
                "bytes": s.bytes_read + s.bytes_written,
            }
        )
    report: dict = {"servers": rows}
    for key in ("busy_s", "bytes"):
        vals = [r[key] for r in rows]
        mean = sum(vals) / len(vals) if vals else 0.0
        peak = max(vals) if vals else 0.0
        hottest = (
            max(rows, key=lambda r: r[key])["server"] if rows else None
        )
        report[key.removesuffix("_s")] = {
            "mean": mean,
            "max": peak,
            "max_over_mean": peak / mean if mean else 1.0,
            "hottest_server": hottest,
        }
    return report
