"""The live metrics hub: instrumentation sites + the periodic sampler.

One :class:`MetricsHub` per simulated file system (``PVFSConfig
(metrics=True)``).  It owns a :class:`~repro.metrics.registry.MetricsRegistry`
and exposes the narrow site API the instrumented layers call
(``observe_stage``, ``observe_rpc``, ``message`` …); every site guards
with ``if metrics.enabled:`` so the disabled singleton
(:data:`NULL_METRICS`) costs a single attribute test, exactly the
``repro.trace`` pattern.

The **sampler** runs off the simulation engine's clock hook
(:attr:`Environment.clock_hook <repro.simulation.engine.Environment>`):
whenever the event loop is about to advance the clock past a sampling
boundary (``metrics_interval`` cadence), the hub snapshots per-server
queue depth, cache hit rate and bytes served, global bytes in flight,
and per-NIC utilization over the elapsed interval into
:class:`~repro.metrics.registry.Series`.  The hook never creates
simulation events, so a metrics-on run is bit-identical to a
metrics-off run — same guarantee, and the same float-equality test, as
tracing.

:func:`reconcile_metrics` cross-checks the hub against the independent
:class:`~repro.simulation.stats.StageTimes` /
:class:`~repro.simulation.stats.NetworkSummary` accounting: per-stage
histogram sums must match stage seconds, NIC utilization series
integrals must match NIC busy seconds, and the message/byte counters
must match the network totals.  ``repro-bench metrics`` treats any
divergence as a hard failure.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .registry import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover
    from ..pvfs.system import PVFS
    from ..simulation.stats import NetworkSummary, StageTimes

__all__ = ["MetricsHub", "NullMetrics", "NULL_METRICS", "reconcile_metrics"]

#: Pipeline stages, in charge order (mirrors StageTimes.stage_fields()).
STAGES = ("decode", "plan", "cache", "storage", "respond")


class MetricsHub:
    """Registry + sampler + instrumentation sites for one file system."""

    enabled = True

    def __init__(self, env, interval: float):
        if interval <= 0:
            raise ValueError("metrics interval must be positive")
        self.env = env
        self.interval = interval
        self.registry = MetricsRegistry()
        self.samples = 0
        self._fs: Optional["PVFS"] = None
        self._next_sample = interval
        self._last_sample_t = 0.0
        self._prev_nic_busy: dict[tuple[str, str], float] = {}
        self._finalized = False

        reg = self.registry
        self._h_stage = {
            s: reg.histogram(
                "repro_stage_seconds",
                "Per-request pipeline stage latency",
                stage=s,
            )
            for s in STAGES
        }
        self._h_request = reg.histogram(
            "repro_request_seconds",
            "End-to-end server request latency (queue wait + service)",
        )
        self._h_queue_wait = reg.histogram(
            "repro_queue_wait_seconds",
            "Time a request sat in the server mailbox/admission queue",
        )
        self._h_rpc: dict[str, object] = {}
        self._h_op: dict[tuple[str, str], object] = {}
        self._c_messages = reg.counter(
            "repro_net_messages", "Messages sent over the simulated network"
        )
        self._c_net_bytes = reg.counter(
            "repro_net_bytes", "Bytes sent over the simulated network"
        )
        self._c_retries = reg.counter(
            "repro_client_retries",
            "Client resends after admission-control rejection",
        )
        self._g_inflight = reg.gauge(
            "repro_net_inflight_bytes",
            "Bytes reserved on NICs but not yet delivered",
        )
        # fault-injection instruments, created lazily per fault kind so
        # a fault-free metered run exports no fault families at all
        self._c_faults: dict[str, object] = {}
        self._c_fault_stall = None
        self._c_timeouts = None
        self._c_failovers = None
        # collective datatype I/O instruments, created lazily so runs
        # without collectives export no repro_collective_* families
        self._c_coll_views = None
        self._c_coll_saved = None
        # collective fault-tolerance instruments (armed fault configs)
        self._c_coll_resends = None
        self._c_coll_reelects = None
        # multi-tenant instruments, created lazily per tenant so a
        # single-tenant run exports no repro_tenant_* families at all
        self._tenant_names: Optional[list[str]] = None
        self._h_tenant_request: dict[int, object] = {}
        self._h_tenant_wait: dict[int, object] = {}
        self._c_tenant_bytes: dict[int, object] = {}

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def bind(self, fs: "PVFS") -> None:
        """Attach the file system whose state the sampler snapshots."""
        self._fs = fs
        tenants = fs.config.tenants
        if tenants is not None:
            self._tenant_names = [t.name for t in tenants]

    # ------------------------------------------------------------------
    # instrumentation sites (all pure observation)
    # ------------------------------------------------------------------
    def observe_stage(self, stage: str, seconds: float) -> None:
        self._h_stage[stage].observe(seconds)

    def observe_request(self, seconds: float) -> None:
        self._h_request.observe(seconds)

    def observe_queue_wait(self, seconds: float) -> None:
        self._h_queue_wait.observe(seconds)

    def observe_rpc(self, seconds: float, op_kind: str) -> None:
        h = self._h_rpc.get(op_kind)
        if h is None:
            h = self.registry.histogram(
                "repro_rpc_seconds",
                "Client round-trip latency, request sent to response "
                "accepted (includes rejection backoff and resends)",
                op=op_kind,
            )
            self._h_rpc[op_kind] = h
        h.observe(seconds)

    def observe_op(self, seconds: float, method: str, is_write: bool) -> None:
        key = (method, "write" if is_write else "read")
        h = self._h_op.get(key)
        if h is None:
            h = self.registry.histogram(
                "repro_mpiio_seconds",
                "Whole MPI-IO operation latency",
                method=key[0],
                op=key[1],
            )
            self._h_op[key] = h
        h.observe(seconds)

    def _tenant_label(self, tenant: int) -> Optional[str]:
        names = self._tenant_names
        if names is None:
            return None
        if 0 <= tenant < len(names):
            return names[tenant]
        return names[0]

    def tenant_request(self, tenant: int, seconds: float) -> None:
        """Per-tenant end-to-end request latency (no-op untenanted)."""
        label = self._tenant_label(tenant)
        if label is None:
            return
        h = self._h_tenant_request.get(tenant)
        if h is None:
            h = self.registry.histogram(
                "repro_tenant_request_seconds",
                "End-to-end server request latency, by tenant",
                tenant=label,
            )
            self._h_tenant_request[tenant] = h
        h.observe(seconds)

    def tenant_queue_wait(self, tenant: int, seconds: float) -> None:
        """Per-tenant admission queue wait (no-op untenanted)."""
        label = self._tenant_label(tenant)
        if label is None:
            return
        h = self._h_tenant_wait.get(tenant)
        if h is None:
            h = self.registry.histogram(
                "repro_tenant_queue_wait_seconds",
                "Time a request waited for weighted-fair admission, "
                "by tenant",
                tenant=label,
            )
            self._h_tenant_wait[tenant] = h
        h.observe(seconds)

    def tenant_bytes(self, tenant: int, nbytes: int) -> None:
        """Per-tenant data bytes served (no-op untenanted)."""
        label = self._tenant_label(tenant)
        if label is None:
            return
        c = self._c_tenant_bytes.get(tenant)
        if c is None:
            c = self.registry.counter(
                "repro_tenant_bytes",
                "Data bytes served (read + written), by tenant",
                tenant=label,
            )
            self._c_tenant_bytes[tenant] = c
        c.inc(nbytes)

    def tenant_throughputs(self) -> dict[str, float]:
        """Served bytes per tenant / elapsed time — the vector to feed
        :func:`~repro.metrics.fairness.jain_index`."""
        now = self.env.now
        if self._tenant_names is None or now <= 0:
            return {}
        out = {}
        for i, name in enumerate(self._tenant_names):
            c = self._c_tenant_bytes.get(i)
            out[name] = (c.value / now) if c is not None else 0.0
        return out

    def message(self) -> None:
        self._c_messages.inc()

    def net_bytes(self, nbytes: int) -> None:
        """Wire bytes only — loopback sends count messages, not bytes,
        mirroring ``Network.bytes_transferred`` exactly."""
        self._c_net_bytes.inc(nbytes)

    def inflight(self, delta_bytes: int) -> None:
        self._g_inflight.inc(delta_bytes)

    def retry(self) -> None:
        self._c_retries.inc()

    def fault(self, kind: str) -> None:
        c = self._c_faults.get(kind)
        if c is None:
            c = self.registry.counter(
                "repro_fault_events",
                "Injected faults (repro.faults), by kind",
                kind=kind,
            )
            self._c_faults[kind] = c
        c.inc()

    def fault_stall(self, seconds: float) -> None:
        c = self._c_fault_stall
        if c is None:
            c = self.registry.counter(
                "repro_fault_stall_seconds",
                "Storage-stage seconds injected by disk faults",
            )
            self._c_fault_stall = c
        c.inc(seconds)

    def timeout(self) -> None:
        c = self._c_timeouts
        if c is None:
            c = self.registry.counter(
                "repro_client_timeouts",
                "Client RPC response timeouts (fault injection)",
            )
            self._c_timeouts = c
        c.inc()

    def failover(self) -> None:
        c = self._c_failovers
        if c is None:
            c = self.registry.counter(
                "repro_client_failovers",
                "Client requests that succeeded after >=1 timeout",
            )
            self._c_failovers = c
        c.inc()

    def collective(self, views_merged: int, requests_saved: int) -> None:
        """Account one collective datatype operation (rank 0 reports)."""
        if self._c_coll_views is None:
            self._c_coll_views = self.registry.counter(
                "repro_collective_views_merged",
                "Per-rank file views deduplicated by fingerprint at the "
                "collective aggregators",
            )
            self._c_coll_saved = self.registry.counter(
                "repro_collective_requests_saved",
                "Data-path requests avoided vs the independent datatype "
                "path (one per rank per touched server)",
            )
        self._c_coll_views.inc(views_merged)
        self._c_coll_saved.inc(requests_saved)

    def coll_resend(self) -> None:
        """One collective segment resent/re-fetched after an ack timeout."""
        c = self._c_coll_resends
        if c is None:
            c = self.registry.counter(
                "repro_coll_resends",
                "Collective data segments resent (write) or re-fetched "
                "(read) after a per-round ack timeout",
            )
            self._c_coll_resends = c
        c.inc()

    def coll_reelect(self) -> None:
        """One aggregator re-election (rounds handed to a survivor)."""
        c = self._c_coll_reelects
        if c is None:
            c = self.registry.counter(
                "repro_coll_reelections",
                "Collective aggregator re-elections after a composite "
                "request timed out past the escalation ladder",
            )
            self._c_coll_reelects = c
        c.inc()

    # ------------------------------------------------------------------
    # periodic sampling (engine clock hook)
    # ------------------------------------------------------------------
    def on_clock(self, prev_now: float, next_t: float) -> None:
        """Engine hook: the clock is about to advance to ``next_t``.

        Emits one sample per crossed boundary.  State read at boundary
        ``b`` reflects every event strictly before ``b`` plus none at or
        after it — deterministic, and independent of how many events
        share an instant.
        """
        due = self._next_sample
        if next_t < due or self._fs is None or self._finalized:
            return
        while due <= next_t:
            self._sample(due)
            due += self.interval
        self._next_sample = due

    def finalize(self) -> None:
        """Take the closing partial sample at the current instant.

        Called once after the simulation finishes so series cover the
        tail beyond the last whole interval (this is what makes the
        utilization integrals reconcile exactly with NIC busy totals).
        Idempotent.
        """
        if self._finalized:
            return
        self._finalized = True
        if self._fs is None:
            return
        now = self.env.now
        if now > self._last_sample_t:
            self._sample(now)

    def _sample(self, t: float) -> None:
        fs = self._fs
        reg = self.registry
        dt = t - self._last_sample_t
        self._last_sample_t = t
        self.samples += 1

        for server in fs.servers:
            label = f"iod{server.index}"
            reg.series(
                "repro_server_queue_depth",
                "Requests queued or in flight at the I/O daemon",
                server=label,
            ).append(t, float(server.queue_depth()), dt)
            cache = server.expand_cache
            lookups = (cache.hits + cache.misses) if cache is not None else 0
            rate = cache.hits / lookups if lookups else 0.0
            reg.series(
                "repro_server_cache_hit_rate",
                "Cumulative expansion-cache hit rate",
                server=label,
            ).append(t, rate, dt)
            reg.series(
                "repro_server_bytes",
                "Cumulative bytes served (read + written)",
                server=label,
            ).append(
                t, float(server.bytes_read + server.bytes_written), dt
            )

        reg.series(
            "repro_net_inflight_bytes_sampled",
            "Bytes reserved on NICs but not yet delivered, sampled",
        ).append(t, self._g_inflight.value, dt)

        prev = self._prev_nic_busy
        for node in fs.net.nodes.values():
            for side, busy in (
                ("tx", node.tx_busy_time),
                ("rx", node.rx_busy_time),
            ):
                key = (node.name, side)
                delta = busy - prev.get(key, 0.0)
                prev[key] = busy
                reg.series(
                    f"repro_nic_{side}_utilization",
                    f"NIC {side} busy fraction over the sample interval "
                    "(can exceed 1: reservations book busy time up "
                    "front)",
                    node=node.name,
                ).append(t, delta / dt if dt > 0 else 0.0, dt)


class NullMetrics:
    """Disabled metrics: every site is a no-op behind ``enabled=False``."""

    enabled = False
    samples = 0

    def bind(self, fs) -> None:
        pass

    def observe_stage(self, stage, seconds) -> None:
        pass

    def observe_request(self, seconds) -> None:
        pass

    def observe_queue_wait(self, seconds) -> None:
        pass

    def observe_rpc(self, seconds, op_kind) -> None:
        pass

    def observe_op(self, seconds, method, is_write) -> None:
        pass

    def tenant_request(self, tenant, seconds) -> None:
        pass

    def tenant_queue_wait(self, tenant, seconds) -> None:
        pass

    def tenant_bytes(self, tenant, nbytes) -> None:
        pass

    def tenant_throughputs(self) -> dict:
        return {}

    def message(self) -> None:
        pass

    def net_bytes(self, nbytes) -> None:
        pass

    def inflight(self, delta_bytes) -> None:
        pass

    def retry(self) -> None:
        pass

    def fault(self, kind) -> None:
        pass

    def fault_stall(self, seconds) -> None:
        pass

    def timeout(self) -> None:
        pass

    def failover(self) -> None:
        pass

    def collective(self, views_merged, requests_saved) -> None:
        pass

    def coll_resend(self) -> None:
        pass

    def coll_reelect(self) -> None:
        pass

    def on_clock(self, prev_now, next_t) -> None:
        pass

    def finalize(self) -> None:
        pass


#: Shared disabled singleton; ``PVFS`` uses it when ``config.metrics`` is off.
NULL_METRICS = NullMetrics()


def reconcile_metrics(
    hub: MetricsHub,
    stage_times: "StageTimes",
    net_summary: "NetworkSummary",
    tol: float = 1e-9,
) -> list[str]:
    """Cross-check hub instruments against the independent accounting.

    Three reconciliations, all maintained by disjoint code paths so
    agreement is a real invariant, not a tautology:

    * per-stage histogram sums vs :class:`StageTimes` stage seconds;
    * per-NIC utilization series integrals vs ``NodeUtilization`` busy
      seconds (requires :meth:`MetricsHub.finalize` to have captured
      the tail interval);
    * message/byte counters vs the network's global totals (exact).

    Returns the list of divergences (empty = reconciled).
    """
    problems: list[str] = []
    for stage in STAGES:
        want = getattr(stage_times, stage)
        got = hub._h_stage[stage].sum
        if abs(want - got) > tol:
            problems.append(
                f"stage {stage}: histogram sum {got!r} != "
                f"StageTimes {want!r}"
            )

    fams = hub.registry.families
    for side in ("tx", "rx"):
        fam = fams.get(f"repro_nic_{side}_utilization")
        children = (
            {dict(k)["node"]: v for k, v in fam.children.items()}
            if fam is not None
            else {}
        )
        for node in net_summary.nodes:
            busy = node.tx_busy if side == "tx" else node.rx_busy
            series = children.get(node.name)
            got = series.integral() if series is not None else 0.0
            if abs(busy - got) > tol:
                problems.append(
                    f"nic {node.name}/{side}: series integral {got!r} "
                    f"!= busy {busy!r}"
                )

    if hub._c_messages.value != net_summary.total_messages:
        problems.append(
            f"messages: counter {hub._c_messages.value!r} != "
            f"network {net_summary.total_messages!r}"
        )
    if hub._c_net_bytes.value != net_summary.total_bytes:
        problems.append(
            f"bytes: counter {hub._c_net_bytes.value!r} != "
            f"network {net_summary.total_bytes!r}"
        )
    return problems
