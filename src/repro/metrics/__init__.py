"""Simulated-clock metrics: counters, gauges, histograms, time series.

The metrics twin of :mod:`repro.trace`: enable with
``PVFSConfig(metrics=True)``, collect pure observations (metrics-on
runs are bit-identical to metrics-off), export OpenMetrics text or
JSON, and gate regressions with ``repro-bench compare``.
"""

from .export import (
    imbalance_report,
    metrics_json,
    openmetrics,
    validate_openmetrics,
)
from .fairness import jain_index
from .hub import (
    NULL_METRICS,
    STAGES,
    MetricsHub,
    NullMetrics,
    reconcile_metrics,
)
from .registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    Series,
    log_buckets,
)

__all__ = [
    "jain_index",
    "MetricsHub",
    "NullMetrics",
    "NULL_METRICS",
    "STAGES",
    "reconcile_metrics",
    "MetricsRegistry",
    "MetricFamily",
    "Counter",
    "Gauge",
    "Histogram",
    "Series",
    "log_buckets",
    "DEFAULT_LATENCY_BUCKETS",
    "openmetrics",
    "validate_openmetrics",
    "metrics_json",
    "imbalance_report",
]
