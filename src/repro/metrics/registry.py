"""Metric instruments and the registry that owns them.

The registry is a plain container keyed on the *simulated* clock: it
never touches the event queue, so collecting metrics is pure
observation — exactly the contract ``repro.trace`` established for
spans.  Four instrument kinds:

* :class:`Counter` — monotonically increasing total (messages sent,
  bytes transferred, retries);
* :class:`Gauge` — a value that goes up and down (bytes in flight);
* :class:`Histogram` — log-bucketed latency distribution with
  ``sum``/``count`` and interpolated quantile estimates (p50/p95/p99);
* :class:`Series` — a sampled time series of ``(t, value, dt)`` points
  produced by the periodic sampler; ``integral()`` recovers the
  value×time area so rate series reconcile with busy-time totals.

Instruments live in *families* (one name, one kind, one help string)
and are distinguished by label sets, mirroring the OpenMetrics data
model so :mod:`repro.metrics.export` can render the exposition format
directly.
"""

from __future__ import annotations

import bisect
import re
from typing import Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Series",
    "MetricFamily",
    "MetricsRegistry",
    "log_buckets",
    "DEFAULT_LATENCY_BUCKETS",
]

#: OpenMetrics metric / label name grammar.
METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def log_buckets(
    lo: float = 1e-6, hi: float = 10.0, per_decade: int = 3
) -> tuple[float, ...]:
    """Geometric bucket bounds from ``lo`` to at least ``hi``.

    ``per_decade`` bounds per factor of ten; the default spans 1 µs to
    10 s, which covers every simulated latency the cluster produces
    (NIC transfer of one header up to a full collective I/O phase).
    """
    if lo <= 0 or hi <= lo:
        raise ValueError("need 0 < lo < hi")
    out = []
    k = 0
    while True:
        v = lo * 10.0 ** (k / per_decade)
        out.append(v)
        if v >= hi:
            return tuple(out)
        k += 1


#: Shared default for latency histograms (22 bounds, 1 µs … 10 s).
DEFAULT_LATENCY_BUCKETS = log_buckets()


class Counter:
    """Monotonic total.  OpenMetrics renders it as ``<name>_total``."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A value that can rise and fall."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Log-bucketed distribution with exact ``sum`` and ``count``.

    ``bounds`` are the upper bucket edges (``le`` values); one implicit
    overflow bucket catches everything above the last bound.  ``sum``
    accumulates the raw observed values, so histogram totals reconcile
    exactly with any other accounting of the same quantities (the
    acceptance cross-check against :class:`~repro.simulation.stats.StageTimes`).
    """

    kind = "histogram"
    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Optional[tuple[float, ...]] = None):
        b = tuple(bounds) if bounds is not None else DEFAULT_LATENCY_BUCKETS
        if not b or list(b) != sorted(b) or len(set(b)) != len(b):
            raise ValueError("bucket bounds must be sorted and distinct")
        self.bounds = b
        self.counts = [0] * (len(b) + 1)  # last = overflow (+Inf)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> list[int]:
        """Cumulative bucket counts, one per bound plus ``+Inf``."""
        out, running = [], 0
        for c in self.counts:
            running += c
            out.append(running)
        return out

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by interpolating within buckets.

        The same estimate ``histogram_quantile`` computes from a
        Prometheus scrape: linear within the containing bucket, the
        lower edge of the first bucket taken as 0, and the last bound
        returned for anything in the overflow bucket.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        running = 0
        for i, c in enumerate(self.counts):
            if c == 0:
                continue
            if running + c >= target:
                if i == len(self.bounds):  # overflow bucket
                    return self.bounds[-1]
                lo = self.bounds[i - 1] if i > 0 else 0.0
                hi = self.bounds[i]
                frac = (target - running) / c
                return lo + (hi - lo) * frac
            running += c
        return self.bounds[-1]


class Series:
    """A sampled time series: parallel ``t`` / ``value`` / ``dt`` lists.

    ``dt`` is the width of the sampling interval the point summarizes
    (the tail sample at finalize time can be shorter than the cadence).
    For rate-valued series (NIC utilization), ``integral()`` recovers
    the underlying busy seconds: ``sum(value * dt)``.
    """

    kind = "series"
    __slots__ = ("t", "values", "dt")

    def __init__(self):
        self.t: list[float] = []
        self.values: list[float] = []
        self.dt: list[float] = []

    def append(self, t: float, value: float, dt: float) -> None:
        self.t.append(t)
        self.values.append(value)
        self.dt.append(dt)

    def integral(self) -> float:
        return sum(v * d for v, d in zip(self.values, self.dt))

    @property
    def last(self) -> float:
        return self.values[-1] if self.values else 0.0

    def __len__(self) -> int:
        return len(self.t)


_KINDS = {
    "counter": Counter,
    "gauge": Gauge,
    "histogram": Histogram,
    "series": Series,
}


class MetricFamily:
    """One metric name: a kind, a help string, labeled children."""

    __slots__ = ("name", "kind", "help", "children")

    def __init__(self, name: str, kind: str, help: str = ""):
        self.name = name
        self.kind = kind
        self.help = help
        #: sorted ``((label, value), ...)`` tuple → instrument
        self.children: dict[tuple, object] = {}

    def labeled(self) -> list[tuple[dict, object]]:
        """``(labels-dict, instrument)`` pairs in insertion order."""
        return [(dict(k), v) for k, v in self.children.items()]


class MetricsRegistry:
    """Families of named, labeled instruments.

    ``counter``/``gauge``/``histogram``/``series`` get-or-create the
    instrument for ``(name, labels)``; asking for an existing name with
    a different kind is a programming error and raises.
    """

    def __init__(self):
        self.families: dict[str, MetricFamily] = {}

    # ------------------------------------------------------------------
    def _child(self, name: str, kind: str, help: str, labels: dict, **kw):
        if not METRIC_NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        fam = self.families.get(name)
        if fam is None:
            fam = MetricFamily(name, kind, help)
            self.families[name] = fam
        elif fam.kind != kind:
            raise ValueError(
                f"metric {name!r} is a {fam.kind}, not a {kind}"
            )
        for ln, lv in labels.items():
            if not LABEL_NAME_RE.match(ln):
                raise ValueError(f"invalid label name {ln!r}")
            if not isinstance(lv, str):
                raise TypeError(f"label {ln!r} value must be a string")
        key = tuple(sorted(labels.items()))
        child = fam.children.get(key)
        if child is None:
            child = _KINDS[kind](**kw)
            fam.children[key] = child
        return child

    # ------------------------------------------------------------------
    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._child(name, "counter", help, labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._child(name, "gauge", help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Optional[tuple[float, ...]] = None,
        **labels,
    ) -> Histogram:
        return self._child(name, "histogram", help, labels, bounds=buckets)

    def series(self, name: str, help: str = "", **labels) -> Series:
        return self._child(name, "series", help, labels)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(len(f.children) for f in self.families.values())
