"""Server-side storage substrate.

:class:`BlockStore` holds the real bytes of one I/O server's portion of
each file (sparse, chunked, zero-filled holes) and supports gather /
scatter against :class:`~repro.regions.Regions`.  :class:`DiskModel`
converts an access's region structure into simulated disk time.
"""

from .block_store import BlockStore
from .disk_model import DiskModel

__all__ = ["BlockStore", "DiskModel"]
