"""Sparse, chunked byte store (one per I/O server).

Files are identified by integer handles.  Storage is allocated lazily in
fixed-size chunks so that paper-scale *phantom* runs (which track sizes
but never store payloads) and small *real-data* runs (tests, examples)
share one code path.
"""

from __future__ import annotations

import numpy as np

from ..regions import Regions

__all__ = ["BlockStore"]

_CHUNK = 1 << 18  # 256 KiB


class _FileData:
    __slots__ = ("chunks", "size")

    def __init__(self):
        self.chunks: dict[int, np.ndarray] = {}
        self.size = 0  # one past the highest byte ever written


class BlockStore:
    """Byte-addressable store for the local portion of many files."""

    def __init__(self, chunk_size: int = _CHUNK):
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        self.chunk_size = chunk_size
        self._files: dict[int, _FileData] = {}
        self.bytes_written = 0
        self.bytes_read = 0

    # ------------------------------------------------------------------
    def _file(self, handle: int) -> _FileData:
        f = self._files.get(handle)
        if f is None:
            f = _FileData()
            self._files[handle] = f
        return f

    def local_size(self, handle: int) -> int:
        f = self._files.get(handle)
        return f.size if f is not None else 0

    def remove(self, handle: int) -> None:
        self._files.pop(handle, None)

    def handles(self) -> list[int]:
        return sorted(self._files)

    # ------------------------------------------------------------------
    def note_write(self, handle: int, regions: Regions) -> None:
        """Phantom write: extend the size without storing bytes."""
        f = self._file(handle)
        if regions.count:
            _, hi = regions.extent()
            f.size = max(f.size, hi)
        self.bytes_written += regions.total_bytes

    def note_read(self, regions: Regions) -> None:
        """Phantom read accounting."""
        self.bytes_read += regions.total_bytes

    # ------------------------------------------------------------------
    def write_regions(self, handle: int, regions: Regions, stream) -> None:
        """Scatter the packed ``stream`` into the given physical regions."""
        stream = np.asarray(stream).view(np.uint8).reshape(-1)
        if stream.size != regions.total_bytes:
            raise ValueError(
                f"stream of {stream.size} bytes vs regions of "
                f"{regions.total_bytes} bytes"
            )
        f = self._file(handle)
        pos = 0
        cs = self.chunk_size
        for off, ln in regions:
            end = off + ln
            while off < end:
                ci = off // cs
                chunk = f.chunks.get(ci)
                if chunk is None:
                    chunk = np.zeros(cs, dtype=np.uint8)
                    f.chunks[ci] = chunk
                lo = off - ci * cs
                take = min(end - off, cs - lo)
                chunk[lo : lo + take] = stream[pos : pos + take]
                pos += take
                off += take
            f.size = max(f.size, end)
        self.bytes_written += stream.size

    def read_regions(self, handle: int, regions: Regions) -> np.ndarray:
        """Gather the packed stream of the given physical regions.

        Unwritten bytes read as zero (holes).
        """
        out = np.zeros(regions.total_bytes, dtype=np.uint8)
        f = self._files.get(handle)
        cs = self.chunk_size
        pos = 0
        for off, ln in regions:
            end = off + ln
            while off < end:
                ci = off // cs
                lo = off - ci * cs
                take = min(end - off, cs - lo)
                if f is not None:
                    chunk = f.chunks.get(ci)
                    if chunk is not None:
                        out[pos : pos + take] = chunk[lo : lo + take]
                pos += take
                off += take
        self.bytes_read += out.size
        return out
