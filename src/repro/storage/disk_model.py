"""Disk timing model for an I/O server.

Charges a positioning cost for every discontiguous transition (between
the previous access's end and the next region's start) plus streaming
transfer time.  The head position persists across requests, so two
interleaved clients' scattered accesses cost more than one client's
sequential scan — matching the qualitative behaviour of the paper's
single SCSI disk per server behind the Linux buffer cache (which is why
the default seek constant in :class:`~repro.simulation.costs.CostModel`
is small: most of these workloads replay out of cache/readahead).
"""

from __future__ import annotations

import numpy as np

from ..regions import Regions
from ..simulation.costs import CostModel

__all__ = ["DiskModel"]


class DiskModel:
    """Stateful per-server disk timing."""

    def __init__(self, costs: CostModel):
        self.costs = costs
        self._head = 0  # byte position after the last access
        self.total_seeks = 0
        self.total_bytes = 0

    def access_time(self, regions: Regions) -> float:
        """Simulated seconds to read or write the given regions."""
        if not regions.count:
            return 0.0
        ends = regions.offsets + regions.lengths
        seeks = int(regions.offsets[0] != self._head)
        if regions.count > 1:
            seeks += int(np.count_nonzero(regions.offsets[1:] != ends[:-1]))
        self._head = int(ends[-1])
        nbytes = regions.total_bytes
        self.total_seeks += seeks
        self.total_bytes += nbytes
        return seeks * self.costs.disk_seek + nbytes / self.costs.disk_bandwidth
