"""Vectorized sets of contiguous byte regions.

A :class:`Regions` object is the struct-of-arrays representation of an
ordered list of ``(offset, length)`` pairs.  It is the common currency of
the whole stack: datatype flattening produces one, the PVFS request
processing pipeline turns dataloops into one on each I/O server, and the
storage layer consumes them to actually move bytes.

The *order* of regions is significant: it is the order in which data
appears in the packed byte stream of the datatype that produced them
(MPI typemap traversal order), not ascending file-offset order.
"""

from .core import Regions

__all__ = ["Regions"]
