"""Core :class:`Regions` implementation.

Everything here is NumPy-vectorized; no per-region Python loops on the
hot paths (tiling, shifting, coalescing, gather/scatter, clipping).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from ..vectorize import scalar_fallback

__all__ = ["Regions"]

_I64 = np.int64


def _as_i64(a) -> np.ndarray:
    arr = np.asarray(a, dtype=_I64)
    if arr.ndim != 1:
        arr = arr.reshape(-1)
    return arr


class Regions:
    """An ordered sequence of contiguous byte regions.

    Parameters
    ----------
    offsets, lengths:
        Equal-length 1-D integer arrays.  Zero-length regions are
        dropped; negative lengths are rejected.

    Notes
    -----
    Instances are treated as immutable; all transformations return new
    objects (arrays may be shared when unchanged).
    """

    __slots__ = ("offsets", "lengths", "_hash", "_flat_idx", "_sd")

    def __init__(self, offsets, lengths, *, _trusted: bool = False):
        self._hash = None
        self._flat_idx = None
        self._sd = None
        if _trusted:
            self.offsets = offsets
            self.lengths = lengths
            return
        offs = _as_i64(offsets)
        lens = _as_i64(lengths)
        if offs.shape != lens.shape:
            raise ValueError(
                f"offsets and lengths must have the same shape: "
                f"{offs.shape} != {lens.shape}"
            )
        if lens.size and lens.min() < 0:
            raise ValueError("negative region length")
        if lens.size:
            keep = lens > 0
            if not keep.all():
                offs = offs[keep]
                lens = lens[keep]
        self.offsets = offs
        self.lengths = lens

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "Regions":
        return cls(
            np.empty(0, dtype=_I64), np.empty(0, dtype=_I64), _trusted=True
        )

    @classmethod
    def single(cls, offset: int, length: int) -> "Regions":
        if length <= 0:
            return cls.empty()
        return cls(
            np.array([offset], dtype=_I64),
            np.array([length], dtype=_I64),
            _trusted=True,
        )

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[int, int]]) -> "Regions":
        pairs = list(pairs)
        if not pairs:
            return cls.empty()
        arr = np.asarray(pairs, dtype=_I64)
        return cls(arr[:, 0], arr[:, 1])

    @classmethod
    def concat(cls, parts: Sequence["Regions"]) -> "Regions":
        """Concatenate regions preserving sequence order."""
        parts = [p for p in parts if p.count]
        if not parts:
            return cls.empty()
        if len(parts) == 1:
            return parts[0]
        return cls(
            np.concatenate([p.offsets for p in parts]),
            np.concatenate([p.lengths for p in parts]),
            _trusted=True,
        )

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of contiguous regions."""
        return int(self.offsets.size)

    @property
    def total_bytes(self) -> int:
        """Sum of region lengths."""
        return int(self.lengths.sum()) if self.lengths.size else 0

    @property
    def is_sorted(self) -> bool:
        """True if offsets are non-decreasing in sequence order."""
        if self.count < 2:
            return True
        return bool(np.all(np.diff(self.offsets) >= 0))

    def extent(self) -> tuple[int, int]:
        """Return ``(lo, hi)`` spanning all regions (``hi`` exclusive).

        Returns ``(0, 0)`` for an empty set.
        """
        if not self.count:
            return (0, 0)
        lo = int(self.offsets.min())
        hi = int((self.offsets + self.lengths).max())
        return lo, hi

    def __len__(self) -> int:
        return self.count

    def __iter__(self) -> Iterator[tuple[int, int]]:
        for o, l in zip(self.offsets.tolist(), self.lengths.tolist()):
            yield (o, l)

    def __getitem__(self, i) -> "Regions":
        if isinstance(i, slice):
            return Regions(self.offsets[i], self.lengths[i], _trusted=True)
        return Regions.single(int(self.offsets[i]), int(self.lengths[i]))

    def __eq__(self, other) -> bool:
        if not isinstance(other, Regions):
            return NotImplemented
        return bool(
            np.array_equal(self.offsets, other.offsets)
            and np.array_equal(self.lengths, other.lengths)
        )

    def __hash__(self):
        """Content hash, consistent with ``__eq__`` (memoized).

        Instances are immutable by convention, so hashing over the raw
        array bytes is safe and lets region sets key caches directly.
        """
        h = self._hash
        if h is None:
            h = hash((self.offsets.tobytes(), self.lengths.tobytes()))
            self._hash = h
        return h

    def __repr__(self) -> str:
        if self.count <= 6:
            body = ", ".join(f"({o}, {l})" for o, l in self)
        else:
            head = ", ".join(f"({o}, {l})" for o, l in self[:3])
            tail = ", ".join(f"({o}, {l})" for o, l in self[-2:])
            body = f"{head}, ... {tail}"
        return f"Regions[{self.count}: {body}]"

    def to_pairs(self) -> list[tuple[int, int]]:
        return list(self)

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def shift(self, delta: int) -> "Regions":
        """Return a copy with every offset displaced by ``delta``."""
        if not self.count or delta == 0:
            return self
        return Regions(self.offsets + _I64(delta), self.lengths, _trusted=True)

    def tile(self, count: int, stride: int) -> "Regions":
        """Repeat the whole set ``count`` times at byte ``stride``.

        Replica *i* is shifted by ``i * stride``.  Sequence order is
        replica-major (all of replica 0, then replica 1, ...), matching
        datatype traversal order of ``contiguous``/``vector`` types.
        """
        if count < 0:
            raise ValueError("negative tile count")
        if count == 0 or not self.count:
            return Regions.empty()
        if count == 1:
            return self
        shifts = (np.arange(count, dtype=_I64) * _I64(stride))[:, None]
        offs = (self.offsets[None, :] + shifts).reshape(-1)
        lens = np.broadcast_to(
            self.lengths[None, :], (count, self.count)
        ).reshape(-1)
        return Regions(offs, np.ascontiguousarray(lens), _trusted=True)

    def coalesce(self) -> "Regions":
        """Merge regions that are adjacent both in sequence and in space.

        Region *i+1* is merged into region *i* when
        ``offsets[i] + lengths[i] == offsets[i+1]``.  This preserves the
        packed-stream order semantics (only sequence-adjacent merges are
        valid).
        """
        n = self.count
        if n < 2:
            return self
        ends = self.offsets + self.lengths
        # boundary[i] is True when region i starts a new coalesced run
        boundary = np.empty(n, dtype=bool)
        boundary[0] = True
        boundary[1:] = self.offsets[1:] != ends[:-1]
        if boundary.all():
            return self
        starts_idx = np.flatnonzero(boundary)
        run_ends = np.empty(starts_idx.size, dtype=_I64)
        # last region index of each run
        last_idx = np.empty(starts_idx.size, dtype=np.int64)
        last_idx[:-1] = starts_idx[1:] - 1
        last_idx[-1] = n - 1
        run_ends = ends[last_idx]
        offs = self.offsets[starts_idx]
        return Regions(offs, run_ends - offs, _trusted=True)

    def clip(self, lo: int, hi: int) -> "Regions":
        """Intersect with the half-open byte range ``[lo, hi)``.

        Order of surviving (possibly trimmed) regions is preserved.
        """
        if not self.count or hi <= lo:
            return Regions.empty()
        starts = np.maximum(self.offsets, _I64(lo))
        ends = np.minimum(self.offsets + self.lengths, _I64(hi))
        lens = ends - starts
        keep = lens > 0
        if not keep.any():
            return Regions.empty()
        return Regions(starts[keep], lens[keep], _trusted=True)

    def clip_with_stream(self, lo: int, hi: int) -> tuple["Regions", np.ndarray]:
        """Like :meth:`clip` but also return stream positions.

        The second return value gives, for each surviving region, the
        byte position within *this* region sequence's packed stream at
        which the surviving region's data begins.  Needed to line file
        regions up with the packed data stream after clipping (e.g. when
        a server holds only part of a request's file regions).
        """
        if not self.count or hi <= lo:
            return Regions.empty(), np.empty(0, dtype=_I64)
        stream_starts = np.concatenate(
            ([0], np.cumsum(self.lengths)[:-1])
        ).astype(_I64, copy=False)
        starts = np.maximum(self.offsets, _I64(lo))
        ends = np.minimum(self.offsets + self.lengths, _I64(hi))
        lens = ends - starts
        keep = lens > 0
        if not keep.any():
            return Regions.empty(), np.empty(0, dtype=_I64)
        spos = stream_starts[keep] + (starts[keep] - self.offsets[keep])
        return Regions(starts[keep], lens[keep], _trusted=True), spos

    def _sorted_disjoint(self) -> bool:
        """True when regions are sorted and pairwise non-overlapping.

        Memoized; this is the precondition for the searchsorted-based
        partition fast path below.
        """
        sd = self._sd
        if sd is None:
            if self.count < 2:
                sd = True
            else:
                ends = self.offsets + self.lengths
                sd = bool(np.all(self.offsets[1:] >= ends[:-1]))
            self._sd = sd
        return sd

    def partition_with_stream(
        self, bounds
    ) -> list[tuple["Regions", np.ndarray]]:
        """Clip against consecutive intervals in one pass.

        ``bounds`` is a non-decreasing sequence of ``k + 1`` byte
        positions; the result has one ``(regions, stream_pos)`` entry
        per interval ``[bounds[i], bounds[i+1])``, each identical to
        ``clip_with_stream(bounds[i], bounds[i+1])``.  When this set is
        sorted and disjoint (the common case for file accesses), each
        interval's regions are located with two ``searchsorted`` probes
        over the precomputed end positions instead of an O(n) mask per
        interval — total work O(n + k + output).  Falls back to
        per-interval clipping otherwise (and in scalar mode).
        """
        bounds = _as_i64(bounds)
        k = int(bounds.size) - 1
        if k < 0:
            return []
        if (
            scalar_fallback()
            or not self.count
            or not self._sorted_disjoint()
        ):
            return [
                self.clip_with_stream(int(bounds[i]), int(bounds[i + 1]))
                for i in range(k)
            ]
        ends = self.offsets + self.lengths
        stream_starts = np.concatenate(
            ([0], np.cumsum(self.lengths)[:-1])
        ).astype(_I64, copy=False)
        i0s = np.searchsorted(ends, bounds[:-1], side="right")
        i1s = np.searchsorted(self.offsets, bounds[1:], side="left")
        out: list[tuple[Regions, np.ndarray]] = []
        empty = (Regions.empty(), np.empty(0, dtype=_I64))
        for i in range(k):
            lo = int(bounds[i])
            hi = int(bounds[i + 1])
            a, b = int(i0s[i]), int(i1s[i])
            if hi <= lo or a >= b:
                out.append(empty)
                continue
            offs = self.offsets[a:b].copy()
            lens = self.lengths[a:b].copy()
            spos = stream_starts[a:b].copy()
            head = lo - int(offs[0])
            if head > 0:
                offs[0] += head
                lens[0] -= head
                spos[0] += head
            tail = int(offs[-1]) + int(lens[-1]) - hi
            if tail > 0:
                lens[-1] -= tail
            out.append((Regions(offs, lens, _trusted=True), spos))
        return out

    def slice_stream(self, s0: int, s1: int) -> "Regions":
        """Regions covering packed-stream bytes ``[s0, s1)``.

        The packed stream is the concatenation of the regions' bytes in
        sequence order; edge regions are trimmed.  Vectorized.
        """
        if s1 <= s0 or not self.count:
            return Regions.empty()
        ends = np.cumsum(self.lengths)
        starts = ends - self.lengths
        s0 = max(s0, 0)
        s1 = min(s1, int(ends[-1]))
        if s1 <= s0:
            return Regions.empty()
        i0 = int(np.searchsorted(ends, s0, side="right"))
        i1 = int(np.searchsorted(starts, s1, side="left"))
        offs = self.offsets[i0:i1].copy()
        lens = self.lengths[i0:i1].copy()
        if offs.size:
            head_trim = s0 - int(starts[i0])
            if head_trim > 0:
                offs[0] += head_trim
                lens[0] -= head_trim
            tail_trim = int(ends[i1 - 1]) - s1
            if tail_trim > 0:
                lens[-1] -= tail_trim
        return Regions(offs, lens, _trusted=True)

    def split_at_stream(self, cuts) -> "Regions":
        """Split regions at the given packed-stream positions.

        Returns the same byte set with extra region boundaries inserted
        wherever a cut position falls strictly inside a region.  Fully
        vectorized; used to slice flattened accesses into bounded
        operations without materializing per-operation objects.
        """
        if not self.count:
            return self
        cuts = np.asarray(cuts, dtype=_I64)
        ends = np.cumsum(self.lengths)
        starts = ends - self.lengths
        total = int(ends[-1])
        cuts = cuts[(cuts > 0) & (cuts < total)]
        if not cuts.size:
            return self
        bounds = np.union1d(np.concatenate((starts, ends)), cuts)
        a = bounds[:-1]
        b = bounds[1:]
        # each [a, b) interval lies inside exactly one region
        ridx = np.searchsorted(ends, a, side="right")
        offs = self.offsets[ridx] + (a - starts[ridx])
        return Regions(offs, b - a, _trusted=True)

    def split_chunks(self, max_regions: int) -> Iterator["Regions"]:
        """Yield consecutive slices of at most ``max_regions`` regions.

        This models the list I/O bound on the number of offset–length
        pairs per file-system request.
        """
        if max_regions <= 0:
            raise ValueError("max_regions must be positive")
        for i in range(0, self.count, max_regions):
            yield self[i : i + max_regions]

    def split_stream(self, max_bytes: int) -> Iterator["Regions"]:
        """Yield chunks whose packed streams are at most ``max_bytes``.

        Regions are never split mid-region unless a single region is
        itself larger than ``max_bytes``.
        """
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        pending_off = None
        pending_len = 0
        acc_offs: list[int] = []
        acc_lens: list[int] = []
        acc_bytes = 0

        def flush():
            nonlocal acc_offs, acc_lens, acc_bytes
            if acc_offs:
                out = Regions(
                    np.array(acc_offs, dtype=_I64),
                    np.array(acc_lens, dtype=_I64),
                    _trusted=True,
                )
                acc_offs, acc_lens, acc_bytes = [], [], 0
                return out
            return None

        for off, ln in self:
            while ln > 0:
                room = max_bytes - acc_bytes
                take = min(ln, room)
                if take == 0:
                    chunk = flush()
                    if chunk is not None:
                        yield chunk
                    continue
                acc_offs.append(off)
                acc_lens.append(take)
                acc_bytes += take
                off += take
                ln -= take
        chunk = flush()
        if chunk is not None:
            yield chunk

    # ------------------------------------------------------------------
    # set-style operations (require sorted, non-overlapping semantics)
    # ------------------------------------------------------------------
    def normalized(self) -> "Regions":
        """Return the sorted, overlap-merged (canonical) form of this set.

        Unlike :meth:`coalesce`, this merges overlapping regions too.
        Loses stream-order information; use for set algebra only.
        """
        if self.count < 2:
            return self
        order = np.argsort(self.offsets, kind="stable")
        offs = self.offsets[order]
        ends = np.maximum.accumulate(offs + self.lengths[order])
        # region i starts a new run when it begins after the running end
        boundary = np.empty(offs.size, dtype=bool)
        boundary[0] = True
        boundary[1:] = offs[1:] > ends[:-1]
        starts_idx = np.flatnonzero(boundary)
        last_idx = np.empty(starts_idx.size, dtype=np.int64)
        last_idx[:-1] = starts_idx[1:] - 1
        last_idx[-1] = offs.size - 1
        run_offs = offs[starts_idx]
        return Regions(run_offs, ends[last_idx] - run_offs, _trusted=True)

    def intersect(self, other: "Regions") -> "Regions":
        """Set intersection (returns the canonical form).

        Both sets are normalized first, so each is sorted and disjoint;
        the overlap pairs are then found with two ``searchsorted``
        passes and expanded with ``repeat``/``arange`` interval
        arithmetic — a single vectorized sweep with no per-region
        Python loop.
        """
        a = self.normalized()
        b = other.normalized()
        if not a.count or not b.count:
            return Regions.empty()
        if scalar_fallback():
            return a._intersect_scalar(b)
        a_starts = a.offsets
        a_ends = a.offsets + a.lengths
        b_starts = b.offsets
        b_ends = b.offsets + b.lengths
        # b-regions overlapping a-region i are exactly [lo[i], hi[i])
        lo = np.searchsorted(b_ends, a_starts, side="right")
        hi = np.searchsorted(b_starts, a_ends, side="left")
        counts = hi - lo
        total = int(counts.sum())
        if total == 0:
            return Regions.empty()
        a_idx = np.repeat(np.arange(a.count, dtype=_I64), counts)
        grp_start = np.concatenate(([0], np.cumsum(counts)[:-1]))
        b_idx = np.arange(total, dtype=_I64) - grp_start[a_idx] + lo[a_idx]
        s = np.maximum(b_starts[b_idx], a_starts[a_idx])
        e = np.minimum(b_ends[b_idx], a_ends[a_idx])
        # every matched pair overlaps by >= 1 byte, so no filtering needed
        return Regions(s, e - s, _trusted=True)

    def _intersect_scalar(self, b: "Regions") -> "Regions":
        """Reference intersection; operands must already be normalized."""
        a = self
        out_o: list[np.ndarray] = []
        out_l: list[np.ndarray] = []
        b_starts = b.offsets
        b_ends = b.offsets + b.lengths
        for off, ln in a:
            end = off + ln
            i = int(np.searchsorted(b_ends, off, side="right"))
            j = int(np.searchsorted(b_starts, end, side="left"))
            if i >= j:
                continue
            s = np.maximum(b_starts[i:j], off)
            e = np.minimum(b_ends[i:j], end)
            out_o.append(s)
            out_l.append(e - s)
        if not out_o:
            return Regions.empty()
        return Regions(np.concatenate(out_o), np.concatenate(out_l))

    def overlap_bytes(self, other: "Regions") -> int:
        """Bytes shared between the two sets."""
        return self.intersect(other).total_bytes

    # ------------------------------------------------------------------
    # data movement
    # ------------------------------------------------------------------
    def _flat_index(self) -> np.ndarray:
        """Element index array covering all regions in sequence order.

        Memoized on the instance: gather followed by scatter on the
        same region set (the pack→unpack round trip) reuses one array.
        """
        cached = self._flat_idx
        if cached is not None:
            return cached
        total = self.total_bytes
        if total == 0:
            idx = np.empty(0, dtype=_I64)
        else:
            ends = np.cumsum(self.lengths)
            starts = ends - self.lengths
            idx = np.ones(total, dtype=_I64)
            idx[0] = self.offsets[0]
            if self.count > 1:
                # jump at each region boundary
                idx[starts[1:]] = self.offsets[1:] - (
                    self.offsets[:-1] + self.lengths[:-1] - 1
                )
            idx = np.cumsum(idx)
        self._flat_idx = idx
        return idx

    def gather(self, buf: np.ndarray) -> np.ndarray:
        """Extract the packed byte stream of these regions from ``buf``.

        ``buf`` must be a 1-D ``uint8`` array.  Returns a new ``uint8``
        array of :attr:`total_bytes` bytes.
        """
        buf = _as_u8(buf)
        if not self.count:
            return np.empty(0, dtype=np.uint8)
        lo, hi = self.extent()
        if lo < 0 or hi > buf.size:
            raise IndexError(
                f"regions [{lo}, {hi}) out of bounds for buffer of "
                f"{buf.size} bytes"
            )
        if self.count == 1:
            o, l = int(self.offsets[0]), int(self.lengths[0])
            return buf[o : o + l].copy()
        return buf[self._flat_index()]

    def scatter(self, buf: np.ndarray, data: np.ndarray) -> None:
        """Write the packed byte stream ``data`` into ``buf`` at these regions."""
        buf = _as_u8(buf)
        data = _as_u8(data)
        if data.size != self.total_bytes:
            raise ValueError(
                f"data stream of {data.size} bytes does not match regions "
                f"totalling {self.total_bytes} bytes"
            )
        if not self.count:
            return
        lo, hi = self.extent()
        if lo < 0 or hi > buf.size:
            raise IndexError(
                f"regions [{lo}, {hi}) out of bounds for buffer of "
                f"{buf.size} bytes"
            )
        if self.count == 1:
            o, l = int(self.offsets[0]), int(self.lengths[0])
            buf[o : o + l] = data
            return
        buf[self._flat_index()] = data


def _as_u8(buf) -> np.ndarray:
    arr = np.asarray(buf)
    if arr.dtype != np.uint8:
        arr = arr.view(np.uint8)
    if arr.ndim != 1:
        arr = arr.reshape(-1)
    return arr
