"""I/O characteristics tables (paper Tables 1–3).

These run the *real* access methods over the *paper-scale* workloads in
phantom mode and report the per-client counters: desired data, data
accessed, number of I/O operations, and resent data.  Everything is
measured from the executed decomposition — nothing is hard-coded — so
matching the paper's numbers is a genuine check of the reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from .runner import RunResult, run_workload
from .workloads import Block3DWorkload, FlashWorkload, TileWorkload

__all__ = [
    "METHOD_ORDER",
    "INDEPENDENT_METHODS",
    "METHOD_LABELS",
    "table1",
    "table2",
    "table3",
    "CharacteristicsRow",
]

METHOD_ORDER = [
    "posix",
    "data_sieving",
    "two_phase",
    "list_io",
    "datatype_io",
    "collective_dtype",
]

#: The five methods reachable through independent operations (the
#: paper's set); collective datatype I/O only exists as a collective.
INDEPENDENT_METHODS = METHOD_ORDER[:-1]

METHOD_LABELS = {
    "posix": "POSIX I/O",
    "data_sieving": "Data Sieving I/O",
    "two_phase": "Two-Phase I/O",
    "list_io": "List I/O",
    "datatype_io": "Datatype I/O",
    "collective_dtype": "Collective Datatype I/O",
}


@dataclass
class CharacteristicsRow:
    method: str
    supported: bool
    desired_bytes: int = 0
    accessed_bytes: int = 0
    io_ops: float = 0.0
    resent_bytes: float = 0.0
    request_desc_bytes: float = 0.0

    @classmethod
    def from_result(cls, r: RunResult) -> "CharacteristicsRow":
        return cls(
            method=r.method,
            supported=r.supported,
            desired_bytes=r.desired_bytes,
            accessed_bytes=r.accessed_bytes,
            io_ops=r.io_ops,
            resent_bytes=r.resent_bytes,
            request_desc_bytes=r.request_desc_bytes,
        )


def _characteristics(workload_factory, methods=INDEPENDENT_METHODS):
    rows = []
    for method in methods:
        wl = workload_factory()
        result = run_workload(wl, method, phantom=True)
        rows.append(CharacteristicsRow.from_result(result))
    return rows


def table1(frames: int = 1) -> list[CharacteristicsRow]:
    """Tile reader characteristics (Table 1; per frame with frames=1)."""
    return _characteristics(lambda: TileWorkload.paper(frames=frames))


def table2(
    clients_per_dim: int, grid: int = 600
) -> list[CharacteristicsRow]:
    """3-D block characteristics for one client count (Table 2 section).

    The paper's table describes the read direction; read and write have
    identical characteristics for every method except two-phase's
    resend direction, so we run reads.
    """
    return _characteristics(
        lambda: Block3DWorkload(grid=grid, clients_per_dim=clients_per_dim)
    )


def table3(n_clients: int = 4) -> list[CharacteristicsRow]:
    """FLASH I/O characteristics (Table 3; write test).

    Per-client numbers are independent of the client count except
    two-phase's resent fraction, which is ``(n-1)/n`` — the returned
    rows come from an ``n_clients`` run so the fraction can be checked
    against the formula.
    """
    return _characteristics(lambda: FlashWorkload.paper(n_clients))
