"""``repro-bench compare``: perf-regression gate against baselines.

Re-collects the machine-independent benchmark documents
(``BENCH_pipeline.json`` via :func:`repro.bench.baseline
.collect_pipeline_baseline`, ``BENCH_dtype_cache.json`` via
:func:`repro.bench.dtype_cache.collect`, ``BENCH_faults.json`` via
:func:`repro.bench.faultscmd.collect_faults_bench`,
``BENCH_scale.json`` via :func:`repro.bench.scalecmd
.collect_scale_bench`, ``BENCH_hotpaths.json`` via
:func:`repro.bench.hotpaths.collect`, ``BENCH_collective.json`` via
:func:`repro.bench.collectivecmd.collect_collective_bench`) and diffs them
against the checked-in copies under ``results/``.  Every compared quantity is a
*simulated* figure (bandwidth, simulated elapsed seconds, server stage
busy time, cache hit rate), so the gate is deterministic: any change
beyond the tolerance band is a real behavioural change of the code, not
machine noise.  Wall-clock fields in the baselines (``wall_s``,
``speedup``) are machine-dependent and deliberately ignored.

A *regression* is a change in the harmful direction beyond the relative
tolerance — bandwidth or hit rate down, elapsed or server busy time up,
or a previously-supported (benchmark, method) pair disappearing.
Improvements beyond tolerance are reported but do not fail the gate
(refresh the baseline to lock them in).  Exit status is the CI
contract: nonzero iff at least one regression.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "DEFAULT_TOLERANCE",
    "Delta",
    "compare_collective_docs",
    "compare_dtype_cache_docs",
    "compare_faults_docs",
    "compare_hotpaths_docs",
    "compare_pipeline_docs",
    "compare_scale_docs",
    "compare_against_dir",
    "render_compare",
    "update_baselines",
]

#: Relative tolerance band (±5 %) applied to every compared metric.
DEFAULT_TOLERANCE = 0.05

#: Stage-seconds keys of ``server_stages`` summed into server busy time.
_STAGE_KEYS = ("decode_s", "plan_s", "cache_s", "storage_s", "respond_s")


@dataclass
class Delta:
    """One compared metric: baseline vs current, and the verdict."""

    source: str  #: e.g. "pipeline/fig8_tile_read/datatype_io"
    metric: str  #: e.g. "mbps"
    baseline: Optional[float]
    current: Optional[float]
    change: float  #: signed relative change, (cur - base) / base
    regression: bool
    note: str = ""
    unit: str = ""  #: display unit of baseline/current ("MiB/s", "s", …)
    baseline_file: str = ""  #: BENCH_*.json file this delta gates against

    @property
    def improved(self) -> bool:
        # note may carry a blame-delta suffix after "improved"
        return not self.regression and self.note.startswith("improved")


#: metric name → display unit for the comparison report.
_METRIC_UNITS = {
    "mbps": "MiB/s",
    "collective_mbps": "MiB/s",
    "bytes": "B",
    "accessed_bytes": "B",
    "resent_bytes": "B",
}


def _unit(metric: str) -> str:
    if metric in _METRIC_UNITS:
        return _METRIC_UNITS[metric]
    if metric.endswith("_s") or metric == "sim_s":
        return "s"
    return ""


def _rel(base: float, cur: float) -> float:
    if base == 0:
        return 0.0 if cur == base else float("inf") * (1 if cur > 0 else -1)
    return (cur - base) / base


def _diff(
    deltas: list[Delta],
    source: str,
    metric: str,
    base: float,
    cur: float,
    tolerance: float,
    *,
    higher_is_better: bool,
) -> None:
    change = _rel(base, cur)
    harmful = -change if higher_is_better else change
    regression = harmful > tolerance
    note = ""
    if regression:
        note = "regression"
    elif -harmful > tolerance:
        note = "improved"
    deltas.append(
        Delta(
            source, metric, base, cur, change, regression, note,
            unit=_unit(metric),
        )
    )


def _blame_shift(base_blame, cur_blame) -> str:
    """Name the resource whose critical-path share moved most.

    Input: the ``critical_blame`` share dicts of two pipeline baseline
    entries (either may be missing — older baselines predate blame
    collection).  Output like ``"blame: disk 41.2%→58.0% of critical
    path"``, or ``""`` when unavailable.
    """
    if not base_blame or not cur_blame:
        return ""
    best, best_move = "", 0.0
    for resource in set(base_blame) | set(cur_blame):
        move = abs(
            cur_blame.get(resource, 0.0) - base_blame.get(resource, 0.0)
        )
        if move > best_move:
            best, best_move = resource, move
    if not best:
        return ""
    return (
        f"blame: {best} {base_blame.get(best, 0.0):.1%}"
        f"→{cur_blame.get(best, 0.0):.1%} of critical path"
    )


def compare_pipeline_docs(
    base: dict, cur: dict, tolerance: float = DEFAULT_TOLERANCE
) -> list[Delta]:
    """Diff two ``BENCH_pipeline.json`` documents (baseline, current)."""
    deltas: list[Delta] = []
    for bench, methods in base.get("benchmarks", {}).items():
        cur_methods = cur.get("benchmarks", {}).get(bench)
        if cur_methods is None:
            deltas.append(
                Delta(
                    f"pipeline/{bench}", "coverage", None, None, 0.0,
                    True, "benchmark missing from current run",
                )
            )
            continue
        for method, b in methods.items():
            source = f"pipeline/{bench}/{method}"
            c = cur_methods.get(method)
            if c is None:
                deltas.append(
                    Delta(
                        source, "coverage", None, None, 0.0,
                        True, "method missing from current run",
                    )
                )
                continue
            if not b.get("supported"):
                # an unsupported pair becoming supported is a new
                # capability, not a regression; nothing to compare
                continue
            if not c.get("supported"):
                deltas.append(
                    Delta(
                        source, "supported", 1.0, 0.0, -1.0,
                        True, "was supported in baseline",
                    )
                )
                continue
            mark = len(deltas)
            _diff(
                deltas, source, "mbps", b["mbps"], c["mbps"],
                tolerance, higher_is_better=True,
            )
            _diff(
                deltas, source, "elapsed_s", b["elapsed_s"], c["elapsed_s"],
                tolerance, higher_is_better=False,
            )
            busy_b = sum(b["server_stages"][k] for k in _STAGE_KEYS)
            busy_c = sum(c["server_stages"][k] for k in _STAGE_KEYS)
            _diff(
                deltas, source, "server_busy_s", busy_b, busy_c,
                tolerance, higher_is_better=False,
            )
            # any flagged drift gets the attribution story: which
            # resource's critical-path share moved ("it got slower"
            # becomes "disk went from 41% to 58% of the critical path")
            shift = _blame_shift(
                b.get("critical_blame"), c.get("critical_blame")
            )
            if shift:
                for d in deltas[mark:]:
                    if d.note == "regression":
                        d.note = shift
                    elif d.note:
                        d.note += f"; {shift}"
    return deltas


def compare_dtype_cache_docs(
    base: dict, cur: dict, tolerance: float = DEFAULT_TOLERANCE
) -> list[Delta]:
    """Diff two ``BENCH_dtype_cache.json`` documents.

    Only the deterministic simulated fields are compared —
    ``sim_speedup``, ``hit_rate``, ``scan_reduction`` per phase.  The
    wall-clock ``speedup``/``wall_s`` numbers depend on the machine the
    baseline was recorded on and are ignored.
    """
    deltas: list[Delta] = []
    for phase, b in base.get("phases", {}).items():
        source = f"dtype_cache/{phase}"
        c = cur.get("phases", {}).get(phase)
        if c is None:
            deltas.append(
                Delta(
                    source, "coverage", None, None, 0.0,
                    True, "phase missing from current run",
                )
            )
            continue
        for metric in ("sim_speedup", "hit_rate", "scan_reduction"):
            _diff(
                deltas, source, metric, b[metric], c[metric],
                tolerance, higher_is_better=True,
            )
    return deltas


def compare_faults_docs(
    base: dict, cur: dict, tolerance: float = DEFAULT_TOLERANCE
) -> list[Delta]:
    """Diff two ``BENCH_faults.json`` documents (baseline, current).

    Degraded-mode bandwidth and elapsed time are fully deterministic
    (fault decisions replay from the seeded plan), so they gate exactly
    like the fault-free pipeline numbers: bandwidth down or elapsed up
    beyond tolerance under any severity is a real failover/recovery
    regression.
    """
    deltas: list[Delta] = []
    for method, severities in base.get("methods", {}).items():
        cur_severities = cur.get("methods", {}).get(method)
        if cur_severities is None:
            deltas.append(
                Delta(
                    f"faults/{method}", "coverage", None, None, 0.0,
                    True, "method missing from current run",
                )
            )
            continue
        for level, b in severities.items():
            source = f"faults/{method}/{level}"
            c = cur_severities.get(level)
            if c is None:
                deltas.append(
                    Delta(
                        source, "coverage", None, None, 0.0,
                        True, "severity missing from current run",
                    )
                )
                continue
            if not b.get("supported"):
                continue
            if not c.get("supported"):
                deltas.append(
                    Delta(
                        source, "supported", 1.0, 0.0, -1.0,
                        True, "was supported in baseline",
                    )
                )
                continue
            _diff(
                deltas, source, "mbps", b["mbps"], c["mbps"],
                tolerance, higher_is_better=True,
            )
            _diff(
                deltas, source, "elapsed_s", b["elapsed_s"], c["elapsed_s"],
                tolerance, higher_is_better=False,
            )
    return deltas


def compare_scale_docs(
    base: dict, cur: dict, tolerance: float = DEFAULT_TOLERANCE
) -> list[Delta]:
    """Diff two ``BENCH_scale.json`` documents (baseline, current).

    Per sweep cell: aggregate bandwidth and elapsed gate like the
    pipeline numbers, and Jain's weighted fairness index must not drop
    beyond tolerance — a scheduler change that silently un-fairs the
    admission rotation is a regression even if it goes faster.
    """
    deltas: list[Delta] = []

    def cells(doc):
        out = {}
        for cell in doc.get("cells", []):
            key = (
                f"{cell['clients']}x{cell['tenants']}x{cell['iods']}"
            )
            out[key] = cell
        if doc.get("weighted"):
            out["weighted"] = doc["weighted"]
        return out

    cur_cells = cells(cur)
    for key, b in cells(base).items():
        source = f"scale/{key}"
        c = cur_cells.get(key)
        if c is None:
            deltas.append(
                Delta(
                    source, "coverage", None, None, 0.0,
                    True, "cell missing from current run",
                )
            )
            continue
        _diff(
            deltas, source, "mbps", b["mbps"], c["mbps"],
            tolerance, higher_is_better=True,
        )
        _diff(
            deltas, source, "elapsed_s", b["elapsed_s"], c["elapsed_s"],
            tolerance, higher_is_better=False,
        )
        _diff(
            deltas, source, "jain_weighted",
            b["jain_weighted"], c["jain_weighted"],
            tolerance, higher_is_better=True,
        )
    return deltas


def compare_hotpaths_docs(
    base: dict, cur: dict, tolerance: float = DEFAULT_TOLERANCE
) -> list[Delta]:
    """Diff two ``BENCH_hotpaths.json`` documents (baseline, current).

    Only the deterministic fields gate: the region counts/bytes each
    hot path produces, the simulated figures of the end-to-end runs,
    and the scalar-vs-vector ``bit_identical`` flag.  The wall-clock
    ``wall_s``/``speedup`` numbers are machine-dependent and ignored.
    """
    deltas: list[Delta] = []
    for name, b in base.get("paths", {}).items():
        source = f"hotpaths/{name}"
        c = cur.get("paths", {}).get(name)
        if c is None:
            deltas.append(
                Delta(
                    source, "coverage", None, None, 0.0,
                    True, "path missing from current run",
                )
            )
            continue
        if b.get("bit_identical") and not c.get("bit_identical"):
            deltas.append(
                Delta(
                    source, "bit_identical", 1.0, 0.0, -1.0,
                    True, "vectorized output diverged from scalar",
                )
            )
        for metric in (
            "regions",
            "bytes",
            "sim_s",
            "io_ops",
            "accessed_bytes",
            "resent_bytes",
        ):
            if metric in b and metric in c:
                _diff(
                    deltas, source, metric, b[metric], c[metric],
                    tolerance, higher_is_better=False,
                )
    return deltas


def compare_collective_docs(
    base: dict, cur: dict, tolerance: float = DEFAULT_TOLERANCE
) -> list[Delta]:
    """Diff two ``BENCH_collective.json`` documents (baseline, current).

    Per top-cell figure: every method's bandwidth gates like the
    pipeline numbers, and a dominance flag flipping from won to lost is
    a regression in its own right — the sixth curve falling behind any
    paper method at the highest client count is the acceptance bar
    breaking, even if its absolute bandwidth moved less than the
    tolerance.  The FLASH showcase gates the aggregation quality:
    merged views or saved requests dropping, or the aggregated
    data-path request count rising, beyond tolerance.
    """
    deltas: list[Delta] = []
    for name, b in base.get("figures", {}).items():
        source = f"collective/{name}"
        c = cur.get("figures", {}).get(name)
        if c is None:
            deltas.append(
                Delta(
                    source, "coverage", None, None, 0.0,
                    True, "figure missing from current run",
                )
            )
            continue
        for method, bv in b.get("mbps", {}).items():
            if bv is None:
                continue
            cv = c.get("mbps", {}).get(method)
            if cv is None:
                deltas.append(
                    Delta(
                        f"{source}/{method}", "supported", 1.0, 0.0, -1.0,
                        True, "was supported in baseline",
                    )
                )
                continue
            _diff(
                deltas, f"{source}/{method}", "mbps", bv, cv,
                tolerance, higher_is_better=True,
            )
        if base.get("dominance", {}).get(name) and not cur.get(
            "dominance", {}
        ).get(name):
            deltas.append(
                Delta(
                    source, "dominance", 1.0, 0.0, -1.0,
                    True, "collective_dtype no longer dominates",
                )
            )
    bs, cs = base.get("flash_showcase"), cur.get("flash_showcase")
    if bs and cs:
        source = "collective/flash_showcase"
        for metric, higher in (
            ("views_merged", True),
            ("requests_saved", True),
            ("collective_requests", False),
            ("collective_mbps", True),
        ):
            _diff(
                deltas, source, metric, bs[metric], cs[metric],
                tolerance, higher_is_better=higher,
            )
    return deltas


def compare_against_dir(
    baseline_dir: pathlib.Path,
    tolerance: float = DEFAULT_TOLERANCE,
    *,
    pipeline_doc: Optional[dict] = None,
    dtype_cache_doc: Optional[dict] = None,
    faults_doc: Optional[dict] = None,
    scale_doc: Optional[dict] = None,
    hotpaths_doc: Optional[dict] = None,
    collective_doc: Optional[dict] = None,
) -> tuple[list[Delta], list[str]]:
    """Re-collect fresh benchmark docs and diff against ``baseline_dir``.

    Returns ``(deltas, notes)``; ``notes`` carries a one-line summary
    per baseline file — diffed or skipped — plus a files-checked total,
    so a passing gate still says what it checked instead of staying
    silent.  Raises ``FileNotFoundError`` if *no* baseline file is
    found — a gate that silently compares nothing must not pass.  The
    ``*_doc`` keyword arguments inject a pre-collected "current"
    document (used by tests to simulate regressions without patching
    the collectors).
    """
    baseline_dir = pathlib.Path(baseline_dir)
    deltas: list[Delta] = []
    notes: list[str] = []
    found = 0

    def _stamp(new: list[Delta], path: pathlib.Path) -> None:
        for d in new:
            d.baseline_file = path.name

    pipe_path = baseline_dir / "BENCH_pipeline.json"
    if pipe_path.exists():
        found += 1
        base = json.loads(pipe_path.read_text())
        if pipeline_doc is None:
            from .baseline import collect_pipeline_baseline

            pipeline_doc = collect_pipeline_baseline()
        new = compare_pipeline_docs(base, pipeline_doc, tolerance)
        _stamp(new, pipe_path)
        deltas.extend(new)
        notes.append(f"{pipe_path.name}: {len(new)} field(s) diffed")
    else:
        notes.append(f"skipped: {pipe_path} not found")

    cache_path = baseline_dir / "BENCH_dtype_cache.json"
    if cache_path.exists():
        found += 1
        base = json.loads(cache_path.read_text())
        if dtype_cache_doc is None:
            from .dtype_cache import CachePhase, collect

            # repeats=1: only deterministic simulated fields are
            # compared, so best-of-N wall timing is wasted work here
            dtype_cache_doc = collect(CachePhase.full(), repeats=1)
        new = compare_dtype_cache_docs(base, dtype_cache_doc, tolerance)
        _stamp(new, cache_path)
        deltas.extend(new)
        notes.append(f"{cache_path.name}: {len(new)} field(s) diffed")
    else:
        notes.append(f"skipped: {cache_path} not found")

    faults_path = baseline_dir / "BENCH_faults.json"
    if faults_path.exists():
        found += 1
        base = json.loads(faults_path.read_text())
        if faults_doc is None:
            from .faultscmd import collect_faults_bench

            faults_doc = collect_faults_bench(seed=base.get("seed", 1234))
        new = compare_faults_docs(base, faults_doc, tolerance)
        _stamp(new, faults_path)
        deltas.extend(new)
        notes.append(f"{faults_path.name}: {len(new)} field(s) diffed")
    else:
        notes.append(f"skipped: {faults_path} not found")

    scale_path = baseline_dir / "BENCH_scale.json"
    if scale_path.exists():
        found += 1
        base = json.loads(scale_path.read_text())
        if scale_doc is None:
            from .scalecmd import collect_scale_bench

            # replay the exact grid the baseline was recorded with
            scale_doc = collect_scale_bench(base.get("spec"))
        new = compare_scale_docs(base, scale_doc, tolerance)
        _stamp(new, scale_path)
        deltas.extend(new)
        notes.append(f"{scale_path.name}: {len(new)} field(s) diffed")
    else:
        notes.append(f"skipped: {scale_path} not found")

    hot_path = baseline_dir / "BENCH_hotpaths.json"
    if hot_path.exists():
        found += 1
        base = json.loads(hot_path.read_text())
        if hotpaths_doc is None:
            from .hotpaths import collect

            # repeats=1 at the baseline's sizes: only deterministic
            # fields are compared, best-of-N wall timing is wasted here
            hotpaths_doc = collect(
                quick=base.get("quick", False), repeats=1
            )
        new = compare_hotpaths_docs(base, hotpaths_doc, tolerance)
        _stamp(new, hot_path)
        deltas.extend(new)
        notes.append(f"{hot_path.name}: {len(new)} field(s) diffed")
    else:
        notes.append(f"skipped: {hot_path} not found")

    coll_path = baseline_dir / "BENCH_collective.json"
    if coll_path.exists():
        found += 1
        base = json.loads(coll_path.read_text())
        if collective_doc is None:
            from .collectivecmd import collect_collective_bench

            # replay the exact scales the baseline was recorded with
            collective_doc = collect_collective_bench(base.get("spec"))
        new = compare_collective_docs(base, collective_doc, tolerance)
        _stamp(new, coll_path)
        deltas.extend(new)
        notes.append(f"{coll_path.name}: {len(new)} field(s) diffed")
    else:
        notes.append(f"skipped: {coll_path} not found")

    if not found:
        raise FileNotFoundError(
            f"no BENCH_*.json baselines under {baseline_dir}"
        )
    notes.append(f"{found} baseline file(s) checked")
    return deltas, notes


def update_baselines(
    baseline_dir: pathlib.Path,
    *,
    pipeline_doc: Optional[dict] = None,
    dtype_cache_doc: Optional[dict] = None,
    faults_doc: Optional[dict] = None,
    scale_doc: Optional[dict] = None,
    hotpaths_doc: Optional[dict] = None,
    collective_doc: Optional[dict] = None,
) -> list[pathlib.Path]:
    """Re-collect every benchmark document and overwrite the baselines.

    The refresh path of the compare gate (``repro-bench compare
    --update-baseline``): run after an intentional behavioural change so
    the new simulated figures become the gated reference.  Returns the
    written paths.  The ``*_doc`` keyword arguments inject pre-collected
    documents (tests); absent ones are collected fresh.
    """
    baseline_dir = pathlib.Path(baseline_dir)
    baseline_dir.mkdir(parents=True, exist_ok=True)
    written: list[pathlib.Path] = []

    if pipeline_doc is None:
        from .baseline import collect_pipeline_baseline

        pipeline_doc = collect_pipeline_baseline()
    path = baseline_dir / "BENCH_pipeline.json"
    path.write_text(json.dumps(pipeline_doc, indent=2, sort_keys=True) + "\n")
    written.append(path)

    if dtype_cache_doc is None:
        from .dtype_cache import CachePhase, collect

        dtype_cache_doc = collect(CachePhase.full(), repeats=1)
    path = baseline_dir / "BENCH_dtype_cache.json"
    path.write_text(
        json.dumps(dtype_cache_doc, indent=2, sort_keys=True) + "\n"
    )
    written.append(path)

    if faults_doc is None:
        from .faultscmd import collect_faults_bench

        faults_doc = collect_faults_bench()
    path = baseline_dir / "BENCH_faults.json"
    path.write_text(json.dumps(faults_doc, indent=2, sort_keys=True) + "\n")
    written.append(path)

    if scale_doc is None:
        from .scalecmd import collect_scale_bench

        scale_doc = collect_scale_bench()
    path = baseline_dir / "BENCH_scale.json"
    path.write_text(json.dumps(scale_doc, indent=2, sort_keys=True) + "\n")
    written.append(path)

    if hotpaths_doc is None:
        from .hotpaths import collect

        hotpaths_doc = collect()
    path = baseline_dir / "BENCH_hotpaths.json"
    path.write_text(json.dumps(hotpaths_doc, indent=2, sort_keys=True) + "\n")
    written.append(path)

    if collective_doc is None:
        from .collectivecmd import collect_collective_bench

        collective_doc = collect_collective_bench()
    path = baseline_dir / "BENCH_collective.json"
    path.write_text(
        json.dumps(collective_doc, indent=2, sort_keys=True) + "\n"
    )
    written.append(path)
    return written


def render_compare(
    deltas: list[Delta], tolerance: float = DEFAULT_TOLERANCE
) -> str:
    """Aligned text report of a comparison run.

    Values print with their units (``MiB/s``, ``s``) and the change as
    a signed percentage; every failure line names the ``BENCH_*.json``
    baseline file it gates against, and flagged drifts carry the
    blame-delta attribution when the baselines record critical-path
    shares.
    """
    title = (
        f"Benchmark comparison vs baseline "
        f"(tolerance ±{tolerance:.1%}, {len(deltas)} metrics)"
    )
    header = (
        f"{'source':>34s} {'metric':>14s} {'baseline':>16s} "
        f"{'current':>16s} {'change':>8s}  verdict"
    )
    lines = [title, "=" * len(header), header, "-" * len(header)]

    def num(v, unit):
        if v is None:
            return f"{'—':>16s}"
        s = f"{v:.6g}" + (f" {unit}" if unit else "")
        return f"{s:>16s}"

    for d in deltas:
        if d.regression:
            verdict = "REGRESSION"
        elif d.improved:
            verdict = "improved"
        else:
            verdict = d.note or "ok"
        line = (
            f"{d.source:>34s} {d.metric:>14s} {num(d.baseline, d.unit)} "
            f"{num(d.current, d.unit)} {d.change:>+7.1%}  {verdict}"
        )
        if d.regression:
            if d.note not in ("", "regression"):
                line += f" ({d.note})"
            if d.baseline_file:
                line += f" [{d.baseline_file}]"
        lines.append(line)
    n_reg = sum(d.regression for d in deltas)
    n_imp = sum(d.improved for d in deltas)
    lines.append("")
    lines.append(
        f"{n_reg} regression(s), {n_imp} improvement(s), "
        f"{len(deltas) - n_reg - n_imp} within tolerance"
    )
    return "\n".join(lines)
