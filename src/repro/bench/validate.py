"""Cross-method validation: the strongest correctness check available.

For a given workload (at a real-data-feasible scale), write the file
with each write-capable method in turn and read it back with *every*
read method, asserting bit-identical bytes and identical file images.
Used by the test suite and available to users porting new methods.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..mpiio import File, Hints, SimMPI
from ..pvfs import PVFS, PVFSConfig
from ..pvfs.errors import LockUnsupported
from ..simulation import Environment

__all__ = ["ValidationReport", "validate_workload"]

WRITE_METHODS = ["posix", "data_sieving", "two_phase", "list_io", "datatype_io"]
READ_METHODS = ["posix", "data_sieving", "two_phase", "list_io", "datatype_io"]


@dataclass
class ValidationReport:
    """Outcome of one cross-method validation."""

    workload: str
    checks: int = 0
    skipped: list[str] = field(default_factory=list)
    file_images: dict[str, bytes] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.checks > 0

    def summary(self) -> str:
        parts = [f"{self.workload}: {self.checks} cross-method checks passed"]
        if self.skipped:
            parts.append(f"(skipped: {', '.join(self.skipped)})")
        return " ".join(parts)


def validate_workload(
    workload,
    config: PVFSConfig | None = None,
    write_methods=WRITE_METHODS,
    read_methods=READ_METHODS,
) -> ValidationReport:
    """Run the full write×read matrix over the workload.

    Raises ``AssertionError`` on the first mismatch.  Collective
    methods are driven through the collective entry points; methods
    that the configuration cannot support (data-sieving writes without
    locking) are recorded as skipped.
    """
    report = ValidationReport(workload.name)
    config = config or PVFSConfig(n_servers=4, strip_size=256)
    buffers = [
        workload.fill_buffer(rank) for rank in range(workload.n_clients)
    ]

    for wm in write_methods:
        env = Environment()
        fs = PVFS(env, config=config)
        mpi = SimMPI(fs, workload.n_clients)
        skipped = []

        def rank_main(ctx):
            f = yield from File.open(ctx, workload.path, Hints())
            f.set_view(
                workload.displacement(ctx.rank, 0),
                workload.etype(),
                workload.filetype(ctx.rank),
            )
            mt = workload.memtype(ctx.rank)
            buf = _fit(buffers[ctx.rank], mt)
            write = f.write_at_all if wm == "two_phase" else f.write_at
            try:
                yield from write(0, mt, 1, buf, method=wm)
            except LockUnsupported:
                skipped.append(wm)
                yield from ctx.comm.barrier()
                return 0
            yield from ctx.comm.barrier()
            checks = 0
            mem_regions = mt.flatten()
            want = mem_regions.gather(buf)
            for rm in read_methods:
                out = np.zeros_like(buf)
                read = f.read_at_all if rm == "two_phase" else f.read_at
                yield from read(0, mt, 1, out, method=rm)
                got = mem_regions.gather(out)
                if not np.array_equal(got, want):
                    raise AssertionError(
                        f"{workload.name}: wrote with {wm}, read with "
                        f"{rm}: data mismatch on rank {ctx.rank}"
                    )
                checks += 1
            return checks

        results = mpi.run(rank_main)
        if skipped:
            report.skipped.append(wm)
            continue
        report.checks += sum(results)
        # capture the file image for write-method cross-comparison
        handle = fs.metadata.files[workload.path].handle
        size = fs.logical_size(handle)
        report.file_images[wm] = fs.read_back(handle, 0, size).tobytes()

    images = set(report.file_images.values())
    if len(images) > 1:
        raise AssertionError(
            f"{workload.name}: write methods produced different file "
            f"images: { {k: len(v) for k, v in report.file_images.items()} }"
        )
    return report


def _fit(buf: np.ndarray, memtype) -> np.ndarray:
    need = max(memtype.true_ub, 1)
    if buf.size < need:
        return np.concatenate(
            [buf, np.zeros(need - buf.size, dtype=np.uint8)]
        )
    return buf
