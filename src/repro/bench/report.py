"""Text rendering of tables and figures, paper-style."""

from __future__ import annotations

from typing import Optional, Sequence

from ..trace import SERVER_STAGE_SPANS
from .characteristics import METHOD_LABELS, CharacteristicsRow
from .figures import FigureSeries

__all__ = [
    "format_mib",
    "render_characteristics",
    "render_figure",
    "render_metrics_summary",
    "render_trace_summary",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
]

MIB = 1024 * 1024


def format_mib(nbytes: Optional[float], dash: str = "—") -> str:
    """Format a byte count the way the paper's tables do (MiB)."""
    if nbytes is None:
        return dash
    mb = nbytes / MIB
    if mb == 0:
        return dash
    if mb >= 100:
        return f"{mb:.0f} MB"
    if mb >= 10:
        return f"{mb:.1f} MB"
    return f"{mb:.2f} MB"


def _ops(x: Optional[float]) -> str:
    if x is None:
        return "—"
    if x == int(x):
        return f"{int(x):,}"
    return f"{x:,.1f}"


def render_characteristics(
    title: str, rows: Sequence[CharacteristicsRow]
) -> str:
    """Render one characteristics table (paper Tables 1–3 layout)."""
    header = (
        f"{'':18s} {'Desired Data':>14s} {'Data Accessed':>14s} "
        f"{'# I/O Ops':>12s} {'Resent Data':>13s}"
    )
    sub = (
        f"{'':18s} {'per Client':>14s} {'per Client':>14s} "
        f"{'per Client':>12s} {'per Client':>13s}"
    )
    lines = [title, "=" * len(header), header, sub, "-" * len(header)]
    for row in rows:
        label = METHOD_LABELS.get(row.method, row.method)
        if not row.supported:
            lines.append(
                f"{label:18s} {'—':>14s} {'—':>14s} {'—':>12s} {'—':>13s}"
            )
            continue
        resent = (
            format_mib(row.resent_bytes) if row.resent_bytes > 0 else "—"
        )
        lines.append(
            f"{label:18s} {format_mib(row.desired_bytes):>14s} "
            f"{format_mib(row.accessed_bytes):>14s} "
            f"{_ops(row.io_ops):>12s} {resent:>13s}"
        )
    return "\n".join(lines)


def render_figure(fig: FigureSeries, unit: str = "MiB/s") -> str:
    """Render a figure's series as an aligned table."""
    xs = fig.xs()
    methods = [m for m in fig.series]
    header = f"{fig.xlabel:>10s} " + " ".join(
        f"{METHOD_LABELS.get(m, m):>17s}" for m in methods
    )
    lines = [f"{fig.name}  (aggregate {unit})", "=" * len(header), header]
    for x in xs:
        cells = []
        for m in methods:
            v = fig.series[m].get(x)
            cells.append(f"{v:17.1f}" if v is not None else f"{'—':>17s}")
        lines.append(f"{x:>10d} " + " ".join(cells))
    return "\n".join(lines)


def render_trace_summary(result) -> str:
    """Render a traced run's span aggregate, paper-report style.

    Takes a :class:`~repro.bench.runner.RunResult` from a run with
    ``PVFSConfig(trace=True)``.  The second block cross-checks the
    per-stage span sums against the scheduler's own ``StageTimes``
    accounting — the two are independent code paths, so a nonzero delta
    would mean the trace is lying about where server time went.
    """
    s = result.trace_summary
    if s is None:
        raise ValueError("run was not traced (trace_summary is None)")
    title = (
        f"Trace summary: {result.workload} / {result.method} "
        f"({result.n_clients} clients, {s['spans']} spans, "
        f"{s['traces']} traces, {result.elapsed:.6f} s simulated)"
    )
    header = f"{'span':>16s} {'count':>7s} {'seconds':>12s}"
    lines = [title, "=" * len(title), header, "-" * len(header)]
    for name in sorted(s["by_name"]):
        entry = s["by_name"][name]
        lines.append(
            f"{name:>16s} {entry['count']:>7d} {entry['seconds']:>12.6f}"
        )
    lines.append("")
    st = result.pipeline.total
    header2 = (
        f"{'server stage':>16s} {'span sum':>12s} "
        f"{'StageTimes':>12s} {'delta':>10s}"
    )
    lines += [header2, "-" * len(header2)]
    for span_name, stage in SERVER_STAGE_SPANS.items():
        span_sum = s["server_stages_s"].get(stage, 0.0)
        stage_sum = getattr(st, stage)
        lines.append(
            f"{stage:>16s} {span_sum:>12.6f} {stage_sum:>12.6f} "
            f"{span_sum - stage_sum:>10.1e}"
        )
    return "\n".join(lines)


def render_metrics_summary(result) -> str:
    """Render a metered run's metrics, paper-report style.

    Takes a :class:`~repro.bench.runner.RunResult` from a run with
    ``PVFSConfig(metrics=True)``: per-stage latency quantiles from the
    log-bucketed histograms, end-to-end request latency, traffic
    counters, and the per-server load-imbalance report.
    """
    from ..metrics import STAGES, imbalance_report

    hub = result.metrics
    if hub is None:
        raise ValueError("run was not metered (metrics is None)")
    title = (
        f"Metrics summary: {result.workload} / {result.method} "
        f"({result.n_clients} clients, {hub.samples} samples @ "
        f"{hub.interval:g} s, {result.elapsed:.6f} s simulated)"
    )
    header = (
        f"{'latency':>16s} {'count':>7s} {'p50':>11s} "
        f"{'p95':>11s} {'p99':>11s} {'sum':>12s}"
    )
    lines = [title, "=" * len(title), header, "-" * len(header)]

    def hist_row(label, h):
        lines.append(
            f"{label:>16s} {h.count:>7d} {h.quantile(0.5):>11.3e} "
            f"{h.quantile(0.95):>11.3e} {h.quantile(0.99):>11.3e} "
            f"{h.sum:>12.6f}"
        )

    for stage in STAGES:
        hist_row(f"stage:{stage}", hub._h_stage[stage])
    hist_row("request", hub._h_request)
    hist_row("queue-wait", hub._h_queue_wait)
    lines.append("")
    lines.append(
        f"traffic: {hub._c_messages.value:g} messages, "
        f"{hub._c_net_bytes.value:g} bytes, "
        f"{hub._c_retries.value:g} client retries"
    )
    rep = imbalance_report(result.servers)
    busy, byt = rep["busy"], rep["bytes"]
    lines.append(
        f"imbalance: busy max/mean {busy['max_over_mean']:.3f} "
        f"(hottest {busy['hottest_server']}), "
        f"bytes max/mean {byt['max_over_mean']:.3f} "
        f"(hottest {byt['hottest_server']})"
    )
    lines.append(
        f"bottleneck: {result.network.bottleneck(result.pipeline.total)}"
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# The paper's published values, for side-by-side comparison in reports
# and assertions in the benchmark suite.  Units: bytes (MiB-based, as
# printed in the paper), operations, or None for "—".
# ----------------------------------------------------------------------
def _mb(x: float) -> int:
    return int(x * MIB)


#: Table 1 (tile reader): method -> (desired, accessed, ops, resent)
PAPER_TABLE1 = {
    "posix": (_mb(2.25), _mb(2.25), 768, None),
    "data_sieving": (_mb(2.25), _mb(5.56), 2, None),
    "two_phase": (_mb(2.25), _mb(1.70), 1, _mb(1.50)),
    "list_io": (_mb(2.25), _mb(2.25), 12, None),
    "datatype_io": (_mb(2.25), _mb(2.25), 1, None),
}

#: Table 2 (3-D block): clients -> method -> (desired, accessed, ops, resent)
PAPER_TABLE2 = {
    8: {
        "posix": (_mb(103), _mb(103), 90_000, None),
        "data_sieving": (_mb(103), _mb(412), 103, None),
        "two_phase": (_mb(103), _mb(103), 26, _mb(77.2)),
        "list_io": (_mb(103), _mb(103), 1408, None),
        "datatype_io": (_mb(103), _mb(103), 1, None),
    },
    27: {
        "posix": (_mb(30.5), _mb(30.5), 40_000, None),
        "data_sieving": (_mb(30.5), _mb(274.7), 69, None),
        "two_phase": (_mb(30.5), _mb(30.5), 8, _mb(27.1)),
        "list_io": (_mb(30.5), _mb(30.5), 626, None),
        "datatype_io": (_mb(30.5), _mb(30.5), 1, None),
    },
    64: {
        "posix": (_mb(12.9), _mb(12.9), 22_500, None),
        "data_sieving": (_mb(12.9), _mb(206.0), 52, None),
        "two_phase": (_mb(12.9), _mb(12.9), 4, _mb(12.1)),
        "list_io": (_mb(12.9), _mb(12.9), 352, None),
        "datatype_io": (_mb(12.9), _mb(12.9), 1, None),
    },
}

#: Table 3 (FLASH): method -> (desired, accessed, ops, resent_fraction)
#: resent is 7.5 MB × (n-1)/n for two-phase.
PAPER_TABLE3 = {
    "posix": (_mb(7.50), _mb(7.50), 983_040, None),
    "data_sieving": None,  # unavailable: write test without locking
    "two_phase": (_mb(7.50), _mb(7.50), 2, "n-1/n"),
    "list_io": (_mb(7.50), _mb(7.50), 15_360, None),
    "datatype_io": (_mb(7.50), _mb(7.50), 1, None),
}
