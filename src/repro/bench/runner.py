"""Run one (workload, method) pair through the simulated cluster."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from ..metrics import MetricsHub
from ..mpiio import File, Hints, MPIIOCounters, SimMPI
from ..mpiio.adio import get_method
from ..pvfs import PVFS, PVFSConfig
from ..pvfs.errors import LockUnsupported
from ..simulation import CostModel, Environment, summarize_network
from ..simulation.stats import NetworkSummary, ServerPipelineSummary
from ..trace import TraceRecorder, summarize_trace

__all__ = ["RunResult", "run_workload"]

MIB = 1024 * 1024


@dataclass
class RunResult:
    """Outcome of one benchmark run."""

    workload: str
    method: str
    n_clients: int
    supported: bool = True
    elapsed: float = 0.0  #: simulated seconds of the I/O phase
    desired_bytes: int = 0  #: per client
    accessed_bytes: int = 0  #: per client (mean)
    io_ops: float = 0  #: per client (mean)
    resent_bytes: float = 0  #: per client (mean)
    request_desc_bytes: float = 0  #: per client (mean)
    server_stats: dict = field(default_factory=dict)
    network: Optional[NetworkSummary] = None
    pipeline: Optional[ServerPipelineSummary] = None  #: per-stage server time
    #: Span recorder + aggregate summary; populated only when the run
    #: used ``PVFSConfig(trace=True)``.
    tracer: Optional[TraceRecorder] = None
    trace_summary: Optional[dict] = None
    #: Metrics hub (finalized); populated only when the run used
    #: ``PVFSConfig(metrics=True)``.
    metrics: Optional[MetricsHub] = None
    #: Fault injector of the finished run; populated only when the run
    #: used ``PVFSConfig(faults=...)``.
    faults: Optional[object] = None
    #: True iff at least one fault was actually injected.
    degraded: bool = False
    #: The I/O servers of the finished run (imbalance reporting).
    servers: list = field(default_factory=list)
    #: rank -> (io_start, io_end) simulated seconds; io_end is taken
    #: before the closing barrier, so per-rank makespans are honest.
    rank_times: dict = field(default_factory=dict)
    note: str = ""

    @property
    def total_desired(self) -> int:
        return self.desired_bytes * self.n_clients

    @property
    def bandwidth_mbps(self) -> float:
        """Aggregate MiB/s of desired data over the I/O phase."""
        if self.elapsed <= 0 or not self.supported:
            return 0.0
        return self.total_desired / MIB / self.elapsed

    def row(self) -> dict:
        """Tabular form used by the reports."""
        if not self.supported:
            return {
                "method": self.method,
                "desired": None,
                "accessed": None,
                "ops": None,
                "resent": None,
            }
        return {
            "method": self.method,
            "desired": self.desired_bytes,
            "accessed": self.accessed_bytes,
            "ops": self.io_ops,
            "resent": self.resent_bytes,
        }


def run_workload(
    workload,
    method: str,
    *,
    phantom: bool = True,
    verify: bool = False,
    costs: Optional[CostModel] = None,
    config: Optional[PVFSConfig] = None,
    hints: Optional[Hints] = None,
    tenant_of: Optional[Callable[[int], int]] = None,
) -> RunResult:
    """Simulate the workload with the given access method.

    ``phantom=True`` (default) accounts all sizes without moving real
    bytes — used for paper-scale runs.  ``verify=True`` moves real data
    and checks the write→read-back roundtrip (small scales only).
    """
    if verify and phantom:
        raise ValueError("verify requires phantom=False")
    env = Environment()
    costs = costs or CostModel()
    fs = PVFS(env, config=config or PVFSConfig(), costs=costs)
    mpi = SimMPI(
        fs,
        workload.n_clients,
        procs_per_node=workload.procs_per_node,
        tenant_of=tenant_of,
    )
    hints = hints or Hints()
    collective = get_method(method).collective

    start_times: list[float] = []
    rank_times: dict[int, tuple[float, float]] = {}
    unsupported: list[bool] = []

    def rank_main(ctx):
        f = yield from File.open(ctx, workload.path, hints)
        etype = workload.etype()
        memtype = workload.memtype(ctx.rank)
        mcount = workload.mem_count(ctx.rank)
        buf = None if phantom else _make_buffer(workload, ctx.rank, memtype)
        yield from ctx.comm.barrier()
        t_io_start = env.now
        start_times.append(t_io_start)
        reps = workload.repetitions_for(ctx.rank)
        for rep in range(reps):
            f.set_view(
                workload.displacement(ctx.rank, rep),
                etype,
                workload.filetype(ctx.rank),
            )
            io = (
                (f.write_at_all if collective else f.write_at)
                if workload.is_write
                else (f.read_at_all if collective else f.read_at)
            )
            try:
                yield from io(0, memtype, mcount, buf, method=method)
            except LockUnsupported:
                unsupported.append(True)
                yield from ctx.comm.barrier()
                return f.counters
        rank_times[ctx.rank] = (t_io_start, env.now)
        if verify and workload.is_write:
            # read back with the always-correct datatype path and compare
            rbuf = np.zeros(memtype.size * mcount, dtype=np.uint8)
            back = np.zeros_like(_as_u8(buf))
            f.set_view(
                workload.displacement(ctx.rank, reps - 1),
                etype,
                workload.filetype(ctx.rank),
            )
            yield from f.read_at(0, memtype, mcount, back, method="datatype_io")
            mem_regions = memtype.flatten(mcount)
            if not np.array_equal(
                mem_regions.gather(_as_u8(back)),
                mem_regions.gather(_as_u8(buf)),
            ):
                raise AssertionError(
                    f"rank {ctx.rank}: read-back mismatch for {method}"
                )
            del rbuf
        yield from ctx.comm.barrier()
        return f.counters

    counters: list[MPIIOCounters] = mpi.run(rank_main)

    result = RunResult(
        workload=workload.name,
        method=method,
        n_clients=workload.n_clients,
    )
    if unsupported:
        result.supported = False
        result.note = "requires file locking (unavailable on PVFS)"
        return result
    t0 = min(start_times) if start_times else 0.0
    result.elapsed = env.now - t0
    n = workload.n_clients
    result.desired_bytes = workload.bytes_per_client()
    result.accessed_bytes = int(
        round(sum(c.accessed_bytes for c in counters) / n)
    )
    result.io_ops = sum(c.io_ops for c in counters) / n
    result.resent_bytes = sum(c.resent_bytes for c in counters) / n
    result.request_desc_bytes = (
        sum(c.request_desc_bytes for c in counters) / n
    )
    result.rank_times = dict(rank_times)
    result.server_stats = fs.total_server_stats()
    result.network = summarize_network(fs.net, result.elapsed)
    result.pipeline = fs.pipeline_summary()
    if fs.tracer.enabled:
        result.tracer = fs.tracer
        result.trace_summary = summarize_trace(fs.tracer)
    result.servers = fs.servers
    if fs.metrics.enabled:
        # capture the tail sample so series integrals cover the full run
        fs.metrics.finalize()
        result.metrics = fs.metrics
    if fs.faults.enabled:
        result.faults = fs.faults
        result.degraded = fs.faults.degraded
    return result


def _as_u8(buf) -> np.ndarray:
    return np.asarray(buf).view(np.uint8).reshape(-1)


def _make_buffer(workload, rank, memtype) -> np.ndarray:
    buf = workload.fill_buffer(rank)
    need = memtype.true_ub
    if buf.size < need:
        buf = np.concatenate(
            [buf, np.zeros(need - buf.size, dtype=np.uint8)]
        )
    return buf
