"""Benchmark harness: regenerates every table and figure of the paper.

* :mod:`~repro.bench.workloads` — the three evaluation applications
  (§4): the tile reader, the ROMIO 3-D block test (``coll_perf``), and
  the FLASH I/O checkpoint simulation, each parameterized at *paper*
  scale (exact §4 geometry) and reducible for tests;
* :mod:`~repro.bench.runner` — drives one (workload, method) pair
  through the simulated cluster and collects counters + elapsed time;
* :mod:`~repro.bench.characteristics` — Tables 1–3;
* :mod:`~repro.bench.figures` — Figures 8, 10 and 12;
* :mod:`~repro.bench.report` — text rendering and results files;
* :mod:`~repro.bench.cli` — ``repro-bench`` / ``python -m repro.bench``.
"""

from . import characteristics, figures, plots, report
from .runner import RunResult, run_workload
from .validate import ValidationReport, validate_workload
from .workloads import (
    Block3DWorkload,
    FlashWorkload,
    TileWorkload,
    Workload,
)

__all__ = [
    "RunResult",
    "run_workload",
    "Workload",
    "TileWorkload",
    "Block3DWorkload",
    "FlashWorkload",
    "ValidationReport",
    "validate_workload",
    "characteristics",
    "figures",
    "plots",
    "report",
]
