"""``repro-bench dash``: one self-contained performance dashboard.

Runs one reduced-scale (workload, method) cell with tracing *and*
metrics on, attributes the critical path (:mod:`repro.trace.critical`),
then renders everything as a single HTML file with inline SVG — no
matplotlib, no scripts, no network assets.  The same seed/config always
produces a byte-identical ``DASH_<workload>_<method>.html``, which is
what the CI ``--smoke`` gate asserts (along with blame conservation and
document well-formedness).

Composable knobs mirror the rest of the bench family: ``--faults
SEVERITY`` arms the chaos presets, ``--tenants N`` runs N equal-weight
tenants through weighted-fair admission, ``--trace``/``--metrics``
additionally write the raw Chrome trace / OpenMetrics artifacts next to
the dashboard.

Sections: run header (with the coarse ``NetworkSummary.bottleneck``
verdict next to the exact critical-path blame so the two can be
cross-checked), NIC utilization and cache/inflight time series, the
per-server × time queue-depth heat map, the slowest request's
critical-path waterfall, and a per-method blame breakdown across every
supported access method.
"""

from __future__ import annotations

import pathlib
from typing import Optional

from ..faults import severity_config
from ..pvfs import PVFSConfig, TenantConfig
from ..simulation.costs import CostModel
from ..trace.critical import critical_path, reconcile_blame
from .characteristics import METHOD_ORDER
from .plots import (
    fmt_num,
    html_page,
    svg_blame_bars,
    svg_heatmap,
    svg_time_series,
    svg_waterfall,
)
from .runner import RunResult, run_workload
from .tracecmd import TRACE_WORKLOADS

__all__ = [
    "collect_dash",
    "render_dash",
    "write_dash",
    "smoke_dash",
    "verify_html",
]

MIB = float(1 << 20)


def _dash_config(
    faults: Optional[str], tenants: Optional[int]
) -> PVFSConfig:
    kwargs: dict = {"trace": True, "metrics": True}
    if faults and faults != "none":
        kwargs["faults"] = severity_config(faults)
    if tenants and tenants > 1:
        kwargs["tenants"] = tuple(
            TenantConfig(name=f"t{i}") for i in range(tenants)
        )
    return PVFSConfig(**kwargs)


def _run(
    workload: str,
    method: str,
    *,
    faults: Optional[str] = None,
    tenants: Optional[int] = None,
) -> RunResult:
    if workload not in TRACE_WORKLOADS:
        raise ValueError(
            f"unknown workload {workload!r}; "
            f"choose from {sorted(TRACE_WORKLOADS)}"
        )
    cfg = _dash_config(faults, tenants)
    tenant_of = None
    if tenants and tenants > 1:
        n = tenants
        tenant_of = lambda rank: rank % n  # noqa: E731
    return run_workload(
        TRACE_WORKLOADS[workload](),
        method,
        phantom=True,
        config=cfg,
        tenant_of=tenant_of,
    )


def _series_children(result: RunResult, family: str, label_key: str):
    """{label value: Series} for one metric family (empty if absent)."""
    fam = result.metrics.registry.families.get(family)
    if fam is None:
        return {}
    return {dict(k)[label_key]: v for k, v in fam.children.items()}


def _mean_series(children: dict):
    """Pointwise mean across same-clock Series (the sampler appends to
    every child at every tick, so the t vectors are identical)."""
    if not children:
        return [], []
    ordered = [children[k] for k in sorted(children)]
    ts = ordered[0].t
    n = len(ordered)
    means = [
        sum(s.values[i] for s in ordered) / n for i in range(len(ts))
    ]
    return ts, means


def collect_dash(
    workload: str = "block3d-read",
    method: str = "datatype_io",
    *,
    faults: Optional[str] = None,
    tenants: Optional[int] = None,
    blame_methods: tuple = tuple(METHOD_ORDER),
) -> dict:
    """Run the cell + per-method blame sweep; return the render inputs.

    The main run is verified before anything renders: the blame walk
    must conserve (shares sum to 1 within 1e-9) and must reconcile with
    ``StageTimes``/``NodeUtilization`` — a dashboard built on
    unreconciled attribution would be confidently wrong.
    """
    costs = CostModel()
    result = _run(workload, method, faults=faults, tenants=tenants)
    if not result.supported:
        raise ValueError(
            f"{method} unsupported for {workload}: {result.note}"
        )
    cfg = _dash_config(faults, tenants)
    loose = (f"ios{cfg.metadata_server}",)
    problems = reconcile_blame(
        result.tracer,
        result.pipeline.total,
        result.network,
        nic_bandwidth=costs.nic_bandwidth,
        loose_nodes=loose,
    )
    if problems:
        raise ValueError(
            f"{len(problems)} blame reconciliation problem(s): "
            + "; ".join(problems[:3])
        )
    report = critical_path(
        result.tracer, nic_bandwidth=costs.nic_bandwidth, config=cfg
    )

    blames: dict[str, dict[str, float]] = {}
    for m in blame_methods:
        if m == method:
            blames[m] = report.shares()
            continue
        other = _run(workload, m, faults=faults, tenants=tenants)
        if not other.supported:
            continue
        blames[m] = critical_path(
            other.tracer, nic_bandwidth=costs.nic_bandwidth, config=cfg
        ).shares()

    return {
        "workload": workload,
        "method": method,
        "faults": faults or "none",
        "tenants": tenants or 1,
        "result": result,
        "report": report,
        "blames": blames,
    }


def _waterfall_rows(report) -> list[tuple[str, str, float, float]]:
    """The slowest trace's critical-path slices, labelled for humans."""
    if not report.residuals:
        return []
    slowest = max(
        report.residuals,
        key=lambda tid: sum(
            s.duration for s in report.segments if s.trace_id == tid
        ),
    )
    return [
        (f"{seg.span.name} @{seg.span.actor}", seg.resource,
         seg.start, seg.end)
        for seg in report.trace_segments(slowest)
    ]


def render_dash(data: dict) -> str:
    """Render :func:`collect_dash` output as the final HTML document."""
    result: RunResult = data["result"]
    report = data["report"]
    shares = report.shares()
    dominant = report.dominant()

    header = [
        ("workload", data["workload"]),
        ("method", data["method"]),
        ("clients", str(result.n_clients)),
        ("elapsed", f"{fmt_num(result.elapsed)} s"),
        ("bandwidth", f"{fmt_num(result.bandwidth_mbps)} MiB/s"),
        (
            "bottleneck (coarse)",
            result.network.bottleneck(result.pipeline.total),
        ),
        (
            "critical-path blame",
            f"{dominant} ({fmt_num(shares[dominant] * 100)}%)",
        ),
        ("faults", data["faults"]),
        ("tenants", str(data["tenants"])),
    ]
    if result.faults is not None and result.faults.armed:
        fs = result.faults.summary()
        header.append(
            (
                "injected faults",
                f"{fs['events']} events "
                f"({fs['disk_slowdowns']} slow, {fs['disk_stalls']} "
                f"stall, {fs['drops']} drop, {fs['dups']} dup)",
            )
        )

    nic = {}
    for side in ("tx", "rx"):
        children = _series_children(
            result, f"repro_nic_{side}_utilization", "node"
        )
        for prefix in ("ios", "cn"):
            grp = {k: v for k, v in children.items() if k.startswith(prefix)}
            ts, means = _mean_series(grp)
            if ts:
                nic[f"{prefix} {side}"] = (ts, means)
    panels = [
        (
            "NIC utilization (mean busy fraction per sample)",
            svg_time_series(nic, title="NIC utilization", unit="busy frac"),
        )
    ]

    aux = {}
    hit = _series_children(result, "repro_server_cache_hit_rate", "server")
    ts, means = _mean_series(hit)
    if ts:
        aux["cache hit rate"] = (ts, means)
    fam = result.metrics.registry.families.get(
        "repro_net_inflight_bytes_sampled"
    )
    if fam is not None and fam.children:
        series = next(iter(fam.children.values()))
        if series.t:
            aux["net inflight (MiB)"] = (
                series.t,
                [v / MIB for v in series.values],
            )
    panels.append(
        (
            "Cache + network pressure",
            svg_time_series(aux, title="cache hit rate / inflight MiB"),
        )
    )

    depth = _series_children(result, "repro_server_queue_depth", "server")
    rows, edges, grid = [], [], []
    if depth:
        rows = sorted(depth, key=lambda n: int(n[3:]))
        first = depth[rows[0]]
        if first.t:
            edges = [first.t[0] - first.dt[0]] + list(first.t)
            grid = [depth[r].values for r in rows]
    panels.append(
        (
            "Server queue depth over time",
            svg_heatmap(
                rows, edges, grid,
                title="queue depth per I/O daemon", unit="requests",
            ),
        )
    )

    panels.append(
        (
            "Critical path of the slowest request",
            svg_waterfall(
                _waterfall_rows(report),
                title="exclusive blame, chronological",
            ),
        )
    )
    panels.append(
        (
            "Critical-path blame by access method",
            svg_blame_bars(
                data["blames"],
                title=f"share of critical path — {data['workload']}",
            ),
        )
    )
    return html_page(
        f"repro dash — {data['workload']} / {data['method']}",
        panels,
        header_rows=header,
    )


def write_dash(
    data: dict, out_dir: Optional[pathlib.Path] = None
) -> pathlib.Path:
    out_dir = out_dir or pathlib.Path(".")
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"DASH_{data['workload']}_{data['method']}.html"
    path.write_text(render_dash(data))
    return path


def verify_html(html: str) -> list[str]:
    """Self-containment + well-formedness problems (empty = OK)."""
    problems = []
    if not html.startswith("<!DOCTYPE html>"):
        problems.append("missing DOCTYPE")
    for tag in ("html", "head", "body", "title"):
        if html.count(f"<{tag}") != html.count(f"</{tag}>"):
            problems.append(f"unbalanced <{tag}> tags")
    if html.count("<svg") != html.count("</svg>"):
        problems.append("unbalanced <svg> tags")
    if html.count("<svg") == 0:
        problems.append("no SVG panels")
    if "<script" in html:
        problems.append("contains a script element")
    # the only permitted URL is the SVG namespace declaration
    stripped = html.replace('xmlns="http://www.w3.org/2000/svg"', "")
    if "http://" in stripped or "https://" in stripped:
        problems.append("references an external URL")
    return problems


def smoke_dash(
    workload: str = "block3d-read", method: str = "datatype_io"
) -> list[str]:
    """CI gate: determinism, conservation, self-containment.

    Collects the dashboard twice from scratch; the two renders must be
    byte-identical, every method's blame shares must sum to 1 within
    1e-9, and the HTML must pass :func:`verify_html`.
    """
    problems = []
    data = collect_dash(workload, method)
    html = render_dash(data)
    problems.extend(verify_html(html))
    for m, shares in data["blames"].items():
        total = sum(shares.values())
        if abs(total - 1.0) > 1e-9:
            problems.append(
                f"{m}: blame shares sum to {total!r}, not 1.0"
            )
    again = render_dash(collect_dash(workload, method))
    if again != html:
        problems.append("re-collected dashboard is not byte-identical")
    return problems
