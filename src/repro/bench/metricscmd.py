"""``repro-bench metrics``: run one metered workload, export artifacts.

Runs a reduced-scale workload with :class:`~repro.pvfs.config.PVFSConfig`
``metrics=True``, verifies the collected metrics (histogram/series
totals reconciling with :class:`~repro.simulation.stats.StageTimes` and
the network summary within 1e-9, OpenMetrics text passing the grammar
validator), and writes two artifacts:

* ``METRICS_<workload>_<method>.json`` — the full registry dump
  (:func:`repro.metrics.metrics_json`) plus run context and the
  per-server load-imbalance report;
* ``METRICS_<workload>_<method>.prom`` — OpenMetrics/Prometheus text
  exposition, scrapeable by any Prometheus-compatible collector.

``--smoke`` (used by CI) additionally replays the same run with metrics
*off* and requires float-equal elapsed time — the bit-identity gate —
then skips writing artifacts unless ``--out`` is given.  See
``docs/observability.md`` for the metric taxonomy and the compare-gate
workflow.
"""

from __future__ import annotations

import json
import pathlib
from typing import Optional

from ..metrics import (
    imbalance_report,
    metrics_json,
    openmetrics,
    reconcile_metrics,
    validate_openmetrics,
)
from ..pvfs import PVFSConfig
from .runner import RunResult, run_workload
from .tracecmd import TRACE_WORKLOADS

__all__ = [
    "METRICS_WORKLOADS",
    "check_bit_identity",
    "run_metered",
    "verify_metrics",
    "write_metrics_artifacts",
]

#: Same reduced-scale registry the trace command uses.
METRICS_WORKLOADS = TRACE_WORKLOADS


def run_metered(
    workload: str = "tile",
    method: str = "datatype_io",
    *,
    interval: float = 1e-3,
) -> RunResult:
    """Run one (workload, method) pair with metrics collection on."""
    if workload not in METRICS_WORKLOADS:
        raise ValueError(
            f"unknown workload {workload!r}; "
            f"choose from {sorted(METRICS_WORKLOADS)}"
        )
    wl = METRICS_WORKLOADS[workload]()
    result = run_workload(
        wl,
        method,
        phantom=True,
        config=PVFSConfig(metrics=True, metrics_interval=interval),
    )
    if result.supported and result.metrics is None:
        raise RuntimeError("metered run produced no metrics hub")
    return result


def verify_metrics(result: RunResult) -> list[str]:
    """All metrics well-formedness problems for a run (empty = OK).

    Checks two independent invariants:

    * histogram sums / series integrals / counters reconcile with the
      simulation's own :class:`~repro.simulation.stats.StageTimes` and
      network accounting (:func:`repro.metrics.reconcile_metrics`);
    * the OpenMetrics exposition parses under the grammar validator
      (:func:`repro.metrics.validate_openmetrics`).
    """
    hub = result.metrics
    if hub is None:
        return ["run was not metered (metrics is None)"]
    problems = list(
        reconcile_metrics(hub, result.pipeline.total, result.network)
    )
    problems.extend(validate_openmetrics(openmetrics(hub)))
    return problems


def check_bit_identity(
    workload: str = "tile", method: str = "datatype_io"
) -> list[str]:
    """Replay the workload with metrics *off*; require float equality.

    Metrics are pure observation: the sampler rides the engine's clock
    hook and never creates events, so a metered run must finish at the
    *bit-identical* simulated time of an unmetered one.  Returns a list
    of discrepancies (empty = identical).
    """
    wl_fn = METRICS_WORKLOADS[workload]
    on = run_workload(
        wl_fn(), method, phantom=True, config=PVFSConfig(metrics=True)
    )
    off = run_workload(
        wl_fn(), method, phantom=True, config=PVFSConfig(metrics=False)
    )
    problems: list[str] = []
    if on.elapsed != off.elapsed:
        problems.append(
            f"elapsed differs with metrics on/off: "
            f"{on.elapsed!r} != {off.elapsed!r}"
        )
    if on.network.total_messages != off.network.total_messages:
        problems.append(
            f"message count differs with metrics on/off: "
            f"{on.network.total_messages} != {off.network.total_messages}"
        )
    return problems


def write_metrics_artifacts(
    result: RunResult,
    out_dir: Optional[pathlib.Path] = None,
    *,
    stem: Optional[str] = None,
) -> list[pathlib.Path]:
    """Write the metrics JSON + OpenMetrics text; returns the paths."""
    out_dir = out_dir or pathlib.Path(".")
    out_dir.mkdir(parents=True, exist_ok=True)
    stem = stem or f"METRICS_{result.workload}_{result.method}"
    hub = result.metrics
    doc = {
        "schema": 1,
        "workload": result.workload,
        "method": result.method,
        "n_clients": result.n_clients,
        "elapsed_s": result.elapsed,
        "server_stages": result.pipeline.total.as_dict(),
        "imbalance": imbalance_report(result.servers),
        "metrics": metrics_json(hub),
        "reconciled": not reconcile_metrics(
            hub, result.pipeline.total, result.network
        ),
    }
    json_path = out_dir / f"{stem}.json"
    json_path.write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n"
    )
    prom_path = out_dir / f"{stem}.prom"
    prom_path.write_text(openmetrics(hub))
    return [json_path, prom_path]
