"""Figure rendering with zero plotting dependencies.

Two layers, both stdlib-only:

* ASCII charts — `repro-bench fig... --plot` draws the same series the
  paper's figures show: a horizontal bar chart for single-x figures
  (Figure 8) and a multi-series line chart on a character grid for the
  sweeps (Figures 10 and 12).
* SVG charts — the building blocks of ``repro-bench dash``:
  :func:`svg_time_series` panels for metric series,
  :func:`svg_heatmap` for per-server × time grids,
  :func:`svg_waterfall` for one request's critical-path slices,
  :func:`svg_blame_bars` for per-method blame breakdowns, and
  :func:`html_page` to bind them into one self-contained document.

Every SVG helper formats floats through :func:`fmt_num` (shortest
``%.6g``-style repr) and emits attributes in a fixed order, so the same
inputs always render byte-identical markup — the property the dash
CI gate asserts.  No external assets, fonts, scripts, or network
references are ever emitted.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .characteristics import METHOD_LABELS
from .figures import FigureSeries

__all__ = [
    "bar_chart",
    "line_chart",
    "plot_figure",
    "fmt_num",
    "svg_time_series",
    "svg_heatmap",
    "svg_waterfall",
    "svg_blame_bars",
    "html_page",
    "RESOURCE_COLORS",
    "SERIES_COLORS",
]

_MARKERS = "ox+*#@%&"


def bar_chart(
    fig: FigureSeries, width: int = 56, unit: str = "MiB/s"
) -> str:
    """Horizontal bars, one per method (for single-x figures)."""
    xs = fig.xs()
    if len(xs) != 1:
        raise ValueError("bar_chart needs a single-x figure")
    x = xs[0]
    values = {
        m: fig.series[m].get(x) for m in fig.series
    }
    vmax = max((v for v in values.values() if v), default=1.0)
    lines = [f"{fig.name} at {x} {fig.xlabel} ({unit})"]
    for m, v in values.items():
        label = METHOD_LABELS.get(m, m)
        if v is None:
            lines.append(f"{label:>18s} | (unavailable)")
            continue
        n = int(round(v / vmax * width))
        lines.append(f"{label:>18s} | {'█' * max(n, 1)} {v:.1f}")
    return "\n".join(lines)


def line_chart(
    fig: FigureSeries,
    width: int = 64,
    height: int = 18,
    unit: str = "MiB/s",
    methods: Optional[list[str]] = None,
) -> str:
    """Multi-series chart on a character grid (x = clients, log-ish)."""
    xs = fig.xs()
    if len(xs) < 2:
        raise ValueError("line_chart needs at least two x values")
    methods = methods or [
        m for m in fig.series if any(v for v in fig.series[m].values())
    ]
    vmax = max(
        v
        for m in methods
        for v in fig.series[m].values()
        if v is not None
    )
    if vmax <= 0:
        vmax = 1.0
    grid = [[" "] * width for _ in range(height)]

    def col(x):
        i = xs.index(x)
        return int(i / max(len(xs) - 1, 1) * (width - 1))

    def row(v):
        return height - 1 - int(v / vmax * (height - 1))

    legend = []
    for k, m in enumerate(methods):
        marker = _MARKERS[k % len(_MARKERS)]
        legend.append(f"{marker}={METHOD_LABELS.get(m, m)}")
        pts = [
            (col(x), row(v))
            for x, v in sorted(fig.series[m].items())
            if v is not None
        ]
        # connect consecutive points with linear interpolation
        for (c0, r0), (c1, r1) in zip(pts[:-1], pts[1:]):
            steps = max(abs(c1 - c0), 1)
            for s in range(steps + 1):
                c = c0 + (c1 - c0) * s // steps
                r = r0 + (r1 - r0) * s // steps
                if grid[r][c] == " ":
                    grid[r][c] = "."
        for c, r in pts:
            grid[r][c] = marker

    lines = [f"{fig.name} (aggregate {unit}, max={vmax:.0f})"]
    for r, rowchars in enumerate(grid):
        axis = f"{vmax * (height - 1 - r) / (height - 1):7.0f} |"
        lines.append(axis + "".join(rowchars))
    ticks = "        +" + "-" * width
    lines.append(ticks)
    labels = [" "] * width
    for x in xs:
        s = str(x)
        c = min(col(x), width - len(s))
        for i, ch in enumerate(s):
            labels[c + i] = ch
    lines.append("         " + "".join(labels) + f"  ({fig.xlabel})")
    lines.append("  " + "  ".join(legend))
    return "\n".join(lines)


def plot_figure(fig: FigureSeries, **kw) -> str:
    """Pick the chart type by the number of x values."""
    if len(fig.xs()) == 1:
        return bar_chart(fig, **kw)
    return line_chart(fig, **kw)


# ----------------------------------------------------------------------
# SVG layer (stdlib-only, byte-deterministic)
# ----------------------------------------------------------------------

#: Fill per critical-path resource (see ``repro.trace.critical``).
RESOURCE_COLORS = {
    "client_cpu": "#4e79a7",
    "rpc_wait": "#a0cbe8",
    "retry_backoff": "#f28e2b",
    "net_queue": "#ffbe7d",
    "net_wire": "#59a14f",
    "queue_wait": "#e15759",
    "decode": "#b6992d",
    "plan": "#499894",
    "cache": "#86bcb6",
    "disk": "#79706e",
    "fault_stall": "#d4a6c8",
    "respond": "#9d7660",
    "server_wait": "#d7b5a6",
    "other": "#bab0ac",
}

#: Line colors for time-series panels, cycled in label order.
SERIES_COLORS = (
    "#4e79a7", "#f28e2b", "#e15759", "#76b7b2",
    "#59a14f", "#edc948", "#b07aa1", "#9c755f",
)


def fmt_num(x: float) -> str:
    """Shortest stable decimal repr (no exponent surprises per-platform).

    ``%.6g`` is deterministic across CPython builds for doubles, which
    makes every coordinate — and therefore the whole SVG byte stream —
    a pure function of the input values.
    """
    s = f"{float(x):.6g}"
    return "0" if s == "-0" else s


def _esc(text: str) -> str:
    return (
        str(text)
        .replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )


_FONT = 'font-family="monospace"'


def _svg_open(width: int, height: int, title: str) -> list[str]:
    return [
        (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{width}" height="{height}" '
            f'viewBox="0 0 {width} {height}" role="img">'
        ),
        f'<title>{_esc(title)}</title>',
        (
            f'<rect x="0" y="0" width="{width}" height="{height}" '
            f'fill="#ffffff"/>'
        ),
        (
            f'<text x="10" y="16" {_FONT} font-size="13" '
            f'fill="#333333">{_esc(title)}</text>'
        ),
    ]


def _heat_color(frac: float) -> str:
    """White → deep blue ramp; input clamped to [0, 1]."""
    frac = min(max(frac, 0.0), 1.0)
    r = round(255 + (20 - 255) * frac)
    g = round(255 + (60 - 255) * frac)
    b = round(255 + (140 - 255) * frac)
    return f"#{r:02x}{g:02x}{b:02x}"


def svg_time_series(
    series: dict[str, tuple[Sequence[float], Sequence[float]]],
    *,
    title: str,
    unit: str = "",
    width: int = 640,
    height: int = 220,
) -> str:
    """Multi-line time-series panel.

    ``series`` maps label → ``(ts, values)`` (equal-length sequences,
    simulated seconds on x).  Empty series and single-point series
    render without error: a single point draws as a dot, an empty panel
    states "no samples" instead of dividing by zero.
    """
    pad_l, pad_r, pad_t, pad_b = 58, 12, 28, 34
    plot_w = width - pad_l - pad_r
    plot_h = height - pad_t - pad_b
    out = _svg_open(width, height, title)

    pts_all = [
        (t, v)
        for ts, vs in series.values()
        for t, v in zip(ts, vs)
    ]
    if not pts_all:
        out.append(
            f'<text x="{pad_l + plot_w // 2}" y="{pad_t + plot_h // 2}" '
            f'{_FONT} font-size="12" fill="#999999" '
            f'text-anchor="middle">no samples</text>'
        )
        out.append("</svg>")
        return "\n".join(out)

    t0 = min(t for t, _ in pts_all)
    t1 = max(t for t, _ in pts_all)
    vmax = max((v for _, v in pts_all), default=0.0)
    if vmax <= 0:
        vmax = 1.0
    tspan = (t1 - t0) or 1.0

    def x(t):
        return pad_l + (t - t0) / tspan * plot_w

    def y(v):
        return pad_t + plot_h - v / vmax * plot_h

    # frame + horizontal gridlines with value labels
    out.append(
        f'<rect x="{pad_l}" y="{pad_t}" width="{plot_w}" '
        f'height="{plot_h}" fill="none" stroke="#cccccc"/>'
    )
    for i in range(5):
        gy = pad_t + plot_h * i / 4
        gv = vmax * (1 - i / 4)
        out.append(
            f'<line x1="{pad_l}" y1="{fmt_num(gy)}" '
            f'x2="{pad_l + plot_w}" y2="{fmt_num(gy)}" '
            f'stroke="#eeeeee"/>'
        )
        out.append(
            f'<text x="{pad_l - 4}" y="{fmt_num(gy + 4)}" {_FONT} '
            f'font-size="10" fill="#666666" '
            f'text-anchor="end">{fmt_num(gv)}</text>'
        )
    for frac in (0.0, 0.5, 1.0):
        tx = t0 + tspan * frac
        out.append(
            f'<text x="{fmt_num(x(tx))}" y="{height - pad_b + 14}" '
            f'{_FONT} font-size="10" fill="#666666" '
            f'text-anchor="middle">{fmt_num(tx)}s</text>'
        )

    lx = pad_l
    for i, (label, (ts, vs)) in enumerate(series.items()):
        color = SERIES_COLORS[i % len(SERIES_COLORS)]
        pts = list(zip(ts, vs))
        if len(pts) == 1:
            t, v = pts[0]
            out.append(
                f'<circle cx="{fmt_num(x(t))}" cy="{fmt_num(y(v))}" '
                f'r="2.5" fill="{color}"/>'
            )
        elif pts:
            coords = " ".join(
                f"{fmt_num(x(t))},{fmt_num(y(v))}" for t, v in pts
            )
            out.append(
                f'<polyline points="{coords}" fill="none" '
                f'stroke="{color}" stroke-width="1.2"/>'
            )
        out.append(
            f'<rect x="{lx}" y="{height - 14}" width="9" height="9" '
            f'fill="{color}"/>'
        )
        out.append(
            f'<text x="{lx + 12}" y="{height - 6}" {_FONT} '
            f'font-size="10" fill="#333333">{_esc(label)}</text>'
        )
        lx += 12 + 7 * len(label) + 18
    if unit:
        out.append(
            f'<text x="{pad_l}" y="{pad_t - 6}" {_FONT} font-size="10" '
            f'fill="#666666">{_esc(unit)}</text>'
        )
    out.append("</svg>")
    return "\n".join(out)


def svg_heatmap(
    rows: Sequence[str],
    col_edges: Sequence[float],
    values: Sequence[Sequence[float]],
    *,
    title: str,
    unit: str = "",
    width: int = 640,
    cell_h: int = 14,
) -> str:
    """Per-row × time heat map (rows = servers, columns = time bins).

    ``values[r][c]`` colors the cell for ``rows[r]`` between
    ``col_edges[c]`` and ``col_edges[c + 1]``; the ramp normalizes to
    the grid maximum (an all-zero grid renders all-white, not NaN).
    """
    pad_l, pad_t, pad_b = 64, 28, 30
    n_rows, n_cols = len(rows), max(len(col_edges) - 1, 0)
    height = pad_t + n_rows * cell_h + pad_b
    out = _svg_open(width, max(height, 60), title)
    if n_rows == 0 or n_cols == 0:
        out.append(
            f'<text x="{pad_l}" y="{pad_t + 14}" {_FONT} font-size="12" '
            f'fill="#999999">no samples</text>'
        )
        out.append("</svg>")
        return "\n".join(out)

    plot_w = width - pad_l - 12
    vmax = max((v for row in values for v in row), default=0.0)
    t0, t1 = col_edges[0], col_edges[-1]
    tspan = (t1 - t0) or 1.0
    for r, name in enumerate(rows):
        cy = pad_t + r * cell_h
        out.append(
            f'<text x="{pad_l - 4}" y="{cy + cell_h - 3}" {_FONT} '
            f'font-size="10" fill="#333333" '
            f'text-anchor="end">{_esc(name)}</text>'
        )
        for c in range(n_cols):
            cx = pad_l + (col_edges[c] - t0) / tspan * plot_w
            cw = (col_edges[c + 1] - col_edges[c]) / tspan * plot_w
            frac = values[r][c] / vmax if vmax > 0 else 0.0
            out.append(
                f'<rect x="{fmt_num(cx)}" y="{cy}" '
                f'width="{fmt_num(cw)}" height="{cell_h - 1}" '
                f'fill="{_heat_color(frac)}"/>'
            )
    base = pad_t + n_rows * cell_h
    for frac in (0.0, 0.5, 1.0):
        tx = t0 + tspan * frac
        px = pad_l + frac * plot_w
        out.append(
            f'<text x="{fmt_num(px)}" y="{base + 14}" {_FONT} '
            f'font-size="10" fill="#666666" '
            f'text-anchor="middle">{fmt_num(tx)}s</text>'
        )
    label = f"max={fmt_num(vmax)}" + (f" {unit}" if unit else "")
    out.append(
        f'<text x="{width - 12}" y="{pad_t - 6}" {_FONT} font-size="10" '
        f'fill="#666666" text-anchor="end">{_esc(label)}</text>'
    )
    out.append("</svg>")
    return "\n".join(out)


def svg_waterfall(
    segments: Sequence[tuple[str, str, float, float]],
    *,
    title: str,
    width: int = 760,
    row_h: int = 16,
    max_rows: int = 40,
) -> str:
    """Critical-path waterfall: one bar per exclusive slice.

    ``segments`` is ``(label, resource, start, end)`` in chronological
    order (``BlameReport.trace_segments`` output).  Rows beyond
    ``max_rows`` are folded into a trailing "… n more" line so a
    thousand-segment trace still renders a readable panel.
    """
    pad_l, pad_t, pad_b = 150, 28, 26
    segs = list(segments)
    folded = 0
    if len(segs) > max_rows:
        folded = len(segs) - max_rows
        segs = segs[:max_rows]
    n = len(segs) + (1 if folded else 0)
    height = pad_t + max(n, 1) * row_h + pad_b
    out = _svg_open(width, height, title)
    if not segs:
        out.append(
            f'<text x="{pad_l}" y="{pad_t + 14}" {_FONT} font-size="12" '
            f'fill="#999999">no segments</text>'
        )
        out.append("</svg>")
        return "\n".join(out)

    plot_w = width - pad_l - 70
    t0 = min(s[2] for s in segs)
    t1 = max(s[3] for s in segs)
    tspan = (t1 - t0) or 1.0
    for i, (label, resource, start, end) in enumerate(segs):
        cy = pad_t + i * row_h
        bx = pad_l + (start - t0) / tspan * plot_w
        bw = max((end - start) / tspan * plot_w, 0.5)
        color = RESOURCE_COLORS.get(resource, RESOURCE_COLORS["other"])
        out.append(
            f'<text x="{pad_l - 4}" y="{cy + row_h - 4}" {_FONT} '
            f'font-size="10" fill="#333333" '
            f'text-anchor="end">{_esc(label)}</text>'
        )
        out.append(
            f'<rect x="{fmt_num(bx)}" y="{cy + 2}" '
            f'width="{fmt_num(bw)}" height="{row_h - 4}" '
            f'fill="{color}"/>'
        )
        out.append(
            f'<text x="{fmt_num(bx + bw + 4)}" y="{cy + row_h - 4}" '
            f'{_FONT} font-size="9" fill="#666666">'
            f'{fmt_num((end - start) * 1e3)}ms</text>'
        )
    if folded:
        cy = pad_t + len(segs) * row_h
        out.append(
            f'<text x="{pad_l}" y="{cy + row_h - 4}" {_FONT} '
            f'font-size="10" fill="#999999">… {folded} more</text>'
        )
    out.append("</svg>")
    return "\n".join(out)


def svg_blame_bars(
    blames: dict[str, dict[str, float]],
    *,
    title: str,
    width: int = 760,
    row_h: int = 22,
) -> str:
    """Stacked horizontal blame bars, one row per method.

    ``blames`` maps method → resource → share (shares sum to 1 per
    method); resources stack in :data:`RESOURCE_COLORS` order and the
    legend lists only resources that actually appear (≥ 0.1 %).
    """
    pad_l, pad_t = 150, 28
    n = len(blames)
    used = [
        r
        for r in RESOURCE_COLORS
        if any(shares.get(r, 0.0) > 1e-3 for shares in blames.values())
    ]
    legend_rows = (len(used) + 3) // 4 if used else 0
    height = pad_t + max(n, 1) * row_h + 14 + legend_rows * 16 + 8
    out = _svg_open(width, height, title)
    if not blames:
        out.append(
            f'<text x="{pad_l}" y="{pad_t + 14}" {_FONT} font-size="12" '
            f'fill="#999999">no data</text>'
        )
        out.append("</svg>")
        return "\n".join(out)

    plot_w = width - pad_l - 16
    for i, (method, shares) in enumerate(blames.items()):
        cy = pad_t + i * row_h
        out.append(
            f'<text x="{pad_l - 4}" y="{cy + row_h - 7}" {_FONT} '
            f'font-size="10" fill="#333333" text-anchor="end">'
            f'{_esc(METHOD_LABELS.get(method, method))}</text>'
        )
        acc = 0.0
        for r in RESOURCE_COLORS:
            share = shares.get(r, 0.0)
            if share <= 0:
                continue
            bx = pad_l + acc * plot_w
            bw = share * plot_w
            out.append(
                f'<rect x="{fmt_num(bx)}" y="{cy + 2}" '
                f'width="{fmt_num(bw)}" height="{row_h - 6}" '
                f'fill="{RESOURCE_COLORS[r]}"><title>'
                f'{_esc(r)}: {fmt_num(share * 100)}%</title></rect>'
            )
            if share >= 0.12:
                out.append(
                    f'<text x="{fmt_num(bx + bw / 2)}" '
                    f'y="{cy + row_h - 8}" {_FONT} font-size="9" '
                    f'fill="#ffffff" text-anchor="middle">'
                    f'{fmt_num(share * 100)}%</text>'
                )
            acc += share
    ly = pad_t + n * row_h + 16
    for j, r in enumerate(used):
        lx = 12 + (j % 4) * ((width - 24) // 4)
        cy = ly + (j // 4) * 16
        out.append(
            f'<rect x="{lx}" y="{cy}" width="9" height="9" '
            f'fill="{RESOURCE_COLORS[r]}"/>'
        )
        out.append(
            f'<text x="{lx + 12}" y="{cy + 8}" {_FONT} font-size="10" '
            f'fill="#333333">{_esc(r)}</text>'
        )
    out.append("</svg>")
    return "\n".join(out)


def html_page(
    title: str,
    sections: Sequence[tuple[str, str]],
    *,
    header_rows: Sequence[tuple[str, str]] = (),
) -> str:
    """Bind SVG panels into one self-contained HTML document.

    ``sections`` is ``(heading, inner_html)``; ``header_rows`` renders
    as a key/value strip under the title.  The output references no
    external resource of any kind — inline CSS, inline SVG, no scripts
    — so the file opens identically offline and archives byte-stably.
    """
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en">',
        "<head>",
        '<meta charset="utf-8"/>',
        f"<title>{_esc(title)}</title>",
        "<style>",
        "body{font-family:monospace;margin:24px;color:#222;"
        "background:#fafafa}",
        "h1{font-size:20px}h2{font-size:15px;margin:28px 0 8px}",
        ".meta{border-collapse:collapse;margin:12px 0}",
        ".meta td{border:1px solid #ddd;padding:3px 10px;"
        "font-size:12px}",
        ".panel{background:#fff;border:1px solid #ddd;padding:8px;"
        "display:inline-block;margin:4px 0}",
        "</style>",
        "</head>",
        "<body>",
        f"<h1>{_esc(title)}</h1>",
    ]
    if header_rows:
        parts.append('<table class="meta">')
        for k, v in header_rows:
            parts.append(
                f"<tr><td>{_esc(k)}</td><td>{_esc(v)}</td></tr>"
            )
        parts.append("</table>")
    for heading, inner in sections:
        parts.append(f"<h2>{_esc(heading)}</h2>")
        parts.append(f'<div class="panel">{inner}</div>')
    parts.append("</body>")
    parts.append("</html>")
    return "\n".join(parts) + "\n"
