"""ASCII rendering of figure series (no plotting dependencies).

`repro-bench fig... --plot` draws the same series the paper's figures
show: a horizontal bar chart for single-x figures (Figure 8) and a
multi-series line chart on a character grid for the sweeps (Figures 10
and 12).
"""

from __future__ import annotations

from typing import Optional

from .characteristics import METHOD_LABELS
from .figures import FigureSeries

__all__ = ["bar_chart", "line_chart", "plot_figure"]

_MARKERS = "ox+*#@%&"


def bar_chart(
    fig: FigureSeries, width: int = 56, unit: str = "MiB/s"
) -> str:
    """Horizontal bars, one per method (for single-x figures)."""
    xs = fig.xs()
    if len(xs) != 1:
        raise ValueError("bar_chart needs a single-x figure")
    x = xs[0]
    values = {
        m: fig.series[m].get(x) for m in fig.series
    }
    vmax = max((v for v in values.values() if v), default=1.0)
    lines = [f"{fig.name} at {x} {fig.xlabel} ({unit})"]
    for m, v in values.items():
        label = METHOD_LABELS.get(m, m)
        if v is None:
            lines.append(f"{label:>18s} | (unavailable)")
            continue
        n = int(round(v / vmax * width))
        lines.append(f"{label:>18s} | {'█' * max(n, 1)} {v:.1f}")
    return "\n".join(lines)


def line_chart(
    fig: FigureSeries,
    width: int = 64,
    height: int = 18,
    unit: str = "MiB/s",
    methods: Optional[list[str]] = None,
) -> str:
    """Multi-series chart on a character grid (x = clients, log-ish)."""
    xs = fig.xs()
    if len(xs) < 2:
        raise ValueError("line_chart needs at least two x values")
    methods = methods or [
        m for m in fig.series if any(v for v in fig.series[m].values())
    ]
    vmax = max(
        v
        for m in methods
        for v in fig.series[m].values()
        if v is not None
    )
    if vmax <= 0:
        vmax = 1.0
    grid = [[" "] * width for _ in range(height)]

    def col(x):
        i = xs.index(x)
        return int(i / max(len(xs) - 1, 1) * (width - 1))

    def row(v):
        return height - 1 - int(v / vmax * (height - 1))

    legend = []
    for k, m in enumerate(methods):
        marker = _MARKERS[k % len(_MARKERS)]
        legend.append(f"{marker}={METHOD_LABELS.get(m, m)}")
        pts = [
            (col(x), row(v))
            for x, v in sorted(fig.series[m].items())
            if v is not None
        ]
        # connect consecutive points with linear interpolation
        for (c0, r0), (c1, r1) in zip(pts[:-1], pts[1:]):
            steps = max(abs(c1 - c0), 1)
            for s in range(steps + 1):
                c = c0 + (c1 - c0) * s // steps
                r = r0 + (r1 - r0) * s // steps
                if grid[r][c] == " ":
                    grid[r][c] = "."
        for c, r in pts:
            grid[r][c] = marker

    lines = [f"{fig.name} (aggregate {unit}, max={vmax:.0f})"]
    for r, rowchars in enumerate(grid):
        axis = f"{vmax * (height - 1 - r) / (height - 1):7.0f} |"
        lines.append(axis + "".join(rowchars))
    ticks = "        +" + "-" * width
    lines.append(ticks)
    labels = [" "] * width
    for x in xs:
        s = str(x)
        c = min(col(x), width - len(s))
        for i, ch in enumerate(s):
            labels[c + i] = ch
    lines.append("         " + "".join(labels) + f"  ({fig.xlabel})")
    lines.append("  " + "  ".join(legend))
    return "\n".join(lines)


def plot_figure(fig: FigureSeries, **kw) -> str:
    """Pick the chart type by the number of x values."""
    if len(fig.xs()) == 1:
        return bar_chart(fig, **kw)
    return line_chart(fig, **kw)
