"""``repro-bench`` command line: regenerate the paper's tables/figures.

Examples::

    repro-bench table1
    repro-bench table2 --clients 27
    repro-bench fig12 --quick
    repro-bench all --out results/

Everything runs at paper scale in phantom mode; ``--quick`` shrinks
frame counts and sweeps for a fast smoke run.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from . import characteristics as chars
from . import figures
from .plots import plot_figure
from .report import render_characteristics, render_figure

__all__ = ["main"]


def _emit(text: str, out: pathlib.Path | None, filename: str) -> None:
    print(text)
    print()
    if out is not None:
        out.mkdir(parents=True, exist_ok=True)
        (out / filename).write_text(text + "\n")
        print(f"[saved {out / filename}]", file=sys.stderr)


def cmd_table1(args, out):
    rows = chars.table1(frames=1)
    _emit(
        render_characteristics(
            "Table 1: I/O characteristics of the tile reader benchmark "
            "(per frame)",
            rows,
        ),
        out,
        "table1.txt",
    )


def cmd_table2(args, out):
    dims = [args.clients_per_dim] if args.clients_per_dim else [2, 3, 4]
    blocks = []
    for cpd in dims:
        rows = chars.table2(cpd)
        blocks.append(
            render_characteristics(
                f"Table 2 ({cpd**3} clients): ROMIO 3-D block test", rows
            )
        )
    _emit("\n\n".join(blocks), out, "table2.txt")


def cmd_table3(args, out):
    rows = chars.table3(n_clients=args.flash_clients)
    _emit(
        render_characteristics(
            f"Table 3: FLASH I/O characteristics "
            f"({args.flash_clients} clients)",
            rows,
        ),
        out,
        "table3.txt",
    )


def cmd_fig8(args, out):
    frames = 3 if args.quick else 10
    fig = figures.fig8(frames=frames)
    text = render_figure(fig)
    if args.plot:
        text += "\n\n" + plot_figure(fig)
    _emit(text, out, "fig8.txt")


def cmd_fig10(args, out):
    dims = (2, 3) if args.quick else (2, 3, 4)
    read_fig, write_fig = figures.fig10(client_dims=dims)
    text = render_figure(read_fig) + "\n\n" + render_figure(write_fig)
    if args.plot:
        text += "\n\n" + plot_figure(read_fig)
        text += "\n\n" + plot_figure(write_fig)
    _emit(text, out, "fig10.txt")


def cmd_fig12(args, out):
    counts = (2, 8, 32) if args.quick else (2, 4, 8, 16, 32, 48, 64, 96, 128)
    fig = figures.fig12(client_counts=counts)
    text = render_figure(fig)
    if args.plot:
        text += "\n\n" + plot_figure(fig)
    _emit(text, out, "fig12.txt")


def cmd_json(args, out):
    """Machine-readable reduced-scale baseline (BENCH_pipeline.json)."""
    from .baseline import write_pipeline_baseline

    path = write_pipeline_baseline(out, trace=getattr(args, "trace", False))
    print(f"[saved {path}]", file=sys.stderr)


def cmd_trace(args, out):
    """Traced run: Chrome trace_event JSON + span summary (Perfetto)."""
    from .report import render_trace_summary
    from .tracecmd import run_traced, verify_trace, write_trace_artifacts

    result = run_traced(args.workload, args.method)
    if not result.supported:
        raise SystemExit(
            f"{args.method} unsupported for {args.workload}: {result.note}"
        )
    problems = verify_trace(result)
    if problems:
        for p in problems:
            print(f"trace problem: {p}", file=sys.stderr)
        raise SystemExit(f"{len(problems)} trace problem(s)")
    print(render_trace_summary(result))
    print()
    if args.smoke and out is None:
        print(
            f"[trace smoke OK: {len(result.tracer)} spans verified]",
            file=sys.stderr,
        )
        return
    for path in write_trace_artifacts(result, out):
        print(f"[saved {path}]", file=sys.stderr)


def cmd_metrics(args, out):
    """Metered run: OpenMetrics text + metrics/imbalance JSON."""
    from .metricscmd import (
        check_bit_identity,
        run_metered,
        verify_metrics,
        write_metrics_artifacts,
    )
    from .report import render_metrics_summary

    result = run_metered(args.workload, args.method)
    if not result.supported:
        raise SystemExit(
            f"{args.method} unsupported for {args.workload}: {result.note}"
        )
    problems = verify_metrics(result)
    if args.smoke:
        problems.extend(check_bit_identity(args.workload, args.method))
    if problems:
        for p in problems:
            print(f"metrics problem: {p}", file=sys.stderr)
        raise SystemExit(f"{len(problems)} metrics problem(s)")
    print(render_metrics_summary(result))
    print()
    if args.smoke and out is None:
        print(
            f"[metrics smoke OK: {result.metrics.samples} samples, "
            "reconciled, bit-identical]",
            file=sys.stderr,
        )
        return
    for path in write_metrics_artifacts(result, out):
        print(f"[saved {path}]", file=sys.stderr)


def cmd_dash(args, out):
    """Self-contained performance dashboard (DASH_*.html)."""
    from .dashcmd import collect_dash, smoke_dash, write_dash

    if args.smoke:
        problems = smoke_dash(args.workload, args.method)
        if problems:
            for p in problems:
                print(f"dash problem: {p}", file=sys.stderr)
            raise SystemExit(f"{len(problems)} dash problem(s)")
        print(
            "[dash smoke OK: byte-deterministic, blame conserved, "
            "self-contained]",
            file=sys.stderr,
        )
        if out is None:
            return
    data = collect_dash(
        args.workload,
        args.method,
        faults=args.faults,
        tenants=args.tenants,
    )
    report = data["report"]
    shares = report.shares()
    dominant = report.dominant()
    print(
        f"dash {args.workload}/{args.method}: "
        f"{report.traces} traces, critical path {report.total:.4f}s, "
        f"dominant blame {dominant} ({shares[dominant]:.1%})"
    )
    path = write_dash(data, out)
    print(f"[saved {path}]", file=sys.stderr)
    if args.trace:
        from .tracecmd import write_trace_artifacts

        for p in write_trace_artifacts(data["result"], out):
            print(f"[saved {p}]", file=sys.stderr)
    if args.metrics:
        from .metricscmd import write_metrics_artifacts

        for p in write_metrics_artifacts(data["result"], out):
            print(f"[saved {p}]", file=sys.stderr)


def cmd_faults(args, out):
    """Fault-injection severity sweep (BENCH_faults.json) / chaos smoke."""
    from .faultscmd import main_smoke, write_faults_bench

    if args.smoke:
        main_smoke(args.method)
        print(
            "[faults smoke OK: heavy preset recovered, deterministic, "
            "reconciled]",
            file=sys.stderr,
        )
        if out is None:
            return
    path, doc = write_faults_bench(out)
    for method, severities in doc["methods"].items():
        cells = []
        for level, entry in severities.items():
            if not entry.get("supported"):
                cells.append(f"{level}=n/a")
                continue
            flag = "*" if entry["degraded"] else ""
            cells.append(f"{level}={entry['mbps']:g}{flag}")
        print(f"{method}: " + "  ".join(cells) + "  (MiB/s, *=degraded)")
    print(f"[saved {path}]", file=sys.stderr)


def cmd_scale(args, out):
    """Multi-tenant scale sweep (BENCH_scale.json) / fairness smoke."""
    from .scalecmd import (
        SMOKE_SPEC,
        collect_scale_bench,
        render_scale,
        smoke_check,
        write_scale_bench,
    )

    if args.smoke:
        doc = collect_scale_bench(SMOKE_SPEC)
        print(render_scale(doc))
        problems = smoke_check(doc)
        if problems:
            for p in problems:
                print(f"scale problem: {p}", file=sys.stderr)
            raise SystemExit(f"{len(problems)} scale problem(s)")
        print(
            "[scale smoke OK: completion monotone, fairness >= 0.9, "
            "weighted shares proportional]",
            file=sys.stderr,
        )
        if out is None:
            return
        path, _ = write_scale_bench(out, spec=SMOKE_SPEC)
        print(f"[saved {path}]", file=sys.stderr)
        return
    path, doc = write_scale_bench(out)
    print(render_scale(doc))
    problems = smoke_check(doc)
    if problems:
        for p in problems:
            print(f"scale problem: {p}", file=sys.stderr)
        raise SystemExit(f"{len(problems)} scale problem(s)")
    print(f"[saved {path}]", file=sys.stderr)


def cmd_collective(args, out):
    """Sixth-method benchmark (BENCH_collective.json) / CI smoke gate."""
    from .collectivecmd import (
        QUICK_SPEC,
        collect_smoke,
        dominance_problems,
        render_collective,
        smoke_check,
        write_collective_bench,
    )

    if args.smoke:
        doc = collect_smoke()
        problems = smoke_check(doc)
        if problems:
            for p in problems:
                print(f"collective problem: {p}", file=sys.stderr)
            raise SystemExit(f"{len(problems)} collective problem(s)")
        top = max(doc["spec"]["clients"])
        print(
            f"[collective smoke OK: beats list I/O at {top} clients, "
            "deterministic replay, O(servers) aggregated requests]",
            file=sys.stderr,
        )
        if out is None:
            return
    path, doc = write_collective_bench(
        out, spec=QUICK_SPEC if args.quick else None
    )
    print(render_collective(doc))
    print(f"[saved {path}]", file=sys.stderr)
    if not args.quick:
        problems = dominance_problems(doc)
        if problems:
            for p in problems:
                print(f"collective problem: {p}", file=sys.stderr)
            raise SystemExit(f"{len(problems)} collective problem(s)")


def cmd_compare(args, out):
    """Regression gate: fresh run vs checked-in BENCH_*.json baselines."""
    from .compare import (
        DEFAULT_TOLERANCE,
        compare_against_dir,
        render_compare,
        update_baselines,
    )

    baseline = args.baseline or pathlib.Path("results")
    if args.update_baseline:
        for path in update_baselines(baseline):
            print(f"[updated {path}]", file=sys.stderr)
        return
    tolerance = (
        args.tolerance if args.tolerance is not None else DEFAULT_TOLERANCE
    )
    deltas, notes = compare_against_dir(baseline, tolerance)
    for note in notes:
        print(f"[{note}]", file=sys.stderr)
    _emit(render_compare(deltas, tolerance), out, "compare.txt")
    regressions = [d for d in deltas if d.regression]
    if regressions:
        raise SystemExit(
            f"{len(regressions)} regression(s) beyond ±{tolerance:.1%} "
            f"vs {baseline}"
        )


def cmd_dtype_cache(args, out):
    """Expansion-cache speedup benchmark (BENCH_dtype_cache.json)."""
    from .dtype_cache import write_dtype_cache_bench

    path, data = write_dtype_cache_bench(out, quick=args.quick)
    for name, ph in data["phases"].items():
        print(
            f"{name}: speedup {ph['speedup']:.2f}x "
            f"(sim {ph['sim_speedup']:.2f}x), "
            f"hit rate {ph['hit_rate']:.3f}"
        )
    print(f"overall: speedup {data['speedup']:.2f}x")
    print(f"[saved {path}]", file=sys.stderr)
    if args.min_speedup and data["speedup"] < args.min_speedup:
        raise SystemExit(
            f"cache speedup {data['speedup']:.2f}x below required "
            f"{args.min_speedup:.2f}x"
        )


def cmd_hotpaths(args, out):
    """Vectorized hot-path speedups vs scalar (BENCH_hotpaths.json)."""
    from .hotpaths import render_hotpaths, write_hotpaths_bench

    if args.smoke and out is None:
        from .hotpaths import collect

        data = collect(quick=True, repeats=2)
        print(render_hotpaths(data))
        if not data["bit_identical"]:
            raise SystemExit(
                "hotpaths smoke: vectorized outputs differ from the "
                "scalar reference"
            )
        print("[hotpaths smoke OK: all paths bit-identical]", file=sys.stderr)
    else:
        path, data = write_hotpaths_bench(
            out, quick=args.quick or args.smoke
        )
        print(render_hotpaths(data))
        print(f"[saved {path}]", file=sys.stderr)
        if not data["bit_identical"]:
            raise SystemExit(
                "hotpaths: vectorized outputs differ from the scalar "
                "reference"
            )
    if args.min_speedup and data["speedup"] < args.min_speedup:
        raise SystemExit(
            f"hotpaths speedup {data['speedup']:.2f}x below required "
            f"{args.min_speedup:.2f}x"
        )


def cmd_validate(args, out):
    """Cross-method write x read validation on real data."""
    from .validate import validate_workload
    from .workloads import Block3DWorkload, FlashWorkload

    reports = [
        validate_workload(Block3DWorkload.reduced(2, is_write=True)),
        validate_workload(FlashWorkload.reduced(2)),
    ]
    text = "\n".join(r.summary() for r in reports)
    _emit(text, out, "validate.txt")


COMMANDS = {
    "json": cmd_json,
    "dtype-cache": cmd_dtype_cache,
    "hotpaths": cmd_hotpaths,
    "trace": cmd_trace,
    "metrics": cmd_metrics,
    "dash": cmd_dash,
    "faults": cmd_faults,
    "scale": cmd_scale,
    "collective": cmd_collective,
    "compare": cmd_compare,
    "validate": cmd_validate,
    "table1": cmd_table1,
    "table2": cmd_table2,
    "table3": cmd_table3,
    "fig8": cmd_fig8,
    "fig10": cmd_fig10,
    "fig12": cmd_fig12,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the tables and figures of Ching et al. "
        "(CLUSTER 2003).",
    )
    parser.add_argument(
        "what",
        choices=[*COMMANDS, "all"],
        help="which artifact to regenerate",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="directory to save the rendered text into",
    )
    parser.add_argument(
        "--quick", action="store_true", help="smaller sweeps / fewer frames"
    )
    parser.add_argument(
        "--plot", action="store_true", help="append ASCII charts to figures"
    )
    parser.add_argument(
        "--clients-per-dim",
        type=int,
        default=None,
        help="table2: run a single decomposition (2, 3 or 4)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="dtype-cache/hotpaths: exit nonzero if the fast mode is not "
        "at least this much faster than the reference (CI smoke gate)",
    )
    parser.add_argument(
        "--flash-clients",
        type=int,
        default=4,
        help="table3: client count (affects only the resent fraction)",
    )
    parser.add_argument(
        "--workload",
        choices=["tile", "block3d-read", "block3d-write", "flash"],
        default="tile",
        help="trace/metrics: which reduced workload to run",
    )
    parser.add_argument(
        "--method",
        default="datatype_io",
        help="trace/metrics: access method (default: datatype_io)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="trace/metrics/faults/scale/collective: verify only (metrics "
        "also replays "
        "with collection off and requires bit-identical timing; faults "
        "runs the chaos gate: heavy preset must recover, replay "
        "deterministically and keep traces/metrics reconciled; hotpaths "
        "runs quick sizes and requires bit-identical outputs); skip "
        "writing artifacts unless --out is given (CI gate)",
    )
    parser.add_argument(
        "--baseline",
        type=pathlib.Path,
        default=None,
        help="compare: directory holding BENCH_*.json baselines "
        "(default: results/)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="compare: relative tolerance band (default: 0.05 = ±5%%)",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="json: include per-method span summaries in the baseline; "
        "dash: also write the Chrome trace artifacts",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="dash: also write the OpenMetrics / imbalance artifacts",
    )
    parser.add_argument(
        "--faults",
        choices=["none", "light", "moderate", "heavy"],
        default=None,
        help="dash: arm a chaos severity preset for the dashboard run",
    )
    parser.add_argument(
        "--tenants",
        type=int,
        default=None,
        help="dash: run N equal-weight tenants through weighted-fair "
        "admission (ranks assigned round-robin)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="compare: re-collect the benchmark documents and overwrite "
        "the baseline files instead of gating against them",
    )
    args = parser.parse_args(argv)

    # ``all`` regenerates artifacts; ``compare`` judges them against a
    # baseline directory, so it only runs when asked for by name
    targets = (
        [n for n in COMMANDS if n != "compare"]
        if args.what == "all"
        else [args.what]
    )
    for name in targets:
        t0 = time.time()
        COMMANDS[name](args, args.out)
        print(f"[{name}: {time.time() - t0:.1f}s]", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
