"""``repro-bench faults``: degraded-mode bandwidth under fault injection.

Sweeps the reduced tile workload across every access method — the five
independent paths *and* collective datatype I/O, whose ack/re-election
failover is exercised by the same presets — and every
:data:`~repro.faults.SEVERITY_LEVELS` preset (``none`` → ``heavy``),
recording aggregate bandwidth, elapsed simulated time and the injector's
fault accounting into ``BENCH_faults.json``.  Every recorded field is a
deterministic simulated quantity — a given ``(workload, method,
severity, seed)`` cell replays bit-for-bit — so the document doubles as
a compare-gate baseline (:mod:`repro.bench.compare`).

``--smoke`` (the CI chaos gate) runs the ``heavy`` preset with tracing
*and* metrics on, then requires:

* the run completes (bounded retries: injected faults terminate in
  success or a typed ``RetriesExhausted``, never a hang);
* faults were actually injected and the read data still verified;
* trace spans and metrics still reconcile exactly under fault load;
* the same seed replays to an identical fault event log, a different
  seed does not;
* the ``none`` severity is float-equality identical to ``faults=None``.
"""

from __future__ import annotations

import json
import pathlib
import sys
from dataclasses import asdict
from typing import Optional, Sequence

from ..faults import SEVERITY_LEVELS, severity_config
from ..pvfs import PVFSConfig
from .characteristics import METHOD_ORDER
from .runner import RunResult, run_workload
from .workloads import TileWorkload

__all__ = [
    "collect_faults_bench",
    "run_faulted",
    "smoke",
    "write_faults_bench",
]

#: Schema version of the emitted document; bump on layout changes.
SCHEMA = 1

#: Seed of every sweep cell (one seed: the sweep compares severities,
#: not seeds; determinism across runs is what the smoke gate checks).
SWEEP_SEED = 1234


def _workload():
    return TileWorkload.reduced(frames=2)


def run_faulted(
    method: str = "datatype_io",
    severity: str = "moderate",
    *,
    seed: int = SWEEP_SEED,
    trace: bool = False,
    metrics: bool = False,
) -> RunResult:
    """Run the reduced tile workload under one severity preset."""
    return run_workload(
        _workload(),
        method,
        phantom=True,
        config=PVFSConfig(
            faults=severity_config(severity, seed=seed),
            trace=trace,
            metrics=metrics,
        ),
    )


def collect_faults_bench(
    methods: Sequence[str] = METHOD_ORDER,
    *,
    seed: int = SWEEP_SEED,
) -> dict:
    """Run the method × severity sweep and collect results as a dict."""
    severities = {}
    for level in SEVERITY_LEVELS:
        cfg = severity_config(level, seed=seed)
        if cfg is None:
            severities[level] = None
        else:
            d = asdict(cfg)
            # JSON-native: crash windows round-trip as lists, not tuples
            d["server_crashes"] = [list(w) for w in d["server_crashes"]]
            severities[level] = d
    doc: dict = {
        "schema": SCHEMA,
        "scale": "reduced",
        "workload": "tile",
        "seed": seed,
        "severities": severities,
        "methods": {},
    }
    for method in methods:
        per_severity: dict = {}
        for level in SEVERITY_LEVELS:
            r = run_faulted(method, level, seed=seed)
            if not r.supported:
                per_severity[level] = {"supported": False, "note": r.note}
                continue
            entry = {
                "supported": True,
                "mbps": round(r.bandwidth_mbps, 3),
                "elapsed_s": r.elapsed,
                "n_clients": r.n_clients,
                "degraded": r.degraded,
            }
            if r.faults is not None:
                entry["faults"] = r.faults.summary()
            per_severity[level] = entry
        doc["methods"][method] = per_severity
    return doc


def write_faults_bench(
    out_dir: Optional[pathlib.Path] = None,
    methods: Sequence[str] = METHOD_ORDER,
    *,
    seed: int = SWEEP_SEED,
) -> tuple[pathlib.Path, dict]:
    """Write ``BENCH_faults.json`` into ``out_dir`` (default: cwd)."""
    doc = collect_faults_bench(methods, seed=seed)
    out_dir = out_dir or pathlib.Path(".")
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / "BENCH_faults.json"
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path, doc


def smoke(method: str = "datatype_io") -> list[str]:
    """The CI chaos gate; returns the list of problems (empty = OK)."""
    from .metricscmd import verify_metrics
    from .tracecmd import verify_trace

    problems: list[str] = []

    # heavy faults with full observability on: completion here is the
    # no-hang/bounded-retry proof (every fault path ends in a response
    # or a typed exception — a hang would wedge this very call)
    r1 = run_faulted(method, "heavy", trace=True, metrics=True)
    if not r1.supported:
        return [f"{method} unsupported for the tile workload: {r1.note}"]
    if not r1.degraded:
        problems.append("heavy severity injected no faults")
    if r1.faults.exhausted:
        problems.append(
            f"{r1.faults.exhausted} request(s) exhausted retries under "
            "the heavy preset (timeout budget too tight for the sweep)"
        )
    problems.extend(f"trace under faults: {p}" for p in verify_trace(r1))
    problems.extend(
        f"metrics under faults: {p}" for p in verify_metrics(r1)
    )

    # determinism: same seed replays bit-for-bit…
    r2 = run_faulted(method, "heavy", trace=True, metrics=True)
    if r1.faults.event_log() != r2.faults.event_log():
        problems.append("same seed produced a different fault event log")
    if r1.elapsed != r2.elapsed:
        problems.append(
            f"same seed produced different elapsed time: "
            f"{r1.elapsed!r} != {r2.elapsed!r}"
        )
    # …and a different seed does not
    r3 = run_faulted(method, "heavy", seed=SWEEP_SEED + 1)
    if r3.supported and r1.faults.event_log() == r3.faults.event_log():
        problems.append("different seed replayed the same fault event log")

    # the fault-free reference point: severity "none" is faults=None
    r_none = run_faulted(method, "none")
    r_off = run_workload(_workload(), method, phantom=True)
    if r_none.elapsed != r_off.elapsed:
        problems.append(
            f"severity 'none' differs from faults=None: "
            f"{r_none.elapsed!r} != {r_off.elapsed!r}"
        )
    # degradation must cost time, never gain it: injected faults only
    # add stalls, drops and retries on top of the fault-free schedule
    if r1.elapsed < r_none.elapsed:
        problems.append(
            f"heavy preset finished faster than fault-free: "
            f"{r1.elapsed!r} < {r_none.elapsed!r}"
        )
    return problems


def main_smoke(method: str = "datatype_io") -> None:
    """Run :func:`smoke` and exit nonzero on any problem (CLI helper).

    Collective datatype I/O is always covered alongside the requested
    method: its failover machinery (per-round acks, re-election) is a
    separate code path from the independent RPC ladder and regresses
    independently.
    """
    methods = [method]
    if method != "collective_dtype":
        methods.append("collective_dtype")
    problems = []
    for m in methods:
        problems.extend(f"{m}: {p}" for p in smoke(m))
    if problems:
        for p in problems:
            print(f"faults problem: {p}", file=sys.stderr)
        raise SystemExit(f"{len(problems)} fault-injection problem(s)")
