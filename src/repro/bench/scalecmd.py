"""``repro-bench scale``: the multi-tenant scale-out sweep.

Sweeps ``clients × tenants × iods`` cells (up to 4096 clients, 4
tenants, 64 servers) of the strip-aligned :class:`~repro.bench
.workloads.ScaleWorkload` under weighted-fair admission and writes
``results/BENCH_scale.json``.  Each cell reports aggregate bandwidth,
per-tenant makespan throughput, Jain's fairness index, and how busy
the server pipeline was — the saturation attribution for datatype
I/O's server-CPU advantage: once ``server_busy_frac`` approaches 1 the
daemons, not the network, bound the run, and adding clients only
deepens admission queues.

Fairness methodology: tenant *i*'s offered demand is scaled in
proportion to its admission weight (``ScaleWorkload.tenant_reps``), so
under weighted-fair service all tenants finish together and
``throughput_i = bytes_i / makespan_i`` comes out proportional to
``weight_i``.  A scheduler that ignored weights would let the
light-demand tenants finish early and skew the ratios — the sweep
would see it.  For equal weights the same numbers feed
:func:`repro.metrics.jain_index` (CI smoke requires >= 0.9).
"""

from __future__ import annotations

import json
import pathlib
from typing import Optional, Sequence

from ..metrics import jain_index
from ..pvfs import PVFSConfig, TenantConfig
from .runner import RunResult, run_workload
from .workloads import ScaleWorkload

__all__ = [
    "FULL_SPEC",
    "SMOKE_SPEC",
    "collect_scale_bench",
    "run_scale_cell",
    "smoke_check",
    "write_scale_bench",
]

MIB = 1024 * 1024

#: 16 KiB strips (= ``ScaleWorkload.block_bytes``, so each request
#: maps to exactly one server).  Deliberately small: a 16 KiB response
#: costs ~1.3 ms of NIC time vs ~4.4 ms of daemon CPU per request, so
#: the *daemon* is the saturated resource and weighted-fair admission
#: directly orders completions.  With the paper's 64 KiB strips the
#: server NIC (5.2 ms/response) out-bottlenecks the daemon and its
#: FIFO transmit queue launders the DRR ordering back to near-equal
#: shares — the sweep's ``server_busy_frac`` column quantifies exactly
#: this crossover.
STRIP = 16384

#: Full sweep: equal-weight cells up to the 4096-client /
#: 4-tenant / 64-iod corner, plus one weighted (1:2:4:8) cell.
FULL_SPEC = {
    "cells": [
        [64, 1, 4],
        [256, 2, 8],
        [1024, 4, 16],
        [4096, 4, 64],
    ],
    "weighted": {"cell": [256, 4, 8], "weights": [1.0, 2.0, 4.0, 8.0]},
    "blocks": 2,
    "base_reps": 4,
}

#: CI smoke: small grid, same shape, seconds not minutes.
SMOKE_SPEC = {
    "cells": [
        [16, 2, 4],
        [64, 4, 8],
    ],
    "weighted": {"cell": [32, 4, 4], "weights": [1.0, 2.0, 4.0, 8.0]},
    "blocks": 2,
    "base_reps": 4,
}


def _tenant_configs(weights: Sequence[float]) -> tuple[TenantConfig, ...]:
    return tuple(
        TenantConfig(name=f"t{i}", weight=float(w))
        for i, w in enumerate(weights)
    )


def run_scale_cell(
    n_clients: int,
    n_tenants: int,
    n_iods: int,
    *,
    weights: Optional[Sequence[float]] = None,
    blocks: int = 2,
    base_reps: int = 4,
    method: str = "datatype_io",
) -> tuple[RunResult, ScaleWorkload]:
    """Run one sweep cell; returns the result and its workload."""
    if n_clients % n_iods:
        raise ValueError("n_clients must be a multiple of n_iods")
    weights = list(weights) if weights is not None else [1.0] * n_tenants
    if len(weights) != n_tenants:
        raise ValueError("need one weight per tenant")
    wmin = min(weights)
    reps = tuple(max(1, round(base_reps * w / wmin)) for w in weights)
    # Reads, deliberately: a read request is a small descriptor, so
    # requests pile up in the per-tenant admission queues and the DRR
    # rotation is what orders service.  (Writes are NIC-bound — the
    # payload's 10+ ms wire time per 128 KiB starves the queue and
    # there is nothing for weighted-fair admission to arbitrate.)
    workload = ScaleWorkload(
        n_clients=n_clients,
        block_bytes=STRIP,
        blocks=blocks,
        n_tenants=n_tenants,
        tenant_reps=reps,
        is_write=False,
    )
    config = PVFSConfig(
        n_servers=n_iods,
        strip_size=STRIP,
        tenants=_tenant_configs(weights),
    )
    result = run_workload(
        workload,
        method,
        phantom=True,
        config=config,
        tenant_of=workload.tenant_of,
    )
    return result, workload


def _cell_doc(
    result: RunResult,
    workload: ScaleWorkload,
    weights: Sequence[float],
) -> dict:
    """Condense one cell run into the JSON cell document."""
    t0 = min(t for t, _ in result.rank_times.values())
    per_rep = workload.bytes_per_client_per_rep()
    tenants = {}
    rates = []
    for i, w in enumerate(weights):
        ranks = workload.tenant_ranks(i)
        nbytes = sum(
            per_rep * workload.repetitions_for(r) for r in ranks
        )
        makespan = max(result.rank_times[r][1] for r in ranks) - t0
        mbps = nbytes / MIB / makespan if makespan > 0 else 0.0
        tenants[f"t{i}"] = {
            "weight": w,
            "ranks": len(ranks),
            "bytes": nbytes,
            "makespan_s": makespan,
            "mbps": mbps,
        }
        rates.append(mbps / w)
    # admission-side starvation accounting, summed across daemons
    admitted = {f"t{i}": 0 for i in range(len(weights))}
    max_wait = {f"t{i}": 0.0 for i in range(len(weights))}
    wait_sum = {f"t{i}": 0.0 for i in range(len(weights))}
    for server in result.servers:
        if server.admission is None:
            continue
        for row in server.admission.report():
            t = row["tenant"]
            admitted[t] += row["admitted"]
            max_wait[t] = max(max_wait[t], row["max_wait_s"])
            wait_sum[t] += row["mean_wait_s"] * row["admitted"]
    for t, doc in tenants.items():
        doc["admitted"] = admitted[t]
        doc["max_wait_s"] = max_wait[t]
        doc["mean_wait_s"] = (
            wait_sum[t] / admitted[t] if admitted[t] else 0.0
        )
    busy = 0.0
    if result.pipeline is not None:
        total = result.pipeline.total
        busy = sum(getattr(total, f) for f in total.stage_fields())
    n_iods = len(result.servers)
    return {
        "clients": workload.n_clients,
        "tenants": len(weights),
        "iods": n_iods,
        "weights": list(weights),
        "total_bytes": workload.total_bytes(),
        "elapsed_s": result.elapsed,
        "mbps": result.bandwidth_mbps,
        "per_tenant": tenants,
        #: Jain over weight-normalized makespan throughputs: 1.0 means
        #: every tenant got exactly its weighted share.
        "jain_weighted": jain_index(rates),
        "server_busy_s": busy,
        #: fraction of aggregate daemon time the pipeline was busy —
        #: the saturation attribution (≈1: server CPU bound the run)
        "server_busy_frac": (
            busy / (result.elapsed * n_iods)
            if result.elapsed > 0 and n_iods
            else 0.0
        ),
    }


def collect_scale_bench(spec: Optional[dict] = None) -> dict:
    """Run every cell of ``spec`` (default :data:`FULL_SPEC`)."""
    spec = spec or FULL_SPEC
    blocks = spec.get("blocks", 2)
    base_reps = spec.get("base_reps", 4)
    cells = []
    for n_clients, n_tenants, n_iods in spec["cells"]:
        result, workload = run_scale_cell(
            n_clients,
            n_tenants,
            n_iods,
            blocks=blocks,
            base_reps=base_reps,
        )
        cells.append(_cell_doc(result, workload, [1.0] * n_tenants))
    weighted = None
    wspec = spec.get("weighted")
    if wspec is not None:
        n_clients, n_tenants, n_iods = wspec["cell"]
        weights = wspec["weights"]
        result, workload = run_scale_cell(
            n_clients,
            n_tenants,
            n_iods,
            weights=weights,
            blocks=blocks,
            base_reps=base_reps,
        )
        weighted = _cell_doc(result, workload, weights)
    return {
        "schema": 1,
        "method": "datatype_io",
        "spec": spec,
        "cells": cells,
        "weighted": weighted,
    }


def smoke_check(doc: dict) -> list[str]:
    """CI gate over a collected scale document.

    * completed bytes must grow monotonically along the grid (bigger
      cells really did more work — a truncated sweep fails);
    * every equal-weight cell needs Jain >= 0.9;
    * the weighted cell's per-tenant throughput must be proportional
      to its weights within 10 %.
    """
    problems: list[str] = []
    prev = -1
    for cell in doc["cells"]:
        label = "x".join(
            str(cell[k]) for k in ("clients", "tenants", "iods")
        )
        if cell["total_bytes"] <= prev:
            problems.append(
                f"cell {label}: completed bytes {cell['total_bytes']} "
                f"not above previous cell ({prev})"
            )
        prev = cell["total_bytes"]
        if cell["jain_weighted"] < 0.9:
            problems.append(
                f"cell {label}: Jain index {cell['jain_weighted']:.3f} "
                "< 0.9 for equal weights"
            )
    weighted = doc.get("weighted")
    if weighted is not None:
        rates = [
            t["mbps"] / t["weight"] for t in weighted["per_tenant"].values()
        ]
        mean = sum(rates) / len(rates)
        for name, t in weighted["per_tenant"].items():
            err = abs(t["mbps"] / t["weight"] - mean) / mean if mean else 0.0
            if err > 0.10:
                problems.append(
                    f"weighted cell: tenant {name} throughput/weight "
                    f"deviates {err:.1%} from proportional (> 10%)"
                )
    return problems


def write_scale_bench(
    out_dir: Optional[pathlib.Path], *, spec: Optional[dict] = None
) -> tuple[pathlib.Path, dict]:
    """Collect the sweep and write ``BENCH_scale.json``."""
    out_dir = pathlib.Path(out_dir) if out_dir else pathlib.Path("results")
    out_dir.mkdir(parents=True, exist_ok=True)
    doc = collect_scale_bench(spec)
    path = out_dir / "BENCH_scale.json"
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path, doc


def render_scale(doc: dict) -> str:
    """One line per sweep cell for the console."""
    lines = []
    for cell in doc["cells"] + (
        [doc["weighted"]] if doc.get("weighted") else []
    ):
        w = cell["weights"]
        tag = (
            "equal"
            if len(set(w)) == 1
            else ":".join(f"{x:g}" for x in w)
        )
        lines.append(
            f"{cell['clients']:>5d} clients x {cell['tenants']} tenants "
            f"({tag}) x {cell['iods']:>2d} iods: "
            f"{cell['mbps']:8.1f} MiB/s, jain {cell['jain_weighted']:.3f}, "
            f"server busy {cell['server_busy_frac']:.0%}"
        )
    return "\n".join(lines)
