"""The paper's three evaluation workloads (§4.2–§4.4).

Each workload builds, per rank, the MPI datatypes whose file/memory
shapes define the benchmark.  Paper-scale constructors reproduce the
exact geometry of §4; every workload also offers ``reduced()`` presets
small enough to move real bytes in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..datatypes import (
    BYTE,
    DOUBLE,
    INT,
    Datatype,
    contiguous,
    hvector,
    struct,
    subarray,
    vector,
)

__all__ = [
    "Workload",
    "TileWorkload",
    "Block3DWorkload",
    "FlashWorkload",
    "ScaleWorkload",
]


class Workload:
    """Base class: the geometry of one benchmark run.

    A workload is read or written by ``n_clients`` ranks; each rank
    accesses the file through ``filetype(rank)`` tiled at
    ``displacement(rank, rep)`` with memory layout ``memtype(rank)``,
    repeated ``repetitions`` times (the tile reader's frames).
    """

    name: str = "workload"
    n_clients: int = 1
    is_write: bool = False
    repetitions: int = 1
    procs_per_node: int = 2
    path: str = "/data"

    # -- per-rank datatypes -------------------------------------------
    def filetype(self, rank: int) -> Datatype:
        raise NotImplementedError

    def memtype(self, rank: int) -> Datatype:
        raise NotImplementedError

    def etype(self) -> Datatype:
        return BYTE

    def displacement(self, rank: int, rep: int) -> int:
        return 0

    def mem_count(self, rank: int) -> int:
        return 1

    def repetitions_for(self, rank: int) -> int:
        """Per-rank repetition count.

        Uniform by default; :class:`ScaleWorkload` overrides it so a
        tenant's offered demand scales with its admission weight (then
        all tenants finish together iff the scheduler honours weights).
        """
        return self.repetitions

    # -- sizes ---------------------------------------------------------
    def bytes_per_client_per_rep(self) -> int:
        return self.memtype(0).size * self.mem_count(0)

    def bytes_per_client(self) -> int:
        return self.bytes_per_client_per_rep() * self.repetitions

    def total_bytes(self) -> int:
        return self.bytes_per_client() * self.n_clients

    # -- verification (real-data runs) ----------------------------------
    def expected_file_bytes(self) -> Optional[np.ndarray]:
        """Full expected file contents for write workloads (tests)."""
        return None

    def fill_buffer(self, rank: int) -> np.ndarray:
        """Deterministic per-rank payload for real-data runs."""
        n = self.bytes_per_client_per_rep()
        rng = np.random.default_rng(1234 + rank)
        return rng.integers(0, 256, n, dtype=np.uint8)


# ----------------------------------------------------------------------
# §4.2 tile reader
# ----------------------------------------------------------------------
@dataclass
class TileWorkload(Workload):
    """Tile reader benchmark (paper §4.2, Figure 8, Table 1).

    A ``tile_rows × tile_cols`` display wall; each compute node reads
    its tile (with the configured overlaps) of each frame into a
    contiguous buffer.  Defaults are the paper's exact parameters:
    1024×768 tiles, 24-bit colour, 270/128-pixel overlaps, 10.2 MB
    frames, 100 frames.
    """

    tile_rows: int = 2
    tile_cols: int = 3
    tile_w: int = 1024
    tile_h: int = 768
    bytes_per_pixel: int = 3
    overlap_x: int = 270
    overlap_y: int = 128
    repetitions: int = 100
    #: tile reader runs one process per node (§4.1)
    procs_per_node: int = 1
    name: str = "tile"
    path: str = "/frames"
    is_write: bool = False

    def __post_init__(self):
        self.n_clients = self.tile_rows * self.tile_cols
        self._memtypes: dict[int, Datatype] = {}
        self._filetypes: dict[int, Datatype] = {}

    # -- geometry -------------------------------------------------------
    @property
    def display_w(self) -> int:
        return self.tile_cols * self.tile_w - (self.tile_cols - 1) * self.overlap_x

    @property
    def display_h(self) -> int:
        return self.tile_rows * self.tile_h - (self.tile_rows - 1) * self.overlap_y

    @property
    def row_bytes(self) -> int:
        return self.display_w * self.bytes_per_pixel

    @property
    def frame_bytes(self) -> int:
        return self.display_h * self.row_bytes

    def tile_origin(self, rank: int) -> tuple[int, int]:
        r, c = divmod(rank, self.tile_cols)
        return (
            r * (self.tile_h - self.overlap_y),
            c * (self.tile_w - self.overlap_x),
        )

    # -- datatypes ------------------------------------------------------
    def filetype(self, rank: int) -> Datatype:
        ft = self._filetypes.get(rank)
        if ft is None:
            y0, x0 = self.tile_origin(rank)
            ft = subarray(
                [self.display_h, self.row_bytes],
                [self.tile_h, self.tile_w * self.bytes_per_pixel],
                [y0, x0 * self.bytes_per_pixel],
                BYTE,
            )
            self._filetypes[rank] = ft
        return ft

    def memtype(self, rank: int) -> Datatype:
        mt = self._memtypes.get(0)
        if mt is None:
            mt = contiguous(
                self.tile_h * self.tile_w * self.bytes_per_pixel, BYTE
            )
            self._memtypes[0] = mt
        return mt

    def displacement(self, rank: int, rep: int) -> int:
        return rep * self.frame_bytes

    @classmethod
    def paper(cls, frames: int = 100) -> "TileWorkload":
        return cls(repetitions=frames)

    @classmethod
    def reduced(cls, frames: int = 2) -> "TileWorkload":
        return cls(
            tile_w=32,
            tile_h=24,
            overlap_x=8,
            overlap_y=4,
            repetitions=frames,
        )


# ----------------------------------------------------------------------
# §4.3 ROMIO three-dimensional block test (coll_perf)
# ----------------------------------------------------------------------
@dataclass
class Block3DWorkload(Workload):
    """3-D block-distributed array access (paper §4.3, Fig. 9/10, Table 2).

    A ``grid³`` array of ints, block-decomposed over ``m³`` processes;
    each process accesses one cubic block.  Memory is contiguous.
    Paper scale: grid=600, m ∈ {2, 3, 4} (8/27/64 clients).
    """

    grid: int = 600
    clients_per_dim: int = 2
    is_write: bool = False
    name: str = "block3d"
    path: str = "/cube"

    def __post_init__(self):
        if self.grid % self.clients_per_dim:
            raise ValueError(
                f"grid {self.grid} not divisible by {self.clients_per_dim}"
            )
        self.n_clients = self.clients_per_dim**3
        self._filetypes: dict[int, Datatype] = {}
        self._memtype: Optional[Datatype] = None

    @property
    def block(self) -> int:
        return self.grid // self.clients_per_dim

    def block_origin(self, rank: int) -> tuple[int, int, int]:
        m = self.clients_per_dim
        i, rest = divmod(rank, m * m)
        j, k = divmod(rest, m)
        return i * self.block, j * self.block, k * self.block

    def filetype(self, rank: int) -> Datatype:
        ft = self._filetypes.get(rank)
        if ft is None:
            z0, y0, x0 = self.block_origin(rank)
            b = self.block
            g = self.grid
            ft = subarray([g, g, g], [b, b, b], [z0, y0, x0], INT)
            self._filetypes[rank] = ft
        return ft

    def memtype(self, rank: int) -> Datatype:
        if self._memtype is None:
            self._memtype = contiguous(self.block**3, INT)
        return self._memtype

    @classmethod
    def paper(cls, clients_per_dim: int = 2, is_write: bool = False):
        return cls(grid=600, clients_per_dim=clients_per_dim, is_write=is_write)

    @classmethod
    def reduced(cls, clients_per_dim: int = 2, is_write: bool = False):
        return cls(grid=24, clients_per_dim=clients_per_dim, is_write=is_write)


# ----------------------------------------------------------------------
# §4.4 FLASH I/O simulation
# ----------------------------------------------------------------------
@dataclass
class FlashWorkload(Workload):
    """FLASH checkpoint I/O (paper §4.4, Fig. 11/12, Table 3).

    In memory each rank holds ``nblocks`` AMR blocks; a block is an
    ``(nxb+2g)³`` array of cells *including guard cells*, each cell an
    array-of-struct of ``nvar`` 8-byte variables.  The checkpoint
    writes only interior cells, reorganized variable-major in the file:
    all of variable 0 (rank 0's blocks, rank 1's blocks, ...), then
    variable 1, and so on.  Noncontiguous in memory *and* file.

    Paper scale: 80 blocks/rank, 8³ interior, 4 guard cells, 24
    variables → 7.5 MiB per rank.
    """

    n_clients: int = 8
    nblocks: int = 80
    nxb: int = 8
    nguard: int = 4
    nvar: int = 24
    elem: int = 8
    is_write: bool = True
    name: str = "flash"
    path: str = "/checkpoint"

    def __post_init__(self):
        self._memtype: Optional[Datatype] = None
        self._filetypes: dict[int, Datatype] = {}

    # -- geometry -------------------------------------------------------
    @property
    def cells_interior(self) -> int:
        return self.nxb**3

    @property
    def side_full(self) -> int:
        return self.nxb + 2 * self.nguard

    @property
    def block_mem_bytes(self) -> int:
        return self.side_full**3 * self.nvar * self.elem

    @property
    def block_file_bytes(self) -> int:
        """One block's data for one variable in file."""
        return self.cells_interior * self.elem

    def bytes_per_client_per_rep(self) -> int:
        return self.nblocks * self.cells_interior * self.nvar * self.elem

    # -- datatypes ------------------------------------------------------
    def memtype(self, rank: int) -> Datatype:
        """AoS → stream in file order: var-major, block, z, y, x."""
        if self._memtype is not None:
            return self._memtype
        s = self.side_full
        g = self.nguard
        n = self.nxb
        cell_stride = self.nvar * self.elem
        # one variable's interior of one block: nested strided doubles
        tx = hvector(n, 1, cell_stride, DOUBLE)
        ty = hvector(n, 1, s * cell_stride, tx)
        tz = hvector(n, 1, s * s * cell_stride, ty)
        interior0 = ((g * s + g) * s + g) * cell_stride
        fields = []
        disps = []
        for v in range(self.nvar):
            for b in range(self.nblocks):
                fields.append(tz)
                disps.append(b * self.block_mem_bytes + interior0 + v * self.elem)
        self._memtype = struct([1] * len(fields), disps, fields)
        return self._memtype

    def filetype(self, rank: int) -> Datatype:
        """Variable-major file layout; this rank's slot in each section."""
        ft = self._filetypes.get(rank)
        if ft is None:
            per_rank_var = self.nblocks * self.cells_interior  # elements
            section = per_rank_var * self.n_clients
            ft = vector(self.nvar, per_rank_var, section, DOUBLE)
            self._filetypes[rank] = ft
        return ft

    def displacement(self, rank: int, rep: int) -> int:
        return rank * self.nblocks * self.block_file_bytes

    def fill_buffer(self, rank: int) -> np.ndarray:
        """Full in-memory block set, guard cells included."""
        n = self.nblocks * self.block_mem_bytes
        rng = np.random.default_rng(77 + rank)
        return rng.integers(0, 256, n, dtype=np.uint8)

    @classmethod
    def paper(cls, n_clients: int = 8) -> "FlashWorkload":
        return cls(n_clients=n_clients)

    @classmethod
    def reduced(cls, n_clients: int = 2) -> "FlashWorkload":
        return cls(n_clients=n_clients, nblocks=4, nxb=4, nguard=2, nvar=3)


# ----------------------------------------------------------------------
# multi-tenant scale sweep (repro-bench scale)
# ----------------------------------------------------------------------
@dataclass
class ScaleWorkload(Workload):
    """Strip-aligned writes for the multi-tenant scale sweep.

    Each rank writes ``blocks`` strips of exactly ``block_bytes`` each,
    where ``block_bytes`` equals the cluster strip size.  Block *i* of
    rank *r* lands on strip index ``r + i * n_clients``, so with
    ``n_clients`` a multiple of the server count every request of rank
    *r* is served by server ``r % nservers`` — no cross-server fan-out,
    which makes per-server admission contention (the thing the sweep
    measures) the only queueing in the run.

    Ranks are partitioned into ``n_tenants`` *contiguous* blocks
    (``tenant_of(r) = r * n_tenants // n_clients``), so every server
    sees clients of every tenant.  When ``tenant_reps`` is set, a
    tenant's ranks run that many repetitions — offered demand scales
    with admission weight, so under weighted-fair service all tenants
    finish together and per-tenant throughput is proportional to
    weight.
    """

    n_clients: int = 4
    block_bytes: int = 65536  #: must equal PVFSConfig.strip_size
    blocks: int = 4
    n_tenants: int = 1
    #: per-tenant repetition counts (len == n_tenants); ``None`` means
    #: ``repetitions`` for every rank
    tenant_reps: Optional[tuple[int, ...]] = None
    repetitions: int = 1
    #: one rank per node: response transfers must queue at the *server*
    #: (where weighted-fair admission arbitrates), not at shared client
    #: NICs, or tenant queues drain and fairness cannot be observed
    procs_per_node: int = 1
    is_write: bool = True
    name: str = "scale"
    path: str = "/scale"

    def __post_init__(self):
        if self.n_clients < 1:
            raise ValueError("need at least one client")
        if self.n_tenants < 1 or self.n_tenants > self.n_clients:
            raise ValueError("need 1 <= n_tenants <= n_clients")
        if self.tenant_reps is not None and len(self.tenant_reps) != self.n_tenants:
            raise ValueError("tenant_reps must have one entry per tenant")
        self._memtype: Optional[Datatype] = None
        self._filetype: Optional[Datatype] = None

    # -- tenancy --------------------------------------------------------
    def tenant_of(self, rank: int) -> int:
        """Contiguous rank blocks per tenant (servers see all tenants)."""
        return rank * self.n_tenants // self.n_clients

    def tenant_ranks(self, tenant: int) -> list[int]:
        return [
            r for r in range(self.n_clients) if self.tenant_of(r) == tenant
        ]

    def repetitions_for(self, rank: int) -> int:
        if self.tenant_reps is None:
            return self.repetitions
        return self.tenant_reps[self.tenant_of(rank)]

    # -- datatypes ------------------------------------------------------
    def filetype(self, rank: int) -> Datatype:
        if self._filetype is None:
            self._filetype = vector(
                self.blocks,
                self.block_bytes,
                self.n_clients * self.block_bytes,
                BYTE,
            )
        return self._filetype

    def memtype(self, rank: int) -> Datatype:
        if self._memtype is None:
            self._memtype = contiguous(self.blocks * self.block_bytes, BYTE)
        return self._memtype

    def displacement(self, rank: int, rep: int) -> int:
        frame = self.blocks * self.n_clients * self.block_bytes
        return rank * self.block_bytes + rep * frame

    # -- sizes (mean across ranks; tenants may differ) ------------------
    def total_bytes(self) -> int:
        per_rep = self.bytes_per_client_per_rep()
        return per_rep * sum(
            self.repetitions_for(r) for r in range(self.n_clients)
        )

    def bytes_per_client(self) -> int:
        return self.total_bytes() // self.n_clients
