"""The paper's three evaluation workloads (§4.2–§4.4).

Each workload builds, per rank, the MPI datatypes whose file/memory
shapes define the benchmark.  Paper-scale constructors reproduce the
exact geometry of §4; every workload also offers ``reduced()`` presets
small enough to move real bytes in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..datatypes import (
    BYTE,
    DOUBLE,
    INT,
    Datatype,
    contiguous,
    hvector,
    struct,
    subarray,
    vector,
)

__all__ = [
    "Workload",
    "TileWorkload",
    "Block3DWorkload",
    "FlashWorkload",
]


class Workload:
    """Base class: the geometry of one benchmark run.

    A workload is read or written by ``n_clients`` ranks; each rank
    accesses the file through ``filetype(rank)`` tiled at
    ``displacement(rank, rep)`` with memory layout ``memtype(rank)``,
    repeated ``repetitions`` times (the tile reader's frames).
    """

    name: str = "workload"
    n_clients: int = 1
    is_write: bool = False
    repetitions: int = 1
    procs_per_node: int = 2
    path: str = "/data"

    # -- per-rank datatypes -------------------------------------------
    def filetype(self, rank: int) -> Datatype:
        raise NotImplementedError

    def memtype(self, rank: int) -> Datatype:
        raise NotImplementedError

    def etype(self) -> Datatype:
        return BYTE

    def displacement(self, rank: int, rep: int) -> int:
        return 0

    def mem_count(self, rank: int) -> int:
        return 1

    # -- sizes ---------------------------------------------------------
    def bytes_per_client_per_rep(self) -> int:
        return self.memtype(0).size * self.mem_count(0)

    def bytes_per_client(self) -> int:
        return self.bytes_per_client_per_rep() * self.repetitions

    def total_bytes(self) -> int:
        return self.bytes_per_client() * self.n_clients

    # -- verification (real-data runs) ----------------------------------
    def expected_file_bytes(self) -> Optional[np.ndarray]:
        """Full expected file contents for write workloads (tests)."""
        return None

    def fill_buffer(self, rank: int) -> np.ndarray:
        """Deterministic per-rank payload for real-data runs."""
        n = self.bytes_per_client_per_rep()
        rng = np.random.default_rng(1234 + rank)
        return rng.integers(0, 256, n, dtype=np.uint8)


# ----------------------------------------------------------------------
# §4.2 tile reader
# ----------------------------------------------------------------------
@dataclass
class TileWorkload(Workload):
    """Tile reader benchmark (paper §4.2, Figure 8, Table 1).

    A ``tile_rows × tile_cols`` display wall; each compute node reads
    its tile (with the configured overlaps) of each frame into a
    contiguous buffer.  Defaults are the paper's exact parameters:
    1024×768 tiles, 24-bit colour, 270/128-pixel overlaps, 10.2 MB
    frames, 100 frames.
    """

    tile_rows: int = 2
    tile_cols: int = 3
    tile_w: int = 1024
    tile_h: int = 768
    bytes_per_pixel: int = 3
    overlap_x: int = 270
    overlap_y: int = 128
    repetitions: int = 100
    #: tile reader runs one process per node (§4.1)
    procs_per_node: int = 1
    name: str = "tile"
    path: str = "/frames"
    is_write: bool = False

    def __post_init__(self):
        self.n_clients = self.tile_rows * self.tile_cols
        self._memtypes: dict[int, Datatype] = {}
        self._filetypes: dict[int, Datatype] = {}

    # -- geometry -------------------------------------------------------
    @property
    def display_w(self) -> int:
        return self.tile_cols * self.tile_w - (self.tile_cols - 1) * self.overlap_x

    @property
    def display_h(self) -> int:
        return self.tile_rows * self.tile_h - (self.tile_rows - 1) * self.overlap_y

    @property
    def row_bytes(self) -> int:
        return self.display_w * self.bytes_per_pixel

    @property
    def frame_bytes(self) -> int:
        return self.display_h * self.row_bytes

    def tile_origin(self, rank: int) -> tuple[int, int]:
        r, c = divmod(rank, self.tile_cols)
        return (
            r * (self.tile_h - self.overlap_y),
            c * (self.tile_w - self.overlap_x),
        )

    # -- datatypes ------------------------------------------------------
    def filetype(self, rank: int) -> Datatype:
        ft = self._filetypes.get(rank)
        if ft is None:
            y0, x0 = self.tile_origin(rank)
            ft = subarray(
                [self.display_h, self.row_bytes],
                [self.tile_h, self.tile_w * self.bytes_per_pixel],
                [y0, x0 * self.bytes_per_pixel],
                BYTE,
            )
            self._filetypes[rank] = ft
        return ft

    def memtype(self, rank: int) -> Datatype:
        mt = self._memtypes.get(0)
        if mt is None:
            mt = contiguous(
                self.tile_h * self.tile_w * self.bytes_per_pixel, BYTE
            )
            self._memtypes[0] = mt
        return mt

    def displacement(self, rank: int, rep: int) -> int:
        return rep * self.frame_bytes

    @classmethod
    def paper(cls, frames: int = 100) -> "TileWorkload":
        return cls(repetitions=frames)

    @classmethod
    def reduced(cls, frames: int = 2) -> "TileWorkload":
        return cls(
            tile_w=32,
            tile_h=24,
            overlap_x=8,
            overlap_y=4,
            repetitions=frames,
        )


# ----------------------------------------------------------------------
# §4.3 ROMIO three-dimensional block test (coll_perf)
# ----------------------------------------------------------------------
@dataclass
class Block3DWorkload(Workload):
    """3-D block-distributed array access (paper §4.3, Fig. 9/10, Table 2).

    A ``grid³`` array of ints, block-decomposed over ``m³`` processes;
    each process accesses one cubic block.  Memory is contiguous.
    Paper scale: grid=600, m ∈ {2, 3, 4} (8/27/64 clients).
    """

    grid: int = 600
    clients_per_dim: int = 2
    is_write: bool = False
    name: str = "block3d"
    path: str = "/cube"

    def __post_init__(self):
        if self.grid % self.clients_per_dim:
            raise ValueError(
                f"grid {self.grid} not divisible by {self.clients_per_dim}"
            )
        self.n_clients = self.clients_per_dim**3
        self._filetypes: dict[int, Datatype] = {}
        self._memtype: Optional[Datatype] = None

    @property
    def block(self) -> int:
        return self.grid // self.clients_per_dim

    def block_origin(self, rank: int) -> tuple[int, int, int]:
        m = self.clients_per_dim
        i, rest = divmod(rank, m * m)
        j, k = divmod(rest, m)
        return i * self.block, j * self.block, k * self.block

    def filetype(self, rank: int) -> Datatype:
        ft = self._filetypes.get(rank)
        if ft is None:
            z0, y0, x0 = self.block_origin(rank)
            b = self.block
            g = self.grid
            ft = subarray([g, g, g], [b, b, b], [z0, y0, x0], INT)
            self._filetypes[rank] = ft
        return ft

    def memtype(self, rank: int) -> Datatype:
        if self._memtype is None:
            self._memtype = contiguous(self.block**3, INT)
        return self._memtype

    @classmethod
    def paper(cls, clients_per_dim: int = 2, is_write: bool = False):
        return cls(grid=600, clients_per_dim=clients_per_dim, is_write=is_write)

    @classmethod
    def reduced(cls, clients_per_dim: int = 2, is_write: bool = False):
        return cls(grid=24, clients_per_dim=clients_per_dim, is_write=is_write)


# ----------------------------------------------------------------------
# §4.4 FLASH I/O simulation
# ----------------------------------------------------------------------
@dataclass
class FlashWorkload(Workload):
    """FLASH checkpoint I/O (paper §4.4, Fig. 11/12, Table 3).

    In memory each rank holds ``nblocks`` AMR blocks; a block is an
    ``(nxb+2g)³`` array of cells *including guard cells*, each cell an
    array-of-struct of ``nvar`` 8-byte variables.  The checkpoint
    writes only interior cells, reorganized variable-major in the file:
    all of variable 0 (rank 0's blocks, rank 1's blocks, ...), then
    variable 1, and so on.  Noncontiguous in memory *and* file.

    Paper scale: 80 blocks/rank, 8³ interior, 4 guard cells, 24
    variables → 7.5 MiB per rank.
    """

    n_clients: int = 8
    nblocks: int = 80
    nxb: int = 8
    nguard: int = 4
    nvar: int = 24
    elem: int = 8
    is_write: bool = True
    name: str = "flash"
    path: str = "/checkpoint"

    def __post_init__(self):
        self._memtype: Optional[Datatype] = None
        self._filetypes: dict[int, Datatype] = {}

    # -- geometry -------------------------------------------------------
    @property
    def cells_interior(self) -> int:
        return self.nxb**3

    @property
    def side_full(self) -> int:
        return self.nxb + 2 * self.nguard

    @property
    def block_mem_bytes(self) -> int:
        return self.side_full**3 * self.nvar * self.elem

    @property
    def block_file_bytes(self) -> int:
        """One block's data for one variable in file."""
        return self.cells_interior * self.elem

    def bytes_per_client_per_rep(self) -> int:
        return self.nblocks * self.cells_interior * self.nvar * self.elem

    # -- datatypes ------------------------------------------------------
    def memtype(self, rank: int) -> Datatype:
        """AoS → stream in file order: var-major, block, z, y, x."""
        if self._memtype is not None:
            return self._memtype
        s = self.side_full
        g = self.nguard
        n = self.nxb
        cell_stride = self.nvar * self.elem
        # one variable's interior of one block: nested strided doubles
        tx = hvector(n, 1, cell_stride, DOUBLE)
        ty = hvector(n, 1, s * cell_stride, tx)
        tz = hvector(n, 1, s * s * cell_stride, ty)
        interior0 = ((g * s + g) * s + g) * cell_stride
        fields = []
        disps = []
        for v in range(self.nvar):
            for b in range(self.nblocks):
                fields.append(tz)
                disps.append(b * self.block_mem_bytes + interior0 + v * self.elem)
        self._memtype = struct([1] * len(fields), disps, fields)
        return self._memtype

    def filetype(self, rank: int) -> Datatype:
        """Variable-major file layout; this rank's slot in each section."""
        ft = self._filetypes.get(rank)
        if ft is None:
            per_rank_var = self.nblocks * self.cells_interior  # elements
            section = per_rank_var * self.n_clients
            ft = vector(self.nvar, per_rank_var, section, DOUBLE)
            self._filetypes[rank] = ft
        return ft

    def displacement(self, rank: int, rep: int) -> int:
        return rank * self.nblocks * self.block_file_bytes

    def fill_buffer(self, rank: int) -> np.ndarray:
        """Full in-memory block set, guard cells included."""
        n = self.nblocks * self.block_mem_bytes
        rng = np.random.default_rng(77 + rank)
        return rng.integers(0, 256, n, dtype=np.uint8)

    @classmethod
    def paper(cls, n_clients: int = 8) -> "FlashWorkload":
        return cls(n_clients=n_clients)

    @classmethod
    def reduced(cls, n_clients: int = 2) -> "FlashWorkload":
        return cls(n_clients=n_clients, nblocks=4, nxb=4, nguard=2, nvar=3)
