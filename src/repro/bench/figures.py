"""Timed figure reproductions (paper Figures 8, 10 and 12).

Each function returns a :class:`FigureSeries` holding aggregate
bandwidth (MiB/s of desired data) per method (and per client count for
the sweeps).  Runs are paper-scale, phantom-payload simulations; see
EXPERIMENTS.md for the shape claims versus the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from .characteristics import METHOD_ORDER
from .runner import run_workload
from .workloads import Block3DWorkload, FlashWorkload, TileWorkload

__all__ = ["FigureSeries", "fig8", "fig10", "fig12"]


@dataclass
class FigureSeries:
    """One figure's data: {method: {x: bandwidth}} plus metadata."""

    name: str
    xlabel: str
    series: dict[str, dict[int, Optional[float]]] = field(default_factory=dict)

    def add(self, method: str, x: int, bandwidth: Optional[float]) -> None:
        self.series.setdefault(method, {})[x] = bandwidth

    def xs(self) -> list[int]:
        out: set[int] = set()
        for pts in self.series.values():
            out.update(pts)
        return sorted(out)


def fig8(
    frames: int = 10, methods: Sequence[str] = METHOD_ORDER
) -> FigureSeries:
    """Tile reader bandwidth per method (Figure 8, lower half)."""
    fig = FigureSeries("fig8-tile-read", "clients")
    for method in methods:
        r = run_workload(TileWorkload.paper(frames=frames), method, phantom=True)
        fig.add(method, r.n_clients, r.bandwidth_mbps if r.supported else None)
    return fig


def fig10(
    client_dims: Sequence[int] = (2, 3, 4),
    methods: Sequence[str] = METHOD_ORDER,
    grid: int = 600,
) -> tuple[FigureSeries, FigureSeries]:
    """3-D block read and write bandwidth vs clients (Figure 10)."""
    read_fig = FigureSeries("fig10-3dblock-read", "clients")
    write_fig = FigureSeries("fig10-3dblock-write", "clients")
    for cpd in client_dims:
        for method in methods:
            for fig, is_write in ((read_fig, False), (write_fig, True)):
                wl = Block3DWorkload(
                    grid=grid, clients_per_dim=cpd, is_write=is_write
                )
                r = run_workload(wl, method, phantom=True)
                fig.add(
                    method,
                    wl.n_clients,
                    r.bandwidth_mbps if r.supported else None,
                )
    return read_fig, write_fig


def fig12(
    client_counts: Sequence[int] = (2, 4, 8, 16, 32, 48, 64, 96, 128),
    methods: Sequence[str] = METHOD_ORDER,
    posix_limit: int = 32,
) -> FigureSeries:
    """FLASH write bandwidth vs clients (Figure 12).

    POSIX needs ~10⁶ operations per client; above ``posix_limit``
    clients its points are skipped (its line is indistinguishable from
    zero there anyway — the paper calls it "nearly unusable").
    """
    fig = FigureSeries("fig12-flash-write", "clients")
    for n in client_counts:
        for method in methods:
            if method == "posix" and n > posix_limit:
                continue
            r = run_workload(FlashWorkload.paper(n), method, phantom=True)
            fig.add(method, n, r.bandwidth_mbps if r.supported else None)
    return fig
