"""``repro-bench collective``: the sixth-method benchmark + CI gate.

Two modes:

* ``--smoke`` — the CI gate: a reduced FLASH sweep that must show
  collective datatype I/O beating list I/O at the top client count,
  replaying deterministically (bit-equal elapsed), and issuing a
  data-path request count that stays roughly constant when the rank
  count doubles (the O(servers·rounds) contract);
* full — collects ``BENCH_collective.json``: the paper-scale top cells
  of Figures 10 and 12 across all six methods plus a FLASH dedup
  showcase (fingerprint-merged views, requests saved vs the
  independent path), and asserts the acceptance bar — the sixth curve
  dominates the five paper methods at the highest client count.

Every recorded figure is simulated (bandwidth, elapsed, counters), so
the document diffs deterministically under ``repro-bench compare``.
"""

from __future__ import annotations

import json
import pathlib
from typing import Optional

from .characteristics import METHOD_ORDER
from .runner import run_workload
from .workloads import Block3DWorkload, FlashWorkload

__all__ = [
    "collect_collective_bench",
    "collect_smoke",
    "smoke_check",
    "render_collective",
    "write_collective_bench",
    "DEFAULT_SPEC",
    "SMOKE_SPEC",
]

#: Paper-scale top cells: 64-client 3-D block (Figure 10) and
#: 128-client FLASH (Figure 12), plus the dedup-showcase client count.
DEFAULT_SPEC = {
    "grid": 600,
    "clients_per_dim": 4,
    "fig12_clients": 128,
    "showcase_clients": 64,
}

#: Reduced spec for tests (same shape, small scales).
QUICK_SPEC = {
    "grid": 120,
    "clients_per_dim": 2,
    "fig12_clients": 8,
    "showcase_clients": 4,
}

#: The CI smoke sweep: FLASH at two client counts, the three methods
#: whose ordering the gate asserts.
SMOKE_SPEC = {
    "clients": (8, 16),
    "methods": ("list_io", "datatype_io", "collective_dtype"),
}


def _mbps(r) -> Optional[float]:
    return r.bandwidth_mbps if r.supported else None


def _data_requests(r) -> int:
    return sum(s.requests for s in r.servers)


# ----------------------------------------------------------------------
# full benchmark document
# ----------------------------------------------------------------------
def collect_collective_bench(spec: Optional[dict] = None) -> dict:
    """Run the top-cell sweeps and assemble the benchmark document."""
    spec = dict(DEFAULT_SPEC if spec is None else spec)
    figures: dict = {}

    block_clients = spec["clients_per_dim"] ** 3
    for name, is_write in (("fig10_read", False), ("fig10_write", True)):
        cell: dict = {"clients": block_clients, "mbps": {}}
        for method in METHOD_ORDER:
            wl = Block3DWorkload(
                grid=spec["grid"],
                clients_per_dim=spec["clients_per_dim"],
                is_write=is_write,
            )
            cell["mbps"][method] = _mbps(run_workload(wl, method, phantom=True))
        figures[name] = cell

    n12 = spec["fig12_clients"]
    cell = {"clients": n12, "mbps": {}}
    for method in METHOD_ORDER:
        if method == "posix" and n12 > 32:
            cell["mbps"][method] = None  # paper: "nearly unusable"
            continue
        r = run_workload(FlashWorkload.paper(n12), method, phantom=True)
        cell["mbps"][method] = _mbps(r)
    figures["fig12"] = cell

    # FLASH dedup showcase: all ranks share one view fingerprint, so
    # the aggregators collapse the whole communicator to a single view
    # and O(servers·rounds) requests
    from ..pvfs import PVFSConfig

    ns = spec["showcase_clients"]
    coll = run_workload(
        FlashWorkload.paper(ns),
        "collective_dtype",
        phantom=True,
        config=PVFSConfig(metrics=True),
    )
    indep = run_workload(FlashWorkload.paper(ns), "datatype_io", phantom=True)

    def counter(result, name):
        fam = result.metrics.registry.families.get(name)
        if fam is None:
            return 0
        return int(sum(inst.value for _, inst in fam.labeled()))

    views_merged = counter(coll, "repro_collective_views_merged")
    showcase = {
        "clients": ns,
        "views_merged": views_merged,
        "dedup_ratio": views_merged / ns,
        "requests_saved": counter(coll, "repro_collective_requests_saved"),
        "collective_requests": _data_requests(coll),
        "independent_requests": _data_requests(indep),
        "collective_mbps": coll.bandwidth_mbps,
        "independent_mbps": indep.bandwidth_mbps,
    }

    dominance = {}
    for name, cell in figures.items():
        ours = cell["mbps"]["collective_dtype"]
        others = [
            v
            for m, v in cell["mbps"].items()
            if m != "collective_dtype" and v is not None
        ]
        dominance[name] = ours is not None and all(ours > v for v in others)

    return {
        "schema": 1,
        "spec": spec,
        "figures": figures,
        "flash_showcase": showcase,
        "dominance": dominance,
    }


def dominance_problems(doc: dict) -> list[str]:
    """The acceptance bar: the sixth curve wins every top cell."""
    problems = []
    for name, won in doc.get("dominance", {}).items():
        if not won:
            cell = doc["figures"][name]
            problems.append(
                f"{name}@{cell['clients']}: collective_dtype "
                f"({cell['mbps']['collective_dtype']}) does not dominate "
                f"{cell['mbps']}"
            )
    return problems


def write_collective_bench(
    out: Optional[pathlib.Path], spec: Optional[dict] = None
) -> tuple[pathlib.Path, dict]:
    doc = collect_collective_bench(spec)
    out = pathlib.Path(out) if out is not None else pathlib.Path("results")
    out.mkdir(parents=True, exist_ok=True)
    path = out / "BENCH_collective.json"
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path, doc


# ----------------------------------------------------------------------
# CI smoke gate
# ----------------------------------------------------------------------
def collect_smoke(spec: Optional[dict] = None) -> dict:
    """Reduced FLASH sweep + a bit-equal replay of the top cell."""
    spec = dict(SMOKE_SPEC if spec is None else spec)
    cells: dict = {}
    for n in spec["clients"]:
        cells[n] = {}
        for method in spec["methods"]:
            r = run_workload(FlashWorkload.paper(n), method, phantom=True)
            cells[n][method] = {
                "mbps": _mbps(r),
                "elapsed_s": r.elapsed,
                "requests": _data_requests(r),
            }
    top = max(spec["clients"])
    replay = run_workload(
        FlashWorkload.paper(top), "collective_dtype", phantom=True
    )
    return {
        "spec": spec,
        "cells": cells,
        "replay": {"mbps": _mbps(replay), "elapsed_s": replay.elapsed},
    }


def smoke_check(doc: dict) -> list[str]:
    """The three smoke assertions; empty list == gate passes."""
    problems = []
    counts = sorted(doc["cells"])
    top = counts[-1]
    cell = doc["cells"][top]
    ours = cell["collective_dtype"]

    if not (ours["mbps"] and ours["mbps"] > (cell["list_io"]["mbps"] or 0)):
        problems.append(
            f"collective_dtype {ours['mbps']} MiB/s does not beat list_io "
            f"{cell['list_io']['mbps']} at {top} clients"
        )
    if doc["replay"]["elapsed_s"] != ours["elapsed_s"]:
        problems.append(
            f"nondeterministic replay: {doc['replay']['elapsed_s']!r} != "
            f"{ours['elapsed_s']!r}"
        )
    if len(counts) >= 2:
        lo = counts[0]
        lo_reqs = doc["cells"][lo]["collective_dtype"]["requests"]
        ratio = ours["requests"] / max(lo_reqs, 1)
        growth = top / lo
        # O(servers·rounds): doubling the ranks must not come close to
        # doubling the aggregated request count (list I/O scales 1:1)
        if ratio > (1 + growth) / 2:
            problems.append(
                f"aggregated requests grew {ratio:.2f}x when ranks grew "
                f"{growth:.0f}x ({lo_reqs} -> {ours['requests']})"
            )
    return problems


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def render_collective(doc: dict) -> str:
    lines = ["Collective datatype I/O: paper-scale top cells (MiB/s)"]
    for name, cell in doc["figures"].items():
        won = "dominates" if doc["dominance"][name] else "DOES NOT dominate"
        lines.append(f"\n{name} @ {cell['clients']} clients ({won}):")
        for method in METHOD_ORDER:
            v = cell["mbps"].get(method)
            lines.append(
                f"  {method:>16s}  " + (f"{v:8.3f}" if v else "     n/a")
            )
    s = doc["flash_showcase"]
    lines.append(
        f"\nFLASH showcase @ {s['clients']} clients: "
        f"{s['views_merged']} views merged "
        f"(dedup ratio {s['dedup_ratio']:.2f}), "
        f"{s['requests_saved']} requests saved; "
        f"{s['collective_requests']} aggregated data requests vs "
        f"{s['independent_requests']} independent; "
        f"{s['collective_mbps']:.1f} vs {s['independent_mbps']:.1f} MiB/s"
    )
    return "\n".join(lines)
