"""Repeated-access benchmark for the server-side expansion cache.

The paper's workloads (tile reader, ROMIO 3-D block, FLASH) re-send the
*same* file view every iteration — only the displacement or window
moves.  This benchmark reproduces that access shape directly against
the PVFS client API and measures what the expansion cache buys: each of
``n_clients`` clients issues ``iterations`` datatype-I/O reads of a 3-D
block subarray view, twice over —

* **shifted** — same window, displacement stepped by whole stripe
  periods (``P = strip_size * n_servers``) per operation; every request
  after the first normalizes to the same cache entry (exact path);
* **windowed** — same view, per-operation windows sliding over a tiled
  file; requests assemble from one cached *period* entry.

Each phase runs with the cache on and off (client-side conversion
caching enabled in both, so only server-side expansion differs) and
reports wall-clock speedup plus the cache hit rate read back from the
server pipeline stats — the two acceptance numbers in
``BENCH_dtype_cache.json``.
"""

from __future__ import annotations

import json
import pathlib
import time
from dataclasses import dataclass

from ..datatypes import INT, subarray
from ..dataloops import build_dataloop
from ..pvfs import PVFS, PVFSConfig
from ..simulation import Environment

__all__ = ["CachePhase", "run_phase", "collect", "write_dtype_cache_bench"]

SCHEMA = 1


@dataclass(frozen=True)
class CachePhase:
    """One repeated-access pattern at one scale."""

    name: str
    n_clients: int
    iterations: int
    dim: int  #: 3-D array edge (elements); selection is the inner half
    tile_count: int  #: filetype instances per request window
    n_servers: int = 4
    strip_size: int = 65536
    windowed: bool = False  #: slide windows instead of displacements

    @classmethod
    def full(cls) -> list["CachePhase"]:
        return [
            cls("shifted", n_clients=4, iterations=12, dim=64, tile_count=32),
            cls(
                "windowed",
                n_clients=4,
                iterations=12,
                dim=64,
                tile_count=64,
                windowed=True,
            ),
        ]

    @classmethod
    def quick(cls) -> list["CachePhase"]:
        return [
            cls("shifted", n_clients=2, iterations=4, dim=32, tile_count=6),
            cls(
                "windowed",
                n_clients=2,
                iterations=4,
                dim=32,
                tile_count=16,
                windowed=True,
            ),
        ]


def _make_loop(phase: CachePhase):
    d = phase.dim
    h, q = d // 2, d // 4
    # inner-half block in every dimension (paper §4.3 shape): rows do
    # not coalesce, so expansion really costs (d/2)^2 regions/instance
    t = subarray([d, d, d], [h, h, h], [q, q, q], INT)
    return build_dataloop(t)


def run_phase(phase: CachePhase, cache_on: bool) -> dict:
    """Run one phase once; returns wall time and server cache stats."""
    env = Environment()
    cfg = PVFSConfig(
        n_servers=phase.n_servers,
        strip_size=phase.strip_size,
        datatype_cache=True,
        expand_cache=cache_on,
    )
    fs = PVFS(env, config=cfg)
    loop = _make_loop(phase)
    period = phase.strip_size * phase.n_servers
    ds = loop.data_size

    def client_main(client, rank):
        fh = yield from client.open("/bench")
        for it in range(phase.iterations):
            if phase.windowed:
                # slide a many-instance window across the tiled view;
                # whole periods inside it come from one cache entry
                first = ((rank + it) % 4) * ds
                last = first + (phase.tile_count - 4) * ds
                yield from client.read_dtype(
                    fh, loop, first=first, last=last, phantom=True
                )
            else:
                # same window, displacement stepped by stripe periods
                disp = (rank * phase.iterations + it) * period
                yield from client.read_dtype(
                    fh,
                    loop,
                    displacement=disp,
                    last=phase.tile_count * ds,
                    phantom=True,
                )

    for rank in range(phase.n_clients):
        client = fs.client(f"cn{rank}")
        env.process(client_main(client, rank), name=f"bench{rank}")

    t0 = time.perf_counter()
    env.run()
    wall = time.perf_counter() - t0

    stages = fs.pipeline_summary().total
    hits, misses = stages.cache_hits, stages.cache_misses
    lookups = hits + misses
    return {
        "wall_s": wall,
        "sim_s": env.now,
        "cache_hits": hits,
        "cache_misses": misses,
        "cache_evictions": stages.cache_evictions,
        "cache_bytes_held": stages.cache_bytes_held,
        "hit_rate": hits / lookups if lookups else 0.0,
        "regions_scanned": fs.total_server_stats()["regions_scanned"],
    }


def collect(phases: list[CachePhase] | None = None, repeats: int = 3) -> dict:
    """Run every phase cached and uncached; best-of-``repeats`` walls."""
    phases = phases if phases is not None else CachePhase.full()
    out: dict = {
        "schema": SCHEMA,
        "note": (
            "wall-clock server-side expansion cost, cache on vs off; "
            "phantom datatype-I/O reads, client conversion cache on in "
            "both runs"
        ),
        "phases": {},
    }
    for phase in phases:
        runs: dict[bool, dict] = {}
        for cache_on in (False, True):
            best = None
            for _ in range(repeats):
                r = run_phase(phase, cache_on)
                if best is None or r["wall_s"] < best["wall_s"]:
                    best = r
            runs[cache_on] = best
        on, off = runs[True], runs[False]
        out["phases"][phase.name] = {
            "n_clients": phase.n_clients,
            "iterations": phase.iterations,
            "requests": phase.n_clients * phase.iterations,
            "cached": on,
            "uncached": off,
            "speedup": off["wall_s"] / on["wall_s"] if on["wall_s"] else 0.0,
            "sim_speedup": off["sim_s"] / on["sim_s"] if on["sim_s"] else 0.0,
            "hit_rate": on["hit_rate"],
            "scan_reduction": (
                1.0 - on["regions_scanned"] / off["regions_scanned"]
                if off["regions_scanned"]
                else 0.0
            ),
        }
    walls_off = sum(p["uncached"]["wall_s"] for p in out["phases"].values())
    walls_on = sum(p["cached"]["wall_s"] for p in out["phases"].values())
    out["speedup"] = walls_off / walls_on if walls_on else 0.0
    out["hit_rate"] = min(p["hit_rate"] for p in out["phases"].values())
    return out


def write_dtype_cache_bench(
    out_dir: pathlib.Path | None, quick: bool = False
) -> tuple[pathlib.Path, dict]:
    phases = CachePhase.quick() if quick else CachePhase.full()
    data = collect(phases, repeats=2 if quick else 3)
    out_dir = pathlib.Path(out_dir) if out_dir else pathlib.Path("results")
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / "BENCH_dtype_cache.json"
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return path, data
