"""Machine-readable benchmark baseline (``BENCH_pipeline.json``).

``repro-bench json`` (or ``python -m repro.bench json``) runs the three
paper benchmarks at reduced scale — the fig8 tile reader, the fig10
3-D block read/write and the fig12 FLASH write — across every access
method and emits one JSON document with per-method aggregate MB/s and
the server pipeline's per-stage second breakdown.  Subsequent PRs diff
against this file to prove a hot path got faster (or at least did not
regress) without re-deriving paper-scale runs.
"""

from __future__ import annotations

import json
import pathlib
from typing import Optional, Sequence

from ..pvfs import PVFSConfig
from ..simulation.costs import CostModel
from ..trace.critical import critical_path
from .characteristics import METHOD_ORDER
from .runner import run_workload
from .workloads import Block3DWorkload, FlashWorkload, TileWorkload

__all__ = ["collect_pipeline_baseline", "write_pipeline_baseline"]

#: Schema version of the emitted document; bump on layout changes.
SCHEMA = 1


def _bench_cases():
    """(name, workload) pairs at reduced scale, one per paper figure."""
    return [
        ("fig8_tile_read", TileWorkload.reduced(frames=2)),
        ("fig10_block3d_read", Block3DWorkload.reduced(2, is_write=False)),
        ("fig10_block3d_write", Block3DWorkload.reduced(2, is_write=True)),
        ("fig12_flash_write", FlashWorkload.reduced(2)),
    ]


def collect_pipeline_baseline(
    methods: Sequence[str] = METHOD_ORDER,
    *,
    trace: bool = False,
) -> dict:
    """Run the reduced benchmark matrix and collect results as a dict.

    Every run executes under ``PVFSConfig(trace=True)`` so each entry
    carries the coarse ``"bottleneck"`` verdict
    (:meth:`~repro.simulation.stats.NetworkSummary.bottleneck`) and the
    exact ``"critical_blame"`` shares (:func:`repro.trace.critical
    .critical_path`) — the fields ``repro-bench compare`` uses to name
    the resource behind a drift.  Timings are bit-identical to an
    untraced run: the tracer observes the simulated clock but never
    advances it (a gated invariant).  With ``trace=True`` the entries
    additionally carry the full ``"trace"`` block — the aggregated span
    summary (span/trace counts, per-category seconds, per-server-stage
    seconds and per-family fault span counts).
    """
    costs = CostModel()
    doc: dict = {"schema": SCHEMA, "scale": "reduced", "benchmarks": {}}
    for name, wl in _bench_cases():
        per_method: dict = {}
        for method in methods:
            config = PVFSConfig(trace=True)
            r = run_workload(
                wl, method, phantom=True, costs=costs, config=config
            )
            if not r.supported:
                per_method[method] = {"supported": False, "note": r.note}
                continue
            blame = critical_path(
                r.tracer, nic_bandwidth=costs.nic_bandwidth, config=config
            )
            per_method[method] = {
                "supported": True,
                "mbps": round(r.bandwidth_mbps, 3),
                "elapsed_s": r.elapsed,
                "n_clients": r.n_clients,
                "io_ops_per_client": r.io_ops,
                "server_stages": r.pipeline.total.as_dict(),
                "bottleneck": r.network.bottleneck(r.pipeline.total),
                "critical_blame": {
                    res: round(share, 6)
                    for res, share in blame.shares().items()
                },
            }
            if trace and r.trace_summary is not None:
                s = r.trace_summary
                per_method[method]["trace"] = {
                    "spans": s["spans"],
                    "traces": s["traces"],
                    "by_category_s": s["by_category_s"],
                    "server_stages_s": s["server_stages_s"],
                    "fault_spans": s["fault_spans"],
                }
        doc["benchmarks"][name] = per_method
    return doc


def write_pipeline_baseline(
    out_dir: Optional[pathlib.Path] = None,
    methods: Sequence[str] = METHOD_ORDER,
    *,
    trace: bool = False,
) -> pathlib.Path:
    """Write ``BENCH_pipeline.json`` into ``out_dir`` (default: cwd)."""
    doc = collect_pipeline_baseline(methods, trace=trace)
    out_dir = out_dir or pathlib.Path(".")
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / "BENCH_pipeline.json"
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path
