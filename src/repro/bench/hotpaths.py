"""``repro-bench hotpaths``: vectorized core vs scalar reference.

Every numpy hot path keeps its original per-block/per-region Python
implementation behind the ``REPRO_SCALAR_FALLBACK`` switch
(:mod:`repro.vectorize`).  This benchmark runs each path twice — scalar
reference, then vectorized — on the workload shapes of
``benchmarks/bench_dataloops.py`` and ``benchmarks/bench_regions.py``,
and reports the wall-clock speedup per path plus the aggregate.

Two invariants are checked on every run and recorded in
``BENCH_hotpaths.json``:

* the *outputs* (region counts/bytes of the expanded streams and
  flattenings, intersection results) are identical across modes;
* the end-to-end paths' *simulated* figures (elapsed, io_ops, accessed
  and resent bytes) are bit-identical — vectorization may only change
  wall-clock, never charged costs.

Wall-clock fields are machine-dependent; ``repro-bench compare`` gates
only the deterministic fields of this document.
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Callable

import numpy as np

from ..vectorize import scalar_mode

__all__ = [
    "PATHS",
    "collect",
    "write_hotpaths_bench",
    "render_hotpaths",
]

SCHEMA = 1

_I64 = np.int64

#: deterministic fields of end-to-end runs that must be bit-identical
_SIM_KEYS = ("sim_s", "io_ops", "accessed_bytes", "resent_bytes")


def _scale(quick: bool, full: int, small: int) -> int:
    return small if quick else full


# ----------------------------------------------------------------------
# micro paths: dataloop streaming
# ----------------------------------------------------------------------
def _sparse_child():
    """A 2-run child loop; defeats dense-block shortcuts."""
    from ..dataloops import Dataloop

    return Dataloop.final_vector(2, 1, 6, 2, extent=16)


def _run_dataloop(loop, windows) -> dict:
    from ..dataloops.segment import DataloopStream

    ds = loop.data_size
    t0 = time.perf_counter()
    regions = 0
    total = 0
    for first, last in windows:
        out = DataloopStream(
            loop,
            count=2,
            first=first,
            last=min(last, 2 * ds),
            cache_threshold=1 << 30,
        ).regions()
        regions += out.count
        total += out.total_bytes
    wall = time.perf_counter() - t0
    return {"wall_s": wall, "regions": regions, "bytes": total}


def path_dataloop_indexed(quick: bool) -> dict:
    """Interior ``indexed`` walk: many small blocks, partial windows."""
    from ..dataloops import Dataloop

    n = _scale(quick, 20_000, 2_000)
    rng = np.random.default_rng(11)
    bls = rng.integers(1, 4, n)
    offs = np.cumsum(rng.integers(40, 80, n)) - 40
    child = _sparse_child()
    loop = Dataloop.indexed(bls, offs, child, int(offs[-1]) + 64)
    ds = loop.data_size
    windows = [(ds // 5, 2 * ds - ds // 5), (7, ds - 3)]
    return _run_dataloop(loop, windows)


def path_dataloop_struct(quick: bool) -> dict:
    """Interior ``struct`` walk: many fields sharing one child."""
    from ..dataloops import Dataloop

    n = _scale(quick, 16_000, 1_600)
    rng = np.random.default_rng(12)
    bls = rng.integers(1, 3, n)
    offs = np.cumsum(rng.integers(40, 70, n)) - 40
    child = _sparse_child()
    loop = Dataloop.struct(bls, offs, [child] * n, int(offs[-1]) + 64)
    ds = loop.data_size
    windows = [(ds // 4, 2 * ds - ds // 4), (5, ds - 5)]
    return _run_dataloop(loop, windows)


# ----------------------------------------------------------------------
# micro paths: client-side flattening (list I/O's request builder)
# ----------------------------------------------------------------------
def _flatten_result(t, count: int = 2) -> dict:
    t0 = time.perf_counter()
    out = t.flatten(count)
    wall = time.perf_counter() - t0
    return {"wall_s": wall, "regions": out.count, "bytes": out.total_bytes}


def path_flatten_indexed(quick: bool) -> dict:
    """``hindexed`` over a non-dense oldtype (general broadcast path)."""
    from ..datatypes import BYTE, hindexed, vector

    n = _scale(quick, 40_000, 4_000)
    rng = np.random.default_rng(13)
    old = vector(2, 1, 3, BYTE)  # 2 runs, size != extent
    bls = rng.integers(1, 4, n).tolist()
    disps = (np.cumsum(rng.integers(16, 40, n)) - 16).tolist()
    return _flatten_result(hindexed(bls, disps, old))


def path_flatten_struct(quick: bool) -> dict:
    """Homogeneous ``struct``: one shared field type, many fields."""
    from ..datatypes import BYTE, struct, vector

    n = _scale(quick, 30_000, 3_000)
    rng = np.random.default_rng(14)
    old = vector(2, 1, 3, BYTE)
    bls = rng.integers(1, 3, n).tolist()
    disps = (np.cumsum(rng.integers(16, 32, n)) - 16).tolist()
    return _flatten_result(struct(bls, disps, [old] * n))


def path_flatten_darray(quick: bool) -> dict:
    """Cyclic ``darray`` (HPF decomposition → hindexed chain)."""
    from ..datatypes import BYTE, darray, vector

    g = _scale(quick, 60_000, 6_000)
    old = vector(2, 1, 3, BYTE)
    t = darray(
        4, 1, [g], ["cyclic"], [2], [4], old
    )
    return _flatten_result(t)


# ----------------------------------------------------------------------
# micro paths: region set algebra
# ----------------------------------------------------------------------
def path_regions_intersect(quick: bool) -> dict:
    """Interval intersection of two large sorted sets."""
    from ..regions import Regions

    n = _scale(quick, 150_000, 15_000)
    a = Regions(np.arange(n, dtype=_I64) * 7, np.full(n, 4, dtype=_I64))
    b = Regions(np.arange(n, dtype=_I64) * 5 + 3, np.full(n, 3, dtype=_I64))
    t0 = time.perf_counter()
    out = a.intersect(b)
    wall = time.perf_counter() - t0
    return {"wall_s": wall, "regions": out.count, "bytes": out.total_bytes}


def path_regions_partition(quick: bool) -> dict:
    """Domain partitioning (two-phase exchange / sieving hole analysis)."""
    from ..regions import Regions

    n = _scale(quick, 120_000, 12_000)
    k = _scale(quick, 512, 64)
    regions = Regions(
        np.arange(n, dtype=_I64) * 9, np.full(n, 5, dtype=_I64)
    )
    bounds = np.linspace(0, n * 9 + 5, k + 1).astype(_I64)
    t0 = time.perf_counter()
    parts = regions.partition_with_stream(bounds)
    wall = time.perf_counter() - t0
    return {
        "wall_s": wall,
        "regions": int(sum(c.count for c, _ in parts)),
        "bytes": int(sum(c.total_bytes for c, _ in parts)),
    }


# ----------------------------------------------------------------------
# end-to-end paths: full access methods through the simulator
# ----------------------------------------------------------------------
def _run_method(method: str, quick: bool) -> dict:
    from .runner import run_workload
    from .workloads import TileWorkload

    wl = TileWorkload.reduced(frames=1 if quick else 2)
    t0 = time.perf_counter()
    r = run_workload(wl, method, phantom=True)
    wall = time.perf_counter() - t0
    return {
        "wall_s": wall,
        "sim_s": r.elapsed,
        "io_ops": r.io_ops,
        "accessed_bytes": r.accessed_bytes,
        "resent_bytes": r.resent_bytes,
    }


def path_sieving_endtoend(quick: bool) -> dict:
    return _run_method("data_sieving", quick)


def path_twophase_endtoend(quick: bool) -> dict:
    return _run_method("two_phase", quick)


def path_listio_endtoend(quick: bool) -> dict:
    return _run_method("list_io", quick)


PATHS: dict[str, Callable[[bool], dict]] = {
    "dataloop_indexed": path_dataloop_indexed,
    "dataloop_struct": path_dataloop_struct,
    "flatten_indexed": path_flatten_indexed,
    "flatten_struct": path_flatten_struct,
    "flatten_darray": path_flatten_darray,
    "regions_intersect": path_regions_intersect,
    "regions_partition": path_regions_partition,
    "sieving_endtoend": path_sieving_endtoend,
    "twophase_endtoend": path_twophase_endtoend,
    "listio_endtoend": path_listio_endtoend,
}


def _identical(a: dict, b: dict) -> bool:
    keys = [k for k in a if k != "wall_s"]
    return all(a[k] == b[k] for k in keys)


def collect(quick: bool = False, repeats: int = 3) -> dict:
    """Run every path scalar and vectorized; best-of-``repeats`` walls.

    Objects are rebuilt inside each path run, so per-instance caches
    (flattenings, run tables) never leak between modes.
    """
    out: dict = {
        "schema": SCHEMA,
        "note": (
            "vectorized numpy core vs REPRO_SCALAR_FALLBACK=1 reference; "
            "wall_s/speedup are machine-dependent, all other fields are "
            "deterministic and bit-identical across modes by construction"
        ),
        "quick": quick,
        "paths": {},
    }
    for name, fn in PATHS.items():
        runs: dict[str, dict] = {}
        for mode in ("scalar", "vector"):
            best = None
            for _ in range(repeats):
                with scalar_mode(mode == "scalar"):
                    r = fn(quick)
                if best is None or r["wall_s"] < best["wall_s"]:
                    best = r
            runs[mode] = best
        scalar, vector = runs["scalar"], runs["vector"]
        entry = {
            "scalar": scalar,
            "vector": vector,
            "speedup": (
                scalar["wall_s"] / vector["wall_s"]
                if vector["wall_s"]
                else 0.0
            ),
            "bit_identical": _identical(scalar, vector),
        }
        # deterministic fields, hoisted for the compare gate
        for k in scalar:
            if k != "wall_s":
                entry[k] = scalar[k]
        out["paths"][name] = entry
    walls_scalar = sum(p["scalar"]["wall_s"] for p in out["paths"].values())
    walls_vector = sum(p["vector"]["wall_s"] for p in out["paths"].values())
    out["speedup"] = walls_scalar / walls_vector if walls_vector else 0.0
    out["bit_identical"] = all(
        p["bit_identical"] for p in out["paths"].values()
    )
    return out


def render_hotpaths(data: dict) -> str:
    lines = []
    for name, p in data["paths"].items():
        flag = "" if p["bit_identical"] else "  MISMATCH"
        lines.append(
            f"{name:>20s}: {p['speedup']:8.2f}x "
            f"(scalar {p['scalar']['wall_s'] * 1e3:8.2f} ms, "
            f"vector {p['vector']['wall_s'] * 1e3:8.2f} ms){flag}"
        )
    lines.append(
        f"{'aggregate':>20s}: {data['speedup']:8.2f}x, "
        f"bit-identical: {data['bit_identical']}"
    )
    return "\n".join(lines)


def write_hotpaths_bench(
    out_dir: pathlib.Path | None, quick: bool = False
) -> tuple[pathlib.Path, dict]:
    data = collect(quick=quick, repeats=2 if quick else 3)
    out_dir = pathlib.Path(out_dir) if out_dir else pathlib.Path("results")
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / "BENCH_hotpaths.json"
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return path, data
