"""``repro-bench trace``: run one traced workload, export both artifacts.

Runs a reduced-scale workload with :class:`~repro.pvfs.config.PVFSConfig`
``trace=True``, verifies the recorded span set (no open spans, valid
Chrome ``trace_event`` schema, per-stage span sums reconciling with the
server :class:`~repro.simulation.stats.StageTimes` within 1e-9), and
writes two artifacts:

* ``TRACE_<workload>_<method>.json`` — Chrome ``trace_event`` JSON,
  loadable in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``;
* ``TRACE_<workload>_<method>_summary.json`` — the aggregated
  per-category / per-span-name / per-server-stage summary.

``--smoke`` (used by CI) runs the verification but skips writing the
artifacts unless ``--out`` is given.  See ``docs/observability.md`` for
the span taxonomy and a worked Perfetto walkthrough.
"""

from __future__ import annotations

import json
import pathlib
from typing import Optional

from ..pvfs import PVFSConfig
from ..trace import (
    chrome_trace,
    reconcile,
    validate_chrome,
    write_chrome_trace,
)
from .runner import RunResult, run_workload
from .workloads import Block3DWorkload, FlashWorkload, TileWorkload

__all__ = [
    "TRACE_WORKLOADS",
    "run_traced",
    "verify_trace",
    "write_trace_artifacts",
]

#: Named reduced-scale workloads selectable with ``--workload``.
TRACE_WORKLOADS = {
    "tile": lambda: TileWorkload.reduced(frames=2),
    "block3d-read": lambda: Block3DWorkload.reduced(2, is_write=False),
    "block3d-write": lambda: Block3DWorkload.reduced(2, is_write=True),
    "flash": lambda: FlashWorkload.reduced(2),
}


def run_traced(
    workload: str = "tile", method: str = "datatype_io"
) -> RunResult:
    """Run one (workload, method) pair with tracing enabled."""
    if workload not in TRACE_WORKLOADS:
        raise ValueError(
            f"unknown workload {workload!r}; "
            f"choose from {sorted(TRACE_WORKLOADS)}"
        )
    wl = TRACE_WORKLOADS[workload]()
    result = run_workload(
        wl, method, phantom=True, config=PVFSConfig(trace=True)
    )
    if result.supported and result.tracer is None:
        raise RuntimeError("traced run produced no recorder")
    return result


def verify_trace(result: RunResult) -> list[str]:
    """All trace well-formedness problems for a traced run (empty = OK).

    Checks three independent invariants:

    * every span is closed (an open span means a begin/end pairing bug);
    * the Chrome export passes :func:`repro.trace.validate_chrome`;
    * per-stage span sums reconcile with the aggregate
      :class:`~repro.simulation.stats.StageTimes` within 1e-9 seconds.
    """
    problems: list[str] = []
    rec = result.tracer
    if rec is None:
        return ["run was not traced (tracer is None)"]
    open_spans = rec.open_spans()
    if open_spans:
        problems.append(
            f"{len(open_spans)} open span(s): "
            + ", ".join(s.name for s in open_spans[:5])
        )
        return problems  # chrome_trace would raise; stop here
    problems.extend(validate_chrome(chrome_trace(rec)))
    if result.pipeline is not None:
        problems.extend(reconcile(rec, result.pipeline.total))
    return problems


def write_trace_artifacts(
    result: RunResult,
    out_dir: Optional[pathlib.Path] = None,
    *,
    stem: Optional[str] = None,
) -> list[pathlib.Path]:
    """Write the Chrome trace + summary JSON; returns the paths."""
    out_dir = out_dir or pathlib.Path(".")
    out_dir.mkdir(parents=True, exist_ok=True)
    stem = stem or f"TRACE_{result.workload}_{result.method}"
    trace_path = out_dir / f"{stem}.json"
    write_chrome_trace(result.tracer, trace_path)
    summary = {
        "schema": 1,
        "workload": result.workload,
        "method": result.method,
        "n_clients": result.n_clients,
        "elapsed_s": result.elapsed,
        "server_stages": result.pipeline.total.as_dict(),
        "trace": result.trace_summary,
        "reconciled": not reconcile(result.tracer, result.pipeline.total),
    }
    summary_path = out_dir / f"{stem}_summary.json"
    summary_path.write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n"
    )
    return [trace_path, summary_path]
