"""``python -m repro.bench`` entry point."""

from .cli import main

raise SystemExit(main())
