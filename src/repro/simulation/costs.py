"""Calibrated cost model.

All timing constants of the simulated cluster in one place.  Defaults
are calibrated to the paper's testbed (Chiba City: 100 Mbit/s
full-duplex Fast Ethernet, dual PIII 500 MHz nodes, one SCSI disk per
node, PVFS 1.5.5 + ROMIO 1.2.4 era software), then tuned so the three
benchmark reproductions show the paper's orderings and ratios (see
EXPERIMENTS.md for the calibration record).

The five effects the paper's analysis hinges on each have a dedicated
knob:

=====================================  ==================================
effect (paper section)                 knob
=====================================  ==================================
per-FS-operation request overhead      ``fs_op_client_cost`` /
(POSIX unusable, §4)                   ``fs_op_server_cost``
request size on the wire               ``listio_pair_bytes``, dataloop
(list I/O drawback, §2.4)              wire size (serialized)
client-side flattening/conversion      ``client_region_cost``,
(FLASH small-N dip, §4.4)              ``dataloop_convert_base`` +
                                       ``dataloop_node_cost``
server-side offset–length processing   ``server_region_read_cost``
(3-D block read decline, §4.3)         (on the reply path) vs
                                       ``server_region_write_cost``
                                       (hidden by sink buffering)
double data movement                   modelled physically by the
(two-phase, §2.3)                      exchange phase's NIC usage
=====================================  ==================================
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["CostModel"]


@dataclass(frozen=True)
class CostModel:
    """Timing constants (seconds / bytes-per-second)."""

    # --- network ------------------------------------------------------
    #: NIC bandwidth per direction per node (100 Mbit/s Fast Ethernet).
    nic_bandwidth: float = 12.5e6
    #: One-way wire+stack latency per message.
    latency: float = 120e-6
    #: CPU time to send or receive one message (syscall + TCP work).
    per_message_cpu: float = 25e-6

    # --- wire format --------------------------------------------------
    #: Fixed bytes of any file-system request/response header.
    header_bytes: int = 64
    #: Wire bytes per offset–length pair in a list I/O request
    #: (matches the paper's 9 KB for 768 pairs ≈ 12 B/pair).
    listio_pair_bytes: int = 12

    # --- disk (per I/O server) ----------------------------------------
    #: Streaming bandwidth of a server's storage path.  The paper's
    #: working sets (≈50 MB per server) fit the 512 MB buffer cache, so
    #: this is cache/readahead bandwidth, not raw SCSI platter speed —
    #: the benchmarks are network- and CPU-bound, as on Chiba City.
    disk_bandwidth: float = 80e6
    #: Positioning cost charged when an access is discontiguous with
    #: the previous one on the same server (a cache-hit page lookup,
    #: not a mechanical seek, for the same reason as above).
    disk_seek: float = 5e-6

    # --- per-operation fixed costs -------------------------------------
    #: Client-side fixed cost to build/post one file-system operation
    #: (request construction, syscall, bookkeeping in the PVFS library).
    fs_op_client_cost: float = 2.0e-3
    #: Server-side fixed cost to parse/dispatch one request in the iod.
    fs_op_server_cost: float = 3.5e-3

    # --- region processing ---------------------------------------------
    #: Client cost per offset–length pair created (datatype flattening
    #: in ROMIO for list I/O, building request lists).
    client_region_cost: float = 1.5e-6
    #: Client cost per memory region touched while packing/unpacking
    #: user buffers (applies to every method when memory is
    #: noncontiguous; a memcpy-grade constant).
    mem_region_cost: float = 0.35e-6
    #: Server cost per region *scanned* while expanding a shipped
    #: dataloop (striping arithmetic to find local pieces); paid on the
    #: whole access window, not just local regions.
    server_region_scan_cost: float = 0.3e-6
    #: Server cost per offset–length pair built into the job/access
    #: structures when the server is the data *source* (reads) — on the
    #: critical path before data can flow (paper §4.3).
    server_region_read_cost: float = 25.0e-6
    #: Same, when the server is a data *sink* (writes) — largely hidden
    #: behind TCP buffering (paper §4.3), so much smaller.
    server_region_write_cost: float = 1.0e-6
    #: Flat cost charged when a server's expansion cache satisfies a
    #: dataloop expansion (hash lookup + shift), replacing the
    #: per-region scan charge for the cached portion.
    server_cache_hit_cost: float = 2.0e-6

    # --- datatype I/O ----------------------------------------------------
    #: Fixed cost of converting the MPI datatype to a dataloop at each
    #: operation (the prototype reconverts every time, §3.2).
    dataloop_convert_base: float = 60e-6
    #: Additional conversion cost per dataloop tree node.
    dataloop_node_cost: float = 4e-6
    #: Multiplier on per-region build costs when the file system runs
    #: in full-featured (PVFS2-style) direct-dataloop mode: no
    #: intermediate lists, just streaming arithmetic.
    direct_region_factor: float = 0.15

    # --- MPI (inter-rank messaging for collectives) ---------------------
    #: One-way latency of an MPI message (same wire, leaner stack).
    mpi_latency: float = 90e-6
    #: Effective MPI payload bandwidth.  MPICH over TCP on 100 Mbit/s
    #: Ethernet moves data measurably below line rate (user-space
    #: copies, rendezvous) — the very caveat §2.3 raises about
    #: two-phase: "if the MPI implementation is not significantly
    #: faster than the aggregate I/O bandwidth..."
    mpi_bandwidth: float = 5.5e6
    #: CPU per MPI message send/receive.
    mpi_per_message_cpu: float = 15e-6
    #: Local memory copy bandwidth (self-messages, buffer assembly).
    memcpy_bandwidth: float = 400e6

    def scaled(self, **overrides) -> "CostModel":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)

    # ------------------------------------------------------------------
    def transfer_time(self, nbytes: int) -> float:
        """Pure NIC occupancy time for a payload of ``nbytes``."""
        return nbytes / self.nic_bandwidth

    def disk_time(self, nbytes: int, nseeks: int = 1) -> float:
        return nseeks * self.disk_seek + nbytes / self.disk_bandwidth
