"""Cluster network model.

Nodes have one full-duplex NIC each (independent transmit and receive
sides, 100 Mbit/s per direction by default).  Multiple simulated
entities on the same node (e.g. two MPI ranks, or a client and an I/O
daemon) share the node's NIC — exactly the contention the paper's
two-processes-per-node runs experience.

Transfers use a *reservation* model: a message occupies the sender's
transmit side and the receiver's receive side for ``nbytes/bandwidth``
seconds starting when both are free (``max`` of their busy horizons).
This serializes traffic per NIC direction without introducing
head-of-line convoys between unrelated flows — the behaviour of TCP
sockets multiplexed by ``select()`` in the real PVFS daemons.

A message send:

1. charges sender CPU (``per_message_cpu``);
2. reserves both NIC sides;
3. is delivered into the destination mailbox one latency after the
   transfer completes.

``pace=True`` (default) suspends the sender until its bytes have left
the NIC (a blocking socket); servers pass ``pace=False`` so a response
drains in the background while the daemon handles its next request.

``faultable=True`` marks client↔iod data-path messages as eligible for
fault injection (``repro.faults``): with an armed injector such a
message may be *dropped* (the bytes still cross the wire — the
reservations and byte counters stand — but the mailbox never hears of
it) or *duplicated* (a ghost copy arrives one extra latency later,
charged to no NIC: a retransmission artifact, not new traffic).
Control traffic (metadata, MPI exchanges, loopback) never sets it.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..faults import NULL_FAULTS
from ..metrics import NULL_METRICS
from ..trace import NULL_TRACER
from .costs import CostModel
from .engine import Environment, Event
from .resources import Store

__all__ = ["Network", "Node", "Mailbox", "Message"]


class Node:
    """A cluster node with a full-duplex NIC (busy-horizon model)."""

    __slots__ = (
        "name",
        "tx_busy_until",
        "rx_busy_until",
        "tx_busy_time",
        "rx_busy_time",
        "bytes_sent",
        "bytes_received",
    )

    def __init__(self, name: str):
        self.name = name
        self.tx_busy_until = 0.0
        self.rx_busy_until = 0.0
        self.tx_busy_time = 0.0
        self.rx_busy_time = 0.0
        self.bytes_sent = 0
        self.bytes_received = 0

    def __repr__(self) -> str:
        return f"<Node {self.name}>"


class Message:
    """A delivered message."""

    __slots__ = ("sender", "payload", "nbytes", "tag", "t_enqueued")

    def __init__(self, sender: "Mailbox", payload: Any, nbytes: int, tag: Any):
        self.sender = sender
        self.payload = payload
        self.nbytes = nbytes
        self.tag = tag
        #: Simulated instant the message entered the destination
        #: mailbox (set at delivery); receivers derive queue wait as
        #: ``env.now - t_enqueued`` at dequeue time.
        self.t_enqueued = 0.0

    def __repr__(self) -> str:
        return f"<Message {self.nbytes}B tag={self.tag!r} from {self.sender.name}>"


class Mailbox:
    """An addressable inbox owned by a simulated entity on some node."""

    __slots__ = ("name", "node", "_store")

    def __init__(self, env: Environment, node: Node, name: str):
        self.name = name
        self.node = node
        self._store = Store(env, name=name)

    def get(self) -> Event:
        """Event firing with the next :class:`Message`."""
        return self._store.get()

    def drain(self) -> list:
        """Take every queued :class:`Message` at once (batched wakeup)."""
        return self._store.drain()

    def __len__(self) -> int:
        return len(self._store)


class Network:
    """Factory for nodes/mailboxes plus the transfer primitive."""

    def __init__(self, env: Environment, costs: Optional[CostModel] = None):
        self.env = env
        self.costs = costs or CostModel()
        self.nodes: dict[str, Node] = {}
        self.mailboxes: dict[str, Mailbox] = {}
        # global statistics
        self.message_count = 0
        self.bytes_transferred = 0
        #: Span recorder (``repro.trace``); the disabled singleton by
        #: default — ``PVFS`` swaps in a live one when tracing is on.
        self.tracer = NULL_TRACER
        #: Metrics hub (``repro.metrics``); same pattern as the tracer.
        self.metrics = NULL_METRICS
        #: Fault injector (``repro.faults``); the disarmed singleton by
        #: default — ``PVFS`` swaps in a live one when faults are armed.
        self.faults = NULL_FAULTS

    # ------------------------------------------------------------------
    def node(self, name: str) -> Node:
        """Get or create the named node."""
        node = self.nodes.get(name)
        if node is None:
            node = Node(name)
            self.nodes[name] = node
        return node

    def mailbox(self, node: Node, name: str) -> Mailbox:
        if name in self.mailboxes:
            raise ValueError(f"duplicate mailbox name {name!r}")
        mb = Mailbox(self.env, node, name)
        self.mailboxes[name] = mb
        return mb

    # ------------------------------------------------------------------
    def _reserve(
        self, src: Node, dst: Node, nbytes: int, bandwidth: Optional[float] = None
    ) -> float:
        """Queue the message at both NIC sides; returns completion time.

        Each side drains its own byte queue at line rate; the message
        completes when the slower side has drained it.  Sides are
        deliberately *not* coupled (one slow receiver does not stall a
        sender's traffic to other destinations — TCP sockets multiplex).
        """
        now = self.env.now
        rate = bandwidth or self.costs.nic_bandwidth
        dur = nbytes / rate if nbytes else 0.0
        src.tx_busy_until = max(src.tx_busy_until, now) + dur
        dst.rx_busy_until = max(dst.rx_busy_until, now) + dur
        src.tx_busy_time += dur
        dst.rx_busy_time += dur
        src.bytes_sent += nbytes
        dst.bytes_received += nbytes
        self.bytes_transferred += nbytes
        if self.metrics.enabled:
            self.metrics.net_bytes(nbytes)
        return max(src.tx_busy_until, dst.rx_busy_until)

    def send(
        self,
        src: Mailbox,
        dst: Mailbox,
        nbytes: int,
        payload: Any = None,
        tag: Any = None,
        *,
        pace: bool = True,
        latency: Optional[float] = None,
        per_msg_cpu: Optional[float] = None,
        bandwidth: Optional[float] = None,
        faultable: bool = False,
    ) -> Generator[Event, Any, None]:
        """Transfer a message; ``yield from`` this inside a process.

        With ``pace=True`` the caller resumes once the payload has left
        its NIC; with ``pace=False`` it resumes right after the send CPU
        charge and the transfer drains in the background.  Delivery into
        ``dst`` happens one latency after the transfer completes.
        """
        env = self.env
        c = self.costs
        if nbytes < 0:
            raise ValueError("negative message size")
        lat = c.latency if latency is None else latency
        msg_cpu = c.per_message_cpu if per_msg_cpu is None else per_msg_cpu

        if msg_cpu > 0:
            yield env.timeout(msg_cpu)

        msg = Message(src, payload, nbytes, tag)
        self.message_count += 1
        metrics = self.metrics
        if metrics.enabled:
            metrics.message()
        if src.node is dst.node:
            # loopback: no wire, no latency
            msg.t_enqueued = env.now
            dst._store.put(msg)
            return env.now
        end = self._reserve(src.node, dst.node, nbytes, bandwidth)
        if metrics.enabled:
            metrics.inflight(nbytes)
        tracer = self.tracer
        if tracer.enabled and getattr(payload, "trace_id", -1) >= 0:
            tracer.add(
                "net.xfer",
                "net",
                "net",
                env.now,
                end,
                trace_id=payload.trace_id,
                parent=payload.trace_parent,
                src=src.node.name,
                dst=dst.node.name,
                nbytes=nbytes,
            )
        deliver_delay = (end - env.now) + lat
        faults = self.faults
        verdict = (
            faults.net_fault(src.node.name, dst.node.name, nbytes, payload)
            if faultable and faults.enabled
            else None
        )
        if verdict == "drop":
            _discard_later(env, msg, deliver_delay, metrics)
        else:
            _deliver_later(env, dst, msg, deliver_delay, metrics)
            if verdict == "dup":
                # the ghost copy: one extra latency late, free of NIC
                # reservations and counters (a retransmission artifact,
                # not new traffic — receivers must deduplicate)
                dup = Message(src, payload, nbytes, tag)
                _deliver_later(env, dst, dup, deliver_delay + lat)
        if pace and end > env.now:
            yield env.timeout(end - env.now)
        # completion time of the transfer (both NIC sides drained);
        # callers implementing windowed flow control block on it later
        return end

    def request_response(
        self,
        src: Mailbox,
        dst: Mailbox,
        nbytes: int,
        payload: Any = None,
        tag: Any = None,
    ) -> Generator[Event, Any, Message]:
        """Send and then block on the next message in ``src``.

        Only valid for entities that have a single outstanding exchange
        at a time (the PVFS client uses richer matching; see
        :mod:`repro.pvfs.client`).
        """
        yield from self.send(src, dst, nbytes, payload, tag)
        msg = yield src.get()
        return msg


def _deliver_later(
    env: Environment,
    dst: Mailbox,
    msg: Message,
    delay: float,
    metrics=NULL_METRICS,
):
    if delay <= 0:
        if metrics.enabled:
            metrics.inflight(-msg.nbytes)
        msg.t_enqueued = env.now
        dst._store.put(msg)
        return

    def _put(_ev):
        if metrics.enabled:
            metrics.inflight(-msg.nbytes)
        msg.t_enqueued = env.now
        dst._store.put(msg)

    env.call_later(delay, _put)


def _discard_later(
    env: Environment,
    msg: Message,
    delay: float,
    metrics=NULL_METRICS,
):
    """A dropped message: the bytes crossed the wire (reservations and
    byte counters already stand) but delivery never happens.  Only the
    in-flight gauge needs settling at the would-be delivery instant."""
    if delay <= 0:
        if metrics.enabled:
            metrics.inflight(-msg.nbytes)
        return

    def _gone(_ev):
        if metrics.enabled:
            metrics.inflight(-msg.nbytes)

    env.call_later(delay, _gone)
