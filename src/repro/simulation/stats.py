"""Utilization and traffic summaries of a finished simulation.

Used by the benchmark runner to explain *why* a configuration performs
as it does — which resource saturated (client NICs, server NICs, server
CPU time, disks) — the same analysis the paper walks through verbally
in §4.  Class map:

* :class:`StageTimes` — one I/O daemon's per-stage CPU/disk accounting
  for the decode → plan → storage → respond pipeline, the server-side
  cost decomposition of paper §3.2/§4.3 (request processing, access
  construction, disk service).  The ``cache`` stage isolates the
  expansion-cache hit cost so ``plan`` reports only genuine access-list
  construction; hit/miss/eviction counters ride along.
* :class:`ServerPipelineSummary` / :func:`summarize_servers` — the
  aggregate across servers; ``dominant_stage()`` names where server
  time went, the verbal argument of §4.3.
* :class:`NodeUtilization` / :class:`NetworkSummary` /
  :func:`summarize_network` — per-NIC busy fractions and the
  ``bottleneck()`` guess, reproducing the §4 saturated-resource
  analysis (client NICs for few clients, server side at scale).

When tracing is enabled (``PVFSConfig.trace``), the per-stage span sums
in ``repro.trace`` reconcile exactly with :class:`StageTimes` — the two
accounting systems are cross-checked by ``repro-bench trace``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from .network import Network

__all__ = [
    "NodeUtilization",
    "NetworkSummary",
    "StageTimes",
    "ServerPipelineSummary",
    "summarize_network",
    "summarize_servers",
]


@dataclass
class StageTimes:
    """Per-stage accounting of one I/O server's request pipeline.

    Stage seconds are simulated CPU/disk charges attributed to the
    decode → plan → storage → respond stages; in single-threaded paper
    mode the plan and storage charges occur inside one combined busy
    period, but the decomposition is still recorded so benchmarks can
    report where server time goes per access method.
    """

    # Stage seconds carry ``unit: s`` metadata (their as_dict key gains
    # an ``_s`` suffix and they form :meth:`stage_fields`); counters
    # default to summing under :meth:`add` unless marked ``agg: max``.
    # Everything below — add/busy/as_dict/stage_fields — derives from
    # this single field list, so a new counter cannot silently drift
    # out of one of the aggregation sites.
    decode: float = field(default=0.0, metadata={"unit": "s"})
    #: request parse/dispatch seconds
    plan: float = field(default=0.0, metadata={"unit": "s"})
    #: access-list construction / dataloop expansion
    cache: float = field(default=0.0, metadata={"unit": "s"})
    #: expansion-cache hit lookup/assembly seconds
    storage: float = field(default=0.0, metadata={"unit": "s"})
    #: disk positioning + transfer seconds
    respond: float = field(default=0.0, metadata={"unit": "s"})
    #: response handoff seconds (send CPU)
    requests: int = 0  #: requests fully processed
    rejected: int = 0  #: requests refused by admission control
    peak_queue: int = field(default=0, metadata={"agg": "max"})
    #: deepest request queue observed
    cache_hits: int = 0  #: expansion-cache hits
    cache_misses: int = 0  #: expansion-cache misses (entry built)
    cache_evictions: int = 0  #: entries evicted under the region bound
    cache_regions_held: int = 0  #: regions currently held in the cache
    cache_bytes_held: int = 0  #: approximate bytes of cached arrays

    @classmethod
    def stage_fields(cls) -> tuple[str, ...]:
        """Names of the pipeline-stage second fields, in charge order."""
        return tuple(
            f.name for f in fields(cls) if f.metadata.get("unit") == "s"
        )

    def add(self, other: "StageTimes") -> None:
        for f in fields(self):
            mine, theirs = getattr(self, f.name), getattr(other, f.name)
            if f.metadata.get("agg") == "max":
                setattr(self, f.name, max(mine, theirs))
            else:
                setattr(self, f.name, mine + theirs)

    @property
    def busy(self) -> float:
        """Total seconds the pipeline charged across all stages."""
        total = 0.0
        for name in self.stage_fields():
            total += getattr(self, name)
        return total

    def as_dict(self) -> dict:
        return {
            f.name + ("_s" if f.metadata.get("unit") == "s" else ""): getattr(
                self, f.name
            )
            for f in fields(self)
        }


@dataclass
class ServerPipelineSummary:
    """Aggregate + per-server pipeline stage accounting."""

    total: StageTimes = field(default_factory=StageTimes)
    per_server: dict[int, StageTimes] = field(default_factory=dict)

    def dominant_stage(self) -> str:
        """Name of the stage with the most accumulated time."""
        stages = {
            name: getattr(self.total, name)
            for name in StageTimes.stage_fields()
        }
        return max(stages.items(), key=lambda kv: kv[1])[0]


def summarize_servers(servers) -> ServerPipelineSummary:
    """Collect :class:`StageTimes` from I/O servers (ducktyped: anything
    with ``index`` and ``stage_times`` attributes)."""
    summary = ServerPipelineSummary()
    for s in servers:
        st = s.stage_times
        summary.per_server[s.index] = st
        summary.total.add(st)
    return summary


@dataclass
class NodeUtilization:
    """One node's NIC usage over the run."""

    name: str
    tx_busy: float
    rx_busy: float
    bytes_sent: int
    bytes_received: int

    def tx_utilization(self, elapsed: float) -> float:
        return self.tx_busy / elapsed if elapsed > 0 else 0.0

    def rx_utilization(self, elapsed: float) -> float:
        return self.rx_busy / elapsed if elapsed > 0 else 0.0


@dataclass
class NetworkSummary:
    """Aggregate traffic statistics with per-group utilization."""

    elapsed: float
    total_bytes: int
    total_messages: int
    nodes: list[NodeUtilization] = field(default_factory=list)

    def group(self, prefix: str) -> list[NodeUtilization]:
        """Nodes whose name starts with ``prefix`` (e.g. 'ios', 'cn')."""
        return [n for n in self.nodes if n.name.startswith(prefix)]

    def peak_utilization(self, prefix: str, side: str = "rx") -> float:
        """Highest per-node NIC utilization in a group (0..1)."""
        nodes = self.group(prefix)
        if not nodes or self.elapsed <= 0:
            return 0.0
        busy = (
            max(n.rx_busy for n in nodes)
            if side == "rx"
            else max(n.tx_busy for n in nodes)
        )
        return busy / self.elapsed

    def mean_utilization(self, prefix: str, side: str = "rx") -> float:
        nodes = self.group(prefix)
        if not nodes or self.elapsed <= 0:
            return 0.0
        total = sum(
            (n.rx_busy if side == "rx" else n.tx_busy) for n in nodes
        )
        return total / (len(nodes) * self.elapsed)

    def bottleneck(self, stages: Optional["StageTimes"] = None) -> str:
        """A one-word guess at the saturated resource group.

        Pass the aggregate server :class:`StageTimes` to make the guess
        disk-aware: the mean per-server storage-stage busy fraction
        joins the NIC candidates and wins as ``"server-disk"`` when
        disks are the saturated resource (the dominant regime of
        several write-heavy workloads).
        """
        candidates = {
            "server-rx": self.mean_utilization("ios", "rx"),
            "server-tx": self.mean_utilization("ios", "tx"),
            "client-rx": self.mean_utilization("cn", "rx"),
            "client-tx": self.mean_utilization("cn", "tx"),
        }
        if stages is not None:
            n_ios = len(self.group("ios"))
            if n_ios and self.elapsed > 0:
                candidates["server-disk"] = stages.storage / (
                    n_ios * self.elapsed
                )
        name, value = max(candidates.items(), key=lambda kv: kv[1])
        return name if value > 0.5 else "cpu-or-latency"


def summarize_network(net: "Network", elapsed: float) -> NetworkSummary:
    """Snapshot a network's counters into a summary."""
    summary = NetworkSummary(
        elapsed=elapsed,
        total_bytes=net.bytes_transferred,
        total_messages=net.message_count,
    )
    for node in net.nodes.values():
        summary.nodes.append(
            NodeUtilization(
                name=node.name,
                tx_busy=node.tx_busy_time,
                rx_busy=node.rx_busy_time,
                bytes_sent=node.bytes_sent,
                bytes_received=node.bytes_received,
            )
        )
    return summary
