"""Utilization and traffic summaries of a finished simulation.

Used by the benchmark runner to explain *why* a configuration performs
as it does — which resource saturated (client NICs, server NICs, server
CPU time, disks) — the same analysis the paper walks through verbally
in §4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .network import Network

__all__ = ["NodeUtilization", "NetworkSummary", "summarize_network"]


@dataclass
class NodeUtilization:
    """One node's NIC usage over the run."""

    name: str
    tx_busy: float
    rx_busy: float
    bytes_sent: int
    bytes_received: int

    def tx_utilization(self, elapsed: float) -> float:
        return self.tx_busy / elapsed if elapsed > 0 else 0.0

    def rx_utilization(self, elapsed: float) -> float:
        return self.rx_busy / elapsed if elapsed > 0 else 0.0


@dataclass
class NetworkSummary:
    """Aggregate traffic statistics with per-group utilization."""

    elapsed: float
    total_bytes: int
    total_messages: int
    nodes: list[NodeUtilization] = field(default_factory=list)

    def group(self, prefix: str) -> list[NodeUtilization]:
        """Nodes whose name starts with ``prefix`` (e.g. 'ios', 'cn')."""
        return [n for n in self.nodes if n.name.startswith(prefix)]

    def peak_utilization(self, prefix: str, side: str = "rx") -> float:
        """Highest per-node NIC utilization in a group (0..1)."""
        nodes = self.group(prefix)
        if not nodes or self.elapsed <= 0:
            return 0.0
        busy = (
            max(n.rx_busy for n in nodes)
            if side == "rx"
            else max(n.tx_busy for n in nodes)
        )
        return busy / self.elapsed

    def mean_utilization(self, prefix: str, side: str = "rx") -> float:
        nodes = self.group(prefix)
        if not nodes or self.elapsed <= 0:
            return 0.0
        total = sum(
            (n.rx_busy if side == "rx" else n.tx_busy) for n in nodes
        )
        return total / (len(nodes) * self.elapsed)

    def bottleneck(self) -> str:
        """A one-word guess at the saturated resource group."""
        candidates = {
            "server-rx": self.mean_utilization("ios", "rx"),
            "server-tx": self.mean_utilization("ios", "tx"),
            "client-rx": self.mean_utilization("cn", "rx"),
            "client-tx": self.mean_utilization("cn", "tx"),
        }
        name, value = max(candidates.items(), key=lambda kv: kv[1])
        return name if value > 0.5 else "cpu-or-latency"


def summarize_network(net: "Network", elapsed: float) -> NetworkSummary:
    """Snapshot a network's counters into a summary."""
    summary = NetworkSummary(
        elapsed=elapsed,
        total_bytes=net.bytes_transferred,
        total_messages=net.message_count,
    )
    for node in net.nodes.values():
        summary.nodes.append(
            NodeUtilization(
                name=node.name,
                tx_busy=node.tx_busy_time,
                rx_busy=node.rx_busy_time,
                bytes_sent=node.bytes_sent,
                bytes_received=node.bytes_received,
            )
        )
    return summary
