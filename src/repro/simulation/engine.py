"""Event loop and process machinery.

A deliberately small SimPy-like core:

* an :class:`Event` is a one-shot trigger carrying a value (or an
  exception);
* a :class:`Process` wraps a generator; each ``yield``-ed event suspends
  the process until the event fires, whose value becomes the ``yield``
  expression's result.  A process is itself an event that fires with the
  generator's return value;
* :class:`Environment` owns the clock and the priority queue.

The queue orders by ``(time, sequence)`` so same-time events fire in
scheduling order — simulations are bit-for-bit deterministic.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for simulation protocol violations (e.g. double trigger)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence.

    States: *pending* → *triggered* (scheduled) → *processed* (callbacks
    run).  ``succeed``/``fail`` move it to triggered.
    """

    __slots__ = ("env", "callbacks", "_value", "_exc", "_state")

    PENDING = 0
    TRIGGERED = 1
    PROCESSED = 2

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._state = Event.PENDING

    # ------------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._state >= Event.TRIGGERED

    @property
    def processed(self) -> bool:
        return self._state == Event.PROCESSED

    @property
    def ok(self) -> bool:
        return self.triggered and self._exc is None

    @property
    def value(self) -> Any:
        if not self.triggered:
            raise SimulationError("value of untriggered event")
        if self._exc is not None:
            raise self._exc
        return self._value

    # ------------------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        if self.triggered:
            raise SimulationError("event already triggered")
        self._value = value
        self._state = Event.TRIGGERED
        self.env._schedule(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        if self.triggered:
            raise SimulationError("event already triggered")
        self._exc = exc
        self._state = Event.TRIGGERED
        self.env._schedule(self)
        return self

    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        if self._state == Event.PROCESSED:
            # late subscriber: run at the current instant
            self.env._schedule(_CallbackShim(self, cb))
        else:
            self.callbacks.append(cb)

    def _run_callbacks(self) -> None:
        self._state = Event.PROCESSED
        callbacks, self.callbacks = self.callbacks, []
        for cb in callbacks:
            cb(self)


class _CallbackShim(Event):
    """Delivers a late callback for an already-processed event."""

    __slots__ = ("_orig", "_cb")

    def __init__(self, orig: Event, cb: Callable[[Event], None]):
        super().__init__(orig.env)
        self._orig = orig
        self._cb = cb
        self._state = Event.TRIGGERED

    def _run_callbacks(self) -> None:
        self._state = Event.PROCESSED
        self._cb(self._orig)


class Timeout(Event):
    """Fires ``delay`` seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._value = value
        self._state = Event.TRIGGERED
        env._schedule(self, delay)


class Process(Event):
    """A running generator; fires with the generator's return value."""

    __slots__ = ("_gen", "_waiting_on", "name")

    def __init__(
        self,
        env: "Environment",
        gen: Generator[Event, Any, Any],
        name: str = "",
    ):
        if not hasattr(gen, "send"):
            raise TypeError(
                f"process target must be a generator, got {type(gen).__name__}"
            )
        super().__init__(env)
        self._gen = gen
        self._waiting_on: Optional[Event] = None
        self.name = name or getattr(gen, "__name__", "process")
        # bootstrap at the current instant
        boot = Event(env)
        boot._state = Event.TRIGGERED
        boot.add_callback(self._resume)
        env._schedule(boot)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at this instant."""
        if self.triggered:
            return
        target = self._waiting_on
        if target is not None and self in [  # detach from the event
            getattr(cb, "__self__", None) for cb in target.callbacks
        ]:
            target.callbacks = [
                cb
                for cb in target.callbacks
                if getattr(cb, "__self__", None) is not self
            ]
        shim = Event(self.env)
        shim._state = Event.TRIGGERED
        shim._exc = Interrupt(cause)
        shim.add_callback(self._resume)
        self.env._schedule(shim)

    # ------------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        try:
            if event._exc is not None:
                next_event = self._gen.throw(event._exc)
            else:
                next_event = self._gen.send(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            self.fail(exc)
            return
        if not isinstance(next_event, Event):
            err = SimulationError(
                f"process {self.name!r} yielded {type(next_event).__name__}, "
                "expected an Event"
            )
            self._gen.close()
            self.fail(err)
            return
        self._waiting_on = next_event
        next_event.add_callback(self._resume)


class _Condition(Event):
    """Base for AllOf/AnyOf."""

    __slots__ = ("events", "_pending")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        self._pending = 0
        if not self.events:
            self.succeed([])
            return
        for ev in self.events:
            if not self._check_immediate(ev):
                self._pending += 1
                ev.add_callback(self._on_event)
        self._maybe_finish()

    def _check_immediate(self, ev: Event) -> bool:
        return False

    def _on_event(self, ev: Event) -> None:
        raise NotImplementedError

    def _maybe_finish(self) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every event has fired; value is the list of values."""

    __slots__ = ()

    def _on_event(self, ev: Event) -> None:
        if self.triggered:
            return
        if ev._exc is not None:
            self.fail(ev._exc)
            return
        self._pending -= 1
        self._maybe_finish()

    def _maybe_finish(self) -> None:
        if not self.triggered and self._pending == 0:
            self.succeed([ev.value for ev in self.events])


class AnyOf(_Condition):
    """Fires when the first event fires; value is ``(index, value)``."""

    __slots__ = ()

    def _on_event(self, ev: Event) -> None:
        if self.triggered:
            return
        if ev._exc is not None:
            self.fail(ev._exc)
            return
        self.succeed((self.events.index(ev), ev._value))

    def _maybe_finish(self) -> None:
        pass


class Environment:
    """Owns simulated time and the event queue."""

    def __init__(self):
        self.now: float = 0.0
        self._queue: list[tuple[float, int, Event]] = []
        self._seq = 0
        #: Optional observer called as ``hook(prev_now, next_t)`` just
        #: before the clock advances (strictly: only when ``next_t``
        #: exceeds ``now``).  It runs outside the event queue and must
        #: not create events — ``repro.metrics`` uses it to take
        #: periodic samples without perturbing the simulation.
        self.clock_hook: Optional[Callable[[float, float], None]] = None

    # ------------------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (self.now + delay, self._seq, event))

    # ------------------------------------------------------------------
    # factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def call_later(
        self, delay: float, fn: Callable[[Event], None]
    ) -> Timeout:
        """Schedule ``fn(event)`` to run in ``delay`` seconds.

        A plain timeout + callback, packaged because detached one-shot
        actions (message delivery, fault-injection timers) are not
        processes: nothing suspends on them, and the callback must not
        create further events at trigger time beyond what a process
        resume could.
        """
        ev = Timeout(self, delay)
        ev.add_callback(fn)
        return ev

    def process(self, gen, name: str = "") -> Process:
        return Process(self, gen, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # ------------------------------------------------------------------
    def run(self, until: float | Event | None = None) -> Any:
        """Run until the queue drains, a deadline, or an event fires.

        Returns the event's value when ``until`` is an event.
        """
        deadline: Optional[float] = None
        stop_event: Optional[Event] = None
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            deadline = float(until)

        hook = self.clock_hook
        while self._queue:
            t, _, event = self._queue[0]
            if deadline is not None and t > deadline:
                if hook is not None and deadline > self.now:
                    hook(self.now, deadline)
                self.now = deadline
                return None
            heapq.heappop(self._queue)
            if hook is not None and t > self.now:
                hook(self.now, t)
            self.now = t
            event._run_callbacks()
            if stop_event is not None and stop_event.triggered:
                return stop_event.value

        if stop_event is not None and not stop_event.triggered:
            raise SimulationError(
                "event queue drained before the awaited event fired "
                "(deadlock: a process is waiting on something that will "
                "never happen)"
            )
        if deadline is not None:
            if hook is not None and deadline > self.now:
                hook(self.now, deadline)
            self.now = deadline
        return None
