"""Event loop and process machinery.

A deliberately small SimPy-like core:

* an :class:`Event` is a one-shot trigger carrying a value (or an
  exception);
* a :class:`Process` wraps a generator; each ``yield``-ed event suspends
  the process until the event fires, whose value becomes the ``yield``
  expression's result.  A process is itself an event that fires with the
  generator's return value;
* :class:`Environment` owns the clock and the event queue.

Events fire in ``(time, sequence)`` order so same-time events fire in
scheduling order — simulations are bit-for-bit deterministic.

The queue is *indexed* rather than a single flat heap, so that a
4096-client run does not collapse under timer traffic:

* **now-FIFO** — the overwhelmingly common case, an event scheduled at
  the current instant (``succeed``, process resumes, mailbox wakeups),
  is an O(1) deque append instead of a heap push.  Mailbox wakeups at
  the same instant therefore batch in arrival order with no heap
  traffic.
* **near heap** — a classic binary heap for short deadlines (within the
  current timer-wheel slot).
* **hierarchical timer wheel** — far deadlines (RPC timeout guards,
  fault timers, long sleeps) land in per-slot buckets; a bucket is
  flushed into the near heap with original ``(time, seq)`` keys just
  before the clock can reach it, so delivery order is *exactly* the
  order the flat heap produced.  Cancelling a wheel timer is O(1) and
  the dead entry dies in its bucket without ever touching the heap.

:meth:`Timeout.cancel` (the handle :meth:`Environment.call_later`
returns) marks the queue entry dead; dead entries are dropped when
encountered at a queue head, filtered on bucket flush, or swept by a
compaction pass when they outnumber live heap entries — amortized
O(log n) cancellation, and a fully drained :meth:`Environment.run`
leaves no dead entries behind (see :meth:`Environment.queue_stats`).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for simulation protocol violations (e.g. double trigger)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence.

    States: *pending* → *triggered* (scheduled) → *processed* (callbacks
    run).  ``succeed``/``fail`` move it to triggered.
    """

    __slots__ = ("env", "callbacks", "_value", "_exc", "_state")

    PENDING = 0
    TRIGGERED = 1
    PROCESSED = 2

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._state = Event.PENDING

    # ------------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._state >= Event.TRIGGERED

    @property
    def processed(self) -> bool:
        return self._state == Event.PROCESSED

    @property
    def ok(self) -> bool:
        return self.triggered and self._exc is None

    @property
    def value(self) -> Any:
        if not self.triggered:
            raise SimulationError("value of untriggered event")
        if self._exc is not None:
            raise self._exc
        return self._value

    # ------------------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        if self.triggered:
            raise SimulationError("event already triggered")
        self._value = value
        self._state = Event.TRIGGERED
        self.env._schedule(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        if self.triggered:
            raise SimulationError("event already triggered")
        self._exc = exc
        self._state = Event.TRIGGERED
        self.env._schedule(self)
        return self

    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        if self._state == Event.PROCESSED:
            # late subscriber: run at the current instant
            self.env._schedule(_CallbackShim(self, cb))
        else:
            self.callbacks.append(cb)

    def _run_callbacks(self) -> None:
        self._state = Event.PROCESSED
        callbacks, self.callbacks = self.callbacks, []
        for cb in callbacks:
            cb(self)


class _CallbackShim(Event):
    """Delivers a late callback for an already-processed event."""

    __slots__ = ("_orig", "_cb")

    def __init__(self, orig: Event, cb: Callable[[Event], None]):
        super().__init__(orig.env)
        self._orig = orig
        self._cb = cb
        self._state = Event.TRIGGERED

    def _run_callbacks(self) -> None:
        self._state = Event.PROCESSED
        self._cb(self._orig)


class Timeout(Event):
    """Fires ``delay`` seconds after creation.

    Doubles as the timer handle: :meth:`cancel` removes a not-yet-fired
    timer from the queue (O(1) in the wheel, lazy in the heap) so
    defensive deadline timers stop leaving dead entries behind.
    """

    __slots__ = ("delay", "_entry")

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._value = value
        self._state = Event.TRIGGERED
        self._entry = env._schedule(self, delay)

    def cancel(self) -> bool:
        """Cancel the timer if it has not fired; returns True if it was
        still pending.  A cancelled timer never runs its callbacks."""
        entry = self._entry
        if entry is None:
            return False
        self._entry = None
        return self.env._cancel_entry(entry)


class Process(Event):
    """A running generator; fires with the generator's return value."""

    __slots__ = ("_gen", "_waiting_on", "name")

    def __init__(
        self,
        env: "Environment",
        gen: Generator[Event, Any, Any],
        name: str = "",
    ):
        if not hasattr(gen, "send"):
            raise TypeError(
                f"process target must be a generator, got {type(gen).__name__}"
            )
        super().__init__(env)
        self._gen = gen
        self._waiting_on: Optional[Event] = None
        self.name = name or getattr(gen, "__name__", "process")
        # bootstrap at the current instant
        boot = Event(env)
        boot._state = Event.TRIGGERED
        boot.add_callback(self._resume)
        env._schedule(boot)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at this instant."""
        if self.triggered:
            return
        target = self._waiting_on
        if target is not None and self in [  # detach from the event
            getattr(cb, "__self__", None) for cb in target.callbacks
        ]:
            target.callbacks = [
                cb
                for cb in target.callbacks
                if getattr(cb, "__self__", None) is not self
            ]
        shim = Event(self.env)
        shim._state = Event.TRIGGERED
        shim._exc = Interrupt(cause)
        shim.add_callback(self._resume)
        self.env._schedule(shim)

    # ------------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        try:
            if event._exc is not None:
                next_event = self._gen.throw(event._exc)
            else:
                next_event = self._gen.send(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            self.fail(exc)
            return
        if not isinstance(next_event, Event):
            err = SimulationError(
                f"process {self.name!r} yielded {type(next_event).__name__}, "
                "expected an Event"
            )
            self._gen.close()
            self.fail(err)
            return
        self._waiting_on = next_event
        next_event.add_callback(self._resume)


class _Condition(Event):
    """Base for AllOf/AnyOf."""

    __slots__ = ("events", "_pending")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        self._pending = 0
        if not self.events:
            self.succeed([])
            return
        for ev in self.events:
            if not self._check_immediate(ev):
                self._pending += 1
                ev.add_callback(self._on_event)
        self._maybe_finish()

    def _check_immediate(self, ev: Event) -> bool:
        return False

    def _on_event(self, ev: Event) -> None:
        raise NotImplementedError

    def _maybe_finish(self) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every event has fired; value is the list of values."""

    __slots__ = ()

    def _on_event(self, ev: Event) -> None:
        if self.triggered:
            return
        if ev._exc is not None:
            self.fail(ev._exc)
            return
        self._pending -= 1
        self._maybe_finish()

    def _maybe_finish(self) -> None:
        if not self.triggered and self._pending == 0:
            self.succeed([ev.value for ev in self.events])


class AnyOf(_Condition):
    """Fires when the first event fires; value is ``(index, value)``."""

    __slots__ = ()

    def _on_event(self, ev: Event) -> None:
        if self.triggered:
            return
        if ev._exc is not None:
            self.fail(ev._exc)
            return
        self.succeed((self.events.index(ev), ev._value))

    def _maybe_finish(self) -> None:
        pass


# Queue entry layout: a mutable list ``[time, seq, event, where]``.
# ``event`` is set to None when the entry is cancelled or popped (the
# dead marker); ``where`` tracks the container for counter bookkeeping.
# List comparison only ever reaches (time, seq) because seq is unique.
_IN_FIFO = 0
_IN_HEAP = 1
_IN_WHEEL = 2


class Environment:
    """Owns simulated time and the indexed event queue."""

    #: Width of a level-0 timer-wheel slot (seconds).  Deadlines within
    #: the current slot go straight to the near heap.
    WHEEL_SLOT = 1e-3
    #: Slots per wheel level; level k buckets are SLOT * SPL**k wide.
    WHEEL_SPL = 256
    #: Number of wheel levels.  The top level is uncapped (buckets are
    #: keyed by absolute index in a dict, not a ring), so any horizon
    #: fits.
    WHEEL_LEVELS = 2

    def __init__(self):
        self.now: float = 0.0
        self._seq = 0
        # now-FIFO: entries scheduled with zero delay, in seq order
        self._fifo: deque[list] = deque()
        self._fifo_live = 0
        self._fifo_dead = 0
        # near heap: deadlines within the current wheel slot
        self._heap: list[list] = []
        self._heap_live = 0
        self._heap_dead = 0
        # hierarchical timer wheel: level -> {bucket index: [entries]}
        self._wheel_buckets: list[dict[int, list[list]]] = [
            {} for _ in range(self.WHEEL_LEVELS)
        ]
        self._wheel_due: list[tuple[float, int, int]] = []  # (start, level, idx)
        self._wheel_live = 0
        self._wheel_dead = 0
        #: Optional observer called as ``hook(prev_now, next_t)`` just
        #: before the clock advances (strictly: only when ``next_t``
        #: exceeds ``now``).  It runs outside the event queue and must
        #: not create events — ``repro.metrics`` uses it to take
        #: periodic samples without perturbing the simulation.
        self.clock_hook: Optional[Callable[[float, float], None]] = None

    # ------------------------------------------------------------------
    # scheduling internals
    # ------------------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> list:
        self._seq += 1
        if delay == 0.0:
            entry = [self.now, self._seq, event, _IN_FIFO]
            self._fifo.append(entry)
            self._fifo_live += 1
            return entry
        t = self.now + delay
        entry = [t, self._seq, event, _IN_HEAP]
        if delay < self.WHEEL_SLOT:
            heapq.heappush(self._heap, entry)
            self._heap_live += 1
        else:
            self._wheel_place(entry, self.WHEEL_LEVELS - 1)
        return entry

    def _wheel_place(self, entry: list, max_level: int) -> None:
        """File a future entry in the coarsest wheel bucket that is
        strictly ahead of the clock, or the near heap if none is."""
        t = entry[0]
        now = self.now
        for level in range(max_level, -1, -1):
            width = self.WHEEL_SLOT * self.WHEEL_SPL**level
            idx = int(t / width)
            if idx > int(now / width):
                bucket = self._wheel_buckets[level].get(idx)
                if bucket is None:
                    bucket = self._wheel_buckets[level][idx] = []
                    heapq.heappush(self._wheel_due, (idx * width, level, idx))
                entry[3] = _IN_WHEEL
                bucket.append(entry)
                self._wheel_live += 1
                return
        entry[3] = _IN_HEAP
        heapq.heappush(self._heap, entry)
        self._heap_live += 1

    def _cancel_entry(self, entry: list) -> bool:
        if entry[2] is None:
            return False
        entry[2] = None
        where = entry[3]
        if where == _IN_FIFO:
            self._fifo_live -= 1
            self._fifo_dead += 1
        elif where == _IN_HEAP:
            self._heap_live -= 1
            self._heap_dead += 1
            # sweep when the dead outnumber the living
            if self._heap_dead > 64 and self._heap_dead > self._heap_live:
                self._heap = [e for e in self._heap if e[2] is not None]
                heapq.heapify(self._heap)
                self._heap_dead = 0
        else:
            self._wheel_live -= 1
            self._wheel_dead += 1
        return True

    def _pop_next(self, deadline: Optional[float]) -> Optional[list]:
        """Remove and return the next live entry in (time, seq) order,
        or None if the queue is empty / the next entry lies beyond
        ``deadline`` (which is then left queued, matching the flat-heap
        semantics)."""
        fifo = self._fifo
        heap = self._heap
        while fifo and fifo[0][2] is None:
            fifo.popleft()
            self._fifo_dead -= 1
        while heap and heap[0][2] is None:
            heapq.heappop(heap)
            self._heap_dead -= 1
        if self._wheel_live or self._wheel_dead:
            due = self._wheel_due
            buckets = self._wheel_buckets
            while True:
                if fifo and (not heap or fifo[0] < heap[0]):
                    cand_t = fifo[0][0]
                elif heap:
                    cand_t = heap[0][0]
                else:
                    cand_t = None
                while due and due[0][2] not in buckets[due[0][1]]:
                    heapq.heappop(due)  # stale registration
                if not due:
                    break
                start, level, idx = due[0]
                if cand_t is not None:
                    if start > cand_t:
                        break
                elif deadline is not None and start > deadline:
                    break
                # flush: every entry in this bucket keeps its original
                # (time, seq) key, so heap order is exactly what the
                # flat heap would have produced
                heapq.heappop(due)
                bucket = buckets[level].pop(idx)
                for entry in bucket:
                    if entry[2] is None:
                        self._wheel_dead -= 1
                        continue
                    self._wheel_live -= 1
                    if level:
                        self._wheel_place(entry, level - 1)  # cascade finer
                    else:
                        entry[3] = _IN_HEAP
                        heapq.heappush(heap, entry)
                        self._heap_live += 1
                while heap and heap[0][2] is None:
                    heapq.heappop(heap)
                    self._heap_dead -= 1
        if fifo and (not heap or fifo[0] < heap[0]):
            entry = fifo[0]
            if deadline is not None and entry[0] > deadline:
                return None
            fifo.popleft()
            self._fifo_live -= 1
            return entry
        if heap:
            entry = heap[0]
            if deadline is not None and entry[0] > deadline:
                return None
            heapq.heappop(heap)
            self._heap_live -= 1
            return entry
        return None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def queue_stats(self) -> dict[str, int]:
        """Live/dead entry counts across the FIFO, heap, and wheel.

        A fully drained :meth:`run` leaves ``{"live": 0, "dead": 0}`` —
        cancelled timers are physically removed, never popped as events.
        """
        return {
            "live": self._fifo_live + self._heap_live + self._wheel_live,
            "dead": self._fifo_dead + self._heap_dead + self._wheel_dead,
        }

    @property
    def scheduled_events(self) -> int:
        """Total events ever scheduled (monotone; profiling counter)."""
        return self._seq

    # ------------------------------------------------------------------
    # factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def call_later(
        self, delay: float, fn: Callable[[Event], None]
    ) -> Timeout:
        """Schedule ``fn(event)`` to run in ``delay`` seconds.

        A plain timeout + callback, packaged because detached one-shot
        actions (message delivery, fault-injection timers) are not
        processes: nothing suspends on them, and the callback must not
        create further events at trigger time beyond what a process
        resume could.

        Returns the :class:`Timeout`, which doubles as a timer handle:
        callers arming defensive deadlines (RPC timeout guards) should
        :meth:`Timeout.cancel` it once the guarded operation completes,
        so the queue is not left carrying dead entries.
        """
        ev = Timeout(self, delay)
        ev.add_callback(fn)
        return ev

    def process(self, gen, name: str = "") -> Process:
        return Process(self, gen, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # ------------------------------------------------------------------
    def run(self, until: float | Event | None = None) -> Any:
        """Run until the queue drains, a deadline, or an event fires.

        Returns the event's value when ``until`` is an event.
        """
        deadline: Optional[float] = None
        stop_event: Optional[Event] = None
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            deadline = float(until)

        hook = self.clock_hook
        while True:
            entry = self._pop_next(deadline)
            if entry is None:
                break
            t = entry[0]
            event = entry[2]
            entry[2] = None  # popped: the handle (if any) is now inert
            if hook is not None and t > self.now:
                hook(self.now, t)
            self.now = t
            event._run_callbacks()
            if stop_event is not None and stop_event.triggered:
                return stop_event.value

        if stop_event is not None and not stop_event.triggered:
            raise SimulationError(
                "event queue drained before the awaited event fired "
                "(deadlock: a process is waiting on something that will "
                "never happen)"
            )
        if deadline is not None:
            if hook is not None and deadline > self.now:
                hook(self.now, deadline)
            self.now = deadline
        return None
