"""Discrete-event simulation substrate.

The reproduction's performance figures come from replaying the real
file-system protocol over a simulated cluster.  This package provides
the generic machinery:

* :mod:`~repro.simulation.engine` — a SimPy-style event loop:
  :class:`Environment`, generator-based processes, timeouts, composite
  events;
* :mod:`~repro.simulation.resources` — FIFO :class:`Resource` and
  :class:`Store` (mailboxes);
* :mod:`~repro.simulation.network` — cluster nodes with full-duplex
  NICs, latency + bandwidth message timing, delivery into mailboxes;
* :mod:`~repro.simulation.costs` — the calibrated :class:`CostModel`
  (Chiba City-like constants: 100 Mbit/s Ethernet, TCP latency,
  single-threaded I/O daemons, per-region processing costs).

Simulated time is in seconds (floats).  Determinism: the event queue
breaks ties by insertion order, so runs are exactly reproducible.
"""

from .engine import Environment, Event, Process, Timeout, AllOf, Interrupt
from .resources import Resource, Store
from .network import Network, Node, Mailbox
from .costs import CostModel
from .stats import (
    NetworkSummary,
    NodeUtilization,
    ServerPipelineSummary,
    StageTimes,
    summarize_network,
    summarize_servers,
)

__all__ = [
    "Environment",
    "Event",
    "Process",
    "Timeout",
    "AllOf",
    "Interrupt",
    "Resource",
    "Store",
    "Network",
    "Node",
    "Mailbox",
    "CostModel",
    "NetworkSummary",
    "NodeUtilization",
    "ServerPipelineSummary",
    "StageTimes",
    "summarize_network",
    "summarize_servers",
]
