"""FIFO resources and mailboxes for the simulation engine."""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator

from .engine import Environment, Event

__all__ = ["Resource", "Store"]


class Resource:
    """A FIFO resource with integer capacity (e.g. a NIC or a disk arm).

    Usage inside a process::

        req = resource.request()
        yield req
        try:
            yield env.timeout(service_time)
        finally:
            resource.release()

    or the :meth:`hold` convenience::

        yield from resource.hold(service_time)
    """

    def __init__(self, env: Environment, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Event] = deque()
        # statistics
        self.busy_time = 0.0
        self._busy_since: float | None = None
        self.total_acquisitions = 0
        self.peak_queue = 0  #: max waiters ever queued behind the slots

    # ------------------------------------------------------------------
    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def request(self) -> Event:
        """Return an event that fires when a slot is granted."""
        ev = self.env.event()
        if self._in_use < self.capacity:
            self._grant(ev)
        else:
            self._waiters.append(ev)
            if len(self._waiters) > self.peak_queue:
                self.peak_queue = len(self._waiters)
        return ev

    def release(self) -> None:
        if self._in_use <= 0:
            raise RuntimeError(f"release of idle resource {self.name!r}")
        self._in_use -= 1
        if self._waiters:
            self._grant(self._waiters.popleft())
        elif self._in_use == 0 and self._busy_since is not None:
            self.busy_time += self.env.now - self._busy_since
            self._busy_since = None

    def _grant(self, ev: Event) -> None:
        if self._in_use == 0:
            self._busy_since = self.env.now
        self._in_use += 1
        self.total_acquisitions += 1
        ev.succeed(self)

    def hold(self, duration: float) -> Generator[Event, Any, None]:
        """Acquire, hold for ``duration`` simulated seconds, release."""
        yield self.request()
        try:
            yield self.env.timeout(duration)
        finally:
            self.release()

    def utilization(self) -> float:
        """Fraction of elapsed time the resource was busy."""
        busy = self.busy_time
        if self._busy_since is not None:
            busy += self.env.now - self._busy_since
        return busy / self.env.now if self.env.now > 0 else 0.0


class Store:
    """An unbounded FIFO queue of items (a mailbox).

    ``put`` never blocks; ``get`` returns an event that fires with the
    next item (immediately if one is queued).
    """

    def __init__(self, env: Environment, name: str = ""):
        self.env = env
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self.total_puts = 0

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        self.total_puts += 1
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        ev = self.env.event()
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def drain(self) -> list:
        """Take every queued item at once (a batched mailbox wakeup).

        Lets a daemon woken by one ``get`` absorb the whole backlog
        synchronously instead of paying one event hop per message.
        """
        items = list(self._items)
        self._items.clear()
        return items
