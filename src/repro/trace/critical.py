"""Critical-path extraction and exclusive per-resource blame.

The recorder (:mod:`repro.trace.core`) stores every I/O job as a tree
of spans.  A span's *duration* answers "how long did this take", but
the paper's arguments (fig 8/10/12, §4.3) are about something sharper:
*which resource's time determined the end-to-end latency*.  This module
answers that mechanically:

* :func:`critical_path` walks each trace's span tree **backwards** from
  the root's completion instant.  At every level it repeatedly picks
  the child whose completion determined the current cursor (latest
  ``end`` not after the cursor), blames the gap between that child's
  end and the cursor on the *parent's* own resource, then descends into
  the child.  The result is an exclusive partition of the root's
  duration into :class:`Segment`\\ s — per trace, segment durations sum
  to the root duration exactly (asserted within 1e-9), so blame shares
  always sum to 1.
* Spans are classified into the resource taxonomy of
  :data:`RESOURCE_ORDER` — client CPU, RPC wait (wire latency +
  response wait), retry backoff, network queue wait vs. wire time,
  admission/queue wait, the five server pipeline stages (with disk
  fault stalls carved out of storage), and threaded-server disk-arm
  waits.
* Two kinds of interval are *derived*, never recorded during the
  simulation (attribution is post-hoc, so attribution-enabled runs are
  trivially bit-identical to plain traced runs): a synthetic
  ``server.queue`` span reconstructed from ``server.request``'s
  ``queue_wait``/``thread_wait`` attributes, and the queue-vs-wire
  split of a ``net.xfer`` span (the last ``nbytes/bandwidth`` seconds
  are wire time; the front is NIC queue wait).
* :func:`reconcile_blame` cross-checks the full-tree exclusive totals
  against the two independent accounting systems: per-stage seconds
  against :class:`~repro.simulation.stats.StageTimes` (with
  ``server.scatter`` folded into respond and disk-fault spans carved
  out of storage) and traced wire bytes/seconds per node against
  :class:`~repro.simulation.stats.NodeUtilization`, all within 1e-9.

``repro-bench dash`` renders the output; ``repro-bench compare``
attaches blame deltas to bandwidth drifts; ``repro-bench json`` embeds
the per-method shares in ``BENCH_pipeline.json``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from .core import Span

__all__ = [
    "RESOURCE_ORDER",
    "Segment",
    "BlameReport",
    "classify_span",
    "critical_path",
    "reconcile_blame",
]

#: Every resource blame can land on, in report order.  ``seconds`` maps
#: of a :class:`BlameReport` carry exactly these keys.
RESOURCE_ORDER = (
    "client_cpu",  #: client/rank self time: packing, conversion, barriers
    "rpc_wait",  #: RPC self time: wire latency + response wait
    "retry_backoff",  #: client backoff after rejections/timeouts
    "net_queue",  #: NIC queue wait ahead of a transfer's wire time
    "net_wire",  #: bytes-on-the-wire seconds (nbytes / bandwidth)
    "queue_wait",  #: server admission/mailbox + thread-pool wait
    "decode",  #: server request parse/dispatch
    "plan",  #: server access-list construction
    "cache",  #: server expansion-cache hit charge
    "disk",  #: storage stage media time net of injected faults
    "fault_stall",  #: injected disk slowdown/stall seconds
    "respond",  #: server response handoff (incl. collective scatter)
    "server_wait",  #: threaded-server disk-arm / self gaps
    "other",  #: anything unclassified (should stay zero)
)

#: Span-name prefixes attributed to the client's own CPU/algorithm time.
_CLIENT_PREFIXES = ("mpiio.", "pvfs.")

#: Direct span-name → resource mapping for leaf/self time.
_SELF_RESOURCE = {
    "rpc": "rpc_wait",
    "server.queue": "queue_wait",
    "server.thread_wait": "queue_wait",
    "server.request": "server_wait",
    "server.decode": "decode",
    "server.plan": "plan",
    "server.cache": "cache",
    "server.storage": "disk",
    "server.respond": "respond",
    "server.scatter": "respond",
    "server.reject": "server_wait",
}

_EPS = 1e-12


def classify_span(name: str) -> str:
    """Resource charged for a span's *self* (exclusive) time."""
    res = _SELF_RESOURCE.get(name)
    if res is not None:
        return res
    if name.startswith(_CLIENT_PREFIXES):
        return "client_cpu"
    if name == "net.xfer":
        return "net_wire"
    if name.startswith("fault.disk."):
        return "fault_stall"
    if name.startswith("fault."):
        return "fault_stall"
    return "other"


@dataclass
class Segment:
    """One exclusive slice of a trace's critical path."""

    trace_id: int
    span: Span  #: the span whose self time this slice is
    resource: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class BlameReport:
    """Exclusive critical-path blame aggregated over every trace."""

    total: float  #: summed root durations (seconds on the critical path)
    seconds: dict[str, float]  #: per-resource exclusive seconds
    traces: int  #: number of traces walked
    segments: list[Segment] = field(default_factory=list)
    #: Per-trace conservation residuals |Σ segments − root duration|;
    #: the walk asserts each stays within tolerance.
    residuals: dict[int, float] = field(default_factory=dict)

    def shares(self) -> dict[str, float]:
        """Per-resource fraction of the critical path (sums to 1)."""
        if self.total <= 0:
            return {r: 0.0 for r in RESOURCE_ORDER}
        return {r: self.seconds[r] / self.total for r in RESOURCE_ORDER}

    def dominant(self) -> str:
        """Resource owning the largest critical-path share."""
        return max(RESOURCE_ORDER, key=lambda r: self.seconds[r])

    def trace_segments(self, trace_id: int) -> list[Segment]:
        """This trace's critical-path slices in chronological order."""
        segs = [s for s in self.segments if s.trace_id == trace_id]
        segs.sort(key=lambda s: (s.start, s.end))
        return segs


def _closed_spans(source) -> list[Span]:
    spans = getattr(source, "spans", source)
    return [s for s in spans if s.end is not None]


def _build_forest(spans: Iterable[Span]):
    """Group spans by trace; return (roots, children) per trace.

    Two structural fixes happen here, both pure derivation:

    * ``fault.disk.*`` spans are recorded as siblings of the
      ``server.storage`` span they overlap (both parent under
      ``server.request``); re-parenting them *under* storage lets the
      walk carve stall time out of disk time instead of double-counting
      the overlap.
    * ``server.request`` grows synthetic ``server.queue`` /
      ``server.thread_wait`` children reconstructed from its
      ``queue_wait`` / ``thread_wait`` attributes — the waits happen
      before/inside the span but are only recorded as numbers.
    """
    by_trace: dict[int, list[Span]] = {}
    for s in spans:
        by_trace.setdefault(s.trace_id, []).append(s)

    forest: dict[int, tuple[list[Span], dict[int, list[Span]]]] = {}
    for tid, tspans in by_trace.items():
        ids = {s.span_id for s in tspans}
        synthetic: list[Span] = []
        next_id = max(ids) + 1
        for s in tspans:
            if s.name != "server.request":
                continue
            qw = s.attrs.get("queue_wait", 0.0)
            if qw > 0:
                synthetic.append(
                    Span(
                        "server.queue", "server", s.actor, tid,
                        next_id, s.parent_id, s.start - qw, s.start,
                    )
                )
                next_id += 1
            tw = s.attrs.get("thread_wait", 0.0)
            if tw > 0:
                synthetic.append(
                    Span(
                        "server.thread_wait", "server", s.actor, tid,
                        next_id, s.span_id, s.start, s.start + tw,
                    )
                )
                next_id += 1
        tspans = tspans + synthetic

        children: dict[int, list[Span]] = {}
        roots: list[Span] = []
        for s in tspans:
            if s.parent_id >= 0 and s.parent_id in ids:
                children.setdefault(s.parent_id, []).append(s)
            else:
                roots.append(s)

        # carve injected stalls out of the storage interval they overlap
        for s in tspans:
            if not s.name.startswith("fault.disk.") or s.end <= s.start:
                continue
            siblings = children.get(s.parent_id, ())
            for storage in siblings:
                if (
                    storage.name == "server.storage"
                    and storage.start - _EPS <= s.start
                    and s.end <= storage.end + _EPS
                ):
                    children[s.parent_id].remove(s)
                    children.setdefault(storage.span_id, []).append(s)
                    break
        forest[tid] = (roots, children)
    return forest


def _emit(segments, span, resource, start, end, nic_bandwidth):
    """Append one self-time slice, splitting net.xfer queue vs. wire.

    A ``net.xfer`` span's interval is NIC-horizon queue wait followed by
    ``nbytes/bandwidth`` seconds of wire time; with a known bandwidth
    the slice is split at that boundary so queueing shows up as its own
    resource instead of inflating apparent wire time.
    """
    if end - start <= 0:
        return
    if (
        span.name == "net.xfer"
        and nic_bandwidth
        and span.attrs.get("nbytes")
    ):
        wire_start = span.end - span.attrs["nbytes"] / nic_bandwidth
        if start < wire_start < end:
            segments.append(
                Segment(span.trace_id, span, "net_queue", start, wire_start)
            )
            segments.append(
                Segment(span.trace_id, span, "net_wire", wire_start, end)
            )
            return
        resource = "net_queue" if end <= wire_start else "net_wire"
    segments.append(Segment(span.trace_id, span, resource, start, end))


def _walk(span, children, lo, hi, segments, nic_bandwidth):
    """Attribute ``[lo, hi]`` of ``span``'s interval exclusively.

    Backward sweep: the child with the latest ``end`` not after the
    cursor determined the timing at the cursor; the gap between that
    child's end and the cursor is the span's own (self) time; then the
    walk descends into the child and the cursor jumps to the child's
    start.  Children overlapping an already-attributed chain are
    skipped — they were not on the critical path.
    """
    resource = classify_span(span.name)
    cursor = hi
    kids = children.get(span.span_id)
    if kids:
        for c in sorted(kids, key=lambda s: s.end, reverse=True):
            if cursor - lo <= _EPS:
                break
            if c.end > cursor + _EPS or c.end <= lo + _EPS:
                continue  # overlaps the chain already attributed
            child_end = min(c.end, cursor)
            _emit(segments, span, resource, child_end, cursor, nic_bandwidth)
            child_lo = max(lo, c.start)
            _walk(c, children, child_lo, child_end, segments, nic_bandwidth)
            cursor = child_lo
    _emit(segments, span, resource, lo, cursor, nic_bandwidth)


def _carve_backoff(segments, seconds, config) -> None:
    """Reclassify estimated backoff sleep out of rpc self time.

    The client's backoff sleeps happen inside the ``rpc`` span but are
    not spans of their own; the retry counters on the span's attributes
    recover them analytically: ``retries`` rejection backoffs of
    ``server_retry_backoff`` each, and timeouts' exponential backoff
    ``retry_backoff * (2^timeouts - 1)`` (see ``repro.pvfs.client``).
    The carve is capped by the rpc self time actually on the critical
    path, so totals stay conserved.
    """
    if config is None:
        return
    reject_backoff = getattr(config, "server_retry_backoff", 0.0)
    faults = getattr(config, "faults", None)
    timeout_backoff = getattr(faults, "retry_backoff", 0.0) if faults else 0.0

    rpc_self: dict[int, float] = {}
    for seg in segments:
        if seg.span.name == "rpc" and seg.resource == "rpc_wait":
            rpc_self[seg.span.span_id] = (
                rpc_self.get(seg.span.span_id, 0.0) + seg.duration
            )
    seen: dict[int, Span] = {}
    for seg in segments:
        if seg.span.name == "rpc":
            seen[seg.span.span_id] = seg.span
    for span_id, self_s in rpc_self.items():
        attrs = seen[span_id].attrs
        est = attrs.get("retries", 0) * reject_backoff
        timeouts = attrs.get("timeouts", 0)
        if timeouts and timeout_backoff > 0:
            est += timeout_backoff * (2**timeouts - 1)
        carve = min(self_s, est)
        if carve > 0:
            seconds["rpc_wait"] -= carve
            seconds["retry_backoff"] += carve


def critical_path(
    source,
    *,
    nic_bandwidth: Optional[float] = None,
    config=None,
    tol: float = 1e-9,
) -> BlameReport:
    """Walk every trace's span tree; return exclusive per-resource blame.

    ``source`` is a :class:`~repro.trace.core.TraceRecorder` or an
    iterable of closed spans.  ``nic_bandwidth`` (bytes/s, e.g.
    ``CostModel().nic_bandwidth``) enables the queue-vs-wire split of
    ``net.xfer`` intervals; ``config`` (a ``PVFSConfig``) enables the
    retry-backoff carve.  Raises ``ValueError`` if any trace's segment
    durations fail to sum to its root duration within ``tol`` — the
    conservation law that makes "shares sum to 1" an invariant rather
    than a convention.
    """
    spans = _closed_spans(source)
    forest = _build_forest(spans)
    segments: list[Segment] = []
    seconds = {r: 0.0 for r in RESOURCE_ORDER}
    total = 0.0
    residuals: dict[int, float] = {}

    for tid, (roots, children) in sorted(forest.items()):
        trace_total = 0.0
        mark = len(segments)
        for root in sorted(roots, key=lambda s: (s.start, s.span_id)):
            trace_total += root.end - root.start
            _walk(
                root, children, root.start, root.end, segments, nic_bandwidth
            )
        walked = sum(s.duration for s in segments[mark:])
        residuals[tid] = abs(walked - trace_total)
        if residuals[tid] > tol:
            raise ValueError(
                f"trace {tid}: critical-path segments sum to {walked!r}, "
                f"root duration is {trace_total!r} "
                f"(residual {residuals[tid]:.3e} > {tol:g})"
            )
        total += trace_total

    for seg in segments:
        seconds[seg.resource] += seg.duration
    _carve_backoff(segments, seconds, config)

    return BlameReport(
        total=total,
        seconds=seconds,
        traces=len(forest),
        segments=segments,
        residuals=residuals,
    )


def _exclusive_totals(spans: list[Span]) -> dict[str, float]:
    """Full-tree exclusive seconds per span *name* (not critical-path).

    Every span's duration minus the summed durations of its children
    (after the same fault re-parenting / synthesis as the walk), so the
    totals decompose the whole recorded tree — the quantity that must
    reconcile with ``StageTimes``.
    """
    totals: dict[str, float] = {}
    for _tid, (roots, children) in sorted(_build_forest(spans).items()):

        def visit(span):
            kids = children.get(span.span_id, ())
            child_s = 0.0
            for c in kids:
                child_s += c.end - c.start
                visit(c)
            self_s = (span.end - span.start) - child_s
            totals[span.name] = totals.get(span.name, 0.0) + self_s

        for root in roots:
            visit(root)
    return totals


def reconcile_blame(
    source,
    stage_times,
    network=None,
    *,
    nic_bandwidth: Optional[float] = None,
    loose_nodes: Iterable[str] = (),
    tol: float = 1e-9,
) -> list[str]:
    """Cross-check blame accounting against StageTimes/NodeUtilization.

    Three independent reconciliations (empty list = all agree):

    * full-tree exclusive seconds per server stage vs the scheduler's
      :class:`~repro.simulation.stats.StageTimes`: decode/plan/cache
      match directly, ``disk + fault_stall`` must equal ``storage``
      (injected stalls are carved out of the storage interval), and
      ``respond`` includes the collective scatter spans;
    * critical-path conservation: per-trace segment sums equal root
      durations within ``tol`` (re-asserted here) and blame shares sum
      to 1;
    * per-node traced wire traffic vs ``NodeUtilization`` (pass the
      :class:`~repro.simulation.stats.NetworkSummary`): summed
      ``net.xfer`` bytes and ``nbytes/bandwidth`` seconds grouped by
      src/dst must match ``bytes_sent/received`` and ``tx/rx_busy``
      exactly for every I/O-server node.  Nodes named in
      ``loose_nodes`` — the metadata host (untraced ``MetaRequest``
      traffic) — and client nodes (untraced MPI exchanges) only check
      that traced traffic never exceeds the NIC accounting.
    """
    problems: list[str] = []
    spans = _closed_spans(source)
    totals = _exclusive_totals(spans)

    checks = {
        "decode": (totals.get("server.decode", 0.0), stage_times.decode),
        "plan": (totals.get("server.plan", 0.0), stage_times.plan),
        "cache": (totals.get("server.cache", 0.0), stage_times.cache),
        "storage (disk + fault stalls)": (
            totals.get("server.storage", 0.0)
            + sum(v for k, v in totals.items() if k.startswith("fault.disk.")),
            stage_times.storage,
        ),
        "respond (incl. scatter)": (
            totals.get("server.respond", 0.0)
            + totals.get("server.scatter", 0.0),
            stage_times.respond,
        ),
    }
    for name, (got, want) in checks.items():
        if abs(got - want) > tol:
            problems.append(
                f"stage {name}: exclusive spans {got!r} != "
                f"StageTimes {want!r}"
            )

    report = critical_path(spans, nic_bandwidth=nic_bandwidth, tol=tol)
    if report.total > 0:
        share_sum = sum(report.shares().values())
        if abs(share_sum - 1.0) > tol:
            problems.append(f"blame shares sum to {share_sum!r}, not 1.0")

    if network is not None:
        if not nic_bandwidth:
            raise ValueError("network reconciliation needs nic_bandwidth")
        loose = set(loose_nodes)
        traced_bytes: dict[tuple[str, str], int] = {}
        for s in spans:
            if s.name != "net.xfer":
                continue
            nbytes = s.attrs.get("nbytes", 0)
            src, dst = s.attrs.get("src"), s.attrs.get("dst")
            traced_bytes[("tx", src)] = (
                traced_bytes.get(("tx", src), 0) + nbytes
            )
            traced_bytes[("rx", dst)] = (
                traced_bytes.get(("rx", dst), 0) + nbytes
            )
        for node in network.nodes:
            exact = node.name.startswith("ios") and node.name not in loose
            for side, want_bytes, want_busy in (
                ("tx", node.bytes_sent, node.tx_busy),
                ("rx", node.bytes_received, node.rx_busy),
            ):
                got_bytes = traced_bytes.get((side, node.name), 0)
                got_busy = got_bytes / nic_bandwidth
                if exact:
                    if got_bytes != want_bytes:
                        problems.append(
                            f"nic {node.name}/{side}: traced {got_bytes} B "
                            f"!= NodeUtilization {want_bytes} B"
                        )
                    if abs(got_busy - want_busy) > tol:
                        problems.append(
                            f"nic {node.name}/{side}: traced wire "
                            f"{got_busy!r} s != busy {want_busy!r} s"
                        )
                elif got_bytes > want_bytes:
                    problems.append(
                        f"nic {node.name}/{side}: traced {got_bytes} B "
                        f"exceeds NodeUtilization {want_bytes} B"
                    )
    return problems
