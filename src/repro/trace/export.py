"""Trace export: Chrome ``trace_event`` JSON and aggregate summaries.

Two consumers, two formats:

* :func:`chrome_trace` renders the recorder's spans as a Chrome
  ``trace_event`` document (the ``traceEvents`` array of ``"X"``
  complete events) that loads directly in Perfetto / ``chrome://tracing``.
  Actors become processes (named via ``"M"`` metadata events) and trace
  ids become thread lanes, so one end-to-end I/O job reads as one
  horizontal lane per actor it touched.
* :func:`summarize_trace` folds the same spans into per-category and
  per-server-stage totals — the aggregate that ``repro-bench json`` and
  ``repro-bench trace`` embed next to ``StageTimes``.

:func:`reconcile` cross-checks the two accounting systems: the summed
``server.*`` stage spans must equal the scheduler-maintained
``StageTimes`` totals to within float tolerance.  This is an acceptance
gate, not a debugging aid — the bench trace command asserts it.

Simulated-clock seconds are converted to trace-event microseconds
(``ts``/``dur``); everything else is carried through ``args``.
"""

from __future__ import annotations

import json
from typing import Iterable, List

from .core import Span, TraceRecorder

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "summarize_trace",
    "validate_chrome",
    "reconcile",
    "SERVER_STAGE_SPANS",
]

#: span name → StageTimes field, for reconciliation and stage summaries.
SERVER_STAGE_SPANS = {
    "server.decode": "decode",
    "server.plan": "plan",
    "server.cache": "cache",
    "server.storage": "storage",
    "server.respond": "respond",
}

_US = 1e6  # simulated seconds → trace-event microseconds


def _json_value(v):
    """Coerce attribute values to JSON-clean scalars (numpy included)."""
    if isinstance(v, bool) or v is None or isinstance(v, str):
        return v
    if isinstance(v, (int, float)):
        return v
    if hasattr(v, "item"):  # numpy scalar
        return v.item()
    return str(v)


def _actor_order(spans: Iterable[Span]) -> List[str]:
    """Stable actor listing: clients/ranks first, then net, then servers."""

    def rank(actor: str):
        if actor.startswith("rank"):
            return (0, actor)
        if actor.startswith("client"):
            return (1, actor)
        if actor == "net":
            return (2, actor)
        if actor.startswith("iod"):
            # numeric sort so iod10 follows iod9
            tail = actor[3:]
            return (3, f"iod{int(tail):06d}") if tail.isdigit() else (3, actor)
        return (4, actor)

    seen = []
    for s in spans:
        if s.actor not in seen:
            seen.append(s.actor)
    return sorted(seen, key=rank)


def chrome_trace(recorder: TraceRecorder) -> dict:
    """Render a recorder as a Chrome ``trace_event`` JSON document.

    Mapping: actor → ``pid`` (with a ``process_name`` metadata event),
    trace id → ``tid`` (so each job gets its own lane under every actor
    it visits), span → one ``"X"`` complete event with microsecond
    ``ts``/``dur`` and the structured attributes under ``args``.

    Raises ``ValueError`` if the recorder still holds open spans — an
    unbalanced ``begin``/``end`` is an instrumentation bug.
    """
    open_spans = recorder.open_spans()
    if open_spans:
        names = ", ".join(sorted({s.name for s in open_spans}))
        raise ValueError(f"{len(open_spans)} unfinished span(s): {names}")

    pids = {actor: i + 1 for i, actor in enumerate(_actor_order(recorder.spans))}
    events = []
    for actor, pid in pids.items():
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": actor},
            }
        )
    for s in recorder.spans:
        args = {k: _json_value(v) for k, v in s.attrs.items()}
        args["trace_id"] = s.trace_id
        args["span_id"] = s.span_id
        if s.parent_id >= 0:
            args["parent_span_id"] = s.parent_id
        events.append(
            {
                "name": s.name,
                "cat": s.cat,
                "ph": "X",
                "pid": pids[s.actor],
                "tid": s.trace_id if s.trace_id >= 0 else 0,
                "ts": s.start * _US,
                "dur": (s.end - s.start) * _US,
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(recorder: TraceRecorder, path) -> dict:
    """Serialize :func:`chrome_trace` output to ``path``; return the doc."""
    doc = chrome_trace(recorder)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")
    return doc


def validate_chrome(doc: dict) -> List[str]:
    """Schema-check a Chrome trace document; return a list of problems.

    Checks the subset of the ``trace_event`` format the exporter uses:
    a ``traceEvents`` list whose entries carry the per-phase required
    keys, non-negative timestamps/durations, and integer pid/tid.
    An empty list means the document is well-formed.
    """
    problems: List[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    for i, ev in enumerate(events):
        where = f"event[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("X", "M", "i"):
            problems.append(f"{where}: unexpected phase {ph!r}")
            continue
        for key in ("name", "pid", "tid"):
            if key not in ev:
                problems.append(f"{where}: missing {key!r}")
        if not isinstance(ev.get("pid"), int) or not isinstance(ev.get("tid"), int):
            problems.append(f"{where}: pid/tid must be integers")
        if ph == "X":
            for key in ("ts", "dur", "cat"):
                if key not in ev:
                    problems.append(f"{where}: missing {key!r}")
            ts, dur = ev.get("ts"), ev.get("dur")
            if isinstance(ts, (int, float)) and ts < 0:
                problems.append(f"{where}: negative ts")
            if isinstance(dur, (int, float)) and dur < 0:
                problems.append(f"{where}: negative dur")
            if "args" in ev and not isinstance(ev["args"], dict):
                problems.append(f"{where}: args not an object")
    return problems


def summarize_trace(recorder: TraceRecorder) -> dict:
    """Aggregate span totals: per category, per span name, per stage.

    The ``server_stages`` block uses :data:`SERVER_STAGE_SPANS` to sum
    each pipeline stage's span durations in seconds — directly
    comparable with ``StageTimes.as_dict()``.  ``fault_spans`` counts
    ``fault.*`` spans per family (e.g. ``disk.stall``, ``net.drop``) so
    chaos runs are auditable from the summary alone.
    """
    by_cat: dict = {}
    by_name: dict = {}
    fault_counts: dict = {}
    for s in recorder.spans:
        if s.end is None:
            continue
        d = s.end - s.start
        by_cat[s.cat] = by_cat.get(s.cat, 0.0) + d
        ent = by_name.setdefault(s.name, {"count": 0, "seconds": 0.0})
        ent["count"] += 1
        ent["seconds"] += d
        if s.name.startswith("fault."):
            family = s.name[len("fault."):]
            fault_counts[family] = fault_counts.get(family, 0) + 1
    stages = {
        field: by_name.get(name, {"seconds": 0.0})["seconds"]
        for name, field in SERVER_STAGE_SPANS.items()
    }
    return {
        "spans": len(recorder.spans),
        "traces": len(recorder.traces()),
        "by_category_s": by_cat,
        "by_name": by_name,
        "server_stages_s": stages,
        "fault_spans": fault_counts,
    }


def reconcile(recorder: TraceRecorder, stage_times, tol: float = 1e-9) -> List[str]:
    """Compare summed server-stage spans against ``StageTimes`` totals.

    ``stage_times`` is any object with ``decode``/``plan``/``cache``/
    ``storage``/``respond`` attributes (a ``StageTimes`` or the
    aggregate from ``summarize_servers``).  Returns the list of stages
    whose span sum diverges beyond ``tol`` — empty means the trace and
    the counter accounting agree.

    The collective ``server.scatter`` spans (read scatter and, under
    armed fault configs, the write-round acks) count toward ``respond``
    — they charge ``StageTimes.respond`` but are recorded under their
    own span name, exactly as in
    :func:`repro.trace.critical.reconcile_blame`.
    """
    full = summarize_trace(recorder)
    summary = full["server_stages_s"]
    scatter = full["by_name"].get("server.scatter", {"seconds": 0.0})
    bad = []
    for name, field in SERVER_STAGE_SPANS.items():
        want = getattr(stage_times, field)
        got = summary[field]
        if field == "respond":
            got += scatter["seconds"]
        if abs(want - got) > tol:
            bad.append(f"{field}: spans={got!r} stage_times={want!r}")
    return bad
