"""Span recording: the mechanism behind ``repro.trace``.

A *span* is one named interval on the simulated clock, attributed to an
*actor* (a client, a rank, an I/O daemon, or the network), belonging to
one *trace* (one end-to-end I/O job), and optionally nested under a
parent span.  The :class:`TraceRecorder` hands out trace and span ids
and stores finished spans; it never advances the simulated clock or
allocates simulation events, so recording is pure observation — a
traced run and an untraced run of the same workload produce bit-for-bit
identical timings and counters.

Zero overhead when disabled: every instrumentation site in the client,
the network model and the server pipeline guards on ``tracer.enabled``,
and the disabled singleton (:data:`NULL_TRACER`) makes that a single
attribute test.  No span objects, ids, or attribute dicts are created
on the disabled path.

Span lifecycle::

    span = tracer.begin("server.plan", "server", "iod3",
                        trace_id=req.trace_id, parent=req.trace_parent,
                        op_kind="dtype")
    ...                       # simulated time passes
    tracer.end(span, built=plan.built)

For intervals whose boundaries are known analytically (the network's
reservation model computes a transfer's completion time up front, and
the serial scheduler charges plan + storage as one combined timeout),
:meth:`TraceRecorder.add` records a closed span directly.
"""

from __future__ import annotations

from typing import Optional, Union

__all__ = ["Span", "TraceRecorder", "NullTracer", "NULL_TRACER"]


class Span:
    """One recorded interval of simulated time.

    ``end`` is ``None`` while the span is open; the exporter refuses
    unfinished spans so leaks show up in tests, not in Perfetto.
    """

    __slots__ = (
        "name",
        "cat",
        "actor",
        "trace_id",
        "span_id",
        "parent_id",
        "start",
        "end",
        "attrs",
    )

    def __init__(
        self,
        name: str,
        cat: str,
        actor: str,
        trace_id: int,
        span_id: int,
        parent_id: int,
        start: float,
        end: Optional[float] = None,
        attrs: Optional[dict] = None,
    ):
        self.name = name
        self.cat = cat
        self.actor = actor
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end = end
        self.attrs = attrs if attrs is not None else {}

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError(f"span {self.name!r} not finished")
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        end = "…" if self.end is None else f"{self.end:.9f}"
        return (
            f"<Span {self.name} #{self.span_id} trace={self.trace_id} "
            f"[{self.start:.9f}, {end}] {self.actor}>"
        )


def _parent_id(parent: Union["Span", int, None]) -> int:
    if parent is None:
        return -1
    if isinstance(parent, Span):
        return parent.span_id
    return int(parent)


class TraceRecorder:
    """Collects spans for one simulation run.

    Owns the id spaces: trace ids (one per end-to-end I/O job) and span
    ids (globally unique within the run, so parent links survive the
    trip across the simulated wire as plain ints on the request).
    """

    enabled = True

    def __init__(self, env):
        self.env = env
        self.spans: list[Span] = []
        self._next_trace = 0
        self._next_span = 0

    # ------------------------------------------------------------------
    def new_trace(self) -> int:
        """Allocate a fresh trace id (one end-to-end I/O job)."""
        self._next_trace += 1
        return self._next_trace

    def begin(
        self,
        name: str,
        cat: str,
        actor: str,
        trace_id: int = -1,
        parent: Union[Span, int, None] = None,
        **attrs,
    ) -> Span:
        """Open a span starting now; close it with :meth:`end`."""
        if trace_id < 0:
            trace_id = self.new_trace()
        self._next_span += 1
        span = Span(
            name,
            cat,
            actor,
            trace_id,
            self._next_span,
            _parent_id(parent),
            self.env.now,
            None,
            attrs,
        )
        self.spans.append(span)
        return span

    def end(self, span: Span, **attrs) -> Span:
        """Close a span at the current simulated instant."""
        span.end = self.env.now
        if attrs:
            span.attrs.update(attrs)
        return span

    def add(
        self,
        name: str,
        cat: str,
        actor: str,
        start: float,
        end: float,
        trace_id: int = -1,
        parent: Union[Span, int, None] = None,
        **attrs,
    ) -> Span:
        """Record a closed span with explicit boundaries."""
        if trace_id < 0:
            trace_id = self.new_trace()
        self._next_span += 1
        span = Span(
            name,
            cat,
            actor,
            trace_id,
            self._next_span,
            _parent_id(parent),
            start,
            end,
            attrs,
        )
        self.spans.append(span)
        return span

    # ------------------------------------------------------------------
    def open_spans(self) -> list[Span]:
        """Spans begun but never ended (should be empty after a run)."""
        return [s for s in self.spans if s.end is None]

    def traces(self) -> set[int]:
        return {s.trace_id for s in self.spans}

    def __len__(self) -> int:
        return len(self.spans)


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    Instrumentation sites guard with ``if tracer.enabled:`` so none of
    these methods run on hot paths; they exist so unguarded incidental
    uses (e.g. passing ``trace=None`` through) stay harmless.
    """

    enabled = False
    spans: tuple = ()

    def new_trace(self) -> int:
        return -1

    def begin(self, *args, **kwargs) -> None:
        return None

    def end(self, span, **kwargs) -> None:
        return None

    def add(self, *args, **kwargs) -> None:
        return None

    def open_spans(self) -> list:
        return []

    def traces(self) -> set:
        return set()

    def __len__(self) -> int:
        return 0


#: Shared disabled singleton; ``PVFS`` uses it when ``config.trace`` is off.
NULL_TRACER = NullTracer()
