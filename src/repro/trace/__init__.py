"""``repro.trace`` — end-to-end request tracing on the simulated clock.

Enable with ``PVFSConfig(trace=True)``; the file system then owns a
:class:`TraceRecorder` and every I/O job gets a trace id that follows it
from the MPI-IO entry point through the client, across the simulated
network, and through all four server pipeline stages.  Export with
:func:`chrome_trace` (Perfetto-loadable) or :func:`summarize_trace`
(aggregates for ``repro-bench json``).  See ``docs/observability.md``.
"""

from .core import NULL_TRACER, NullTracer, Span, TraceRecorder
from .critical import (
    RESOURCE_ORDER,
    BlameReport,
    Segment,
    critical_path,
    reconcile_blame,
)
from .export import (
    SERVER_STAGE_SPANS,
    chrome_trace,
    reconcile,
    summarize_trace,
    validate_chrome,
    write_chrome_trace,
)

__all__ = [
    "Span",
    "TraceRecorder",
    "NullTracer",
    "NULL_TRACER",
    "chrome_trace",
    "write_chrome_trace",
    "summarize_trace",
    "validate_chrome",
    "reconcile",
    "SERVER_STAGE_SPANS",
    "RESOURCE_ORDER",
    "Segment",
    "BlameReport",
    "critical_path",
    "reconcile_blame",
]
