"""MPI-IO hints (the subset ROMIO honours that matters here)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["Hints"]

_4MiB = 4 * 1024 * 1024


@dataclass
class Hints:
    """Tunables, defaulting to the paper's configuration (§4.1).

    "All data sieving and collective operations were conducted with a
    4 Mbyte buffer size."
    """

    #: Collective (two-phase) buffer size per aggregator.
    cb_buffer_size: int = _4MiB
    #: Number of aggregator ranks (None = all ranks, ROMIO's default
    #: of one per node collapses to this in the paper's setups).
    cb_nodes: Optional[int] = None
    #: Data sieving read buffer.
    ind_rd_buffer_size: int = _4MiB
    #: Data sieving write buffer.
    ind_wr_buffer_size: int = _4MiB
    #: Default access method for independent operations
    #: ('posix' | 'data_sieving' | 'list_io' | 'datatype_io').
    independent_method: str = "datatype_io"
    #: Collective method ('two_phase' or any independent method name,
    #: in which case collectives degrade to independent operations).
    collective_method: str = "two_phase"
    #: How aggregators write rounds whose incoming data has holes:
    #: 'rmw' (ROMIO's read-modify-write, the default) or a
    #: noncontiguous file-system interface — 'list_io' / 'datatype_io'
    #: — the §5 suggestion of "leveraging datatype I/O underneath
    #: two-phase I/O".
    tp_sparse_method: str = "rmw"
    #: Collective datatype I/O: bytes of each rank's packed stream per
    #: pipelined round.  Each (server, round) pair costs one aggregated
    #: request, so smaller rounds trade request overhead for overlap of
    #: disk service with data reception.  2 MiB measures best on the
    #: paper-scale Block3D/FLASH sweeps (fewer segment headers than
    #: 1 MiB while the drain cascade keeps the tail short).
    coll_round_bytes: int = 2 * 1024 * 1024
    #: Collective datatype I/O: target size of the final "drain" round.
    #: A small last round keeps the tail — the service time after the
    #: last byte arrives — short, which is where the collective beats
    #: the independent methods at high client counts.
    coll_drain_bytes: int = 64 * 1024

    def __post_init__(self):
        for field in (
            "cb_buffer_size",
            "ind_rd_buffer_size",
            "ind_wr_buffer_size",
            "coll_round_bytes",
            "coll_drain_bytes",
        ):
            if getattr(self, field) <= 0:
                raise ValueError(f"{field} must be positive")
        if self.cb_nodes is not None and self.cb_nodes < 1:
            raise ValueError("cb_nodes must be positive")
