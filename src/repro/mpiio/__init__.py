"""ROMIO-like MPI-IO layer.

Implements MPI-IO file views and the five access methods the paper
benchmarks, over the PVFS client library and a simulated MPI runtime:

* ``posix`` — one contiguous file-system operation per contiguous
  region (§2.1);
* ``data_sieving`` — large buffered reads / read-modify-write writes
  (§2.2; writes need file locking, so they are unavailable on PVFS);
* ``two_phase`` — collective aggregation with file domains and a
  collective buffer (§2.3);
* ``list_io`` — flattened offset–length lists, bounded per request
  (§2.4);
* ``datatype_io`` — dataloops shipped to the file system (§3).

Entry points: :class:`SimMPI` to spawn ranks, :class:`File` for I/O,
:data:`METHODS` for the registry.
"""

from .comm import SimMPI, Comm, RankContext
from .hints import Hints
from .view import FileView
from .file import File, MPIIOCounters
from .adio import METHODS, register_method

__all__ = [
    "SimMPI",
    "Comm",
    "RankContext",
    "Hints",
    "FileView",
    "File",
    "MPIIOCounters",
    "METHODS",
    "register_method",
]
