"""List I/O (paper §2.4).

ROMIO flattens the memory and file datatypes into offset–length lists
and describes the access with list I/O operations, each carrying at
most ``list_io_max_regions`` (64) pairs *on either side*.  Operation
boundaries therefore fall wherever either list reaches the bound — so
the operation count is driven by the denser of the two lists, which is
what makes FLASH (8-byte memory pieces) so expensive for list I/O.
"""

from __future__ import annotations

import numpy as np

from ...regions import Regions
from ..adio import AccessMethod, register_method

__all__ = ["listio_read", "listio_write", "dual_bounded_cuts"]


def dual_bounded_cuts(
    mem_regions: Regions, file_regions: Regions, limit: int
) -> np.ndarray:
    """Stream positions where list I/O operations must be cut.

    Returns the sorted cut positions (including 0 and the total), such
    that between consecutive cuts neither the memory nor the file list
    exceeds ``limit`` regions.
    """
    total = file_regions.total_bytes
    cuts = {0, total}
    for regs in (mem_regions, file_regions):
        if regs.count > limit:
            ends = np.cumsum(regs.lengths)
            cuts.update(int(x) for x in ends[limit - 1 :: limit])
    return np.array(sorted(c for c in cuts if 0 <= c <= total), dtype=np.int64)


def _build_ops(op):
    """Cut the access into list I/O operations.

    Returns ``(fast_pieces, ops, flattened)``: when every operation
    holds exactly one file region (e.g. FLASH's 8-byte memory pieces),
    ``fast_pieces`` is a single vectorized :class:`Regions` driving the
    one-op-per-region client path; otherwise ``ops`` is the per-op list.
    """
    mem = op.mem_regions()
    fil = op.file_regions()
    if mem.total_bytes != fil.total_bytes:
        raise ValueError(
            f"memory stream ({mem.total_bytes}B) and file stream "
            f"({fil.total_bytes}B) sizes differ"
        )
    limit = op.fs.system.config.list_io_max_regions
    cuts = dual_bounded_cuts(mem, fil, limit)
    flattened = mem.count + fil.count
    pieces = fil.split_at_stream(cuts)
    n_ops = len(cuts) - 1
    if pieces.count == n_ops:
        return pieces, None, flattened
    piece_ends = np.cumsum(pieces.lengths)
    bounds = np.searchsorted(piece_ends, cuts, side="right")
    ops = [
        pieces[int(a) : int(b)]
        for a, b in zip(bounds[:-1], bounds[1:])
        if b > a
    ]
    return None, ops, flattened


def listio_read(op):
    pieces, ops, flattened = _build_ops(op)
    yield op.charge_flatten(flattened)
    if pieces is not None:
        from ...pvfs.protocol import OP_LIST

        stream = yield from op.fs.read_sequence(
            op.fh, pieces, OP_LIST, phantom=op.phantom, trace=op.span
        )
    else:
        stream = yield from op.fs.read_list(
            op.fh, ops, phantom=op.phantom, trace=op.span
        )
    yield op.mem_cost()
    op.unpack_mem(stream)


def listio_write(op):
    pieces, ops, flattened = _build_ops(op)
    yield op.charge_flatten(flattened)
    yield op.mem_cost()
    stream = op.pack_mem()
    if pieces is not None:
        from ...pvfs.protocol import OP_LIST

        yield from op.fs.write_sequence(
            op.fh, pieces, OP_LIST, data=stream, trace=op.span
        )
    else:
        yield from op.fs.write_list(op.fh, ops, stream, trace=op.span)


register_method(
    AccessMethod(
        "list_io",
        listio_read,
        listio_write,
        description="bounded offset-length lists per request (§2.4)",
    )
)
