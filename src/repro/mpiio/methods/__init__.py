"""Built-in access methods (imported for registration side effects)."""

from . import (  # noqa: F401
    posix,
    sieving,
    listio,
    dtype,
    twophase,
    collective,
)

__all__ = ["posix", "sieving", "listio", "dtype", "twophase", "collective"]
