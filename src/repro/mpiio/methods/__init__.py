"""Built-in access methods (imported for registration side effects)."""

from . import posix, sieving, listio, dtype, twophase  # noqa: F401

__all__ = ["posix", "sieving", "listio", "dtype", "twophase"]
