"""Two-phase collective I/O (paper §2.3, Thakur & Choudhary).

All ranks participate.  The union of the collective access is split
into contiguous *file domains*, one per aggregator; aggregators move
data to/from storage in collective-buffer-sized rounds while the other
phase redistributes data between ranks over the (simulated) network:

* access ranges are allgathered;
* each rank pre-sends the offset–length lists of its pieces inside
  every aggregator's domain (ROMIO's ``ADIOI_Calc_others_req``) — this
  metadata rides the real network too;
* **write**: per round, ranks ship data into the owning aggregator,
  which assembles its collective buffer and writes one contiguous
  piece (prefixing a read-modify-write when the incoming data leaves
  holes — permitted without locks by MPI-IO's consistency semantics,
  paper §4.1);
* **read**: per round, the aggregator reads one contiguous piece and
  ships each rank its bytes.

``resent_bytes`` counts the file data exchanged with *other* ranks —
the paper's "Resent Data per Client" column.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...regions import Regions
from ..adio import AccessMethod, register_method

__all__ = ["two_phase_read", "two_phase_write"]


def _clip_positions(regions: Regions, spos: np.ndarray, lo: int, hi: int):
    """Clip regions (with absolute stream positions) to ``[lo, hi)``."""
    starts = np.maximum(regions.offsets, lo)
    ends = np.minimum(regions.offsets + regions.lengths, hi)
    lens = ends - starts
    keep = lens > 0
    if not keep.any():
        return Regions.empty(), spos[:0]
    return (
        Regions(starts[keep], lens[keep], _trusted=True),
        spos[keep] + (starts[keep] - regions.offsets[keep]),
    )


class _Plan:
    """Everything both sides of the exchange can derive consistently."""

    def __init__(self, op, ranges):
        self.op = op
        self.ranges = ranges  # per-rank (lo, hi) or None
        present = [r for r in ranges if r is not None]
        if present:
            self.lo = min(r[0] for r in present)
            self.hi = max(r[1] for r in present)
        else:
            self.lo = self.hi = 0
        size = op.ctx.size
        cb_nodes = op.hints.cb_nodes or size
        self.aggregators = list(range(min(cb_nodes, size)))
        span = self.hi - self.lo
        n_agg = len(self.aggregators)
        fd = -(-span // n_agg) if span else 0
        self.domains = []
        for i in range(n_agg):
            d_lo = min(self.lo + i * fd, self.hi)
            d_hi = min(d_lo + fd, self.hi)
            self.domains.append((d_lo, d_hi))
        bufsize = op.hints.cb_buffer_size
        self.rounds = max(
            (-(-(d_hi - d_lo) // bufsize) for d_lo, d_hi in self.domains),
            default=0,
        )
        self.bufsize = bufsize

    def interval(self, agg_index: int, rnd: int) -> tuple[int, int]:
        d_lo, d_hi = self.domains[agg_index]
        lo = min(d_lo + rnd * self.bufsize, d_hi)
        return lo, min(lo + self.bufsize, d_hi)

    def range_overlaps(self, rank: int, lo: int, hi: int) -> bool:
        r = self.ranges[rank]
        return r is not None and r[0] < hi and r[1] > lo


def _exchange_access_lists(op, plan, my_regions):
    """ROMIO's others_req: ship per-domain offset–length lists.

    Returns ``(mine_per_domain, others)`` where ``mine_per_domain`` maps
    aggregator index → (clipped regions, stream positions) of *my* data
    in that domain, and ``others`` (aggregators only) maps source rank →
    its file regions within my domain.
    """
    comm = op.ctx.comm
    costs = op.costs
    my_rank = comm.rank

    mine: dict[int, tuple[Regions, np.ndarray]] = {}
    outgoing = {}
    # file domains tile [plan.lo, plan.hi) contiguously, so every
    # domain's share of my regions comes out of one vectorized
    # partition pass instead of an O(n) clip per aggregator
    n_dom = len(plan.domains)
    if n_dom and all(
        plan.domains[i][1] == plan.domains[i + 1][0]
        for i in range(n_dom - 1)
    ):
        bounds = [plan.domains[0][0]] + [d_hi for _, d_hi in plan.domains]
        parts = my_regions.partition_with_stream(bounds)
    else:
        parts = [
            my_regions.clip_with_stream(d_lo, d_hi)
            for d_lo, d_hi in plan.domains
        ]
    for i, agg in enumerate(plan.aggregators):
        d_lo, d_hi = plan.domains[i]
        clipped, spos = parts[i]
        if clipped.count:
            mine[i] = (clipped, spos)
        if plan.range_overlaps(my_rank, d_lo, d_hi):
            outgoing[agg] = (
                clipped,
                16 + clipped.count * costs.listio_pair_bytes,
            )

    my_agg_index = (
        plan.aggregators.index(my_rank)
        if my_rank in plan.aggregators
        else None
    )
    expected = []
    if my_agg_index is not None:
        d_lo, d_hi = plan.domains[my_agg_index]
        expected = [
            r
            for r in range(comm.size)
            if plan.range_overlaps(r, d_lo, d_hi)
        ]
    received = yield from comm.alltoallv(outgoing, expected, tag="others_req")
    others = {src: payload for src, (payload, _n) in received.items()}
    return mine, others, my_agg_index


def _two_phase(op):
    comm = op.ctx.comm
    costs = op.costs
    my_rank = comm.rank

    regions = op.file_regions()
    yield op.charge_flatten(regions.count)
    yield op.mem_cost()
    stream = op.pack_mem()  # None when phantom or reading
    out_stream = (
        None
        if (op.is_write or op.phantom)
        else np.zeros(op.nbytes, dtype=np.uint8)
    )

    my_range = regions.extent() if regions.count else None
    ranges = yield from comm.allgather(my_range, nbytes=16, key="tp_ranges")
    plan = _Plan(op, ranges)
    if plan.hi <= plan.lo:
        yield from comm.barrier()
        return

    mine, others, my_agg_index = yield from _exchange_access_lists(
        op, plan, regions
    )

    agg_buf: Optional[np.ndarray] = None
    if my_agg_index is not None and not op.phantom:
        agg_buf = np.zeros(plan.bufsize, dtype=np.uint8)

    for rnd in range(plan.rounds):
        # ----- outgoing data/requests for this round -----
        outgoing = {}
        sent_meta = []
        for i, agg in enumerate(plan.aggregators):
            ilo, ihi = plan.interval(i, rnd)
            if ihi <= ilo or i not in mine:
                continue
            # my pieces in this round's interval, with their positions
            # in my packed stream (clipped within the pre-computed
            # per-domain subset, not the full region list)
            clipped, spos = _clip_positions(mine[i][0], mine[i][1], ilo, ihi)
            if not clipped.count:
                continue
            if op.is_write:
                data = None
                if stream is not None:
                    data = Regions(
                        spos, clipped.lengths, _trusted=True
                    ).gather(stream)
                outgoing[agg] = ((clipped, data), clipped.total_bytes)
                if agg != my_rank:
                    op.file.counters.resent_bytes += clipped.total_bytes
            else:
                sent_meta.append((agg, clipped, spos))

        # ranks that exchange with me (as aggregator) this round
        expected = []
        if my_agg_index is not None:
            ilo, ihi = plan.interval(my_agg_index, rnd)
            if ihi > ilo:
                for src, src_regions in others.items():
                    if src_regions.clip(ilo, ihi).count:
                        expected.append(src)

        if op.is_write:
            received = yield from comm.alltoallv(
                outgoing, expected, tag=f"tpw{rnd}"
            )
            if my_agg_index is not None and (expected or received):
                yield from _aggregate_write(
                    op, plan, my_agg_index, rnd, received, agg_buf
                )
        else:
            # aggregator reads, then ships pieces to requesters
            if my_agg_index is not None and expected:
                yield from _aggregate_read(
                    op, plan, my_agg_index, rnd, expected, others
                )
            # receive my pieces (possibly from myself)
            for agg, clipped, spos in sent_meta:
                src, payload, _n = yield from comm.recv(
                    src=agg, tag=f"tpr{rnd}"
                )
                if out_stream is not None and payload is not None:
                    Regions(
                        spos, clipped.lengths, _trusted=True
                    ).scatter(out_stream, payload)
                if agg != my_rank:
                    op.file.counters.resent_bytes += clipped.total_bytes

    yield from comm.barrier()
    if out_stream is not None:
        op.unpack_mem(out_stream)


def _aggregate_write(op, plan, my_agg_index, rnd, received, agg_buf):
    """Assemble this round's collective buffer and write it out.

    Dense rounds are one contiguous write.  Rounds with holes use
    ROMIO's lock-free read-modify-write by default, or — with the
    ``tp_sparse_method`` hint — a noncontiguous write through list or
    datatype I/O (the paper's §5 "leveraging datatype I/O underneath
    two-phase I/O" suggestion), which avoids reading the gaps back.
    """
    costs = op.costs
    pieces = [payload for payload, _n in received.values()]
    if not pieces:
        return
    all_regions = Regions.concat([regs for regs, _d in pieces])
    span_lo, span_hi = all_regions.normalized().extent()
    covered = all_regions.total_bytes
    holes = (span_hi - span_lo) - covered

    # buffer assembly cost
    yield op.charge(
        all_regions.count * costs.mem_region_cost
        + covered / costs.memcpy_bandwidth
    )

    if holes > 0 and op.hints.tp_sparse_method != "rmw":
        yield from _sparse_write(op, pieces, all_regions)
        return

    chunk = None
    if holes > 0:
        chunk = yield from op.fs.read(
            op.fh, span_lo, span_hi - span_lo, phantom=op.phantom,
            trace=op.span,
        )
    elif not op.phantom:
        chunk = agg_buf[: span_hi - span_lo]
        chunk[:] = 0
    if chunk is not None:
        for regs, data in pieces:
            if data is not None:
                regs.shift(-span_lo).scatter(chunk, data)
    yield from op.fs.write(
        op.fh,
        span_lo,
        data=None if op.phantom else chunk,
        nbytes=span_hi - span_lo,
        trace=op.span,
    )


def _sparse_write(op, pieces, all_regions):
    """Write a holey round through a noncontiguous FS interface."""
    merged = all_regions.normalized()
    stream = None
    if not op.phantom:
        # assemble the packed stream in merged (ascending) order
        span_lo, span_hi = merged.extent()
        scratch = np.zeros(span_hi - span_lo, dtype=np.uint8)
        for regs, data in pieces:
            if data is not None:
                regs.shift(-span_lo).scatter(scratch, data)
        stream = merged.shift(-span_lo).gather(scratch)
    if op.hints.tp_sparse_method == "datatype_io":
        from ...dataloops import Dataloop

        lo, hi = merged.extent()
        loop = Dataloop.final_indexed(
            (merged.lengths).tolist(),
            (merged.offsets - lo).tolist(),
            1,
            hi - lo,
        )
        yield from op.fs.write_dtype(
            op.fh, loop, displacement=lo, last=merged.total_bytes,
            data=stream, trace=op.span,
        )
        return
    # list I/O, respecting the request bound
    limit = op.fs.system.config.list_io_max_regions
    ops = list(merged.split_chunks(limit))
    yield from op.fs.write_list(op.fh, ops, stream, trace=op.span)


def _aggregate_read(op, plan, my_agg_index, rnd, expected, others):
    """Read this round's span and ship each requester its pieces."""
    comm = op.ctx.comm
    costs = op.costs
    ilo, ihi = plan.interval(my_agg_index, rnd)
    needed = Regions.concat(
        [others[src].clip(ilo, ihi) for src in expected]
    ).normalized()
    span_lo, span_hi = needed.extent()
    chunk = yield from op.fs.read(
        op.fh, span_lo, span_hi - span_lo, phantom=op.phantom, trace=op.span
    )
    yield op.charge(
        needed.count * costs.mem_region_cost
        + needed.total_bytes / costs.memcpy_bandwidth
    )
    for src in expected:
        src_clipped = others[src].clip(ilo, ihi)
        data = None
        if chunk is not None:
            data = src_clipped.shift(-span_lo).gather(chunk)
        yield from comm.send(
            src, src_clipped.total_bytes, data, tag=f"tpr{rnd}"
        )


def two_phase_read(op):
    yield from _two_phase(op)


def two_phase_write(op):
    yield from _two_phase(op)


register_method(
    AccessMethod(
        "two_phase",
        two_phase_read,
        two_phase_write,
        collective=True,
        description="collective aggregation with file domains (§2.3)",
    )
)
