"""Datatype I/O (paper §3).

One file-system operation per MPI-IO call: the file view's dataloop is
shipped with a (displacement, stream-window) triple and the I/O servers
expand it themselves.  The memory side is handled locally as in every
other method.  The file-system client charges the prototype's
per-operation datatype→dataloop conversion and the client-side
job/access construction; the servers charge their own expansion.
"""

from __future__ import annotations

from ..adio import AccessMethod, register_method

__all__ = ["dtype_read", "dtype_write"]


def dtype_read(op):
    # the prototype builds the memory-side job/access lists on the
    # client (§3.2) — this is the list-processing overhead that makes
    # datatype I/O "underperform at small numbers of clients" for
    # noncontiguous memory (§4.4)
    yield op.charge_flatten(op.mem_regions().count)
    stream = yield from op.fs.read_dtype(
        op.fh,
        op.view.loop,
        displacement=op.view.displacement,
        first=op.first,
        last=op.last,
        phantom=op.phantom,
        trace=op.span,
    )
    yield op.mem_cost()
    op.unpack_mem(stream)


def dtype_write(op):
    yield op.charge_flatten(op.mem_regions().count)
    yield op.mem_cost()
    stream = op.pack_mem()
    yield from op.fs.write_dtype(
        op.fh,
        op.view.loop,
        displacement=op.view.displacement,
        first=op.first,
        last=op.last,
        data=stream,
        trace=op.span,
    )


register_method(
    AccessMethod(
        "datatype_io",
        dtype_read,
        dtype_write,
        description="dataloop shipped to the I/O servers (§3)",
    )
)
