"""Data sieving I/O (paper §2.2).

Reads: fetch the whole extent of the access in buffer-sized contiguous
pieces and extract the wanted bytes — few operations, possibly much
extra data.  Writes: a locked read-modify-write per buffer piece; on
file systems without locking (PVFS) ROMIO disables sieving writes, and
so do we (raising :class:`~repro.pvfs.errors.LockUnsupported`, which
the benchmark harness reports as "—", exactly as the paper's tables do).
"""

from __future__ import annotations

import numpy as np

from ...pvfs.errors import LockUnsupported
from ...regions import Regions
from ..adio import AccessMethod, register_method

__all__ = ["sieving_read", "sieving_write"]


def _extent_chunks(regions: Regions, bufsize: int):
    """Buffer-sized contiguous pieces covering the access extent."""
    lo, hi = regions.extent()
    cur = lo
    while cur < hi:
        yield cur, min(cur + bufsize, hi)
        cur += bufsize


def _sieve_plan(regions: Regions, bufsize: int):
    """Per-chunk hole analysis for the whole sieve up front.

    Returns ``[(lo, hi, wanted, stream_pos), ...]`` — one entry per
    buffer-sized piece of the extent, where ``wanted`` are the regions
    the application actually asked for inside ``[lo, hi)`` (everything
    else in the chunk is a hole read only to be discarded).  All chunks
    are analyzed in a single vectorized pass over the sorted
    offset/length arrays (:meth:`Regions.partition_with_stream`)
    instead of one O(n) clip per chunk; outputs and the simulated
    extraction charges derived from them are identical.
    """
    pieces = list(_extent_chunks(regions, bufsize))
    if not pieces:
        return []
    bounds = np.empty(len(pieces) + 1, dtype=np.int64)
    bounds[:-1] = [lo for lo, _ in pieces]
    bounds[-1] = pieces[-1][1]
    parts = regions.partition_with_stream(bounds)
    return [
        (lo, hi, clipped, spos)
        for (lo, hi), (clipped, spos) in zip(pieces, parts)
    ]


def sieving_read(op):
    regions = op.file_regions()
    yield op.charge_flatten(regions.count)
    if not regions.count:
        return
    out = None if op.phantom else np.zeros(op.nbytes, dtype=np.uint8)
    bufsize = op.hints.ind_rd_buffer_size
    for lo, hi, clipped, spos in _sieve_plan(regions, bufsize):
        chunk = yield from op.fs.read(
            op.fh, lo, hi - lo, phantom=op.phantom, trace=op.span
        )
        # extraction from the sieve buffer into the packed stream
        yield op.charge(
            clipped.count * op.costs.mem_region_cost
            + clipped.total_bytes / op.costs.memcpy_bandwidth
        )
        if out is not None:
            picked = clipped.shift(-lo).gather(chunk)
            Regions(spos, clipped.lengths, _trusted=True).scatter(out, picked)
    yield op.mem_cost()
    op.unpack_mem(out)


def sieving_write(op):
    fs_system = op.fs.system
    if not fs_system.config.supports_locking:
        raise LockUnsupported(
            "data sieving writes need byte-range locking, which PVFS "
            "does not provide (paper §4.1)"
        )
    regions = op.file_regions()
    yield op.charge_flatten(regions.count)
    if not regions.count:
        return
    yield op.mem_cost()
    stream = op.pack_mem()
    bufsize = op.hints.ind_wr_buffer_size
    locks = fs_system.locks
    for lo, hi, clipped, spos in _sieve_plan(regions, bufsize):
        token = yield from locks.acquire(op.fh.handle, lo, hi, op.fs.name)
        try:
            chunk = yield from op.fs.read(
                op.fh, lo, hi - lo, phantom=op.phantom, trace=op.span
            )
            yield op.charge(
                clipped.count * op.costs.mem_region_cost
                + clipped.total_bytes / op.costs.memcpy_bandwidth
            )
            if stream is not None and chunk is not None:
                piece = Regions(
                    spos, clipped.lengths, _trusted=True
                ).gather(stream)
                clipped.shift(-lo).scatter(chunk, piece)
            yield from op.fs.write(
                op.fh, lo, data=chunk, nbytes=hi - lo, trace=op.span
            )
        finally:
            locks.release(token)


register_method(
    AccessMethod(
        "data_sieving",
        sieving_read,
        sieving_write,
        description="buffered extent access, RMW writes under locks (§2.2)",
    )
)
