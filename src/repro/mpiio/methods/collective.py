"""Collective datatype I/O — the sixth access method.

The fusion the paper's related work points at (Thakur's two-phase
optimizations + datatype I/O): a collective where *aggregator* ranks
merge the per-rank datatype views of the communicator into one
composite request per server, instead of every rank sending every
server its own.

Protocol, per collective call:

1. every rank expands its own file view once (client side, exactly the
   independent datatype path) and cuts its packed stream into pipelined
   *rounds* (``Hints.coll_round_bytes`` plus a small final drain round,
   ``Hints.coll_drain_bytes``);
2. writes: each rank ships one :class:`CollSegment` per (server,
   round) — data goes *directly* rank → server, never through an
   aggregator's NIC;
3. an allgather shares each rank's (dataloop fingerprint, view window,
   per-round byte matrix); identical views dedup by fingerprint — the
   FLASH many-identical-views case collapses to one view + rank list;
4. aggregators (``Hints.cb_nodes``, default all ranks) ship ONE
   aggregated ``OP_COLL`` request per owned (server, round):
   O(servers·rounds) control messages per collective, constant in the
   rank count, vs the independent path's O(ranks·servers);
5. servers re-expand each participant's round window themselves
   (through the expansion cache, so deduped views are expanded once),
   coalesce the union for the access structures and the disk arm, park
   write rounds until the round's segments arrive, and scatter read
   rounds straight back to the ranks as segments;
6. a closing barrier gives MPI collective semantics (writes are on the
   servers when any rank returns).

Memory side: unlike the independent methods, the packed stream is
produced by the PR-7 vectorized dataloop walk directly — the redundant
ROMIO-style flatten-to-offset/length-lists pass (``charge_flatten``) is
skipped, which is most of the win on FLASH-like noncontiguous memory.

Fault tolerance (armed fault configs only; the fault-free path is
bit-identical with and without this machinery):

* every write segment is acknowledged per (round, server)
  (:class:`~repro.pvfs.protocol.CollAck`) and resent idempotently on an
  RTO ladder; servers dedup replayed rounds by (coll id, round) and
  re-ack from the done-ring;
* lost read scatter segments are re-fetched
  (:class:`~repro.pvfs.protocol.CollFetch`) from the server's retained
  scatter buffer;
* an aggregator whose server times out past
  ``FaultConfig.coll_reelect_after`` hands its rounds to the next
  surviving aggregator slot (deterministic ring election through the
  shared :class:`~repro.pvfs.collective.CollRecovery` state);
  :class:`~repro.pvfs.errors.RetriesExhausted` surfaces only when every
  candidate is dead and the ladder is spent.

The recovery engine lives in ``PVFSClient.coll_complete``; the closing
barrier is preceded by a completion gate so no aggregator leaves while
re-elected work is outstanding anywhere.
"""

from __future__ import annotations

import numpy as np

from ...dataloops import wire_size
from ...pvfs.collective import CollRecovery
from ...pvfs.protocol import OP_COLL, CollOp, CollPart, CollSegment, IORequest
from ...regions import Regions
from ..adio import AccessMethod, register_method
from .dtype import dtype_read, dtype_write

__all__ = ["collective_read", "collective_write", "round_cuts"]

_COLL_KEY = "colldt"

#: allgather record indices (plain tuple to keep the wire model honest)
_FP, _LOOP, _DISP, _FIRST, _NBYTES, _NAME, _MBOX, _TENANT, _MAT = range(9)


def round_cuts(total: int, round_bytes: int, drain_bytes: int) -> list[int]:
    """Cut positions of a rank's packed stream into pipelined rounds.

    Full rounds of ``round_bytes``, then a geometric *drain cascade*
    at the end: round sizes halve per step from ``round_bytes`` down
    to ``drain_bytes``.  Each cascade round's server-side disk work
    hides under the reception of the round before it (disk is several
    times faster than a server's share of the incoming wire), so the
    service tail left after the last byte lands is a drain-sized
    round, not a full one.  The cascade is deliberately deeper than
    the disk ratio alone requires: ranks drift out of lockstep by up
    to a round (the send window), and a long cascade keeps even a
    straggler's large rounds well clear of the wire's close.  A
    single partial round (if any) leads the stream rather than
    trailing it.

    >>> round_cuts(10, 4, 1)
    [0, 3, 7, 9, 10]
    >>> round_cuts(3, 4, 1)
    [0, 2, 3]
    >>> round_cuts(1, 4, 1)
    [0, 1]
    >>> round_cuts(0, 4, 1)
    [0]
    """
    if total <= 0:
        return [0]
    sizes_rev = []  # round sizes, last round first
    size = drain_bytes
    rem = total
    while rem > 0 and size < round_bytes:
        sizes_rev.append(min(size, rem))
        rem -= sizes_rev[-1]
        size *= 2
    while rem > 0:
        sizes_rev.append(min(round_bytes, rem))
        rem -= sizes_rev[-1]
    cuts = [0]
    for size in reversed(sizes_rev):
        cuts.append(cuts[-1] + size)
    return cuts


def _collective_op(op):
    ctx = op.ctx
    comm = ctx.comm
    if ctx.size == 1:
        # degenerate communicator: bit-identical to independent
        # datatype I/O (nothing to aggregate)
        if op.is_write:
            yield from dtype_write(op)
        else:
            yield from dtype_read(op)
        return

    fs = op.fs
    env = op.env
    costs = op.costs
    fh = op.fh
    dist = fh.dist
    hints = op.hints
    loop = op.view.loop
    disp = op.view.displacement
    first, last = op.first, op.last
    nbytes = op.nbytes
    tracer = fs.system.tracer
    metrics = fs.system.metrics
    span = None
    if tracer.enabled and op.span is not None:
        span = tracer.begin(
            "mpiio.collective",
            "mpiio",
            f"rank{comm.rank}",
            trace_id=op.span.trace_id,
            parent=op.span,
            nbytes=nbytes,
            ranks=ctx.size,
        )

    fs.counters.io_ops += 1
    stream = None
    if op.is_write:
        # pack straight from the dataloop walk — no redundant ROMIO
        # flatten pass (see module docstring)
        yield op.mem_cost()
        stream = op.pack_mem()

    # own view, expanded once (identical charges to the independent
    # datatype path: conversion + per-region construction)
    yield from fs.charge_convert(loop)
    regions = yield from fs.expand_view(loop, disp, first, last)
    yield env.timeout(costs.fs_op_client_cost)

    # cut the stream into rounds and split each round per server; the
    # region bookkeeping is covered by the per-region client charge
    # above (same stance as the independent path's job construction)
    cuts = round_cuts(nbytes, hints.coll_round_bytes, hints.coll_drain_bytes)
    R = len(cuts) - 1
    n_servers = dist.n_servers
    mat = np.zeros((max(R, 0), n_servers), dtype=np.int64)
    rsplits: list[dict] = [{} for _ in range(R)]
    for r in range(R):
        sub = regions.slice_stream(cuts[r], cuts[r + 1])
        for server, sp in dist.split(sub).items():
            if sp.nbytes == 0:
                continue
            rsplits[r][server] = sp
            mat[r, server] = sp.nbytes

    epoch = comm.epoch(_COLL_KEY)
    coll_id = (fh.handle, epoch, op.is_write)

    # ---- control path: gather every rank's (fingerprint, window,
    # round matrix); int32 per-cell byte counts on the wire.  Control
    # runs BEFORE the data segments so the aggregated requests reach
    # the servers ahead of the data: a parked round is planned and
    # written the moment its last segment lands, overlapping server
    # CPU and disk with the reception of later rounds.
    rec = (
        loop.fingerprint(),
        loop,
        disp,
        first,
        nbytes,
        fs.name,
        fs.mailbox,
        fs.tenant,
        mat,
    )
    rec_bytes = wire_size(loop) + 48 + 4 * mat.size
    records = yield from comm.allgather(rec, nbytes=rec_bytes, key=_COLL_KEY)

    # fingerprint dedup: identical views ship once per request
    fp_index: dict[bytes, int] = {}
    view_loops: list = []
    rank_view: list[int] = []
    for r_ in records:
        idx = fp_index.get(r_[_FP])
        if idx is None:
            idx = len(view_loops)
            fp_index[r_[_FP]] = idx
            view_loops.append(r_[_LOOP])
        rank_view.append(idx)
    views = tuple(view_loops)
    views_merged = len(records) - len(views)

    # per-(round, server) totals across ranks (rows padded to max R)
    max_rounds = max((r_[_MAT].shape[0] for r_ in records), default=0)
    totals = np.zeros((max_rounds, n_servers), dtype=np.int64)
    for r_ in records:
        m = r_[_MAT]
        totals[: m.shape[0]] += m
    active = totals > 0
    actual_requests = int(active.sum())
    indep_requests = sum(
        int(((r_[_MAT] > 0).any(axis=0)).sum()) for r_ in records
    )
    requests_saved = indep_requests - actual_requests

    size = ctx.size
    n_agg = min(hints.cb_nodes or size, size)
    agg_ranks = [(i * size) // n_agg for i in range(n_agg)]
    rank_cuts = [
        round_cuts(r_[_NBYTES], hints.coll_round_bytes, hints.coll_drain_bytes)
        for r_ in records
    ]
    my_agg = agg_ranks.index(comm.rank) if comm.rank in agg_ranks else None

    # ---- failover state (armed fault configs only; pure Python
    # bookkeeping, no simulated time — the fault-free path is
    # bit-identical with ft False)
    faults = fs.system.faults
    ft = faults.enabled and faults.armed
    rec_state = None
    if ft:

        def _build_request(server: int, rno: int) -> IORequest:
            # rebuild the aggregated descriptor for one (server, round)
            # from the allgathered records — identical on every rank.
            # Views go ON the wire: the adopting aggregator never
            # shipped them to this server before.
            parts = []
            for i, r_ in enumerate(records):
                m = r_[_MAT]
                if rno >= m.shape[0] or m[rno, server] == 0:
                    continue
                c_ = rank_cuts[i]
                parts.append(
                    CollPart(
                        client=r_[_NAME],
                        reply_to=r_[_MBOX],
                        view=rank_view[i],
                        displacement=r_[_DISP],
                        first=r_[_FIRST] + c_[rno],
                        last=r_[_FIRST] + c_[rno + 1],
                        nbytes=int(m[rno, server]),
                    )
                )
            return IORequest(
                handle=fh.handle,
                is_write=op.is_write,
                op_kind=OP_COLL,
                coll=CollOp(
                    coll_id=coll_id,
                    round_no=rno,
                    rounds=max_rounds,
                    views=views,
                    parts=tuple(parts),
                    views_on_wire=True,
                ),
                payload_nbytes=int(totals[rno, server]),
                phantom=op.phantom,
                server=server,
            )

        rec_state = fs.system.coll_recovery.setdefault(
            coll_id,
            CollRecovery(coll_id, n_agg, tuple(agg_ranks), _build_request),
        )
        if my_agg is not None:
            # registered before any request is posted (and hence before
            # any timeout can elect), so a handoff target is always
            # addressable
            rec_state.mailboxes[my_agg] = fs.mailbox

    # ---- aggregator role: one request per owned (server, round)
    reqs = []
    if my_agg is not None:
        for s in range(n_servers):
            if s % n_agg != my_agg:
                continue
            shipped_views = False
            for r in range(max_rounds):
                if not active[r, s]:
                    continue
                parts = []
                for i, r_ in enumerate(records):
                    m = r_[_MAT]
                    if r >= m.shape[0] or m[r, s] == 0:
                        continue
                    c_ = rank_cuts[i]
                    parts.append(
                        CollPart(
                            client=r_[_NAME],
                            reply_to=r_[_MBOX],
                            view=rank_view[i],
                            displacement=r_[_DISP],
                            first=r_[_FIRST] + c_[r],
                            last=r_[_FIRST] + c_[r + 1],
                            nbytes=int(m[r, s]),
                        )
                    )
                c = CollOp(
                    coll_id=coll_id,
                    round_no=r,
                    rounds=max_rounds,
                    views=views,
                    parts=tuple(parts),
                    views_on_wire=not shipped_views,
                )
                shipped_views = True
                reqs.append(
                    IORequest(
                        handle=fh.handle,
                        is_write=op.is_write,
                        op_kind=OP_COLL,
                        coll=c,
                        payload_nbytes=int(totals[r, s]),
                        phantom=op.phantom,
                        req_id=fs._req_id(),
                        reply_to=fs.mailbox,
                        client=fs.name,
                        tenant=fs.tenant,
                        server=s,
                    )
                )
    # post control first: the aggregated requests travel ahead of the
    # data, so servers plan and write each parked round the moment its
    # last segment lands (overlapped with later rounds' reception)
    posted = None
    if reqs:
        # one client fs-op charge for the whole posting: the aggregated
        # requests are one batched collective operation, not per-round
        # independent calls (servers still pay per-request decode)
        yield env.timeout(costs.fs_op_client_cost)
        posted = yield from fs.coll_post(reqs, span or op.span)

    # ---- data path (writes): stream this rank's segments, round by
    # round, straight to the servers (never through an aggregator NIC).
    # Each rank starts a round at a different server (rotated by rank)
    # so the paced sends spread over all server NICs instead of
    # convoying on server 0.
    sent_segs: dict = {}
    if op.is_write:
        for r in range(R):
            base = cuts[r]
            width = cuts[r + 1] - base
            order = sorted(rsplits[r])
            rot = comm.rank % len(order) if order else 0
            for server in order[rot:] + order[:rot]:
                sp = rsplits[r][server]
                payload = None
                if stream is not None:
                    payload = Regions(
                        sp.stream_pos, sp.regions.lengths, _trusted=True
                    ).gather(stream[base : base + width])
                seg = CollSegment(
                    coll_id, r, server, fs.name, int(sp.nbytes), payload
                )
                if span is not None:
                    seg.trace_id = span.trace_id
                    seg.trace_parent = span.span_id
                if ft:
                    # ack-ladder bookkeeping: the server acks this
                    # (round, server) to our mailbox once applied
                    seg.reply_to = fs.mailbox
                    sent_segs[(server, r)] = seg
                yield from fs.coll_send_segment(server, seg)
        fs.counters.bytes_written += nbytes

    segs: dict = {}
    if ft:
        expected = None
        if not op.is_write:
            expected = [
                (s, r) for r in range(R) for s in rsplits[r] if mat[r, s] > 0
            ]
        _, segs = yield from fs.coll_complete(
            rec_state,
            sent_segs=sent_segs or None,
            expect=expected,
            requests=reqs,
            posted=posted,
            my_agg=my_agg,
            span=span or op.span,
        )
    elif posted is not None:
        yield from fs.coll_finish(reqs, posted)

    # ---- data path (reads): collect this rank's segments and scatter
    if not op.is_write:
        if not ft:
            expected = [
                (s, r) for r in range(R) for s in rsplits[r] if mat[r, s] > 0
            ]
            segs = yield from fs.coll_collect(coll_id, expected)
        out = None if op.phantom else np.zeros(nbytes, dtype=np.uint8)
        if out is not None:
            for (s, r), seg in segs.items():
                if seg.payload is None:
                    continue
                sp = rsplits[r][s]
                Regions(
                    sp.stream_pos + cuts[r],
                    sp.regions.lengths,
                    _trusted=True,
                ).scatter(out, seg.payload)
        fs.counters.bytes_read += nbytes
        yield op.mem_cost()
        op.unpack_mem(out)

    if comm.rank == 0 and metrics.enabled:
        # the saved-requests counter is monotone; a small communicator
        # whose round pipeline issues more aggregated requests than the
        # independent path would clamps at zero (the trace span below
        # keeps the signed value)
        metrics.collective(views_merged, max(requests_saved, 0))
    if span is not None:
        tracer.end(
            span,
            rounds=R,
            views_merged=views_merged,
            requests_saved=requests_saved,
        )

    # collective semantics: nobody returns before the data is on the
    # servers (aggregators arrive here only after every round's ack).
    # Under armed faults, aggregators additionally hold at the
    # completion gate until no re-elected work is outstanding anywhere
    # — a rank parked at the barrier stops servicing its mailbox, and
    # a handoff stranded there would deadlock the survivors.
    if ft and my_agg is not None:
        yield from fs.coll_gate(rec_state, my_agg=my_agg, span=span or op.span)
    yield from comm.barrier()
    if ft and comm.rank == 0:
        # every rank is past the gate once the barrier releases; the
        # shared failover state is dead weight after that
        fs.system.coll_recovery.pop(coll_id, None)


def collective_read(op):
    yield from _collective_op(op)


def collective_write(op):
    yield from _collective_op(op)


register_method(
    AccessMethod(
        "collective_dtype",
        collective_read,
        collective_write,
        collective=True,
        description=(
            "aggregated per-server composite dataloops, O(servers) "
            "requests per collective (docs/methods.md §7)"
        ),
    )
)
