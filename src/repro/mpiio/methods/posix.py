"""POSIX I/O (paper §2.1).

The naive baseline: flatten the file view and issue one contiguous
file-system operation per contiguous region, synchronously and in
order.  For the paper's workloads this means hundreds to hundreds of
thousands of operations per client — "a nearly unusable system from the
performance perspective" (§5).
"""

from __future__ import annotations

import numpy as np

from ..adio import AccessMethod, register_method

__all__ = ["posix_read", "posix_write"]


def _pieces(op):
    """One piece per contiguous (memory ∩ file) run.

    A POSIX call moves one contiguous range in memory *and* in file, so
    the access is cut at both lists' boundaries — for FLASH this is what
    produces one 8-byte operation per variable value (Table 3).
    """
    fil = op.file_regions()
    mem = op.mem_regions()
    if mem.count > 1:
        fil = fil.split_at_stream(np.cumsum(mem.lengths))
    return fil, mem.count + fil.count


def posix_read(op):
    regions, flattened = _pieces(op)
    yield op.charge_flatten(flattened)
    stream = yield from op.fs.read_posix(
        op.fh, regions, phantom=op.phantom, trace=op.span
    )
    yield op.mem_cost()
    op.unpack_mem(stream)


def posix_write(op):
    regions, flattened = _pieces(op)
    yield op.charge_flatten(flattened)
    yield op.mem_cost()
    stream = op.pack_mem()
    yield from op.fs.write_posix(op.fh, regions, stream, trace=op.span)


register_method(
    AccessMethod(
        "posix",
        posix_read,
        posix_write,
        description="one contiguous FS operation per region (§2.1)",
    )
)
