"""MPI-IO file objects and the operation context handed to methods."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..datatypes import BYTE, Datatype
from ..pvfs.client import FileHandle
from ..regions import Regions
from .adio import get_method
from .comm import RankContext
from .hints import Hints
from .view import FileView

__all__ = ["File", "IOOperation", "MPIIOCounters"]


@dataclass
class MPIIOCounters:
    """Per-rank accounting for one file (drives the paper's tables).

    ``accessed_bytes`` and ``io_ops`` are deltas of the underlying PVFS
    client counters (so sieving waste and aggregator traffic are
    captured exactly); ``resent_bytes`` counts file data exchanged with
    *other* ranks during collective aggregation.
    """

    desired_bytes: int = 0
    accessed_bytes: int = 0
    io_ops: int = 0
    resent_bytes: int = 0
    request_desc_bytes: int = 0

    def reset(self) -> None:
        self.desired_bytes = 0
        self.accessed_bytes = 0
        self.io_ops = 0
        self.resent_bytes = 0
        self.request_desc_bytes = 0


class IOOperation:
    """One read/write call, as seen by an access method."""

    def __init__(
        self,
        file: "File",
        offset_etypes: int,
        memtype: Datatype,
        count: int,
        buf: Optional[np.ndarray],
        is_write: bool,
    ):
        self.file = file
        self.ctx: RankContext = file.ctx
        self.env = file.ctx.env
        self.fs = file.ctx.fs
        self.costs = file.ctx.fs.system.costs
        self.hints = file.hints
        self.view = file.view
        self.fh: FileHandle = file.fh
        self.offset_etypes = offset_etypes
        self.memtype = memtype
        self.count = count
        self.buf = None if buf is None else np.asarray(buf).view(np.uint8)
        self.is_write = is_write
        self.phantom = buf is None
        self.nbytes = memtype.size * count
        self.first, self.last = file.view.stream_window(
            offset_etypes, self.nbytes
        )
        #: Root trace span of this operation (``repro.trace``); set by
        #: :meth:`File._run` when tracing is enabled.  Methods pass it
        #: as ``trace=op.span`` into the PVFS client so every request
        #: of the operation joins one trace.
        self.span = None
        self._mem_regions: Optional[Regions] = None
        self._file_regions: Optional[Regions] = None

    # ------------------------------------------------------------------
    def mem_regions(self) -> Regions:
        """Memory regions of the user buffer (base offset 0)."""
        if self._mem_regions is None:
            self._mem_regions = self.memtype.flatten(self.count)
        return self._mem_regions

    def file_regions(self) -> Regions:
        """Absolute file regions of this access (materialized once)."""
        if self._file_regions is None:
            self._file_regions = self.view.file_regions(self.first, self.last)
        return self._file_regions

    # ------------------------------------------------------------------
    def charge(self, seconds: float):
        """Event for spending client CPU time."""
        return self.env.timeout(max(seconds, 0.0))

    def charge_flatten(self, region_count: int):
        """Client-side datatype flattening cost (ROMIO)."""
        return self.charge(region_count * self.costs.client_region_cost)

    def pack_mem(self) -> Optional[np.ndarray]:
        """Pack the user buffer into the operation's byte stream.

        Returns ``None`` for phantom operations.  The *cost* event must
        be charged separately via :meth:`mem_cost`.
        """
        if self.phantom:
            return None
        regions = self.mem_regions()
        return regions.gather(self.buf)

    def unpack_mem(self, stream: Optional[np.ndarray]) -> None:
        if self.phantom or stream is None:
            return
        self.mem_regions().scatter(self.buf, stream)

    def mem_cost(self):
        """CPU cost of moving the stream through the memory datatype."""
        regions = self.mem_regions()
        cost = regions.count * self.costs.mem_region_cost
        if regions.count > 1:
            cost += self.nbytes / self.costs.memcpy_bandwidth
        return self.charge(cost)


class File:
    """An open MPI-IO file on one rank.

    Not a shared object: as in MPI, every rank holds its own handle and
    the collective calls must be made by all ranks of the communicator.
    """

    def __init__(self, ctx: RankContext, fh: FileHandle, hints: Hints):
        self.ctx = ctx
        self.fh = fh
        self.hints = hints
        self.view = FileView(0, BYTE, BYTE)
        self.counters = MPIIOCounters()
        self._position = 0  # individual file pointer, in etypes

    # ------------------------------------------------------------------
    @classmethod
    def open(cls, ctx: RankContext, path: str, hints: Optional[Hints] = None):
        """Collective open (every rank calls; each contacts the manager)."""
        fh = yield from ctx.fs.open(path, create=True)
        return cls(ctx, fh, hints or Hints())

    def set_view(
        self,
        displacement: int = 0,
        etype: Datatype = BYTE,
        filetype: Optional[Datatype] = None,
    ) -> None:
        """Apply a file view; resets the individual file pointer (MPI)."""
        self.view = FileView(displacement, etype, filetype)
        self._position = 0

    # ------------------------------------------------------------------
    # individual file pointer (MPI_File_read/write/seek)
    # ------------------------------------------------------------------
    @property
    def position(self) -> int:
        """Current individual file pointer, in etypes."""
        return self._position

    def seek(self, offset: int, whence: str = "set") -> None:
        """``MPI_File_seek``: 'set', 'cur' (relative) or 'end' semantics
        are reduced to 'set'/'cur' here (no shared pointer, and 'end'
        would need a stat — use :meth:`~repro.pvfs.PVFSClient.stat`).
        """
        if whence == "set":
            new = offset
        elif whence == "cur":
            new = self._position + offset
        else:
            raise ValueError(f"unsupported whence {whence!r}")
        if new < 0:
            raise ValueError("file pointer before start of view")
        self._position = new

    def read(self, memtype, count=1, buf=None, method=None):
        """Independent read at the individual file pointer, advancing it."""
        yield from self.read_at(self._position, memtype, count, buf, method)
        self._position += (memtype.size * count) // self.view.etype.size

    def write(self, memtype, count=1, buf=None, method=None):
        """Independent write at the individual file pointer, advancing it."""
        yield from self.write_at(self._position, memtype, count, buf, method)
        self._position += (memtype.size * count) // self.view.etype.size

    # ------------------------------------------------------------------
    def read_at(
        self,
        offset: int,
        memtype: Datatype,
        count: int = 1,
        buf: Optional[np.ndarray] = None,
        method: Optional[str] = None,
    ):
        """Independent read at ``offset`` (in etypes)."""
        yield from self._independent(
            offset, memtype, count, buf, False, method
        )

    def write_at(
        self,
        offset: int,
        memtype: Datatype,
        count: int = 1,
        buf: Optional[np.ndarray] = None,
        method: Optional[str] = None,
    ):
        """Independent write at ``offset`` (in etypes)."""
        yield from self._independent(
            offset, memtype, count, buf, True, method
        )

    def iread_at(
        self,
        offset: int,
        memtype: Datatype,
        count: int = 1,
        buf: Optional[np.ndarray] = None,
        method: Optional[str] = None,
    ):
        """Nonblocking independent read (``MPI_File_iread_at``).

        Returns a request event immediately; ``yield`` it to wait
        (``MPI_Wait``).  The operation proceeds concurrently with the
        caller's other work on the simulated timeline.
        """
        return self.ctx.env.process(
            self.read_at(offset, memtype, count, buf, method),
            name="iread_at",
        )

    def iwrite_at(
        self,
        offset: int,
        memtype: Datatype,
        count: int = 1,
        buf: Optional[np.ndarray] = None,
        method: Optional[str] = None,
    ):
        """Nonblocking independent write (``MPI_File_iwrite_at``)."""
        return self.ctx.env.process(
            self.write_at(offset, memtype, count, buf, method),
            name="iwrite_at",
        )

    def read_at_all(
        self,
        offset: int,
        memtype: Datatype,
        count: int = 1,
        buf: Optional[np.ndarray] = None,
        method: Optional[str] = None,
    ):
        """Collective read — all ranks must call."""
        yield from self._collective(offset, memtype, count, buf, False, method)

    def write_at_all(
        self,
        offset: int,
        memtype: Datatype,
        count: int = 1,
        buf: Optional[np.ndarray] = None,
        method: Optional[str] = None,
    ):
        """Collective write — all ranks must call."""
        yield from self._collective(offset, memtype, count, buf, True, method)

    # ------------------------------------------------------------------
    def _independent(self, offset, memtype, count, buf, is_write, method):
        name = method or self.hints.independent_method
        m = get_method(name)
        if m.collective:
            raise ValueError(
                f"{name!r} is a collective method; use read_at_all/"
                "write_at_all"
            )
        yield from self._run(m, offset, memtype, count, buf, is_write)

    def _collective(self, offset, memtype, count, buf, is_write, method):
        name = method or self.hints.collective_method
        m = get_method(name)
        if not m.collective:
            # collective call degrading to an independent method still
            # synchronizes (MPI collective semantics)
            yield from self.ctx.comm.barrier()
            yield from self._run(m, offset, memtype, count, buf, is_write)
            yield from self.ctx.comm.barrier()
            return
        yield from self._run(m, offset, memtype, count, buf, is_write)

    def _run(self, m, offset, memtype, count, buf, is_write):
        op = IOOperation(self, offset, memtype, count, buf, is_write)
        tracer = self.ctx.fs.system.tracer
        metrics = self.ctx.fs.system.metrics
        t_start = self.ctx.env.now
        if tracer.enabled:
            # one fresh trace per MPI-IO call: the root of everything
            # the operation triggers down the stack
            op.span = tracer.begin(
                "mpiio.write" if is_write else "mpiio.read",
                "mpiio",
                f"rank{self.ctx.rank}",
                method=m.name,
                collective=m.collective,
                nbytes=op.nbytes,
            )
        before_ops = self.ctx.fs.counters.io_ops
        before_bytes = (
            self.ctx.fs.counters.bytes_read
            + self.ctx.fs.counters.bytes_written
        )
        before_desc = self.ctx.fs.counters.request_desc_bytes
        resent_before = self.counters.resent_bytes
        fn = m.write if is_write else m.read
        yield from fn(op)
        c = self.counters
        c.desired_bytes += op.nbytes
        c.io_ops += self.ctx.fs.counters.io_ops - before_ops
        c.accessed_bytes += (
            self.ctx.fs.counters.bytes_read
            + self.ctx.fs.counters.bytes_written
            - before_bytes
        )
        c.request_desc_bytes += (
            self.ctx.fs.counters.request_desc_bytes - before_desc
        )
        if op.span is not None:
            tracer.end(
                op.span,
                io_ops=self.ctx.fs.counters.io_ops - before_ops,
            )
        if metrics.enabled:
            metrics.observe_op(
                self.ctx.env.now - t_start, m.name, is_write
            )
        del resent_before  # resent_bytes is updated by the method itself
