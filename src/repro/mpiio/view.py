"""MPI-IO file views.

A view is ``(displacement, etype, filetype)``: the visible file data is
the filetype's packed stream, tiled from ``displacement``; offsets in
read/write calls count *etypes* within that stream.  The view keeps the
filetype's dataloop (built once, reused every operation — note the
paper's prototype *re*-converts per operation, which the client charges
for separately).
"""

from __future__ import annotations

from typing import Optional

from ..dataloops import Dataloop, DataloopStream, build_dataloop
from ..datatypes import BYTE, Datatype
from ..regions import Regions

__all__ = ["FileView"]


class FileView:
    """An applied file view."""

    __slots__ = ("displacement", "etype", "filetype", "loop")

    def __init__(
        self,
        displacement: int = 0,
        etype: Datatype = BYTE,
        filetype: Optional[Datatype] = None,
    ):
        if displacement < 0:
            raise ValueError("negative displacement")
        if filetype is None:
            filetype = etype
        if etype.size <= 0:
            raise ValueError("etype must have positive size")
        if filetype.size % etype.size != 0:
            raise ValueError(
                f"filetype size {filetype.size} is not a multiple of "
                f"etype size {etype.size}"
            )
        self.displacement = displacement
        self.etype = etype
        self.filetype = filetype
        self.loop: Dataloop = build_dataloop(filetype)

    # ------------------------------------------------------------------
    @property
    def is_contiguous(self) -> bool:
        """Whether the visible stream is a dense byte range."""
        return (
            self.filetype.size == self.filetype.extent
            and self.filetype.flat_region_count() <= 1
        )

    def stream_window(self, offset_etypes: int, nbytes: int) -> tuple[int, int]:
        """Packed-stream byte range of an access at the given offset."""
        if offset_etypes < 0 or nbytes < 0:
            raise ValueError("negative offset or size")
        first = offset_etypes * self.etype.size
        return first, first + nbytes

    def file_regions(
        self, first: int, last: int, max_regions: int = 1 << 20
    ) -> Regions:
        """Materialize the file regions of stream bytes ``[first, last)``.

        Offsets are absolute (displacement included).
        """
        if last <= first:
            return Regions.empty()
        size = self.loop.data_size
        if size <= 0:
            return Regions.empty()
        count = -(-last // size)
        return DataloopStream(
            self.loop,
            count=count,
            base_offset=self.displacement,
            first=first,
            last=last,
            max_regions=max_regions,
        ).regions()

    def __repr__(self) -> str:
        return (
            f"<FileView disp={self.displacement} etype={self.etype.describe()} "
            f"filetype={self.filetype.describe()}>"
        )
