"""ADIO-style access-method registry.

ROMIO routes file-system specifics through ADIO; here each access
method is a pair of generator functions ``(read, write)`` operating on
an :class:`~repro.mpiio.file.IOOperation`.  Methods register by name so
benchmarks and hints can select them uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

__all__ = ["METHODS", "register_method", "AccessMethod", "get_method"]


@dataclass(frozen=True)
class AccessMethod:
    name: str
    read: Callable
    write: Callable
    #: collective methods need every rank of the communicator to call
    collective: bool = False
    #: human-readable note for reports
    description: str = ""


METHODS: dict[str, AccessMethod] = {}


def register_method(method: AccessMethod) -> AccessMethod:
    if method.name in METHODS:
        raise ValueError(f"duplicate access method {method.name!r}")
    METHODS[method.name] = method
    return method


def get_method(name: str) -> AccessMethod:
    try:
        return METHODS[name]
    except KeyError:
        raise KeyError(
            f"unknown access method {name!r}; available: {sorted(METHODS)}"
        ) from None


def _autoload() -> None:
    """Import the built-in strategies (registration side effects)."""
    from . import methods  # noqa: F401


_autoload()
