"""Simulated MPI ranks and communicator.

Ranks are simulation processes placed two-per-node by default (the
paper's benchmark configuration for the 3-D block and FLASH tests).
Point-to-point messages and ``alltoallv`` payloads cross the simulated
network — so the two-phase exchange really contends with file traffic
for NICs.  Small-metadata collectives (``barrier``, ``allgather``) are
synchronized through shared state and charged an analytic
``O(log n)``-latency cost, which is standard practice for simulators
and irrelevant to the benchmarks' data volumes.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Optional

import numpy as np

from ..pvfs import PVFS, PVFSClient
from ..simulation import Environment
from ..simulation.network import Mailbox

__all__ = ["SimMPI", "Comm", "RankContext"]


class RankContext:
    """Everything one rank's coroutine needs."""

    __slots__ = ("rank", "size", "comm", "fs", "env", "node")

    def __init__(self, rank: int, size: int, comm: "Comm", fs: PVFSClient, env):
        self.rank = rank
        self.size = size
        self.comm = comm
        self.fs = fs
        self.env = env
        self.node = fs.node

    def __repr__(self) -> str:
        return f"<RankContext {self.rank}/{self.size}>"


class _SharedState:
    """Rendezvous state shared by all ranks of a SimMPI world."""

    def __init__(self, env: Environment, nprocs: int):
        self.env = env
        self.nprocs = nprocs
        self.barrier_count = 0
        self.barrier_event = env.event()
        self.gather_slots: dict[str, dict[int, Any]] = {}


class Comm:
    """Per-rank communicator handle."""

    def __init__(self, mpi: "SimMPI", rank: int, mailbox: Mailbox):
        self.mpi = mpi
        self.rank = rank
        self.size = mpi.nprocs
        self.mailbox = mailbox
        self._pending: list = []  # unmatched incoming messages
        self._coll_seq: dict[str, int] = {}  # per-key collective epoch
        self.bytes_sent_p2p = 0
        self.bytes_received_p2p = 0

    # ------------------------------------------------------------------
    # point-to-point
    # ------------------------------------------------------------------
    def send(self, dst: int, nbytes: int, payload: Any = None, tag: Any = 0):
        """Send a message (generator; returns when it left the NIC)."""
        costs = self.mpi.costs
        self.bytes_sent_p2p += nbytes
        if dst == self.rank:
            # self message: memcpy, no wire
            yield self.mpi.env.timeout(nbytes / costs.memcpy_bandwidth)
            self.mailbox._store.put(
                _SelfMessage(payload, nbytes, (tag, self.rank))
            )
            return
        yield from self.mpi.net.send(
            self.mailbox,
            self.mpi.comms[dst].mailbox,
            nbytes,
            payload=payload,
            tag=(tag, self.rank),
            latency=costs.mpi_latency,
            per_msg_cpu=costs.mpi_per_message_cpu,
            bandwidth=costs.mpi_bandwidth,
        )

    def recv(self, src: Optional[int] = None, tag: Any = None):
        """Receive a matching message; returns ``(src, payload, nbytes)``."""
        costs = self.mpi.costs
        while True:
            for i, msg in enumerate(self._pending):
                mtag, msrc = msg.tag
                if (src is None or msrc == src) and (
                    tag is None or mtag == tag
                ):
                    self._pending.pop(i)
                    self.bytes_received_p2p += msg.nbytes
                    return msrc, msg.payload, msg.nbytes
            msg = yield self.mailbox.get()
            yield self.mpi.env.timeout(costs.mpi_per_message_cpu)
            self._pending.append(msg)

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------
    def barrier(self):
        """Synchronize all ranks (log-latency cost)."""
        mpi = self.mpi
        st = mpi.shared
        yield mpi.env.timeout(self._log_latency())
        st.barrier_count += 1
        if st.barrier_count == st.nprocs:
            st.barrier_count = 0
            ev = st.barrier_event
            st.barrier_event = mpi.env.event()
            ev.succeed()
        else:
            yield st.barrier_event

    def _log_latency(self) -> float:
        n = max(self.size, 2)
        return math.ceil(math.log2(n)) * self.mpi.costs.mpi_latency

    def epoch(self, key: str = "ag") -> int:
        """Number of ``key``-collectives this rank has entered so far.

        Every rank calls collectives in the same order (SPMD), so the
        value is identical across ranks *before* the matching collective
        — a free world-unique id for the upcoming invocation.
        """
        return self._coll_seq.get(key, 0)

    def allgather(self, value: Any, nbytes: int = 16, key: str = "ag"):
        """Gather a small value from every rank; returns rank-ordered list.

        Synchronized via shared state; charged an analytic
        recursive-doubling cost.
        """
        mpi = self.mpi
        st = mpi.shared
        # every rank calls collectives in the same order, so a local
        # per-key sequence number names this invocation's slot uniquely
        seq = self._coll_seq.get(key, 0)
        self._coll_seq[key] = seq + 1
        slot_key = (key, seq)
        slot = st.gather_slots.setdefault(slot_key, {})
        slot[self.rank] = value
        yield from self.barrier()
        result = [slot[r] for r in range(self.size)]
        yield mpi.env.timeout(
            self._log_latency()
            + (self.size - 1) * nbytes / mpi.costs.nic_bandwidth
        )
        yield from self.barrier()
        if self.rank == 0:
            st.gather_slots.pop(slot_key, None)
        return result

    def allreduce_max(self, value, key: str = "armax"):
        vals = yield from self.allgather(value, nbytes=8, key=key)
        return max(vals)

    def alltoallv(
        self,
        outgoing: dict[int, tuple[Any, int]],
        expected_from: list[int],
        tag: Any = "a2a",
    ):
        """Exchange payloads pairwise.

        ``outgoing`` maps destination rank to ``(payload, nbytes)``;
        ``expected_from`` lists ranks that will send to me this round
        (every rank computes this consistently from shared knowledge).
        Returns ``{src: (payload, nbytes)}``.
        """
        for dst in sorted(outgoing):
            payload, nbytes = outgoing[dst]
            yield from self.send(dst, nbytes, payload, tag=tag)
        received: dict[int, tuple[Any, int]] = {}
        for _ in range(len(expected_from)):
            src, payload, nbytes = yield from self.recv(tag=tag)
            received[src] = (payload, nbytes)
        return received


class _SelfMessage:
    __slots__ = ("payload", "nbytes", "tag", "sender")

    def __init__(self, payload, nbytes, tag):
        self.payload = payload
        self.nbytes = nbytes
        self.tag = tag
        self.sender = None


class SimMPI:
    """An MPI world of ``nprocs`` ranks over a PVFS cluster."""

    def __init__(
        self,
        fs: PVFS,
        nprocs: int,
        procs_per_node: int = 2,
        node_prefix: str = "cn",
        tenant_of: Optional[Callable[[int], int]] = None,
    ):
        if nprocs < 1:
            raise ValueError("need at least one rank")
        if procs_per_node < 1:
            raise ValueError("procs_per_node must be positive")
        self.fs_system = fs
        self.env = fs.env
        self.net = fs.net
        self.costs = fs.costs
        self.nprocs = nprocs
        self.procs_per_node = procs_per_node
        self.shared = _SharedState(self.env, nprocs)
        self.comms: list[Comm] = []
        self.contexts: list[RankContext] = []
        for r in range(nprocs):
            node = self.net.node(f"{node_prefix}{r // procs_per_node}")
            mailbox = self.net.mailbox(node, f"mpi:{node_prefix}:r{r}")
            comm = Comm(self, r, mailbox)
            self.comms.append(comm)
            tenant = tenant_of(r) if tenant_of is not None else 0
            client = fs.client(
                node.name, name=f"{node_prefix}:r{r}", tenant=tenant
            )
            self.contexts.append(
                RankContext(r, nprocs, comm, client, self.env)
            )

    # ------------------------------------------------------------------
    def spawn(self, rank_main: Callable, *args):
        """Start ``rank_main(ctx, *args)`` on every rank.

        Returns the list of rank processes; wait on them with
        ``env.all_of(procs)``.
        """
        procs = []
        for ctx in self.contexts:
            procs.append(
                self.env.process(
                    rank_main(ctx, *args), name=f"rank{ctx.rank}"
                )
            )
        return procs

    def run(self, rank_main: Callable, *args) -> list:
        """Spawn all ranks, run the simulation, return rank results."""
        procs = self.spawn(rank_main, *args)
        done = self.env.all_of(procs)
        return self.env.run(done)
