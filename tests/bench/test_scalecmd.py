"""The multi-tenant scale sweep: cell docs, smoke gate, CLI plumbing."""

import copy
import json

import pytest

from repro.bench.scalecmd import (
    SMOKE_SPEC,
    collect_scale_bench,
    render_scale,
    run_scale_cell,
    smoke_check,
    write_scale_bench,
)

#: A seconds-not-minutes grid for unit tests; same shape as the specs.
TINY_SPEC = {
    "cells": [
        [8, 1, 2],
        [16, 2, 4],
    ],
    "weighted": {"cell": [8, 2, 2], "weights": [1.0, 2.0]},
    "blocks": 2,
    "base_reps": 2,
}


@pytest.fixture(scope="module")
def tiny_doc():
    return collect_scale_bench(TINY_SPEC)


def test_cell_validation():
    with pytest.raises(ValueError):
        run_scale_cell(10, 1, 4)  # clients not a multiple of iods
    with pytest.raises(ValueError):
        run_scale_cell(8, 2, 4, weights=[1.0])  # weight count mismatch


def test_collect_covers_the_grid(tiny_doc):
    assert [
        [c["clients"], c["tenants"], c["iods"]] for c in tiny_doc["cells"]
    ] == TINY_SPEC["cells"]
    assert tiny_doc["spec"] == TINY_SPEC
    assert tiny_doc["weighted"]["weights"] == [1.0, 2.0]
    # doubled grid really does more work
    b = [c["total_bytes"] for c in tiny_doc["cells"]]
    assert b[1] > b[0]


def test_cell_accounting_is_self_consistent(tiny_doc):
    for cell in tiny_doc["cells"] + [tiny_doc["weighted"]]:
        per_tenant = cell["per_tenant"]
        assert len(per_tenant) == cell["tenants"]
        assert sum(t["ranks"] for t in per_tenant.values()) == cell["clients"]
        assert sum(t["bytes"] for t in per_tenant.values()) == (
            cell["total_bytes"]
        )
        # every request passed through admission exactly once
        assert all(t["admitted"] > 0 for t in per_tenant.values())
        assert 0.0 < cell["server_busy_frac"] <= 1.0


def test_equal_weight_cells_are_fair(tiny_doc):
    for cell in tiny_doc["cells"]:
        assert cell["jain_weighted"] >= 0.9


def test_weighted_cell_shares_proportional(tiny_doc):
    weighted = tiny_doc["weighted"]
    rates = [
        t["mbps"] / t["weight"] for t in weighted["per_tenant"].values()
    ]
    mean = sum(rates) / len(rates)
    assert all(abs(r - mean) / mean <= 0.10 for r in rates)
    assert weighted["jain_weighted"] >= 0.9


def test_smoke_check_passes_clean_doc(tiny_doc):
    assert smoke_check(tiny_doc) == []


def test_smoke_check_flags_each_failure(tiny_doc):
    doc = copy.deepcopy(tiny_doc)
    # truncated sweep: second cell did no more work than the first
    doc["cells"][1]["total_bytes"] = doc["cells"][0]["total_bytes"]
    # unfair equal-weight cell
    doc["cells"][0]["jain_weighted"] = 0.5
    # weighted cell off proportional
    first = next(iter(doc["weighted"]["per_tenant"].values()))
    first["mbps"] *= 3.0
    problems = smoke_check(doc)
    # with two tenants, skewing one skews both off the mean -> 4 lines
    assert len(problems) == 4
    assert any("not above previous" in p for p in problems)
    assert any("Jain index" in p for p in problems)
    assert any("deviates" in p for p in problems)


def test_write_and_render(tmp_path, tiny_doc):
    path, doc = write_scale_bench(tmp_path, spec=TINY_SPEC)
    assert path.name == "BENCH_scale.json"
    assert json.loads(path.read_text())["spec"] == TINY_SPEC
    text = render_scale(doc)
    assert len(text.splitlines()) == 3  # 2 equal cells + 1 weighted
    assert "1:2" in text and "equal" in text


def test_determinism(tiny_doc):
    """Same spec, same document — the compare gate depends on this."""
    again = collect_scale_bench(TINY_SPEC)
    assert again == tiny_doc


def test_cli_scale_smoke_monkeypatched(monkeypatch, capsys):
    """The ``scale --smoke`` CI entry point gates on smoke_check."""
    from repro.bench import cli, scalecmd

    monkeypatch.setattr(scalecmd, "SMOKE_SPEC", TINY_SPEC)
    assert cli.main(["scale", "--smoke"]) == 0
    assert "scale smoke OK" in capsys.readouterr().err


def test_smoke_spec_shape():
    """SMOKE_SPEC stays a miniature of the full sweep's shape."""
    assert all(len(cell) == 3 for cell in SMOKE_SPEC["cells"])
    assert len(SMOKE_SPEC["weighted"]["cell"]) == 3
    assert SMOKE_SPEC["weighted"]["weights"] == [1.0, 2.0, 4.0, 8.0]
