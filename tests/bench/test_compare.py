"""The regression gate: tolerance bands, directions, coverage, exit codes."""

import copy
import json

import pytest

from repro.bench.compare import (
    DEFAULT_TOLERANCE,
    compare_against_dir,
    compare_collective_docs,
    compare_dtype_cache_docs,
    compare_faults_docs,
    compare_pipeline_docs,
    compare_scale_docs,
    render_compare,
    update_baselines,
)

PIPE_BASE = {
    "schema": 1,
    "benchmarks": {
        "fig8_tile_read": {
            "datatype_io": {
                "supported": True,
                "mbps": 1.0,
                "elapsed_s": 0.05,
                "n_clients": 6,
                "io_ops_per_client": 1.0,
                "server_stages": {
                    "decode_s": 0.02,
                    "plan_s": 0.01,
                    "cache_s": 0.0,
                    "storage_s": 0.005,
                    "respond_s": 0.001,
                },
            },
            "data_sieving": {"supported": False},
        }
    },
}

CACHE_BASE = {
    "schema": 1,
    "phases": {
        "shifted": {
            "sim_speedup": 1.03,
            "hit_rate": 0.98,
            "scan_reduction": 0.999,
        }
    },
}

FAULTS_BASE = {
    "schema": 1,
    "seed": 1234,
    "methods": {
        "datatype_io": {
            "none": {"supported": True, "mbps": 0.5, "elapsed_s": 1.0},
            "heavy": {"supported": True, "mbps": 0.1, "elapsed_s": 4.0},
            "unusual": {"supported": False, "note": "n/a"},
        }
    },
}

SCALE_BASE = {
    "schema": 1,
    "method": "datatype_io",
    "spec": {"cells": [[64, 1, 4]], "weighted": None},
    "cells": [
        {
            "clients": 64,
            "tenants": 1,
            "iods": 4,
            "mbps": 30.0,
            "elapsed_s": 0.26,
            "jain_weighted": 1.0,
            "total_bytes": 8388608,
        }
    ],
    "weighted": {
        "clients": 32,
        "tenants": 4,
        "iods": 4,
        "weights": [1.0, 2.0, 4.0, 8.0],
        "mbps": 25.0,
        "elapsed_s": 0.4,
        "jain_weighted": 0.99,
        "total_bytes": 4194304,
    },
}

HOTPATHS_BASE = {
    "schema": 1,
    "quick": True,
    "paths": {
        "regions_intersect": {
            "speedup": 50.0,
            "bit_identical": True,
            "regions": 1000,
            "bytes": 4000,
            "scalar": {"wall_s": 0.5},
            "vector": {"wall_s": 0.01},
        }
    },
    "speedup": 50.0,
    "bit_identical": True,
}

COLL_BASE = {
    "schema": 1,
    "spec": {
        "grid": 120,
        "clients_per_dim": 2,
        "fig12_clients": 8,
        "showcase_clients": 4,
    },
    "figures": {
        "fig10_read": {
            "clients": 8,
            "mbps": {
                "posix": 1.0,
                "data_sieving": None,
                "datatype_io": 32.0,
                "collective_dtype": 41.0,
            },
        },
        "fig12": {
            "clients": 8,
            "mbps": {"list_io": 0.6, "collective_dtype": 36.0},
        },
    },
    "flash_showcase": {
        "clients": 4,
        "views_merged": 3,
        "dedup_ratio": 0.75,
        "requests_saved": 10,
        "collective_requests": 101,
        "independent_requests": 164,
        "collective_mbps": 18.4,
        "independent_mbps": 9.6,
    },
    "dominance": {"fig10_read": True, "fig12": True},
}


def test_identical_docs_pass():
    deltas = compare_pipeline_docs(PIPE_BASE, copy.deepcopy(PIPE_BASE))
    assert deltas and not any(d.regression for d in deltas)
    deltas = compare_dtype_cache_docs(CACHE_BASE, copy.deepcopy(CACHE_BASE))
    assert deltas and not any(d.regression for d in deltas)


def test_bandwidth_drop_beyond_tolerance_is_regression():
    cur = copy.deepcopy(PIPE_BASE)
    m = cur["benchmarks"]["fig8_tile_read"]["datatype_io"]
    m["mbps"] = 0.9  # -10% < -5% tolerance
    deltas = compare_pipeline_docs(PIPE_BASE, cur)
    bad = [d for d in deltas if d.regression]
    assert [(d.metric, d.source) for d in bad] == [
        ("mbps", "pipeline/fig8_tile_read/datatype_io")
    ]
    assert bad[0].change == pytest.approx(-0.1)


def test_drop_within_tolerance_passes():
    cur = copy.deepcopy(PIPE_BASE)
    cur["benchmarks"]["fig8_tile_read"]["datatype_io"]["mbps"] = 0.96
    deltas = compare_pipeline_docs(PIPE_BASE, cur)
    assert not any(d.regression for d in deltas)


def test_custom_tolerance_band():
    cur = copy.deepcopy(PIPE_BASE)
    cur["benchmarks"]["fig8_tile_read"]["datatype_io"]["mbps"] = 0.96
    deltas = compare_pipeline_docs(PIPE_BASE, cur, tolerance=0.01)
    assert any(d.regression and d.metric == "mbps" for d in deltas)


def test_elapsed_and_busy_increase_are_regressions():
    cur = copy.deepcopy(PIPE_BASE)
    m = cur["benchmarks"]["fig8_tile_read"]["datatype_io"]
    m["elapsed_s"] = 0.06  # +20%
    m["server_stages"]["decode_s"] = 0.04  # busy 0.036 -> 0.056
    deltas = compare_pipeline_docs(PIPE_BASE, cur)
    bad = {d.metric for d in deltas if d.regression}
    assert bad == {"elapsed_s", "server_busy_s"}


def test_improvement_is_reported_not_failed():
    cur = copy.deepcopy(PIPE_BASE)
    cur["benchmarks"]["fig8_tile_read"]["datatype_io"]["mbps"] = 2.0
    deltas = compare_pipeline_docs(PIPE_BASE, cur)
    d = next(d for d in deltas if d.metric == "mbps")
    assert not d.regression and d.improved


def test_missing_method_is_coverage_regression():
    cur = copy.deepcopy(PIPE_BASE)
    del cur["benchmarks"]["fig8_tile_read"]["datatype_io"]
    deltas = compare_pipeline_docs(PIPE_BASE, cur)
    assert any(
        d.regression and d.metric == "coverage" for d in deltas
    )


def test_missing_benchmark_is_coverage_regression():
    cur = {"schema": 1, "benchmarks": {}}
    deltas = compare_pipeline_docs(PIPE_BASE, cur)
    assert any(d.regression and "missing" in d.note for d in deltas)


def test_support_loss_is_regression_support_gain_is_not():
    cur = copy.deepcopy(PIPE_BASE)
    cur["benchmarks"]["fig8_tile_read"]["datatype_io"]["supported"] = False
    deltas = compare_pipeline_docs(PIPE_BASE, cur)
    assert any(d.regression and d.metric == "supported" for d in deltas)

    # baseline-unsupported pair gaining support: nothing to compare
    cur = copy.deepcopy(PIPE_BASE)
    cur["benchmarks"]["fig8_tile_read"]["data_sieving"] = {
        "supported": True,
        "mbps": 1.0,
        "elapsed_s": 1.0,
        "server_stages": {k: 0.0 for k in PIPE_BASE["benchmarks"][
            "fig8_tile_read"]["datatype_io"]["server_stages"]},
    }
    deltas = compare_pipeline_docs(PIPE_BASE, cur)
    assert not any(d.regression for d in deltas)


def test_dtype_cache_hit_rate_drop_is_regression():
    cur = copy.deepcopy(CACHE_BASE)
    cur["phases"]["shifted"]["hit_rate"] = 0.5
    deltas = compare_dtype_cache_docs(CACHE_BASE, cur)
    assert any(d.regression and d.metric == "hit_rate" for d in deltas)


def test_faults_identical_docs_pass():
    deltas = compare_faults_docs(FAULTS_BASE, copy.deepcopy(FAULTS_BASE))
    assert deltas and not any(d.regression for d in deltas)


def test_faults_degraded_bandwidth_drop_is_regression():
    cur = copy.deepcopy(FAULTS_BASE)
    cur["methods"]["datatype_io"]["heavy"]["mbps"] = 0.05  # -50%
    deltas = compare_faults_docs(FAULTS_BASE, cur)
    bad = [d for d in deltas if d.regression]
    assert [(d.source, d.metric) for d in bad] == [
        ("faults/datatype_io/heavy", "mbps")
    ]


def test_faults_elapsed_increase_is_regression():
    cur = copy.deepcopy(FAULTS_BASE)
    cur["methods"]["datatype_io"]["heavy"]["elapsed_s"] = 5.0  # +25%
    deltas = compare_faults_docs(FAULTS_BASE, cur)
    assert any(
        d.regression and d.metric == "elapsed_s" for d in deltas
    )


def test_faults_support_loss_and_coverage():
    # a severity cell losing support regresses…
    cur = copy.deepcopy(FAULTS_BASE)
    cur["methods"]["datatype_io"]["heavy"]["supported"] = False
    deltas = compare_faults_docs(FAULTS_BASE, cur)
    assert any(d.regression and d.metric == "supported" for d in deltas)
    # …a whole method disappearing is a coverage regression…
    deltas = compare_faults_docs(FAULTS_BASE, {"methods": {}})
    assert any(d.regression and d.metric == "coverage" for d in deltas)
    # …and a baseline-unsupported cell gaining support compares nothing
    cur = copy.deepcopy(FAULTS_BASE)
    cur["methods"]["datatype_io"]["unusual"] = {
        "supported": True,
        "mbps": 1.0,
        "elapsed_s": 1.0,
    }
    deltas = compare_faults_docs(FAULTS_BASE, cur)
    assert not any(d.regression for d in deltas)


def test_scale_identical_docs_pass():
    deltas = compare_scale_docs(SCALE_BASE, copy.deepcopy(SCALE_BASE))
    assert deltas and not any(d.regression for d in deltas)


def test_scale_bandwidth_drop_is_regression():
    cur = copy.deepcopy(SCALE_BASE)
    cur["cells"][0]["mbps"] = 20.0
    deltas = compare_scale_docs(SCALE_BASE, cur)
    bad = [d for d in deltas if d.regression]
    assert len(bad) == 1 and bad[0].source == "scale/64x1x4"
    assert bad[0].metric == "mbps"


def test_scale_fairness_drop_is_regression_even_if_faster():
    """Un-fairing the rotation regresses even with better throughput."""
    cur = copy.deepcopy(SCALE_BASE)
    cur["weighted"]["jain_weighted"] = 0.6
    cur["weighted"]["mbps"] = 50.0  # a "speedup"
    deltas = compare_scale_docs(SCALE_BASE, cur)
    bad = [d for d in deltas if d.regression]
    assert [
        (d.source, d.metric) for d in bad
    ] == [("scale/weighted", "jain_weighted")]


def test_scale_missing_cell_is_coverage_regression():
    cur = copy.deepcopy(SCALE_BASE)
    cur["cells"] = []
    deltas = compare_scale_docs(SCALE_BASE, cur)
    bad = [d for d in deltas if d.regression]
    assert len(bad) == 1
    assert bad[0].source == "scale/64x1x4" and bad[0].metric == "coverage"


# ----------------------------------------------------------------------
# collective
# ----------------------------------------------------------------------
def test_collective_identical_docs_pass():
    deltas = compare_collective_docs(COLL_BASE, copy.deepcopy(COLL_BASE))
    assert deltas
    assert not any(d.regression for d in deltas)


def test_collective_bandwidth_drop_is_regression():
    cur = copy.deepcopy(COLL_BASE)
    cur["figures"]["fig10_read"]["mbps"]["collective_dtype"] = 30.0
    deltas = compare_collective_docs(COLL_BASE, cur)
    assert any(
        d.regression and d.source == "collective/fig10_read/collective_dtype"
        for d in deltas
    )


def test_collective_dominance_flip_is_regression_even_within_tolerance():
    cur = copy.deepcopy(COLL_BASE)
    # bandwidth moves less than 5% but the crown is lost
    cur["figures"]["fig12"]["mbps"]["collective_dtype"] = 35.0
    cur["figures"]["fig12"]["mbps"]["list_io"] = 35.5
    cur["dominance"]["fig12"] = False
    deltas = compare_collective_docs(COLL_BASE, cur)
    dom = [d for d in deltas if d.metric == "dominance"]
    assert dom and dom[0].regression


def test_collective_showcase_dedup_loss_is_regression():
    cur = copy.deepcopy(COLL_BASE)
    cur["flash_showcase"]["views_merged"] = 0
    cur["flash_showcase"]["requests_saved"] = 0
    deltas = compare_collective_docs(COLL_BASE, cur)
    assert any(
        d.regression and d.metric == "views_merged" for d in deltas
    )


def test_collective_support_loss_is_regression():
    cur = copy.deepcopy(COLL_BASE)
    cur["figures"]["fig10_read"]["mbps"]["datatype_io"] = None
    deltas = compare_collective_docs(COLL_BASE, cur)
    assert any(
        d.regression and d.metric == "supported" for d in deltas
    )


def test_compare_against_dir_requires_a_baseline(tmp_path):
    with pytest.raises(FileNotFoundError):
        compare_against_dir(tmp_path)


def test_compare_against_dir_with_injected_docs(tmp_path):
    (tmp_path / "BENCH_pipeline.json").write_text(json.dumps(PIPE_BASE))
    (tmp_path / "BENCH_dtype_cache.json").write_text(json.dumps(CACHE_BASE))
    (tmp_path / "BENCH_faults.json").write_text(json.dumps(FAULTS_BASE))
    (tmp_path / "BENCH_scale.json").write_text(json.dumps(SCALE_BASE))
    (tmp_path / "BENCH_hotpaths.json").write_text(json.dumps(HOTPATHS_BASE))
    (tmp_path / "BENCH_collective.json").write_text(json.dumps(COLL_BASE))
    deltas, notes = compare_against_dir(
        tmp_path,
        pipeline_doc=copy.deepcopy(PIPE_BASE),
        dtype_cache_doc=copy.deepcopy(CACHE_BASE),
        faults_doc=copy.deepcopy(FAULTS_BASE),
        scale_doc=copy.deepcopy(SCALE_BASE),
        hotpaths_doc=copy.deepcopy(HOTPATHS_BASE),
        collective_doc=copy.deepcopy(COLL_BASE),
    )
    # a passing gate says what it checked: one line per file + a total
    assert notes[-1] == "6 baseline file(s) checked"
    assert all("field(s) diffed" in n for n in notes[:-1])
    assert not any(d.regression for d in deltas)

    regressed = copy.deepcopy(PIPE_BASE)
    regressed["benchmarks"]["fig8_tile_read"]["datatype_io"]["mbps"] = 0.5
    deltas, _ = compare_against_dir(
        tmp_path,
        pipeline_doc=regressed,
        dtype_cache_doc=copy.deepcopy(CACHE_BASE),
        faults_doc=copy.deepcopy(FAULTS_BASE),
        scale_doc=copy.deepcopy(SCALE_BASE),
        hotpaths_doc=copy.deepcopy(HOTPATHS_BASE),
        collective_doc=copy.deepcopy(COLL_BASE),
    )
    assert any(d.regression for d in deltas)


def test_compare_against_dir_skips_missing_files(tmp_path):
    (tmp_path / "BENCH_pipeline.json").write_text(json.dumps(PIPE_BASE))
    deltas, notes = compare_against_dir(
        tmp_path, pipeline_doc=copy.deepcopy(PIPE_BASE)
    )
    assert len(notes) == 7  # 1 diffed + 5 skipped + files-checked total
    assert any("BENCH_dtype_cache.json" in n for n in notes)
    assert any("BENCH_faults.json" in n for n in notes)
    assert any("BENCH_scale.json" in n for n in notes)
    assert any("BENCH_hotpaths.json" in n for n in notes)
    assert any("BENCH_collective.json" in n for n in notes)
    assert notes[-1] == "1 baseline file(s) checked"


def test_update_baselines_writes_all_documents(tmp_path):
    written = update_baselines(
        tmp_path / "results",
        pipeline_doc=copy.deepcopy(PIPE_BASE),
        dtype_cache_doc=copy.deepcopy(CACHE_BASE),
        faults_doc=copy.deepcopy(FAULTS_BASE),
        scale_doc=copy.deepcopy(SCALE_BASE),
        hotpaths_doc=copy.deepcopy(HOTPATHS_BASE),
        collective_doc=copy.deepcopy(COLL_BASE),
    )
    assert [p.name for p in written] == [
        "BENCH_pipeline.json",
        "BENCH_dtype_cache.json",
        "BENCH_faults.json",
        "BENCH_scale.json",
        "BENCH_hotpaths.json",
        "BENCH_collective.json",
    ]
    # the refreshed baselines must round-trip and gate clean against
    # the very documents they were refreshed from
    assert json.loads(written[2].read_text()) == FAULTS_BASE
    deltas, notes = compare_against_dir(
        tmp_path / "results",
        pipeline_doc=copy.deepcopy(PIPE_BASE),
        dtype_cache_doc=copy.deepcopy(CACHE_BASE),
        faults_doc=copy.deepcopy(FAULTS_BASE),
        scale_doc=copy.deepcopy(SCALE_BASE),
        hotpaths_doc=copy.deepcopy(HOTPATHS_BASE),
        collective_doc=copy.deepcopy(COLL_BASE),
    )
    assert notes[-1] == "6 baseline file(s) checked"
    assert not any(d.regression for d in deltas)


def test_cli_update_baseline_flag(tmp_path, capsys):
    from repro.bench import cli
    from repro.bench import compare as compare_mod

    orig = compare_mod.update_baselines

    def fake_update(baseline_dir):
        return orig(
            baseline_dir,
            pipeline_doc=copy.deepcopy(PIPE_BASE),
            dtype_cache_doc=copy.deepcopy(CACHE_BASE),
            faults_doc=copy.deepcopy(FAULTS_BASE),
            scale_doc=copy.deepcopy(SCALE_BASE),
            hotpaths_doc=copy.deepcopy(HOTPATHS_BASE),
            collective_doc=copy.deepcopy(COLL_BASE),
        )

    compare_mod.update_baselines = fake_update
    try:
        rc = cli.main(
            ["compare", "--baseline", str(tmp_path), "--update-baseline"]
        )
    finally:
        compare_mod.update_baselines = orig
    assert rc == 0
    assert (tmp_path / "BENCH_faults.json").exists()
    assert "BENCH_faults.json" in capsys.readouterr().err


def test_render_compare_verdicts():
    cur = copy.deepcopy(PIPE_BASE)
    cur["benchmarks"]["fig8_tile_read"]["datatype_io"]["mbps"] = 0.5
    text = render_compare(compare_pipeline_docs(PIPE_BASE, cur))
    assert "REGRESSION" in text
    assert "1 regression(s)" in text
    assert f"±{DEFAULT_TOLERANCE:.1%}" in text


def test_render_compare_prints_units():
    deltas = compare_pipeline_docs(PIPE_BASE, copy.deepcopy(PIPE_BASE))
    text = render_compare(deltas)
    assert "1 MiB/s" in text  # mbps values carry their unit
    assert "0.05 s" in text  # elapsed_s carries seconds
    units = {d.metric: d.unit for d in deltas}
    assert units["mbps"] == "MiB/s"
    assert units["elapsed_s"] == "s"
    assert units["server_busy_s"] == "s"


def test_regression_line_names_the_baseline_file(tmp_path):
    (tmp_path / "BENCH_pipeline.json").write_text(json.dumps(PIPE_BASE))
    regressed = copy.deepcopy(PIPE_BASE)
    regressed["benchmarks"]["fig8_tile_read"]["datatype_io"]["mbps"] = 0.5
    deltas, _ = compare_against_dir(tmp_path, pipeline_doc=regressed)
    bad = [d for d in deltas if d.regression]
    assert bad and all(d.baseline_file == "BENCH_pipeline.json" for d in bad)
    text = render_compare(deltas)
    line = next(l for l in text.splitlines() if "REGRESSION" in l)
    assert "[BENCH_pipeline.json]" in line


def _with_blame(doc, shares):
    doc = copy.deepcopy(doc)
    doc["benchmarks"]["fig8_tile_read"]["datatype_io"][
        "critical_blame"
    ] = dict(shares)
    return doc


def test_blame_delta_attached_to_regressions():
    base = _with_blame(
        PIPE_BASE, {"disk": 0.4, "net_wire": 0.3, "client_cpu": 0.3}
    )
    cur = _with_blame(
        PIPE_BASE, {"disk": 0.7, "net_wire": 0.2, "client_cpu": 0.1}
    )
    cur["benchmarks"]["fig8_tile_read"]["datatype_io"]["mbps"] = 0.5
    deltas = compare_pipeline_docs(base, cur)
    bad = next(d for d in deltas if d.regression and d.metric == "mbps")
    # the note IS the blame shift (not "regression; blame: ..."), and it
    # names the resource whose critical-path share moved most
    assert bad.note == "blame: disk 40.0%→70.0% of critical path"
    line = next(
        l for l in render_compare(deltas).splitlines() if "REGRESSION" in l
    )
    assert "blame: disk" in line


def test_blame_delta_suffixes_improvements():
    base = _with_blame(PIPE_BASE, {"disk": 0.9, "client_cpu": 0.1})
    cur = _with_blame(
        PIPE_BASE, {"disk": 0.3, "client_cpu": 0.2, "net_wire": 0.5}
    )
    cur["benchmarks"]["fig8_tile_read"]["datatype_io"]["mbps"] = 2.0
    deltas = compare_pipeline_docs(base, cur)
    d = next(d for d in deltas if d.metric == "mbps")
    assert d.improved  # the suffix must not break the improved property
    assert d.note.startswith("improved; blame: disk")


def test_blame_delta_absent_when_baseline_predates_blame():
    # older baselines carry no critical_blame: drift still gates, the
    # note just stays plain
    cur = copy.deepcopy(PIPE_BASE)
    cur["benchmarks"]["fig8_tile_read"]["datatype_io"]["mbps"] = 0.5
    deltas = compare_pipeline_docs(PIPE_BASE, cur)
    bad = next(d for d in deltas if d.regression)
    assert bad.note == "regression"


def test_cli_compare_exit_codes(tmp_path, capsys):
    """End-to-end through the CLI: exit 0 clean, SystemExit on regression."""
    from repro.bench import cli
    from repro.bench import compare as compare_mod

    (tmp_path / "BENCH_pipeline.json").write_text(json.dumps(PIPE_BASE))

    docs = {"doc": copy.deepcopy(PIPE_BASE)}
    orig = compare_mod.compare_against_dir

    def fake_compare(baseline_dir, tolerance, **kw):
        return orig(baseline_dir, tolerance, pipeline_doc=docs["doc"])

    compare_mod.compare_against_dir = fake_compare
    try:
        assert (
            cli.main(["compare", "--baseline", str(tmp_path)]) == 0
        )
        docs["doc"] = copy.deepcopy(PIPE_BASE)
        docs["doc"]["benchmarks"]["fig8_tile_read"]["datatype_io"][
            "mbps"
        ] = 0.5
        with pytest.raises(SystemExit, match="regression"):
            cli.main(["compare", "--baseline", str(tmp_path)])
    finally:
        compare_mod.compare_against_dir = orig
    capsys.readouterr()
