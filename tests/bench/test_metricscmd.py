"""``repro-bench metrics`` artifacts and the rendered summary."""

import json

import pytest

from repro.bench.metricscmd import (
    run_metered,
    verify_metrics,
    write_metrics_artifacts,
)
from repro.bench.report import render_metrics_summary
from repro.metrics import validate_openmetrics


@pytest.fixture(scope="module")
def result():
    return run_metered("tile", "datatype_io")


def test_artifacts_written_and_valid(result, tmp_path):
    paths = write_metrics_artifacts(result, tmp_path)
    assert [p.name for p in paths] == [
        "METRICS_tile_datatype_io.json",
        "METRICS_tile_datatype_io.prom",
    ]
    doc = json.loads(paths[0].read_text())
    assert doc["schema"] == 1
    assert doc["workload"] == "tile"
    assert doc["reconciled"] is True
    assert doc["metrics"]["samples"] == result.metrics.samples
    assert doc["imbalance"]["busy"]["max_over_mean"] >= 1.0
    assert doc["server_stages"]["requests"] > 0
    assert validate_openmetrics(paths[1].read_text()) == []


def test_custom_stem(result, tmp_path):
    paths = write_metrics_artifacts(result, tmp_path, stem="CUSTOM")
    assert [p.name for p in paths] == ["CUSTOM.json", "CUSTOM.prom"]


def test_verify_unmetered_run():
    from repro.bench.runner import run_workload
    from repro.bench.workloads import TileWorkload

    r = run_workload(TileWorkload.reduced(frames=1), "datatype_io")
    assert verify_metrics(r) == ["run was not metered (metrics is None)"]


def test_render_metrics_summary(result):
    text = render_metrics_summary(result)
    assert "Metrics summary: tile / datatype_io" in text
    for stage in ("decode", "plan", "cache", "storage", "respond"):
        assert f"stage:{stage}" in text
    assert "request" in text and "queue-wait" in text
    assert "traffic:" in text
    assert "imbalance:" in text
    assert "bottleneck:" in text


def test_render_rejects_unmetered():
    from repro.bench.runner import RunResult

    with pytest.raises(ValueError, match="not metered"):
        render_metrics_summary(
            RunResult(workload="x", method="y", n_clients=1)
        )


def test_cli_metrics_smoke(tmp_path, capsys):
    from repro.bench import cli

    assert cli.main(["metrics", "--smoke"]) == 0
    out = capsys.readouterr()
    assert "Metrics summary" in out.out
    assert "metrics smoke OK" in out.err

    assert (
        cli.main(["metrics", "--out", str(tmp_path)]) == 0
    )
    capsys.readouterr()
    assert (tmp_path / "METRICS_tile_datatype_io.prom").exists()
