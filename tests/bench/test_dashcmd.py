"""The self-contained dashboard: determinism, well-formedness, CLI."""

import pytest

from repro.bench.dashcmd import (
    collect_dash,
    render_dash,
    smoke_dash,
    verify_html,
    write_dash,
)

FAST = {"blame_methods": ("datatype_io",)}


@pytest.fixture(scope="module")
def tile_dash():
    return collect_dash("tile", "datatype_io", **FAST)


class TestCollect:
    def test_unknown_workload_raises(self):
        with pytest.raises(ValueError, match="unknown workload"):
            collect_dash("no-such-workload", "datatype_io", **FAST)

    def test_unsupported_method_raises(self):
        # data sieving has no write path (paper: no locking)
        with pytest.raises(ValueError, match="unsupported"):
            collect_dash("flash", "data_sieving", **FAST)

    def test_payload_shape(self, tile_dash):
        assert tile_dash["workload"] == "tile"
        assert tile_dash["method"] == "datatype_io"
        assert tile_dash["faults"] == "none"
        assert tile_dash["tenants"] == 1
        assert "datatype_io" in tile_dash["blames"]
        shares = tile_dash["blames"]["datatype_io"]
        assert sum(shares.values()) == pytest.approx(1.0, abs=1e-9)


class TestRender:
    def test_byte_deterministic(self, tile_dash):
        html1 = render_dash(tile_dash)
        html2 = render_dash(collect_dash("tile", "datatype_io", **FAST))
        assert html1 == html2

    def test_self_contained_and_well_formed(self, tile_dash):
        html = render_dash(tile_dash)
        assert verify_html(html) == []
        # all five panels render
        assert html.count("<svg") == 5
        assert "NIC utilization" in html
        assert "queue depth per I/O daemon" in html
        assert "Critical path of the slowest request" in html
        assert "Critical-path blame by access method" in html

    def test_header_carries_both_verdicts(self, tile_dash):
        html = render_dash(tile_dash)
        assert "bottleneck (coarse)" in html
        assert "critical-path blame" in html

    def test_write_dash_filename(self, tile_dash, tmp_path):
        path = write_dash(tile_dash, tmp_path)
        assert path.name == "DASH_tile_datatype_io.html"
        assert path.read_text() == render_dash(tile_dash)


class TestVerifyHtml:
    GOOD = (
        "<!DOCTYPE html>\n<html><head><title>t</title></head>"
        '<body><svg xmlns="http://www.w3.org/2000/svg"></svg>'
        "</body></html>\n"
    )

    def test_good_document_passes(self):
        assert verify_html(self.GOOD) == []

    def test_missing_doctype(self):
        assert "missing DOCTYPE" in verify_html(self.GOOD[16:])

    def test_script_rejected(self):
        bad = self.GOOD.replace("<body>", "<body><script>x</script>")
        assert any("script" in p for p in verify_html(bad))

    def test_external_url_rejected(self):
        bad = self.GOOD.replace(
            "<body>", '<body><img src="https://cdn.example/x.png"/>'
        )
        assert any("external URL" in p for p in verify_html(bad))

    def test_unbalanced_svg_rejected(self):
        bad = self.GOOD.replace("</svg>", "")
        assert any("unbalanced <svg>" in p for p in verify_html(bad))

    def test_no_svg_rejected(self):
        bad = self.GOOD.replace(
            '<svg xmlns="http://www.w3.org/2000/svg"></svg>', ""
        )
        assert "no SVG panels" in verify_html(bad)


class TestComposability:
    def test_faulted_dash_renders(self):
        data = collect_dash(
            "block3d-read", "datatype_io", faults="heavy", **FAST
        )
        assert data["faults"] == "heavy"
        html = render_dash(data)
        assert verify_html(html) == []
        assert "injected faults" in html

    def test_tenanted_dash_renders(self):
        data = collect_dash("tile", "datatype_io", tenants=2, **FAST)
        assert data["tenants"] == 2
        assert verify_html(render_dash(data)) == []


def test_smoke_dash_gate():
    assert smoke_dash("tile", "datatype_io") == []


class TestCli:
    def test_dash_writes_artifact(self, tmp_path, capsys):
        from repro.bench import cli

        rc = cli.main(
            [
                "dash",
                "--workload", "tile",
                "--method", "datatype_io",
                "--out", str(tmp_path),
            ]
        )
        assert rc == 0
        assert (tmp_path / "DASH_tile_datatype_io.html").exists()
        out = capsys.readouterr()
        assert "dominant blame" in out.out
        assert "DASH_tile_datatype_io.html" in out.err

    def test_dash_trace_and_metrics_artifacts(self, tmp_path, capsys):
        from repro.bench import cli

        rc = cli.main(
            [
                "dash",
                "--workload", "tile",
                "--method", "datatype_io",
                "--trace",
                "--metrics",
                "--out", str(tmp_path),
            ]
        )
        assert rc == 0
        names = {p.name for p in tmp_path.iterdir()}
        assert "DASH_tile_datatype_io.html" in names
        assert any(n.startswith("TRACE_") for n in names)
        assert any(n.startswith("METRICS_") for n in names)
        capsys.readouterr()

    def test_dash_smoke_flag(self, capsys):
        from repro.bench import cli

        rc = cli.main(
            ["dash", "--smoke", "--workload", "tile",
             "--method", "datatype_io"]
        )
        assert rc == 0
        assert "dash smoke OK" in capsys.readouterr().err
