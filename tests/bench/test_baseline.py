"""Machine-readable benchmark baseline (BENCH_pipeline.json)."""

import json

from repro.bench.baseline import (
    collect_pipeline_baseline,
    write_pipeline_baseline,
)
from repro.bench.cli import main


class TestPipelineBaseline:
    def test_collect_covers_figures_and_methods(self):
        doc = collect_pipeline_baseline(methods=("list_io", "datatype_io"))
        assert doc["schema"] == 1
        assert set(doc["benchmarks"]) == {
            "fig8_tile_read",
            "fig10_block3d_read",
            "fig10_block3d_write",
            "fig12_flash_write",
        }
        for bench, per_method in doc["benchmarks"].items():
            for method, row in per_method.items():
                assert row["supported"], (bench, method)
                assert row["mbps"] > 0, (bench, method)
                stages = row["server_stages"]
                assert stages["requests"] > 0
                assert stages["decode_s"] > 0

    def test_write_emits_valid_json(self, tmp_path):
        path = write_pipeline_baseline(
            tmp_path, methods=("datatype_io",)
        )
        assert path.name == "BENCH_pipeline.json"
        doc = json.loads(path.read_text())
        row = doc["benchmarks"]["fig8_tile_read"]["datatype_io"]
        assert row["n_clients"] == 6
        assert row["elapsed_s"] > 0

    def test_cli_json_command(self, tmp_path, capsys):
        assert main(["json", "--out", str(tmp_path)]) == 0
        doc = json.loads((tmp_path / "BENCH_pipeline.json").read_text())
        # full method matrix, including the unsupported data-sieving write
        flash = doc["benchmarks"]["fig12_flash_write"]
        assert flash["data_sieving"]["supported"] is False
        assert flash["datatype_io"]["supported"] is True
