"""Workload geometry: the paper's §4 parameters must fall out exactly."""

import numpy as np
import pytest

from repro.bench import Block3DWorkload, FlashWorkload, TileWorkload

MIB = 1024 * 1024


class TestTileGeometry:
    def test_paper_parameters(self):
        wl = TileWorkload.paper()
        assert wl.n_clients == 6
        assert wl.display_w == 3 * 1024 - 2 * 270 == 2532
        assert wl.display_h == 2 * 768 - 128 == 1408
        # "Each frame is 10.2 MBytes"
        assert wl.frame_bytes == 2532 * 1408 * 3
        assert wl.frame_bytes / MIB == pytest.approx(10.2, abs=0.05)

    def test_tile_desired_bytes(self):
        wl = TileWorkload.paper(frames=1)
        # 2.25 MB per client per frame (Table 1)
        assert wl.bytes_per_client() == 1024 * 768 * 3
        assert wl.bytes_per_client() / MIB == 2.25

    def test_tile_origins_distinct_and_in_range(self):
        wl = TileWorkload.paper()
        seen = set()
        for r in range(6):
            y0, x0 = wl.tile_origin(r)
            assert 0 <= y0 <= wl.display_h - wl.tile_h
            assert 0 <= x0 <= wl.display_w - wl.tile_w
            seen.add((y0, x0))
        assert len(seen) == 6

    def test_filetype_regions_are_rows(self):
        wl = TileWorkload.paper()
        ft = wl.filetype(0)
        flat = ft.flatten()
        assert flat.count == 768  # one region per pixel row (Table 1)
        assert set(flat.lengths.tolist()) == {1024 * 3}

    def test_tiles_cover_display(self):
        """Union of all tiles covers every display byte (overlaps > 0)."""
        wl = TileWorkload.reduced()
        from repro.regions import Regions

        union = Regions.concat(
            [wl.filetype(r).flatten() for r in range(wl.n_clients)]
        ).normalized()
        assert union.to_pairs() == [(0, wl.frame_bytes)]

    def test_displacement_per_frame(self):
        wl = TileWorkload.paper()
        assert wl.displacement(0, 3) == 3 * wl.frame_bytes

    def test_one_process_per_node(self):
        assert TileWorkload.paper().procs_per_node == 1


class TestBlock3DGeometry:
    @pytest.mark.parametrize(
        "cpd,desired_mib,posix_ops",
        [(2, 103.0, 90_000), (3, 30.5, 40_000), (4, 12.9, 22_500)],
    )
    def test_table2_geometry(self, cpd, desired_mib, posix_ops):
        wl = Block3DWorkload.paper(cpd)
        assert wl.n_clients == cpd**3
        assert wl.bytes_per_client() / MIB == pytest.approx(
            desired_mib, abs=0.05
        )
        flat = wl.filetype(0).flatten()
        assert flat.count == posix_ops  # x-runs = block² (Table 2)

    def test_blocks_partition_file(self):
        wl = Block3DWorkload.reduced(2)
        from repro.regions import Regions

        union = Regions.concat(
            [wl.filetype(r).flatten() for r in range(8)]
        ).normalized()
        assert union.to_pairs() == [(0, wl.grid**3 * 4)]
        total = sum(
            wl.filetype(r).flatten().total_bytes for r in range(8)
        )
        assert total == wl.grid**3 * 4  # disjoint

    def test_block_origins(self):
        wl = Block3DWorkload.reduced(2)
        origins = {wl.block_origin(r) for r in range(8)}
        assert len(origins) == 8
        assert (0, 0, 0) in origins

    def test_grid_divisibility_enforced(self):
        with pytest.raises(ValueError):
            Block3DWorkload(grid=10, clients_per_dim=3)

    def test_memtype_contiguous(self):
        wl = Block3DWorkload.reduced(2)
        assert wl.memtype(0).is_contiguous


class TestFlashGeometry:
    def test_paper_parameters(self):
        wl = FlashWorkload.paper(8)
        # "Every processor adds 7 MBytes to the file" -> 7.5 MiB desired
        assert wl.bytes_per_client() == 80 * 512 * 24 * 8
        assert wl.bytes_per_client() / MIB == 7.5
        assert wl.side_full == 16

    def test_posix_piece_count(self):
        """983,040 = 80 blocks x 512 cells x 24 vars (Table 3)."""
        wl = FlashWorkload.paper(2)
        mem = wl.memtype(0).flatten()
        assert mem.count == 983_040
        assert set(mem.lengths.tolist()) == {8}

    def test_memtype_inside_buffer(self):
        wl = FlashWorkload.reduced(2)
        mem = wl.memtype(0)
        assert mem.true_lb >= 0
        assert mem.true_ub <= wl.nblocks * wl.block_mem_bytes

    def test_filetype_runs(self):
        wl = FlashWorkload.paper(4)
        flat = wl.filetype(0).flatten()
        assert flat.count == 24  # one run per variable
        assert set(flat.lengths.tolist()) == {80 * 512 * 8}

    def test_clients_interleave_disjointly(self):
        wl = FlashWorkload.reduced(3)
        from repro.regions import Regions

        union = Regions.concat(
            [
                wl.filetype(r).flatten().shift(wl.displacement(r, 0))
                for r in range(3)
            ]
        ).normalized()
        total = 3 * wl.bytes_per_client()
        assert union.to_pairs() == [(0, total)]

    def test_memory_stream_is_var_major(self):
        """Packed memory stream = var-major ordering of interior cells."""
        wl = FlashWorkload.reduced(1)
        buf = np.zeros(wl.nblocks * wl.block_mem_bytes, dtype=np.uint8)
        vals = buf.view(np.float64)
        s = wl.side_full
        g = wl.nguard
        nv = wl.nvar
        # value = encodes (block, var, z, y, x)
        for b in range(wl.nblocks):
            base = b * wl.block_mem_bytes // 8
            for z in range(s):
                for y in range(s):
                    for x in range(s):
                        for v in range(nv):
                            idx = base + ((z * s + y) * s + x) * nv + v
                            vals[idx] = (
                                b * 10**8
                                + v * 10**6
                                + z * 10**4
                                + y * 10**2
                                + x
                            )
        stream = wl.memtype(0).flatten().gather(buf).view(np.float64)
        expect = []
        for v in range(nv):
            for b in range(wl.nblocks):
                for z in range(g, g + wl.nxb):
                    for y in range(g, g + wl.nxb):
                        for x in range(g, g + wl.nxb):
                            expect.append(
                                b * 10**8
                                + v * 10**6
                                + z * 10**4
                                + y * 10**2
                                + x
                            )
        assert np.array_equal(stream, np.array(expect))


class TestFillBuffers:
    def test_deterministic(self):
        wl = TileWorkload.reduced()
        assert np.array_equal(wl.fill_buffer(1), wl.fill_buffer(1))
        assert not np.array_equal(wl.fill_buffer(1), wl.fill_buffer(2))
