"""Text report rendering: golden determinism and edge cases."""

import pytest

from repro.bench.characteristics import CharacteristicsRow
from repro.bench.figures import FigureSeries
from repro.bench.report import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE3,
    format_mib,
    render_characteristics,
    render_figure,
    render_metrics_summary,
    render_trace_summary,
)
from repro.bench.runner import run_workload
from repro.bench.workloads import TileWorkload
from repro.pvfs import PVFSConfig

MIB = 1024 * 1024


class TestFormatMib:
    def test_none_and_zero_are_dashes(self):
        assert format_mib(None) == "—"
        assert format_mib(0) == "—"
        assert format_mib(None, dash="n/a") == "n/a"

    def test_precision_scales_with_magnitude(self):
        assert format_mib(2.25 * MIB) == "2.25 MB"
        assert format_mib(77.2 * MIB) == "77.2 MB"
        assert format_mib(412 * MIB) == "412 MB"

    def test_precision_boundaries(self):
        # exactly at the 10/100 MiB precision steps
        assert format_mib(10 * MIB) == "10.0 MB"
        assert format_mib(100 * MIB) == "100 MB"
        # just below each boundary keeps the finer precision
        assert format_mib(10 * MIB - 1).endswith(" MB")
        assert format_mib(10 * MIB - 1).count(".") == 1

    def test_tiny_nonzero_rounds_to_zero_display(self):
        # a single byte is nonzero, so it renders (as 0.00 MB) rather
        # than being mistaken for "no data" (the dash)
        assert format_mib(1) == "0.00 MB"


def sample_rows():
    return [
        CharacteristicsRow(
            "datatype_io", True,
            desired_bytes=int(2.25 * MIB), accessed_bytes=int(2.25 * MIB),
            io_ops=1, resent_bytes=0.0,
        ),
        CharacteristicsRow(
            "two_phase", True,
            desired_bytes=int(2.25 * MIB), accessed_bytes=int(1.70 * MIB),
            io_ops=1, resent_bytes=1.5 * MIB,
        ),
        CharacteristicsRow("data_sieving", False),
    ]


class TestCharacteristics:
    def test_table_layout(self):
        text = render_characteristics("Table 1", sample_rows())
        lines = text.splitlines()
        assert lines[0] == "Table 1"
        assert "Desired Data" in lines[2] and "Resent Data" in lines[2]
        assert "Datatype I/O" in text and "Two-Phase" in text
        # unsupported rows are all dashes, resent only shows when > 0
        sieving = next(l for l in lines if "Data Sieving" in l)
        assert sieving.count("—") == 4
        dt = next(l for l in lines if "Datatype I/O" in l)
        assert dt.rstrip().endswith("—")
        tp = next(l for l in lines if "Two-Phase" in l)
        assert "1.50 MB" in tp

    def test_deterministic(self):
        a = render_characteristics("T", sample_rows())
        b = render_characteristics("T", sample_rows())
        assert a == b

    def test_unknown_method_label_falls_back_to_name(self):
        rows = [
            CharacteristicsRow(
                "experimental_io", True,
                desired_bytes=MIB, accessed_bytes=MIB,
                io_ops=1, resent_bytes=0.0,
            )
        ]
        assert "experimental_io" in render_characteristics("T", rows)

    def test_fractional_and_thousands_op_counts(self):
        rows = [
            CharacteristicsRow(
                "posix", True,
                desired_bytes=MIB, accessed_bytes=MIB,
                io_ops=90_000, resent_bytes=0.0,
            ),
            CharacteristicsRow(
                "list_io", True,
                desired_bytes=MIB, accessed_bytes=MIB,
                io_ops=1408.5, resent_bytes=0.0,
            ),
        ]
        text = render_characteristics("T", rows)
        assert "90,000" in text     # integral: grouped, no decimals
        assert "1,408.5" in text    # per-client mean: one decimal


class TestRenderFigure:
    def fig(self):
        fig = FigureSeries("fig8", "clients")
        fig.add("posix", 6, 2.9)
        fig.add("datatype_io", 6, 66.6)
        fig.add("data_sieving", 6, None)
        return fig

    def test_table_and_unavailable_dash(self):
        text = render_figure(self.fig())
        assert text.startswith("fig8  (aggregate MiB/s)")
        assert "66.6" in text and "2.9" in text
        # None renders as the em dash, right-aligned in its column
        assert "—" in text

    def test_unit_override(self):
        assert "(aggregate ops)" in render_figure(self.fig(), unit="ops")

    def test_empty_figure_renders_header_only(self):
        fig = FigureSeries("empty", "clients")
        text = render_figure(fig)
        lines = text.splitlines()
        assert lines[0].startswith("empty")
        assert len(lines) == 3  # title, rule, column header — no rows

    def test_sparse_series_dash_per_missing_cell(self):
        fig = FigureSeries("sparse", "clients")
        fig.add("posix", 6, 1.0)
        fig.add("datatype_io", 12, 2.0)  # posix has no x=12 point
        text = render_figure(fig)
        row12 = next(l for l in text.splitlines() if l.startswith("        12"))
        assert "—" in row12 and "2.0" in row12


@pytest.fixture(scope="module")
def traced_metered_run():
    cfg = PVFSConfig(trace=True, metrics=True)
    return run_workload(
        TileWorkload.reduced(frames=2), "datatype_io",
        phantom=True, config=cfg,
    )


class TestTraceSummary:
    def test_renders_and_cross_checks(self, traced_metered_run):
        text = render_trace_summary(traced_metered_run)
        assert "Trace summary:" in text
        assert "server stage" in text and "StageTimes" in text
        # every pipeline stage appears in the cross-check block
        for stage in ("decode", "plan", "cache", "storage", "respond"):
            assert stage in text

    def test_deterministic(self, traced_metered_run):
        assert render_trace_summary(
            traced_metered_run
        ) == render_trace_summary(traced_metered_run)

    def test_untraced_run_raises(self):
        r = run_workload(
            TileWorkload.reduced(frames=2), "datatype_io", phantom=True
        )
        with pytest.raises(ValueError, match="not traced"):
            render_trace_summary(r)


class TestMetricsSummary:
    def test_renders_quantiles_and_bottleneck(self, traced_metered_run):
        text = render_metrics_summary(traced_metered_run)
        assert "Metrics summary:" in text
        assert "p50" in text and "p99" in text
        assert "traffic:" in text
        assert "imbalance:" in text
        assert "bottleneck:" in text

    def test_unmetered_run_raises(self):
        r = run_workload(
            TileWorkload.reduced(frames=2), "datatype_io", phantom=True
        )
        with pytest.raises(ValueError, match="not metered"):
            render_metrics_summary(r)


def test_paper_tables_cover_the_methods():
    assert set(PAPER_TABLE1) == {
        "posix", "data_sieving", "two_phase", "list_io", "datatype_io"
    }
    assert set(PAPER_TABLE2) == {8, 27, 64}
    # data sieving is unavailable for the FLASH write test
    assert PAPER_TABLE3["data_sieving"] is None
