"""Figure harness functions (small parameterizations)."""


from repro.bench import figures


class TestFigureHarness:
    def test_fig8_small(self):
        fig = figures.fig8(frames=1, methods=["posix", "datatype_io"])
        assert fig.xs() == [6]
        assert fig.series["datatype_io"][6] > fig.series["posix"][6]

    def test_fig10_small(self):
        read_fig, write_fig = figures.fig10(
            client_dims=(2,), methods=["datatype_io"], grid=60
        )
        assert read_fig.xs() == [8]
        assert write_fig.series["datatype_io"][8] > 0

    def test_fig12_small(self):
        fig = figures.fig12(
            client_counts=(2,), methods=["two_phase", "data_sieving"]
        )
        # sieving writes unsupported -> None point
        assert fig.series["data_sieving"][2] is None
        assert fig.series["two_phase"][2] > 0

    def test_fig12_posix_limit(self):
        fig = figures.fig12(
            client_counts=(2,), methods=["posix"], posix_limit=1
        )
        assert "posix" not in fig.series or 2 not in fig.series.get(
            "posix", {}
        )

    def test_series_accumulation(self):
        fig = figures.FigureSeries("t", "x")
        fig.add("m", 1, 10.0)
        fig.add("m", 2, 20.0)
        fig.add("n", 1, None)
        assert fig.xs() == [1, 2]
        assert fig.series["m"] == {1: 10.0, 2: 20.0}
