"""The cross-method validation harness itself."""

import pytest

from repro.bench import Block3DWorkload, FlashWorkload, TileWorkload
from repro.bench.validate import validate_workload
from repro.pvfs import PVFSConfig


class TestValidateWorkload:
    def test_block3d_full_matrix(self):
        report = validate_workload(Block3DWorkload.reduced(2, is_write=True))
        # sieving writes skipped (no locking); 4 write x 5 read x 8 ranks
        assert report.skipped == ["data_sieving"]
        assert report.checks == 4 * 5 * 8
        assert report.ok
        assert "checks passed" in report.summary()

    def test_flash_matrix(self):
        report = validate_workload(FlashWorkload.reduced(2))
        assert report.checks == 4 * 5 * 2
        assert len(set(report.file_images.values())) == 1

    def test_with_locking_sieving_writes_validate_too(self):
        report = validate_workload(
            Block3DWorkload.reduced(2, is_write=True),
            config=PVFSConfig(
                n_servers=4, strip_size=256, supports_locking=True
            ),
        )
        assert report.skipped == []
        assert report.checks == 5 * 5 * 8

    def test_tile_geometry_single_tile(self):
        # validation writes then reads; the 6-tile wall has overlapping
        # tiles (concurrent overlapping writes are undefined), so
        # validate the geometry with a single tile
        wl = TileWorkload(
            tile_rows=1,
            tile_cols=1,
            tile_w=32,
            tile_h=16,
            overlap_x=0,
            overlap_y=0,
            repetitions=1,
        )
        report = validate_workload(wl)
        assert report.checks == 4 * 5

    def test_detects_corruption(self, monkeypatch):
        """A deliberately broken read path must be caught."""
        from repro.mpiio.methods import dtype as dtype_mod

        orig = dtype_mod.dtype_read

        def broken_read(op):
            yield from orig(op)
            if op.buf is not None and op.buf.size:
                op.buf[0] ^= 0xFF  # flip a byte after the read

        monkeypatch.setattr(dtype_mod, "dtype_read", broken_read)
        from repro.mpiio.adio import METHODS, AccessMethod

        m = METHODS["datatype_io"]
        monkeypatch.setitem(
            METHODS,
            "datatype_io",
            AccessMethod(m.name, broken_read, m.write, m.collective),
        )
        with pytest.raises(AssertionError, match="mismatch"):
            validate_workload(
                Block3DWorkload.reduced(2, is_write=True),
                write_methods=["posix"],
                read_methods=["datatype_io"],
            )
