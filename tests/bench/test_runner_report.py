"""Runner, report formatting, and CLI."""

import pytest

from repro.bench import (
    Block3DWorkload,
    FlashWorkload,
    TileWorkload,
    run_workload,
)
from repro.bench.characteristics import CharacteristicsRow
from repro.bench.figures import FigureSeries
from repro.bench.report import (
    format_mib,
    render_characteristics,
    render_figure,
)
from repro.bench.cli import main as cli_main

MIB = 1024 * 1024


class TestRunner:
    def test_verify_requires_real_data(self):
        with pytest.raises(ValueError):
            run_workload(TileWorkload.reduced(), "posix", phantom=True, verify=True)

    def test_phantom_run_result_fields(self):
        r = run_workload(Block3DWorkload.reduced(2), "datatype_io")
        assert r.supported
        assert r.elapsed > 0
        assert r.n_clients == 8
        assert r.desired_bytes == (24 // 2) ** 3 * 4
        assert r.bandwidth_mbps > 0
        assert r.total_desired == r.desired_bytes * 8
        assert r.server_stats["requests"] > 0

    def test_unsupported_method_reported(self):
        wl = FlashWorkload.reduced(2)  # write test
        r = run_workload(wl, "data_sieving")
        assert not r.supported
        assert r.bandwidth_mbps == 0.0
        assert "locking" in r.note
        assert r.row()["desired"] is None

    def test_verify_write_roundtrip(self):
        wl = Block3DWorkload.reduced(2, is_write=True)
        r = run_workload(wl, "list_io", phantom=False, verify=True)
        assert r.supported

    def test_read_workload_real_data(self):
        wl = TileWorkload.reduced(frames=1)
        r = run_workload(wl, "datatype_io", phantom=False)
        assert r.supported
        assert r.accessed_bytes == r.desired_bytes

    def test_repetitions_scale_desired(self):
        one = run_workload(TileWorkload.reduced(frames=1), "datatype_io")
        two = run_workload(TileWorkload.reduced(frames=2), "datatype_io")
        assert two.desired_bytes == 2 * one.desired_bytes
        assert two.io_ops == 2 * one.io_ops

    def test_row_shape(self):
        r = run_workload(TileWorkload.reduced(), "datatype_io")
        row = r.row()
        assert set(row) == {"method", "desired", "accessed", "ops", "resent"}


class TestReport:
    def test_format_mib(self):
        assert format_mib(None) == "—"
        assert format_mib(0) == "—"
        assert format_mib(2.25 * MIB) == "2.25 MB"
        assert format_mib(30.5 * MIB) == "30.5 MB"
        assert format_mib(412 * MIB) == "412 MB"

    def test_render_characteristics(self):
        rows = [
            CharacteristicsRow(
                "posix", True, int(2.25 * MIB), int(2.25 * MIB), 768, 0
            ),
            CharacteristicsRow("data_sieving", False),
        ]
        text = render_characteristics("T", rows)
        assert "POSIX I/O" in text
        assert "768" in text
        assert "2.25 MB" in text
        # unsupported row renders as dashes
        assert text.splitlines()[-1].count("—") == 4

    def test_render_figure(self):
        fig = FigureSeries("f", "clients")
        fig.add("posix", 8, 1.5)
        fig.add("posix", 27, None)
        fig.add("datatype_io", 8, 43.7)
        text = render_figure(fig)
        assert "43.7" in text
        assert "—" in text
        assert fig.xs() == [8, 27]


class TestCLI:
    def test_table1(self, capsys, tmp_path):
        rc = cli_main(["table1", "--out", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Datatype I/O" in out
        assert (tmp_path / "table1.txt").exists()

    def test_table3(self, capsys):
        rc = cli_main(["table3", "--flash-clients", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "983,040" in out
        assert "15,360" in out

    @pytest.mark.slow  # paper-scale Table 2 cell, ~30 s
    def test_table2_single_dim(self, capsys):
        rc = cli_main(["table2", "--clients-per-dim", "2"])
        assert rc == 0
        assert "8 clients" in capsys.readouterr().out

    def test_fig8_quick(self, capsys):
        rc = cli_main(["fig8", "--quick"])
        assert rc == 0
        assert "fig8-tile-read" in capsys.readouterr().out

    def test_bad_target_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["figure99"])


class TestValidateCLI:
    def test_validate_command(self, capsys, tmp_path):
        rc = cli_main(["validate", "--out", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cross-method checks passed" in out
        assert (tmp_path / "validate.txt").exists()
