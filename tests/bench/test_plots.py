"""ASCII chart and SVG panel rendering."""

import pytest

from repro.bench.figures import FigureSeries
from repro.bench.plots import (
    RESOURCE_COLORS,
    bar_chart,
    fmt_num,
    html_page,
    line_chart,
    plot_figure,
    svg_blame_bars,
    svg_heatmap,
    svg_time_series,
    svg_waterfall,
)
from repro.trace.critical import RESOURCE_ORDER


def single_x_fig():
    fig = FigureSeries("f8", "clients")
    fig.add("posix", 6, 2.9)
    fig.add("list_io", 6, 50.6)
    fig.add("datatype_io", 6, 66.6)
    fig.add("data_sieving", 6, None)
    return fig


def sweep_fig():
    fig = FigureSeries("f12", "clients")
    for n, (tp, dt) in {
        2: (9.0, 4.8),
        8: (12.2, 19.1),
        32: (35.7, 74.1),
        128: (131.4, 139.2),
    }.items():
        fig.add("two_phase", n, tp)
        fig.add("datatype_io", n, dt)
    return fig


class TestBarChart:
    def test_renders_all_methods(self):
        text = bar_chart(single_x_fig())
        assert "POSIX I/O" in text
        assert "66.6" in text
        assert "(unavailable)" in text

    def test_longest_bar_is_max(self):
        text = bar_chart(single_x_fig())
        lines = {l.split("|")[0].strip(): l for l in text.splitlines()[1:]}
        bar = lambda l: l.split("|")[1].count("█")
        assert bar(lines["Datatype I/O"]) >= bar(lines["List I/O"])
        assert bar(lines["List I/O"]) > bar(lines["POSIX I/O"])

    def test_rejects_sweeps(self):
        with pytest.raises(ValueError):
            bar_chart(sweep_fig())


class TestLineChart:
    def test_renders(self):
        text = line_chart(sweep_fig())
        assert "f12" in text
        assert "clients" in text
        assert "Two-Phase" in text
        assert "Datatype" in text
        # axis labels include x values
        assert "128" in text

    def test_markers_present(self):
        text = line_chart(sweep_fig())
        body = "\n".join(text.splitlines()[1:-2])
        assert "o" in body and "x" in body

    def test_rejects_single_x(self):
        with pytest.raises(ValueError):
            line_chart(single_x_fig())


def test_plot_figure_dispatch():
    assert "█" in plot_figure(single_x_fig())
    assert "|" in plot_figure(sweep_fig())


# ----------------------------------------------------------------------
# SVG layer
# ----------------------------------------------------------------------
def well_formed(svg: str) -> None:
    assert svg.startswith('<svg xmlns="http://www.w3.org/2000/svg"')
    assert svg.endswith("</svg>")
    assert svg.count("<svg") == 1
    # no unformatted float reprs may leak into coordinates
    assert "e-0" not in svg.lower().replace("1e-06", "")


class TestFmtNum:
    def test_short_stable_decimals(self):
        assert fmt_num(0.5) == "0.5"
        assert fmt_num(1 / 3) == "0.333333"
        assert fmt_num(12.0) == "12"

    def test_negative_zero_is_zero(self):
        assert fmt_num(-0.0) == "0"

    def test_deterministic_for_ints_and_floats(self):
        assert fmt_num(3) == fmt_num(3.0) == "3"


class TestSvgTimeSeries:
    SERIES = {
        "ios tx": ([0.0, 0.1, 0.2], [0.2, 0.9, 0.4]),
        "cn rx": ([0.0, 0.1, 0.2], [0.1, 0.3, 0.2]),
    }

    def test_renders_polyline_per_series(self):
        svg = svg_time_series(self.SERIES, title="nic")
        well_formed(svg)
        assert svg.count("<polyline") == 2
        assert "ios tx" in svg and "cn rx" in svg

    def test_golden_determinism(self):
        a = svg_time_series(self.SERIES, title="nic", unit="frac")
        b = svg_time_series(dict(self.SERIES), title="nic", unit="frac")
        assert a == b

    def test_empty_series_say_no_samples(self):
        svg = svg_time_series({}, title="empty")
        well_formed(svg)
        assert "no samples" in svg
        assert "<polyline" not in svg

    def test_single_point_draws_a_dot(self):
        svg = svg_time_series({"one": ([1.0], [2.0])}, title="dot")
        well_formed(svg)
        assert "<circle" in svg and "<polyline" not in svg

    def test_all_zero_values_do_not_divide_by_zero(self):
        svg = svg_time_series({"z": ([0.0, 1.0], [0.0, 0.0])}, title="z")
        well_formed(svg)


class TestSvgHeatmap:
    def test_cells_and_row_labels(self):
        svg = svg_heatmap(
            ["iod0", "iod1"],
            [0.0, 0.5, 1.0],
            [[0.0, 2.0], [1.0, 4.0]],
            title="depth",
        )
        well_formed(svg)
        assert "iod0" in svg and "iod1" in svg
        # the hottest cell is the darkest ramp color; a zero cell is white
        assert "#143c8c" in svg
        assert "#ffffff" in svg

    def test_empty_grid_says_no_samples(self):
        svg = svg_heatmap([], [], [], title="empty")
        well_formed(svg)
        assert "no samples" in svg

    def test_all_zero_grid_is_white_not_nan(self):
        svg = svg_heatmap(
            ["iod0"], [0.0, 1.0], [[0.0]], title="zero"
        )
        well_formed(svg)
        assert "nan" not in svg.lower()

    def test_golden_determinism(self):
        args = (["a"], [0.0, 1.0, 2.0], [[1.0, 3.0]])
        assert svg_heatmap(*args, title="t") == svg_heatmap(*args, title="t")


class TestSvgWaterfall:
    ROWS = [
        ("pvfs.read @cn0", "client_cpu", 0.0, 0.002),
        ("net.xfer @net", "net_wire", 0.002, 0.007),
        ("server.storage @iod1", "disk", 0.007, 0.02),
    ]

    def test_rows_render_in_resource_colors(self):
        svg = svg_waterfall(self.ROWS, title="critical path")
        well_formed(svg)
        assert "pvfs.read @cn0" in svg
        assert RESOURCE_COLORS["disk"] in svg
        assert RESOURCE_COLORS["net_wire"] in svg

    def test_empty_waterfall(self):
        svg = svg_waterfall([], title="empty")
        well_formed(svg)
        assert "no segments" in svg

    def test_overflow_folds_into_a_more_row(self):
        rows = [
            (f"span{i}", "other", i * 1.0, i * 1.0 + 0.5)
            for i in range(50)
        ]
        svg = svg_waterfall(rows, title="big", max_rows=10)
        well_formed(svg)
        assert "more" in svg
        assert "span49" not in svg

    def test_golden_determinism(self):
        assert svg_waterfall(self.ROWS, title="w") == svg_waterfall(
            list(self.ROWS), title="w"
        )


class TestSvgBlameBars:
    BLAMES = {
        "posix": {"client_cpu": 0.7, "disk": 0.3},
        "datatype_io": {"net_wire": 0.5, "queue_wait": 0.5},
    }

    def test_stacked_bars_and_legend(self):
        svg = svg_blame_bars(self.BLAMES, title="blame")
        well_formed(svg)
        # methods render with their paper labels
        assert "POSIX I/O" in svg and "Datatype I/O" in svg
        for r in ("client_cpu", "disk", "net_wire", "queue_wait"):
            assert RESOURCE_COLORS[r] in svg

    def test_stacking_order_follows_taxonomy(self):
        # RESOURCE_ORDER is the stable stacking order, so every blame
        # dict renders identically regardless of its key order
        flipped = {
            m: dict(reversed(list(shares.items())))
            for m, shares in self.BLAMES.items()
        }
        assert svg_blame_bars(self.BLAMES, title="b") == svg_blame_bars(
            flipped, title="b"
        )

    def test_empty_blames(self):
        svg = svg_blame_bars({}, title="empty")
        well_formed(svg)
        assert "no data" in svg

    def test_every_resource_has_a_color(self):
        assert set(RESOURCE_COLORS) == set(RESOURCE_ORDER)


class TestHtmlPage:
    def test_structure_and_self_containment(self):
        html = html_page(
            "my dash",
            [("Panel A", "<svg></svg>"), ("Panel B", "<p>b</p>")],
            header_rows=[("workload", "tile"), ("method", "posix")],
        )
        assert html.startswith("<!DOCTYPE html>")
        assert html.endswith("\n")
        assert "<title>my dash</title>" in html
        assert "Panel A" in html and "Panel B" in html
        assert "workload" in html and "tile" in html
        assert "<script" not in html
        assert "http" not in html  # no external assets at all

    def test_escapes_titles(self):
        html = html_page("a <b> & \"c\"", [("<h>", "x")])
        assert "<b>" not in html.replace("<body>", "")
        assert "&lt;h&gt;" in html

    def test_deterministic(self):
        sections = [("S", "<svg></svg>")]
        assert html_page("t", sections) == html_page("t", list(sections))
