"""ASCII chart rendering."""

import pytest

from repro.bench.figures import FigureSeries
from repro.bench.plots import bar_chart, line_chart, plot_figure


def single_x_fig():
    fig = FigureSeries("f8", "clients")
    fig.add("posix", 6, 2.9)
    fig.add("list_io", 6, 50.6)
    fig.add("datatype_io", 6, 66.6)
    fig.add("data_sieving", 6, None)
    return fig


def sweep_fig():
    fig = FigureSeries("f12", "clients")
    for n, (tp, dt) in {
        2: (9.0, 4.8),
        8: (12.2, 19.1),
        32: (35.7, 74.1),
        128: (131.4, 139.2),
    }.items():
        fig.add("two_phase", n, tp)
        fig.add("datatype_io", n, dt)
    return fig


class TestBarChart:
    def test_renders_all_methods(self):
        text = bar_chart(single_x_fig())
        assert "POSIX I/O" in text
        assert "66.6" in text
        assert "(unavailable)" in text

    def test_longest_bar_is_max(self):
        text = bar_chart(single_x_fig())
        lines = {l.split("|")[0].strip(): l for l in text.splitlines()[1:]}
        bar = lambda l: l.split("|")[1].count("█")
        assert bar(lines["Datatype I/O"]) >= bar(lines["List I/O"])
        assert bar(lines["List I/O"]) > bar(lines["POSIX I/O"])

    def test_rejects_sweeps(self):
        with pytest.raises(ValueError):
            bar_chart(sweep_fig())


class TestLineChart:
    def test_renders(self):
        text = line_chart(sweep_fig())
        assert "f12" in text
        assert "clients" in text
        assert "Two-Phase" in text
        assert "Datatype" in text
        # axis labels include x values
        assert "128" in text

    def test_markers_present(self):
        text = line_chart(sweep_fig())
        body = "\n".join(text.splitlines()[1:-2])
        assert "o" in body and "x" in body

    def test_rejects_single_x(self):
        with pytest.raises(ValueError):
            line_chart(single_x_fig())


def test_plot_figure_dispatch():
    assert "█" in plot_figure(single_x_fig())
    assert "|" in plot_figure(sweep_fig())
