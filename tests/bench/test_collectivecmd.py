"""``repro-bench collective``: smoke gate assertions + document shape."""

import copy

import pytest

# the module-scoped sweep fixtures run paper-scale cells
pytestmark = pytest.mark.slow

from repro.bench.characteristics import METHOD_ORDER
from repro.bench.collectivecmd import (
    QUICK_SPEC,
    collect_collective_bench,
    collect_smoke,
    dominance_problems,
    render_collective,
    smoke_check,
)

SMALL_SMOKE = {
    "clients": (2, 4),
    "methods": ("list_io", "datatype_io", "collective_dtype"),
}


@pytest.fixture(scope="module")
def smoke_doc():
    return collect_smoke(SMALL_SMOKE)


def test_smoke_passes(smoke_doc):
    assert smoke_check(smoke_doc) == []


def test_smoke_catches_lost_ordering(smoke_doc):
    doc = copy.deepcopy(smoke_doc)
    top = max(doc["cells"])
    doc["cells"][top]["collective_dtype"]["mbps"] = 0.01
    assert any("does not beat list_io" in p for p in smoke_check(doc))


def test_smoke_catches_nondeterminism(smoke_doc):
    doc = copy.deepcopy(smoke_doc)
    doc["replay"]["elapsed_s"] += 1e-9
    assert any("nondeterministic" in p for p in smoke_check(doc))


def test_smoke_catches_linear_request_growth(smoke_doc):
    doc = copy.deepcopy(smoke_doc)
    top = max(doc["cells"])
    lo = min(doc["cells"])
    doc["cells"][top]["collective_dtype"]["requests"] = (
        doc["cells"][lo]["collective_dtype"]["requests"] * top // lo
    )
    assert any("requests grew" in p for p in smoke_check(doc))


@pytest.fixture(scope="module")
def quick_doc():
    return collect_collective_bench(QUICK_SPEC)


def test_quick_doc_shape(quick_doc):
    assert set(quick_doc["figures"]) == {"fig10_read", "fig10_write", "fig12"}
    for cell in quick_doc["figures"].values():
        assert set(cell["mbps"]) == set(METHOD_ORDER)
    s = quick_doc["flash_showcase"]
    # FLASH: all ranks share one fingerprint — total collapse
    assert s["views_merged"] == s["clients"] - 1
    assert s["collective_mbps"] > s["independent_mbps"]


def test_quick_doc_dominates_and_renders(quick_doc):
    # even at reduced scale the sixth curve wins every cell today; if a
    # future change narrows that to paper scale only, drop this to the
    # full-spec gate in cmd_collective
    assert dominance_problems(quick_doc) == []
    text = render_collective(quick_doc)
    assert "collective_dtype" in text
    assert "FLASH showcase" in text


def test_dominance_problems_reports_loss(quick_doc):
    doc = copy.deepcopy(quick_doc)
    doc["dominance"]["fig12"] = False
    assert any("fig12" in p for p in dominance_problems(doc))
