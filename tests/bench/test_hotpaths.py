"""The ``repro-bench hotpaths`` benchmark and its compare wiring."""

import copy
import json

import pytest

from repro.bench.compare import (
    compare_against_dir,
    compare_hotpaths_docs,
    update_baselines,
)
from repro.bench.hotpaths import (
    PATHS,
    collect,
    render_hotpaths,
    write_hotpaths_bench,
)


@pytest.fixture(scope="module")
def doc():
    return collect(quick=True, repeats=1)


class TestCollect:
    def test_schema_and_paths(self, doc):
        assert doc["schema"] == 1
        assert doc["quick"] is True
        assert set(doc["paths"]) == set(PATHS)
        for entry in doc["paths"].values():
            assert entry["scalar"]["wall_s"] >= 0
            assert entry["vector"]["wall_s"] >= 0
            assert entry["speedup"] > 0

    def test_bit_identical(self, doc):
        assert doc["bit_identical"] is True
        for name, entry in doc["paths"].items():
            assert entry["bit_identical"], name

    def test_deterministic_fields_hoisted(self, doc):
        micro = doc["paths"]["regions_intersect"]
        assert micro["regions"] == micro["scalar"]["regions"]
        e2e = doc["paths"]["sieving_endtoend"]
        for k in ("sim_s", "io_ops", "accessed_bytes", "resent_bytes"):
            assert e2e[k] == e2e["scalar"][k]

    def test_render(self, doc):
        text = render_hotpaths(doc)
        assert "aggregate" in text
        assert "MISMATCH" not in text
        for name in PATHS:
            assert name in text

    def test_write(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            "repro.bench.hotpaths.collect",
            lambda quick=False, repeats=3: {"schema": 1, "paths": {}},
        )
        path, data = write_hotpaths_bench(tmp_path, quick=True)
        assert path.name == "BENCH_hotpaths.json"
        assert json.loads(path.read_text()) == data


HOT_BASE = {
    "schema": 1,
    "quick": True,
    "paths": {
        "regions_intersect": {
            "speedup": 50.0,
            "bit_identical": True,
            "regions": 1000,
            "bytes": 4000,
            "scalar": {"wall_s": 0.5},
            "vector": {"wall_s": 0.01},
        },
        "sieving_endtoend": {
            "speedup": 1.2,
            "bit_identical": True,
            "sim_s": 0.05,
            "io_ops": 12,
            "accessed_bytes": 8192,
            "resent_bytes": 0,
            "scalar": {"wall_s": 0.02},
            "vector": {"wall_s": 0.016},
        },
    },
    "speedup": 30.0,
    "bit_identical": True,
}


class TestCompareHotpaths:
    def test_identical_docs_pass(self):
        deltas = compare_hotpaths_docs(HOT_BASE, copy.deepcopy(HOT_BASE))
        assert deltas and not any(d.regression for d in deltas)

    def test_wall_clock_ignored(self):
        cur = copy.deepcopy(HOT_BASE)
        cur["paths"]["regions_intersect"]["speedup"] = 0.1
        cur["paths"]["regions_intersect"]["scalar"]["wall_s"] = 99.0
        deltas = compare_hotpaths_docs(HOT_BASE, cur)
        assert not any(d.regression for d in deltas)

    def test_region_count_change_is_regression(self):
        cur = copy.deepcopy(HOT_BASE)
        cur["paths"]["regions_intersect"]["regions"] = 1200
        deltas = compare_hotpaths_docs(HOT_BASE, cur)
        assert any(
            d.regression and d.metric == "regions" for d in deltas
        )

    def test_sim_elapsed_increase_is_regression(self):
        cur = copy.deepcopy(HOT_BASE)
        cur["paths"]["sieving_endtoend"]["sim_s"] = 0.08
        deltas = compare_hotpaths_docs(HOT_BASE, cur)
        assert any(d.regression and d.metric == "sim_s" for d in deltas)

    def test_divergence_is_regression(self):
        cur = copy.deepcopy(HOT_BASE)
        cur["paths"]["regions_intersect"]["bit_identical"] = False
        deltas = compare_hotpaths_docs(HOT_BASE, cur)
        assert any(
            d.regression and d.metric == "bit_identical" for d in deltas
        )

    def test_missing_path_is_regression(self):
        cur = copy.deepcopy(HOT_BASE)
        del cur["paths"]["sieving_endtoend"]
        deltas = compare_hotpaths_docs(HOT_BASE, cur)
        assert any(
            d.regression and d.metric == "coverage" for d in deltas
        )


class TestCompareDirWiring:
    def test_against_dir_uses_injected_doc(self, tmp_path):
        (tmp_path / "BENCH_hotpaths.json").write_text(json.dumps(HOT_BASE))
        deltas, notes = compare_against_dir(
            tmp_path, hotpaths_doc=copy.deepcopy(HOT_BASE)
        )
        assert not any(d.regression for d in deltas)
        assert any("BENCH_hotpaths.json" in n for n in notes)

    @pytest.mark.slow  # full-size hotpaths re-collection, ~1 min
    def test_update_baselines_writes_hotpaths(self, tmp_path):
        written = update_baselines(
            tmp_path,
            pipeline_doc={"benchmarks": {}},
            dtype_cache_doc={"phases": {}},
            faults_doc={"methods": {}},
            scale_doc={"cells": []},
            hotpaths_doc=copy.deepcopy(HOT_BASE),
        )
        names = [p.name for p in written]
        assert "BENCH_hotpaths.json" in names
        out = json.loads((tmp_path / "BENCH_hotpaths.json").read_text())
        assert out == HOT_BASE
