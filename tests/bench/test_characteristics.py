"""Tables 1 and 3 against the paper's published values.

Table 2 (the 600³ runs) is asserted in the benchmark suite
(benchmarks/bench_tables.py) because it takes ~a minute; here a scaled
3-D configuration checks the same formulas.
"""

import pytest

from repro.bench.characteristics import (
    INDEPENDENT_METHODS,
    table1,
    table3,
)
from repro.bench.report import PAPER_TABLE1, PAPER_TABLE3
from repro.bench.runner import run_workload
from repro.bench.workloads import Block3DWorkload

MIB = 1024 * 1024


@pytest.fixture(scope="module")
def t1():
    return {row.method: row for row in table1(frames=1)}


@pytest.fixture(scope="module")
def t3():
    return {row.method: row for row in table3(n_clients=4)}


class TestTable1:
    def test_method_coverage(self, t1):
        assert set(t1) == set(INDEPENDENT_METHODS)

    @pytest.mark.parametrize("method", INDEPENDENT_METHODS)
    def test_against_paper(self, t1, method):
        row = t1[method]
        desired, accessed, ops, resent = PAPER_TABLE1[method]
        assert row.supported
        assert row.desired_bytes == pytest.approx(desired, rel=0.01)
        assert row.accessed_bytes == pytest.approx(accessed, rel=0.01)
        assert row.io_ops == ops
        if resent is None:
            assert row.resent_bytes == 0
        else:
            # domain alignment differs slightly from ROMIO's: ±10%
            assert row.resent_bytes == pytest.approx(resent, rel=0.10)

    def test_listio_request_stream_is_9kb(self, t1):
        """E8: ~9 KB of offset-length pairs per client (§4.2)."""
        from repro.bench.workloads import TileWorkload

        wl = TileWorkload.paper(frames=1)
        r = run_workload(wl, "list_io", phantom=True)
        # 768 pairs x 12 B = 9216 B of pair data (headers excluded)
        pair_bytes = r.request_desc_bytes
        assert pair_bytes >= 768 * 12
        assert pair_bytes <= 768 * 12 + 200 * 64  # + request headers


class TestTable3:
    def test_sieving_unavailable(self, t3):
        assert not t3["data_sieving"].supported

    @pytest.mark.parametrize(
        "method", [m for m in INDEPENDENT_METHODS if m != "data_sieving"]
    )
    def test_against_paper(self, t3, method):
        row = t3[method]
        desired, accessed, ops, resent = PAPER_TABLE3[method]
        assert row.desired_bytes == desired == int(7.5 * MIB)
        assert row.accessed_bytes == accessed
        assert row.io_ops == ops
        if resent == "n-1/n":
            assert row.resent_bytes == pytest.approx(
                desired * 3 / 4, rel=0.01
            )
        else:
            assert row.resent_bytes == 0


class TestTable2Formulas:
    """Same decomposition at grid=120: formula-derived expectations."""

    @pytest.mark.parametrize("cpd", [2, 3])
    def test_scaled_block3d(self, cpd):
        grid = 120
        block = grid // cpd
        wl = Block3DWorkload(grid=grid, clients_per_dim=cpd)
        desired = block**3 * 4

        posix = run_workload(
            Block3DWorkload(grid=grid, clients_per_dim=cpd), "posix",
            phantom=True,
        )
        assert posix.io_ops == block * block
        assert posix.accessed_bytes == desired

        dtype_r = run_workload(
            Block3DWorkload(grid=grid, clients_per_dim=cpd), "datatype_io",
            phantom=True,
        )
        assert dtype_r.io_ops == 1
        assert dtype_r.accessed_bytes == desired

        listio = run_workload(
            Block3DWorkload(grid=grid, clients_per_dim=cpd), "list_io",
            phantom=True,
        )
        assert listio.io_ops == -(-block * block // 64)

        tp = run_workload(
            Block3DWorkload(grid=grid, clients_per_dim=cpd), "two_phase",
            phantom=True,
        )
        # resent fraction: a block spans 1/cpd of the file's z-extent,
        # so it overlaps n/cpd aggregator domains and keeps 1/cpd² of
        # its data local: frac = 1 - 1/cpd² (gives the paper's 77.2 MB
        # at cpd=2)
        frac = 1 - 1 / cpd**2
        assert tp.resent_bytes == pytest.approx(desired * frac, rel=0.02)
        assert tp.accessed_bytes == pytest.approx(desired, rel=0.02)

    def test_sieving_extent_formula(self):
        grid, cpd = 120, 2
        block = grid // cpd
        wl = Block3DWorkload(grid=grid, clients_per_dim=cpd)
        r = run_workload(wl, "data_sieving", phantom=True)
        flat = wl.filetype(0).flatten()
        lo, hi = flat.extent()
        span = hi - lo
        assert r.accessed_bytes == pytest.approx(span, rel=0.01)
        bufsize = 4 * MIB
        assert r.io_ops == -(-span // bufsize)
