"""Unit tests for Regions construction and basic properties."""

import numpy as np
import pytest

from repro.regions import Regions


class TestConstruction:
    def test_empty(self):
        r = Regions.empty()
        assert r.count == 0
        assert r.total_bytes == 0
        assert r.extent() == (0, 0)
        assert list(r) == []

    def test_single(self):
        r = Regions.single(10, 5)
        assert r.count == 1
        assert r.total_bytes == 5
        assert r.to_pairs() == [(10, 5)]

    def test_single_zero_length_is_empty(self):
        assert Regions.single(10, 0).count == 0

    def test_from_pairs(self):
        r = Regions.from_pairs([(0, 4), (10, 2)])
        assert r.to_pairs() == [(0, 4), (10, 2)]

    def test_zero_length_regions_dropped(self):
        r = Regions([0, 5, 9], [4, 0, 1])
        assert r.to_pairs() == [(0, 4), (9, 1)]

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            Regions([0], [-1])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Regions([0, 1], [1])

    def test_concat_preserves_order(self):
        a = Regions.from_pairs([(10, 2)])
        b = Regions.from_pairs([(0, 3)])
        c = Regions.concat([a, b])
        assert c.to_pairs() == [(10, 2), (0, 3)]

    def test_concat_empty_parts(self):
        assert Regions.concat([]).count == 0
        a = Regions.from_pairs([(1, 1)])
        assert Regions.concat([Regions.empty(), a]) == a

    def test_equality(self):
        a = Regions.from_pairs([(0, 4), (8, 4)])
        b = Regions.from_pairs([(0, 4), (8, 4)])
        c = Regions.from_pairs([(0, 4), (8, 5)])
        assert a == b
        assert a != c
        assert (a == 3) is NotImplemented or not (a == 3)

    def test_content_hash(self):
        a = Regions.from_pairs([(0, 4), (8, 4)])
        b = Regions.from_pairs([(0, 4), (8, 4)])
        c = Regions.from_pairs([(0, 4), (8, 5)])
        assert hash(a) == hash(b)  # equal content -> equal hash
        assert a == b
        # distinct content *may* collide, but these two must not be
        # forced equal through a dict
        assert len({a: 1, c: 2}) == 2
        assert {a: "x"}[b] == "x"
        assert hash(Regions.empty()) == hash(Regions.empty())

    def test_getitem_slice(self):
        r = Regions.from_pairs([(0, 1), (2, 1), (4, 1)])
        assert r[1:].to_pairs() == [(2, 1), (4, 1)]
        assert r[0].to_pairs() == [(0, 1)]

    def test_repr_small_and_large(self):
        small = Regions.from_pairs([(0, 1)])
        assert "0, 1" in repr(small)
        big = Regions.from_pairs([(i, 1) for i in range(0, 40, 2)])
        assert "..." in repr(big)

    def test_extent(self):
        r = Regions.from_pairs([(10, 5), (2, 3)])
        assert r.extent() == (2, 15)

    def test_is_sorted(self):
        assert Regions.from_pairs([(0, 1), (5, 1)]).is_sorted
        assert not Regions.from_pairs([(5, 1), (0, 1)]).is_sorted


class TestTransforms:
    def test_shift(self):
        r = Regions.from_pairs([(0, 4), (8, 2)]).shift(100)
        assert r.to_pairs() == [(100, 4), (108, 2)]

    def test_shift_zero_is_identity(self):
        r = Regions.from_pairs([(0, 4)])
        assert r.shift(0) is r

    def test_shift_negative(self):
        r = Regions.from_pairs([(10, 4)]).shift(-10)
        assert r.to_pairs() == [(0, 4)]

    def test_tile(self):
        r = Regions.from_pairs([(0, 2)]).tile(3, 10)
        assert r.to_pairs() == [(0, 2), (10, 2), (20, 2)]

    def test_tile_multi_region(self):
        r = Regions.from_pairs([(0, 1), (4, 1)]).tile(2, 8)
        assert r.to_pairs() == [(0, 1), (4, 1), (8, 1), (12, 1)]

    def test_tile_zero(self):
        assert Regions.from_pairs([(0, 2)]).tile(0, 10).count == 0

    def test_tile_one_is_identity(self):
        r = Regions.from_pairs([(0, 2)])
        assert r.tile(1, 10) is r

    def test_tile_negative_count(self):
        with pytest.raises(ValueError):
            Regions.from_pairs([(0, 2)]).tile(-1, 10)

    def test_coalesce_adjacent(self):
        r = Regions.from_pairs([(0, 4), (4, 4), (10, 2)]).coalesce()
        assert r.to_pairs() == [(0, 8), (10, 2)]

    def test_coalesce_only_sequence_adjacent(self):
        # spatially adjacent but out of sequence order: must NOT merge
        r = Regions.from_pairs([(4, 4), (0, 4)]).coalesce()
        assert r.to_pairs() == [(4, 4), (0, 4)]

    def test_coalesce_long_run(self):
        r = Regions.from_pairs([(i, 1) for i in range(100)]).coalesce()
        assert r.to_pairs() == [(0, 100)]

    def test_coalesce_no_merge_is_identity(self):
        r = Regions.from_pairs([(0, 1), (2, 1)])
        assert r.coalesce() is r

    def test_normalized_sorts_and_merges(self):
        r = Regions.from_pairs([(8, 4), (0, 4), (4, 4)]).normalized()
        assert r.to_pairs() == [(0, 12)]


class TestClip:
    def test_clip_basic(self):
        r = Regions.from_pairs([(0, 10), (20, 10)])
        assert r.clip(5, 25).to_pairs() == [(5, 5), (20, 5)]

    def test_clip_empty_range(self):
        r = Regions.from_pairs([(0, 10)])
        assert r.clip(5, 5).count == 0
        assert r.clip(7, 3).count == 0

    def test_clip_no_overlap(self):
        r = Regions.from_pairs([(0, 10)])
        assert r.clip(100, 200).count == 0

    def test_clip_with_stream_positions(self):
        r = Regions.from_pairs([(0, 10), (20, 10)])
        clipped, spos = r.clip_with_stream(25, 100)
        assert clipped.to_pairs() == [(25, 5)]
        # bytes 25..30 of the file are stream bytes 15..20
        assert spos.tolist() == [15]

    def test_clip_with_stream_spanning(self):
        r = Regions.from_pairs([(0, 4), (10, 4), (20, 4)])
        clipped, spos = r.clip_with_stream(2, 22)
        assert clipped.to_pairs() == [(2, 2), (10, 4), (20, 2)]
        assert spos.tolist() == [2, 4, 8]

    def test_intersect(self):
        a = Regions.from_pairs([(0, 10), (20, 10)])
        b = Regions.from_pairs([(5, 20)])
        assert a.intersect(b).to_pairs() == [(5, 5), (20, 5)]
        assert a.overlap_bytes(b) == 10

    def test_intersect_empty(self):
        a = Regions.from_pairs([(0, 10)])
        assert a.intersect(Regions.empty()).count == 0
        assert Regions.empty().intersect(a).count == 0


class TestStreamOps:
    def test_slice_stream(self):
        r = Regions.from_pairs([(0, 4), (10, 4), (20, 4)])
        assert r.slice_stream(0, 4).to_pairs() == [(0, 4)]
        assert r.slice_stream(2, 6).to_pairs() == [(2, 2), (10, 2)]
        assert r.slice_stream(4, 12).to_pairs() == [(10, 4), (20, 4)]
        assert r.slice_stream(5, 7).to_pairs() == [(11, 2)]

    def test_slice_stream_out_of_range(self):
        r = Regions.from_pairs([(0, 4)])
        assert r.slice_stream(10, 20).count == 0
        assert r.slice_stream(-5, 2).to_pairs() == [(0, 2)]

    def test_split_at_stream(self):
        r = Regions.from_pairs([(0, 10)])
        out = r.split_at_stream([3, 7])
        assert out.to_pairs() == [(0, 3), (3, 4), (7, 3)]

    def test_split_at_stream_boundary_cuts_noop(self):
        r = Regions.from_pairs([(0, 4), (10, 4)])
        out = r.split_at_stream([4])  # already a region boundary
        assert out == r

    def test_split_at_stream_multiple_regions(self):
        r = Regions.from_pairs([(0, 4), (10, 4)])
        out = r.split_at_stream([2, 6])
        assert out.to_pairs() == [(0, 2), (2, 2), (10, 2), (12, 2)]

    def test_split_chunks(self):
        r = Regions.from_pairs([(i * 2, 1) for i in range(10)])
        chunks = list(r.split_chunks(4))
        assert [c.count for c in chunks] == [4, 4, 2]
        assert Regions.concat(chunks) == r

    def test_split_chunks_invalid(self):
        with pytest.raises(ValueError):
            list(Regions.empty().split_chunks(0))

    def test_split_stream(self):
        r = Regions.from_pairs([(0, 10), (20, 10)])
        chunks = list(r.split_stream(7))
        assert all(c.total_bytes <= 7 for c in chunks)
        assert sum(c.total_bytes for c in chunks) == 20

    def test_split_stream_invalid(self):
        with pytest.raises(ValueError):
            list(Regions.empty().split_stream(0))


class TestGatherScatter:
    def test_gather(self):
        buf = np.arange(20, dtype=np.uint8)
        r = Regions.from_pairs([(2, 3), (10, 2)])
        assert r.gather(buf).tolist() == [2, 3, 4, 10, 11]

    def test_gather_preserves_sequence_order(self):
        buf = np.arange(20, dtype=np.uint8)
        r = Regions.from_pairs([(10, 2), (0, 2)])
        assert r.gather(buf).tolist() == [10, 11, 0, 1]

    def test_gather_empty(self):
        assert Regions.empty().gather(np.zeros(4, np.uint8)).size == 0

    def test_gather_bounds_check(self):
        buf = np.zeros(4, np.uint8)
        with pytest.raises(IndexError):
            Regions.from_pairs([(2, 5)]).gather(buf)

    def test_scatter(self):
        buf = np.zeros(10, dtype=np.uint8)
        r = Regions.from_pairs([(1, 2), (6, 3)])
        r.scatter(buf, np.array([9, 8, 7, 6, 5], dtype=np.uint8))
        assert buf.tolist() == [0, 9, 8, 0, 0, 0, 7, 6, 5, 0]

    def test_scatter_size_mismatch(self):
        buf = np.zeros(10, dtype=np.uint8)
        with pytest.raises(ValueError):
            Regions.from_pairs([(0, 4)]).scatter(buf, np.zeros(3, np.uint8))

    def test_scatter_bounds_check(self):
        buf = np.zeros(4, np.uint8)
        with pytest.raises(IndexError):
            Regions.from_pairs([(2, 5)]).scatter(buf, np.zeros(5, np.uint8))

    def test_gather_scatter_roundtrip(self, rng):
        buf = rng.integers(0, 255, 1000, dtype=np.uint8)
        r = Regions.from_pairs([(i * 7, 3) for i in range(100)])
        data = r.gather(buf)
        out = np.zeros_like(buf)
        r.scatter(out, data)
        assert np.array_equal(r.gather(out), data)

    def test_gather_accepts_other_dtypes(self):
        buf = np.arange(5, dtype=np.int32)
        r = Regions.from_pairs([(0, 4)])
        assert r.gather(buf).tolist() == [0, 0, 0, 0]
