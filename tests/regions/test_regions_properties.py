"""Property-based tests of region-set invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.regions import Regions

from ..conftest import region_lists, sorted_region_lists


class TestStreamInvariants:
    @given(region_lists(), st.data())
    @settings(max_examples=120, deadline=None)
    def test_slice_stream_returns_exact_bytes(self, pairs, data):
        r = Regions.from_pairs(pairs)
        total = r.total_bytes
        s0 = data.draw(st.integers(0, total))
        s1 = data.draw(st.integers(s0, total))
        piece = r.slice_stream(s0, s1)
        assert piece.total_bytes == s1 - s0

    @given(region_lists(), st.data())
    @settings(max_examples=80, deadline=None)
    def test_slice_stream_matches_gather(self, pairs, data):
        """Gathering the slice equals slicing the gathered stream."""
        r = Regions.from_pairs(pairs)
        total = r.total_bytes
        if total == 0:
            return
        s0 = data.draw(st.integers(0, total))
        s1 = data.draw(st.integers(s0, total))
        _, hi = r.extent()
        rng = np.random.default_rng(0)
        buf = rng.integers(0, 255, max(hi, 1), dtype=np.uint8)
        assert np.array_equal(
            r.slice_stream(s0, s1).gather(buf), r.gather(buf)[s0:s1]
        )

    @given(region_lists(), st.lists(st.integers(0, 10_000), max_size=8))
    @settings(max_examples=100, deadline=None)
    def test_split_at_stream_preserves_bytes(self, pairs, cuts):
        r = Regions.from_pairs(pairs)
        out = r.split_at_stream(cuts)
        assert out.total_bytes == r.total_bytes
        # coalescing the split recovers the original region structure
        assert out.coalesce() == r.coalesce()

    @given(region_lists(), st.integers(1, 7))
    @settings(max_examples=80, deadline=None)
    def test_split_chunks_partition(self, pairs, k):
        r = Regions.from_pairs(pairs)
        chunks = list(r.split_chunks(k))
        assert all(c.count <= k for c in chunks)
        assert Regions.concat(chunks) == r

    @given(region_lists(), st.integers(1, 50))
    @settings(max_examples=80, deadline=None)
    def test_split_stream_partition(self, pairs, max_bytes):
        r = Regions.from_pairs(pairs)
        chunks = list(r.split_stream(max_bytes))
        assert all(c.total_bytes <= max_bytes for c in chunks)
        assert sum(c.total_bytes for c in chunks) == r.total_bytes

    @given(region_lists())
    @settings(max_examples=100, deadline=None)
    def test_clip_with_stream_consistent(self, pairs):
        r = Regions.from_pairs(pairs)
        lo, hi = r.extent()
        mid = (lo + hi) // 2
        clipped, spos = r.clip_with_stream(lo, mid)
        assert clipped == r.clip(lo, mid)
        assert spos.size == clipped.count
        if clipped.count:
            assert (spos >= 0).all()
            assert (spos + clipped.lengths <= r.total_bytes).all()


class TestSetAlgebra:
    @given(region_lists())
    @settings(max_examples=100, deadline=None)
    def test_normalized_is_canonical(self, pairs):
        r = Regions.from_pairs(pairs)
        n = r.normalized()
        assert n.is_sorted
        if n.count > 1:
            # strictly separated (no touching or overlapping runs)
            ends = n.offsets + n.lengths
            assert (n.offsets[1:] > ends[:-1]).all()
        assert n.normalized() == n

    @given(region_lists())
    @settings(max_examples=60, deadline=None)
    def test_normalized_preserves_byte_set(self, pairs):
        r = Regions.from_pairs(pairs)
        lo, hi = r.extent()
        width = max(hi, 1)
        mask = np.zeros(width, dtype=bool)
        for o, l in r:
            mask[o : o + l] = True
        n = r.normalized()
        mask2 = np.zeros(width, dtype=bool)
        for o, l in n:
            mask2[o : o + l] = True
        assert np.array_equal(mask, mask2)

    @given(sorted_region_lists(), sorted_region_lists())
    @settings(max_examples=80, deadline=None)
    def test_intersect_commutative(self, a_pairs, b_pairs):
        a = Regions.from_pairs(a_pairs)
        b = Regions.from_pairs(b_pairs)
        assert a.intersect(b) == b.intersect(a)
        assert a.overlap_bytes(b) == b.overlap_bytes(a)

    @given(sorted_region_lists())
    @settings(max_examples=60, deadline=None)
    def test_intersect_idempotent(self, pairs):
        a = Regions.from_pairs(pairs)
        assert a.intersect(a) == a.normalized()

    @given(region_lists(), st.integers(-100, 100))
    @settings(max_examples=80, deadline=None)
    def test_shift_roundtrip(self, pairs, delta):
        r = Regions.from_pairs(pairs)
        assert r.shift(delta).shift(-delta) == r

    @given(region_lists(), st.integers(0, 5), st.integers(0, 2000))
    @settings(max_examples=80, deadline=None)
    def test_tile_total_bytes(self, pairs, count, stride):
        r = Regions.from_pairs(pairs)
        t = r.tile(count, stride)
        assert t.total_bytes == count * r.total_bytes
