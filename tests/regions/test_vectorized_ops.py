"""Vectorized region algebra vs the retained scalar reference.

Every numpy fast path introduced for the hot-path vectorization keeps
its original per-region Python implementation behind
``REPRO_SCALAR_FALLBACK`` (:mod:`repro.vectorize`).  These properties
pin the two byte-exact against each other over random region sets.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.regions import Regions
from repro.vectorize import scalar_fallback, scalar_mode

from ..conftest import region_lists, sorted_region_lists


class TestIntersect:
    @given(region_lists(), region_lists())
    @settings(max_examples=150, deadline=None)
    def test_vector_matches_scalar(self, pa, pb):
        a = Regions.from_pairs(pa)
        b = Regions.from_pairs(pb)
        fast = a.intersect(b)
        with scalar_mode():
            ref = a.intersect(b)
        assert fast == ref

    @given(region_lists(), region_lists())
    @settings(max_examples=80, deadline=None)
    def test_matches_scalar_reference_directly(self, pa, pb):
        a = Regions.from_pairs(pa).normalized()
        b = Regions.from_pairs(pb).normalized()
        assert a.intersect(b) == a._intersect_scalar(b)

    def test_output_is_a_major_ordered(self):
        a = Regions.from_pairs([(0, 10), (20, 10)])
        b = Regions.from_pairs([(5, 3), (9, 1), (22, 4)])
        out = a.intersect(b)
        assert list(out.offsets) == [5, 9, 22]
        assert list(out.lengths) == [3, 1, 4]


class TestPartitionWithStream:
    @given(sorted_region_lists(), st.data())
    @settings(max_examples=120, deadline=None)
    def test_matches_clip_with_stream(self, pairs, data):
        r = Regions.from_pairs(pairs)
        lo, hi = r.extent() if r.count else (0, 100)
        k = data.draw(st.integers(1, 6))
        cuts = sorted(
            data.draw(st.integers(lo - 5, hi + 5)) for _ in range(k + 1)
        )
        bounds = np.asarray(cuts, dtype=np.int64)
        parts = r.partition_with_stream(bounds)
        assert len(parts) == k
        for i in range(k):
            want, want_pos = r.clip_with_stream(
                int(bounds[i]), int(bounds[i + 1])
            )
            got, got_pos = parts[i]
            assert got == want
            assert np.array_equal(got_pos, want_pos)

    @given(region_lists(), st.data())
    @settings(max_examples=80, deadline=None)
    def test_unsorted_input_matches_clip(self, pairs, data):
        """Overlapping/unsorted sets take the per-interval fallback."""
        r = Regions.from_pairs(pairs)
        lo, hi = r.extent() if r.count else (0, 100)
        mid = data.draw(st.integers(lo, hi))
        bounds = np.asarray([lo, mid, hi], dtype=np.int64)
        for (got, got_pos), (a, b) in zip(
            r.partition_with_stream(bounds), [(lo, mid), (mid, hi)]
        ):
            want, want_pos = r.clip_with_stream(a, b)
            assert got == want
            assert np.array_equal(got_pos, want_pos)

    @given(sorted_region_lists())
    @settings(max_examples=80, deadline=None)
    def test_scalar_mode_identical(self, pairs):
        r = Regions.from_pairs(pairs)
        lo, hi = r.extent() if r.count else (0, 90)
        bounds = np.linspace(lo, hi + 1, 5).astype(np.int64)
        fast = r.partition_with_stream(bounds)
        with scalar_mode():
            ref = Regions.from_pairs(pairs).partition_with_stream(bounds)
        assert len(fast) == len(ref)
        for (fc, fp), (rc, rp) in zip(fast, ref):
            assert fc == rc
            assert np.array_equal(fp, rp)

    def test_partition_covers_stream_exactly(self):
        r = Regions.from_pairs([(0, 4), (10, 4), (20, 4)])
        bounds = np.asarray([0, 12, 24], dtype=np.int64)
        parts = r.partition_with_stream(bounds)
        assert sum(c.total_bytes for c, _ in parts) == r.total_bytes
        # stream positions are disjoint and ascending across intervals
        allpos = np.concatenate([p for _, p in parts])
        assert (np.diff(allpos) > 0).all()


class TestMemoization:
    def test_flat_index_reused(self):
        r = Regions.from_pairs([(0, 4), (10, 4)])
        assert r._flat_index() is r._flat_index()

    def test_gather_scatter_roundtrip_after_memo(self):
        r = Regions.from_pairs([(0, 4), (10, 4)])
        buf = np.arange(20, dtype=np.uint8)
        packed = r.gather(buf)
        out = np.zeros(20, dtype=np.uint8)
        r.scatter(out, packed)
        assert np.array_equal(out[r._flat_index()], buf[r._flat_index()])


class TestScalarModeKnob:
    def test_context_manager_restores(self):
        before = scalar_fallback()
        with scalar_mode():
            assert scalar_fallback()
        assert scalar_fallback() == before

    def test_nested(self):
        with scalar_mode():
            with scalar_mode(False):
                assert not scalar_fallback()
            assert scalar_fallback()
