"""BlockStore and DiskModel."""

import numpy as np
import pytest

from repro.regions import Regions
from repro.simulation import CostModel
from repro.storage import BlockStore, DiskModel


class TestBlockStore:
    def test_write_read_roundtrip(self, rng):
        store = BlockStore(chunk_size=64)
        data = rng.integers(0, 255, 500, dtype=np.uint8)
        r = Regions.single(100, 500)
        store.write_regions(1, r, data)
        assert np.array_equal(store.read_regions(1, r), data)

    def test_holes_read_zero(self):
        store = BlockStore(chunk_size=16)
        store.write_regions(1, Regions.single(10, 4), np.full(4, 9, np.uint8))
        out = store.read_regions(1, Regions.single(0, 20))
        assert out[:10].sum() == 0
        assert out[10:14].tolist() == [9, 9, 9, 9]
        assert out[14:].sum() == 0

    def test_unknown_handle_reads_zero(self):
        store = BlockStore()
        assert store.read_regions(42, Regions.single(0, 8)).sum() == 0

    def test_scattered_regions(self, rng):
        store = BlockStore(chunk_size=32)
        regions = Regions.from_pairs([(5, 10), (100, 20), (40, 7)])
        data = rng.integers(0, 255, regions.total_bytes, dtype=np.uint8)
        store.write_regions(7, regions, data)
        assert np.array_equal(store.read_regions(7, regions), data)

    def test_chunk_boundary_crossing(self, rng):
        store = BlockStore(chunk_size=10)
        data = rng.integers(0, 255, 35, dtype=np.uint8)
        store.write_regions(1, Regions.single(7, 35), data)
        assert np.array_equal(
            store.read_regions(1, Regions.single(7, 35)), data
        )

    def test_size_tracking(self):
        store = BlockStore()
        assert store.local_size(1) == 0
        store.write_regions(1, Regions.single(100, 10), np.zeros(10, np.uint8))
        assert store.local_size(1) == 110

    def test_phantom_notes(self):
        store = BlockStore()
        store.note_write(3, Regions.single(50, 25))
        assert store.local_size(3) == 75
        assert store.bytes_written == 25
        store.note_read(Regions.single(0, 10))
        assert store.bytes_read == 10

    def test_remove(self):
        store = BlockStore()
        store.write_regions(1, Regions.single(0, 4), np.ones(4, np.uint8))
        store.remove(1)
        assert store.local_size(1) == 0
        assert store.handles() == []

    def test_stream_size_mismatch(self):
        store = BlockStore()
        with pytest.raises(ValueError):
            store.write_regions(1, Regions.single(0, 4), np.zeros(5, np.uint8))

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            BlockStore(chunk_size=0)

    def test_counters(self):
        store = BlockStore()
        store.write_regions(1, Regions.single(0, 4), np.zeros(4, np.uint8))
        store.read_regions(1, Regions.single(0, 4))
        assert store.bytes_written == 4
        assert store.bytes_read == 4


class TestDiskModel:
    def test_sequential_access_no_seek(self):
        disk = DiskModel(CostModel())
        # head starts at 0; first region at 0, second adjacent: no seeks
        disk.access_time(Regions.from_pairs([(0, 100), (100, 100)]))
        assert disk.total_seeks == 0

    def test_head_position_persists(self):
        c = CostModel()
        disk = DiskModel(c)
        disk.access_time(Regions.single(0, 100))
        seeks_before = disk.total_seeks
        disk.access_time(Regions.single(100, 50))  # continues at head
        assert disk.total_seeks == seeks_before

    def test_scattered_seeks(self):
        c = CostModel()
        disk = DiskModel(c)
        r = Regions.from_pairs([(1000, 10), (5000, 10), (2000, 10)])
        t = disk.access_time(r)
        assert disk.total_seeks == 3
        assert t == pytest.approx(3 * c.disk_seek + 30 / c.disk_bandwidth)

    def test_empty_access_free(self):
        disk = DiskModel(CostModel())
        assert disk.access_time(Regions.empty()) == 0.0

    def test_bytes_counted(self):
        disk = DiskModel(CostModel())
        disk.access_time(Regions.single(0, 123))
        assert disk.total_bytes == 123
