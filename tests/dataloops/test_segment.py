"""Partial processing: arbitrary stream windows, bounded batches."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datatypes import DOUBLE, INT, struct, subarray, vector
from repro.dataloops import DataloopStream, build_dataloop, stream_regions
from repro.regions import Regions

from ..conftest import small_datatypes


def reference_window(t, count, base, first, last):
    """Window regions via full flatten + stream slicing (ground truth)."""
    return t.flatten(count, base).slice_stream(first, last)


CASES = [
    vector(5, 3, 7, INT),
    subarray([8, 8, 8], [3, 3, 3], [2, 2, 2], INT),
    struct([2, 1], [0, 40], [INT, DOUBLE]),
    struct([1, 2], [30, 0], [DOUBLE, vector(2, 1, 3, INT)]),
]


class TestWindows:
    @pytest.mark.parametrize("t", CASES, ids=lambda t: t.combiner)
    def test_full_window(self, t):
        dl = build_dataloop(t)
        assert stream_regions(dl) == t.flatten()

    @pytest.mark.parametrize("t", CASES, ids=lambda t: t.combiner)
    def test_every_subwindow_one_instance(self, t):
        dl = build_dataloop(t)
        size = t.size
        for first in range(0, size, max(size // 7, 1)):
            for last in range(first + 1, size + 1, max(size // 5, 1)):
                got = stream_regions(dl, first=first, last=last)
                want = reference_window(t, 1, 0, first, last)
                assert got == want, (first, last)

    @pytest.mark.parametrize("t", CASES, ids=lambda t: t.combiner)
    def test_windows_across_instances(self, t):
        dl = build_dataloop(t)
        count = 3
        size = t.size * count
        for first, last in [
            (0, size),
            (1, size - 1),
            (t.size - 1, t.size + 1),
            (t.size, 2 * t.size),
            (size // 3, 2 * size // 3),
        ]:
            got = stream_regions(dl, count=count, first=first, last=last)
            want = reference_window(t, count, 0, first, last)
            assert got == want, (first, last)

    def test_base_offset(self):
        t = vector(3, 1, 2, INT)
        dl = build_dataloop(t)
        got = stream_regions(dl, base_offset=1000, first=2, last=10)
        want = reference_window(t, 1, 1000, 2, 10)
        assert got == want

    def test_empty_window(self):
        dl = build_dataloop(INT)
        assert stream_regions(dl, first=2, last=2).count == 0
        assert stream_regions(dl, first=10, last=5).count == 0

    def test_window_clamped_to_stream(self):
        t = vector(2, 1, 2, INT)
        dl = build_dataloop(t)
        got = stream_regions(dl, first=0, last=10_000)
        assert got == t.flatten()


class TestBatching:
    def test_batches_respect_max_regions(self):
        t = vector(1000, 1, 2, INT)
        dl = build_dataloop(t)
        stream = DataloopStream(dl, max_regions=64)
        batches = list(stream)
        assert all(b.count <= 64 for b in batches)
        assert Regions.concat(batches) == t.flatten()
        assert len(batches) >= 1000 // 64

    def test_single_batch_when_small(self):
        t = vector(10, 1, 2, INT)
        dl = build_dataloop(t)
        assert len(list(DataloopStream(dl, max_regions=64))) == 1

    def test_batch_boundary_coalescing(self):
        # dense type must coalesce to one region even over many batches
        t = vector(100, 2, 2, INT)  # dense
        dl = build_dataloop(t)
        out = DataloopStream(dl, max_regions=8).regions()
        assert out.to_pairs() == [(0, 800)]

    def test_invalid_params(self):
        dl = build_dataloop(INT)
        with pytest.raises(ValueError):
            DataloopStream(dl, max_regions=0)
        with pytest.raises(ValueError):
            DataloopStream(dl, count=-1)

    def test_stream_bytes_property(self):
        dl = build_dataloop(vector(4, 1, 2, INT))
        s = DataloopStream(dl, first=3, last=11)
        assert s.stream_bytes == 8

    def test_cache_threshold_equivalence(self):
        t = subarray([20, 20], [10, 10], [5, 5], INT)
        dl = build_dataloop(t)
        a = DataloopStream(dl, count=2, cache_threshold=0).regions()
        b = DataloopStream(dl, count=2, cache_threshold=10**6).regions()
        assert a == b == t.flatten(2)


class TestInstanceAlignedBatches:
    """Periodicity metadata: batches cut at whole-instance boundaries."""

    @pytest.mark.parametrize("t", CASES, ids=lambda t: t.combiner)
    def test_union_matches_window(self, t):
        dl = build_dataloop(t)
        size = 3 * t.size
        stream = DataloopStream(
            dl, count=3, first=5, last=size - 3, max_regions=16
        )
        parts = [b for _, _, b in stream.instance_aligned_batches()]
        got = Regions.concat(parts).coalesce()
        assert got == reference_window(t, 3, 0, 5, size - 3)

    @pytest.mark.parametrize("t", CASES, ids=lambda t: t.combiner)
    def test_boundaries_are_instance_multiples(self, t):
        dl = build_dataloop(t)
        unit = dl.data_size
        stream = DataloopStream(dl, count=4, max_regions=16)
        prev_end = 0
        for c0, c1, batch in stream.instance_aligned_batches():
            assert c0 == prev_end  # contiguous instance ranges
            assert c0 < c1
            assert batch.total_bytes == (c1 - c0) * unit
            prev_end = c1
        assert prev_end == 4

    def test_batch_bound_still_holds(self):
        t = vector(30, 1, 2, INT)
        dl = build_dataloop(t)
        stream = DataloopStream(dl, count=8, max_regions=64)
        for _, _, batch in stream.instance_aligned_batches():
            assert batch.count <= max(64, dl.region_count)

    def test_empty_window(self):
        dl = build_dataloop(INT)
        s = DataloopStream(dl, first=2, last=2)
        assert list(s.instance_aligned_batches()) == []

    @given(small_datatypes(), st.integers(1, 4), st.data())
    @settings(max_examples=80, deadline=None)
    def test_property_union_and_alignment(self, t, count, data):
        size = t.size * count
        if size == 0:
            return
        first = data.draw(st.integers(0, size - 1))
        last = data.draw(st.integers(first + 1, size))
        dl = build_dataloop(t)
        unit = dl.data_size
        stream = DataloopStream(
            dl, count=count, first=first, last=last, max_regions=8
        )
        parts = []
        for c0, c1, batch in stream.instance_aligned_batches():
            # batch covers the window clamped to instances [c0, c1)
            lo = max(first, c0 * unit)
            hi = min(last, c1 * unit)
            assert batch.total_bytes == hi - lo
            parts.append(batch)
        got = Regions.concat(parts).coalesce() if parts else Regions.empty()
        assert got == reference_window(t, count, 0, first, last)


class TestPropertyWindows:
    @given(
        small_datatypes(),
        st.integers(1, 3),
        st.data(),
    )
    @settings(max_examples=120, deadline=None)
    def test_random_windows(self, t, count, data):
        size = t.size * count
        if size == 0:
            return
        first = data.draw(st.integers(0, size))
        last = data.draw(st.integers(first, size))
        dl = build_dataloop(t)
        got = stream_regions(dl, count=count, first=first, last=last)
        want = reference_window(t, count, 0, first, last)
        assert got == want
        assert got.total_bytes == last - first

    @given(small_datatypes(), st.integers(1, 16))
    @settings(max_examples=60, deadline=None)
    def test_batch_bound_property(self, t, max_regions):
        dl = build_dataloop(t)
        batches = list(DataloopStream(dl, count=2, max_regions=max_regions))
        assert all(b.count <= max_regions for b in batches)
        total = sum(b.total_bytes for b in batches)
        assert total == 2 * t.size
