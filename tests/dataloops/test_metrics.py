"""Analytic dataloop metrics vs measured expansions."""

from hypothesis import given, settings

from repro.dataloops import DataloopStream, build_dataloop, stream_regions

from ..conftest import small_datatypes


class TestAnalyticMetrics:
    @given(small_datatypes())
    @settings(max_examples=120, deadline=None)
    def test_data_size_matches_stream(self, t):
        loop = build_dataloop(t)
        assert loop.data_size == t.size
        assert stream_regions(loop).total_bytes == t.size

    @given(small_datatypes())
    @settings(max_examples=120, deadline=None)
    def test_region_count_is_upper_bound(self, t):
        """`region_count` counts leaf runs before cross-block
        coalescing, so it bounds the materialized count from above."""
        loop = build_dataloop(t)
        actual = stream_regions(loop).count
        assert actual <= max(loop.region_count, 1)

    @given(small_datatypes())
    @settings(max_examples=100, deadline=None)
    def test_depth_positive_and_bounded(self, t):
        loop = build_dataloop(t)
        assert 1 <= loop.depth <= loop.node_count() + 1

    @given(small_datatypes())
    @settings(max_examples=60, deadline=None)
    def test_stream_batches_union_equals_full(self, t):
        loop = build_dataloop(t)
        from repro.regions import Regions

        batches = list(DataloopStream(loop, count=2, max_regions=3))
        assert Regions.concat(batches).coalesce() == stream_regions(
            loop, count=2
        )

    def test_concise_for_paper_types(self):
        """The paper's three filetypes compile to tiny trees."""
        from repro.bench import Block3DWorkload, FlashWorkload, TileWorkload

        for wl, max_nodes in [
            (TileWorkload.paper(), 3),
            (Block3DWorkload.paper(2), 4),
            (FlashWorkload.paper(4), 2),
        ]:
            loop = build_dataloop(wl.filetype(0))
            assert loop.node_count() <= max_nodes, wl.name
