"""Vectorized indexed/struct dataloop walks vs the scalar reference.

Fresh loop clones (via the wire codec) are used per mode so per-instance
memoization (`_run_table`, `_block_stream_cum`) cannot leak results from
one mode into the other.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dataloops import Dataloop, DataloopStream, build_dataloop
from repro.dataloops import serialize as ser
from repro.vectorize import scalar_mode

from ..conftest import small_datatypes

_I64 = np.int64


def _window_regions(loop, count, first, last, cache_threshold):
    return DataloopStream(
        loop,
        count=count,
        first=first,
        last=last,
        cache_threshold=cache_threshold,
    ).regions()


def _both_modes(loop, count, first, last, cache_threshold=4096):
    """Stream the same window with the run table and with scalar code."""
    fast = _window_regions(
        ser.loads(ser.dumps(loop)), count, first, last, cache_threshold
    )
    with scalar_mode():
        ref = _window_regions(
            ser.loads(ser.dumps(loop)), count, first, last, cache_threshold
        )
    return fast, ref


@st.composite
def indexed_loops(draw):
    n = draw(st.integers(1, 8))
    bls = [draw(st.integers(0, 3)) for _ in range(n)]
    cursor = 0
    offs = []
    for bl in bls:
        offs.append(cursor + draw(st.integers(0, 20)))
        cursor = offs[-1] + draw(st.integers(0, 60))
    child = Dataloop.final_vector(
        draw(st.integers(1, 3)),
        draw(st.integers(1, 2)),
        draw(st.integers(4, 10)),
        draw(st.integers(1, 3)),
        extent=draw(st.integers(30, 40)),
    )
    extent = offs[-1] + 4 * 40 + draw(st.integers(0, 16))
    return Dataloop.indexed(bls, offs, child, extent)


@st.composite
def struct_loops(draw, homogeneous=True):
    n = draw(st.integers(1, 6))
    bls = [draw(st.integers(0, 2)) for _ in range(n)]
    offs = sorted(draw(st.integers(0, 200)) for _ in range(n))
    mk = lambda: Dataloop.final_vector(  # noqa: E731
        draw(st.integers(1, 3)),
        1,
        draw(st.integers(3, 8)),
        draw(st.integers(1, 2)),
        extent=draw(st.integers(20, 30)),
    )
    one = mk()
    children = [one] * n if homogeneous else [mk() for _ in range(n)]
    extent = max(offs, default=0) + 3 * 30 + 8
    return Dataloop.struct(bls, offs, children, extent)


class TestIndexedWalk:
    @given(indexed_loops(), st.integers(1, 3), st.data())
    @settings(max_examples=100, deadline=None)
    def test_window_matches_scalar(self, loop, count, data):
        total = count * loop.data_size
        first = data.draw(st.integers(0, total))
        last = data.draw(st.integers(first, total))
        fast, ref = _both_modes(loop, count, first, last)
        assert fast == ref

    @given(indexed_loops(), st.integers(1, 2))
    @settings(max_examples=60, deadline=None)
    def test_full_stream_matches_scalar(self, loop, count):
        total = count * loop.data_size
        fast, ref = _both_modes(loop, count, 0, total)
        assert fast == ref

    @given(indexed_loops(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_table_gate_equivalence(self, loop, data):
        """Run-table on/off (cache_threshold) changes nothing."""
        total = loop.data_size
        first = data.draw(st.integers(0, total))
        with_table = _window_regions(
            ser.loads(ser.dumps(loop)), 1, first, total, 1 << 30
        )
        without = _window_regions(
            ser.loads(ser.dumps(loop)), 1, first, total, 0
        )
        assert with_table == without


class TestStructWalk:
    @given(struct_loops(), st.integers(1, 2), st.data())
    @settings(max_examples=80, deadline=None)
    def test_homogeneous_window_matches_scalar(self, loop, count, data):
        total = count * loop.data_size
        first = data.draw(st.integers(0, total))
        last = data.draw(st.integers(first, total))
        fast, ref = _both_modes(loop, count, first, last)
        assert fast == ref

    @given(struct_loops(homogeneous=False), st.data())
    @settings(max_examples=60, deadline=None)
    def test_heterogeneous_window_matches_scalar(self, loop, data):
        total = loop.data_size
        first = data.draw(st.integers(0, total))
        last = data.draw(st.integers(first, total))
        fast, ref = _both_modes(loop, 1, first, last)
        assert fast == ref


class TestBuiltLoops:
    @given(small_datatypes(), st.integers(1, 3), st.data())
    @settings(max_examples=80, deadline=None)
    def test_datatype_stream_matches_scalar(self, t, count, data):
        """End-to-end: build_dataloop over random datatypes, both modes."""
        loop = build_dataloop(t)
        total = count * loop.data_size
        first = data.draw(st.integers(0, total))
        last = data.draw(st.integers(first, total))
        fast, ref = _both_modes(loop, count, first, last)
        assert fast == ref


class TestRunTable:
    def test_rows_match_per_block_expansion(self):
        child = Dataloop.final_vector(2, 1, 6, 2, extent=16)
        loop = Dataloop.indexed([2, 0, 3], [0, 50, 100], child, 200)
        offs, lens, cum = loop._block_run_table()
        assert cum[0] == 0 and cum[-1] == offs.size == lens.size
        # block 1 is empty: zero rows
        assert cum[1] == cum[2]
        # rebuild block 2's rows by hand from the child flattening
        flat = child.flatten_full()
        want = []
        for i in range(3):
            base = 100 + i * child.extent
            want.extend(
                (int(base + o), int(ln))
                for o, ln in zip(flat.offsets, flat.lengths)
            )
        got = list(
            zip(
                (int(v) for v in offs[int(cum[2]):]),
                (int(v) for v in lens[int(cum[2]):]),
            )
        )
        assert got == want

    def test_memoized(self):
        child = Dataloop.final_vector(2, 1, 6, 2, extent=16)
        loop = Dataloop.indexed([1, 1], [0, 40], child, 100)
        assert loop._block_run_table() is loop._block_run_table()

    def test_unsupported_kind_raises(self):
        child = Dataloop.final_vector(2, 1, 6, 2, extent=16)
        loop = Dataloop.contig(3, child)
        with pytest.raises(ValueError):
            loop._block_run_table()
