"""Dataloop node validation and metrics."""

import pytest

from repro.dataloops import Dataloop


class TestConstruction:
    def test_final_contig(self):
        dl = Dataloop.final_contig(10, 4)
        assert dl.kind == "contig"
        assert dl.is_final
        assert dl.data_size == 40
        assert dl.extent == 40
        assert dl.region_count == 1
        assert dl.depth == 1

    def test_final_vector(self):
        dl = Dataloop.final_vector(5, 2, 16, 4)
        assert dl.data_size == 40
        assert dl.region_count == 5
        assert dl.extent == 4 * 16 + 8

    def test_contig_of_vector(self):
        inner = Dataloop.final_vector(3, 1, 8, 4)
        dl = Dataloop.contig(2, inner)
        assert dl.data_size == 24
        assert dl.region_count == 6
        assert dl.depth == 2

    def test_blockindexed(self):
        dl = Dataloop.final_blockindexed(2, [0, 20, 40], 4, 48)
        assert dl.data_size == 24
        assert dl.region_count == 3

    def test_indexed(self):
        dl = Dataloop.final_indexed([1, 3], [0, 10], 4, 24)
        assert dl.data_size == 16
        assert dl.region_count == 2
        assert dl._block_stream_cum.tolist() == [0, 4, 16]

    def test_struct(self):
        a = Dataloop.final_contig(1, 4)
        b = Dataloop.final_contig(1, 8)
        dl = Dataloop.struct([2, 1], [0, 16], [a, b], 24)
        assert dl.data_size == 16
        assert dl.region_count == 3
        assert dl._block_stream_cum.tolist() == [0, 8, 16]

    def test_resized_copy(self):
        dl = Dataloop.final_contig(2, 4)
        r = Dataloop.resized(dl, 100)
        assert r.extent == 100
        assert r.data_size == dl.data_size
        assert Dataloop.resized(dl, dl.extent) is dl


class TestValidation:
    def test_bad_kind(self):
        with pytest.raises(ValueError):
            Dataloop("funky", 1, 0)

    def test_negative_count(self):
        with pytest.raises(ValueError):
            Dataloop.final_contig(-1, 4)

    def test_final_needs_el_size(self):
        with pytest.raises(ValueError):
            Dataloop("contig", 1, 4, is_final=True, el_size=0)

    def test_struct_cannot_be_final(self):
        with pytest.raises(ValueError):
            Dataloop("struct", 0, 0, is_final=True, el_size=1)

    def test_nonfinal_needs_child(self):
        with pytest.raises(ValueError):
            Dataloop("contig", 1, 4)

    def test_indexed_needs_offsets(self):
        with pytest.raises(ValueError):
            Dataloop("indexed", 2, 8, is_final=True, el_size=1)

    def test_struct_shape_mismatch(self):
        a = Dataloop.final_contig(1, 4)
        with pytest.raises(ValueError):
            Dataloop.struct([1, 1], [0], [a], 8)


class TestFlattenFull:
    def test_final_kinds(self):
        assert Dataloop.final_contig(3, 4).flatten_full().to_pairs() == [
            (0, 12)
        ]
        assert Dataloop.final_vector(3, 1, 8, 4).flatten_full().to_pairs() == [
            (0, 4),
            (8, 4),
            (16, 4),
        ]
        assert Dataloop.final_blockindexed(
            1, [0, 10], 4, 16
        ).flatten_full().to_pairs() == [(0, 4), (10, 4)]
        assert Dataloop.final_indexed(
            [2, 1], [0, 10], 4, 16
        ).flatten_full().to_pairs() == [(0, 8), (10, 4)]

    def test_nested(self):
        inner = Dataloop.final_vector(2, 1, 8, 4)  # (0,4),(8,4); extent 12
        outer = Dataloop.vector(2, 1, 100, inner)
        assert outer.flatten_full().to_pairs() == [
            (0, 4),
            (8, 4),
            (100, 4),
            (108, 4),
        ]

    def test_struct_traversal_order(self):
        a = Dataloop.final_contig(1, 4)
        dl = Dataloop.struct([1, 1], [8, 0], [a, a], 12)
        assert dl.flatten_full().to_pairs() == [(8, 4), (0, 4)]

    def test_cached(self):
        dl = Dataloop.final_vector(3, 1, 8, 4)
        assert dl.flatten_full() is dl.flatten_full()

    def test_node_count_and_describe(self):
        inner = Dataloop.final_contig(4, 1)
        outer = Dataloop.vector(2, 2, 10, inner)
        assert outer.node_count() == 2
        assert "vector" in outer.describe()
        assert "contig" in outer.describe()
        assert "Dataloop" in repr(outer)
