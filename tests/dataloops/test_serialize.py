"""Wire encoding of dataloops."""

import pytest
from hypothesis import given, settings

from repro.datatypes import (
    DOUBLE,
    INT,
    contiguous,
    indexed,
    struct,
    subarray,
    vector,
)
from repro.dataloops import (
    build_dataloop,
    dumps,
    loads,
    stream_regions,
    wire_size,
)

from ..conftest import small_datatypes


def _equivalent(a, b) -> bool:
    return (
        a.data_size == b.data_size
        and a.extent == b.extent
        and stream_regions(a, count=2) == stream_regions(b, count=2)
    )


class TestRoundtrip:
    CASES = [
        INT,
        contiguous(5, INT),
        vector(4, 2, 5, INT),
        indexed([1, 2], [0, 5], INT),
        struct([2, 1], [0, 24], [INT, DOUBLE]),
        subarray([10, 10, 10], [4, 4, 4], [1, 2, 3], INT),
    ]

    @pytest.mark.parametrize("t", CASES, ids=lambda t: t.describe()[:40])
    def test_roundtrip(self, t):
        dl = build_dataloop(t)
        data = dumps(dl)
        back = loads(data)
        assert _equivalent(dl, back)

    @pytest.mark.parametrize("t", CASES, ids=lambda t: t.describe()[:40])
    def test_wire_size_matches_encoding(self, t):
        dl = build_dataloop(t)
        assert wire_size(dl) == len(dumps(dl))

    @given(small_datatypes())
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_property(self, t):
        dl = build_dataloop(t)
        back = loads(dumps(dl))
        assert _equivalent(dl, back)
        assert wire_size(dl) == len(dumps(dl))


class TestConciseness:
    def test_regular_pattern_size_independent_of_count(self):
        """The paper's point: requests stay small for regular patterns."""
        small = build_dataloop(vector(10, 1, 2, INT))
        huge = build_dataloop(vector(1_000_000, 1, 2, INT))
        assert wire_size(small) == wire_size(huge)
        assert wire_size(huge) < 100

    def test_subarray_size_independent_of_dims(self):
        a = build_dataloop(subarray([10, 10, 10], [5, 5, 5], [0, 0, 0], INT))
        b = build_dataloop(
            subarray([600, 600, 600], [300, 300, 300], [0, 0, 0], INT)
        )
        assert wire_size(a) == wire_size(b)

    def test_irregular_pattern_grows(self):
        few = build_dataloop(indexed([1, 2], [0, 5], INT))
        many = build_dataloop(
            indexed([1, 2] * 50, [i * 7 for i in range(100)], INT)
        )
        assert wire_size(many) > wire_size(few)


class TestErrors:
    def test_bad_magic(self):
        with pytest.raises(ValueError):
            loads(b"XXXX" + b"\x00" * 50)

    def test_trailing_garbage(self):
        data = dumps(build_dataloop(INT)) + b"\x00"
        with pytest.raises(ValueError):
            loads(data)


class TestEmptyAndDegenerate:
    def test_empty_loop_roundtrip(self):
        from repro.datatypes import contiguous, INT

        dl = build_dataloop(contiguous(0, INT))
        back = loads(dumps(dl))
        assert back.data_size == 0

    def test_deep_nesting_roundtrip(self):
        from repro.datatypes import INT, vector

        t = vector(2, 1, 3, vector(2, 1, 3, vector(2, 1, 3, INT)))
        dl = build_dataloop(t)
        back = loads(dumps(dl))
        assert stream_regions(back) == t.flatten()
        assert back.depth == dl.depth
