"""Datatype → dataloop conversion, including the collapse rules."""

import pytest
from hypothesis import given, settings

from repro.datatypes import (
    BYTE,
    DOUBLE,
    INT,
    contiguous,
    dup,
    hindexed,
    hvector,
    indexed,
    indexed_block,
    resized,
    struct,
    subarray,
    vector,
)
from repro.dataloops import build_dataloop, stream_regions

from ..conftest import small_datatypes


class TestCollapses:
    def test_primitive(self):
        dl = build_dataloop(INT)
        assert dl.is_final and dl.kind == "contig"
        assert dl.data_size == 4

    def test_contig_of_primitive_merges(self):
        dl = build_dataloop(contiguous(8, INT))
        assert dl.is_final and dl.kind == "contig"
        assert dl.count == 8 and dl.el_size == 4
        assert dl.node_count() == 1

    def test_nested_contig_merges(self):
        dl = build_dataloop(contiguous(3, contiguous(4, INT)))
        assert dl.is_final and dl.count == 12

    def test_vector_of_primitive_is_final_vector(self):
        dl = build_dataloop(vector(10, 3, 7, INT))
        assert dl.kind == "vector" and dl.is_final
        assert dl.count == 10 and dl.blocksize == 3
        assert dl.stride == 28
        assert dl.node_count() == 1

    def test_dense_vector_degenerates_to_contig(self):
        dl = build_dataloop(vector(10, 3, 3, INT))
        assert dl.kind == "contig" and dl.is_final
        assert dl.count == 30

    def test_vector_count_one_collapses(self):
        dl = build_dataloop(vector(1, 5, 9, INT))
        assert dl.is_final and dl.kind == "contig"
        assert dl.count == 5

    def test_indexed_block_of_primitive(self):
        dl = build_dataloop(indexed_block(2, [0, 5, 10], INT))
        assert dl.kind == "blockindexed" and dl.is_final
        assert dl.count == 3 and dl.blocksize == 2

    def test_indexed_varying_blocks(self):
        dl = build_dataloop(indexed([1, 2, 3], [0, 4, 10], INT))
        assert dl.kind == "indexed" and dl.is_final

    def test_uniform_indexed_becomes_blockindexed(self):
        dl = build_dataloop(indexed([2, 2], [0, 8], INT))
        assert dl.kind == "blockindexed"

    def test_struct_single_field_at_zero_collapses(self):
        dl = build_dataloop(struct([3], [0], [INT]))
        assert dl.is_final and dl.kind == "contig" and dl.count == 3

    def test_struct_general(self):
        dl = build_dataloop(struct([1, 1], [0, 8], [INT, DOUBLE]))
        assert dl.kind == "struct"
        assert dl.count == 2

    def test_struct_drops_empty_fields(self):
        dl = build_dataloop(struct([0, 1], [0, 8], [DOUBLE, INT]))
        assert dl.data_size == 4

    def test_resized_only_changes_extent(self):
        base = build_dataloop(vector(2, 1, 3, INT))
        r = build_dataloop(resized(vector(2, 1, 3, INT), 0, 1000))
        assert r.extent == 1000
        assert r.kind == base.kind
        assert r.node_count() == base.node_count()

    def test_dup_passthrough(self):
        dl = build_dataloop(dup(vector(2, 1, 3, INT)))
        assert dl.kind == "vector"

    def test_subarray_nested_vectors(self):
        t = subarray([100, 100, 100], [10, 10, 10], [5, 5, 5], INT)
        dl = build_dataloop(t)
        # concise: a handful of nodes regardless of array size
        assert dl.node_count() <= 4
        assert dl.extent == t.extent
        assert dl.data_size == t.size

    def test_subarray_full_extent_kept(self):
        t = subarray([8, 8], [2, 2], [0, 0], INT)
        dl = build_dataloop(t)
        assert dl.extent == 8 * 8 * 4

    def test_extent_always_matches(self):
        cases = [
            INT,
            contiguous(3, INT),
            vector(2, 1, 5, INT),
            resized(INT, -4, 20),
            struct([1, 1], [0, 10], [INT, BYTE]),
            subarray([4, 4], [2, 2], [1, 1], INT),
        ]
        for t in cases:
            dl = build_dataloop(t)
            assert dl.extent == t.extent, t.describe()
            assert dl.data_size == t.size, t.describe()


class TestEquivalence:
    """build → stream must equal the datatype's own flattening."""

    CASES = [
        contiguous(6, INT),
        vector(4, 2, 5, INT),
        hvector(3, 2, 50, DOUBLE),
        indexed([2, 1, 3], [0, 4, 9], INT),
        hindexed([1, 2], [3, 40], INT),
        indexed_block(2, [0, 4, 8], INT),
        struct([2, 1], [0, 24], [INT, DOUBLE]),
        struct([1, 1], [16, 0], [INT, INT]),  # out-of-order fields
        resized(vector(2, 1, 3, INT), -8, 64),
        subarray([6, 6, 6], [2, 3, 4], [1, 0, 2], INT),
        subarray([9, 9], [3, 3], [3, 3], BYTE, order="F"),
        contiguous(2, struct([1, 1], [0, 12], [INT, DOUBLE])),
        vector(3, 2, 4, vector(2, 1, 3, INT)),
    ]

    @pytest.mark.parametrize("t", CASES, ids=lambda t: t.describe()[:50])
    def test_stream_matches_flatten(self, t):
        dl = build_dataloop(t)
        assert stream_regions(dl) == t.flatten()

    @pytest.mark.parametrize("t", CASES, ids=lambda t: t.describe()[:50])
    def test_tiled_stream_matches(self, t):
        dl = build_dataloop(t)
        assert stream_regions(dl, count=3) == t.flatten(3)

    @given(small_datatypes())
    @settings(max_examples=150, deadline=None)
    def test_equivalence_property(self, t):
        dl = build_dataloop(t)
        assert dl.data_size == t.size
        assert dl.extent == t.extent
        assert stream_regions(dl) == t.flatten()

    @given(small_datatypes())
    @settings(max_examples=60, deadline=None)
    def test_tiled_equivalence_property(self, t):
        dl = build_dataloop(t)
        assert stream_regions(dl, count=2) == t.flatten(2)
