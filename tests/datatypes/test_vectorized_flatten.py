"""Vectorized client-side flattening vs the scalar reference.

The per-instance ``_flat_cache`` is cleared between modes so the scalar
pass cannot simply return the vectorized pass's memoized result.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datatypes import BYTE, darray, hindexed, struct, vector
from repro.datatypes.base import Datatype
from repro.vectorize import scalar_mode

from ..conftest import small_datatypes


def _clear_flat_caches(t, seen=None):
    if seen is None:
        seen = set()
    if id(t) in seen:
        return
    seen.add(id(t))
    t._flat_cache = None
    try:
        children = t.contents()[2]
    except ValueError:  # predefined named type: no children
        return
    for child in children:
        if isinstance(child, Datatype):
            _clear_flat_caches(child, seen)


def _both_modes(t, count):
    fast = t.flatten(count)
    _clear_flat_caches(t)
    with scalar_mode():
        ref = t.flatten(count)
    _clear_flat_caches(t)
    return fast, ref


class TestFlattenProperty:
    @given(small_datatypes(), st.integers(1, 3))
    @settings(max_examples=150, deadline=None)
    def test_random_types_match_scalar(self, t, count):
        fast, ref = _both_modes(t, count)
        assert fast == ref


class TestIndexedFlatten:
    @given(st.data())
    @settings(max_examples=80, deadline=None)
    def test_sparse_oldtype_matches_scalar(self, data):
        """Non-dense oldtype forces the general broadcast path."""
        n = data.draw(st.integers(1, 12))
        old = vector(2, 1, 3, BYTE)
        bls = [data.draw(st.integers(0, 3)) for _ in range(n)]
        disps = sorted(data.draw(st.integers(0, 300)) for _ in range(n))
        t = hindexed(bls, disps, old)
        fast, ref = _both_modes(t, data.draw(st.integers(1, 2)))
        assert fast == ref

    def test_overlapping_blocks_match_scalar(self):
        """Unsorted, overlapping displacements (legal in MPI)."""
        old = vector(2, 1, 3, BYTE)
        t = hindexed([2, 1, 2], [40, 0, 38], old)
        fast, ref = _both_modes(t, 2)
        assert fast == ref


class TestStructFlatten:
    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_homogeneous_fast_path_matches_scalar(self, data):
        n = data.draw(st.integers(1, 10))
        old = vector(2, 1, 3, BYTE)
        bls = [data.draw(st.integers(0, 2)) for _ in range(n)]
        disps = sorted(data.draw(st.integers(0, 200)) for _ in range(n))
        t = struct(bls, disps, [old] * n)
        fast, ref = _both_modes(t, 1)
        assert fast == ref


@pytest.mark.parametrize("dist", ["block", "cyclic"])
@pytest.mark.parametrize("rank", [0, 2])
def test_darray_matches_scalar(dist, rank):
    old = vector(2, 1, 3, BYTE)
    darg = 2 if dist == "cyclic" else -1
    t = darray(4, rank, [97], [dist], [darg], [4], old)
    fast, ref = _both_modes(t, 1)
    assert fast == ref
