"""Flattening and pack/unpack, cross-checked against the typemap."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.datatypes import (
    DOUBLE,
    INT,
    contiguous,
    hvector,
    indexed,
    pack,
    resized,
    struct,
    subarray,
    typemap,
    unpack,
    vector,
)
from repro.datatypes.typemap import typemap_regions

from ..conftest import small_datatypes


class TestFlatten:
    def test_flatten_count_tiles_at_extent(self):
        t = vector(2, 1, 2, INT)  # extent 12? blocks at 0 and 8
        one = t.flatten()
        two = t.flatten(2)
        assert two.total_bytes == 2 * t.size
        # instance 1 shifted by extent
        shift = t.extent
        expected = one.to_pairs() + [(o + shift, l) for o, l in one]
        # adjacent runs may coalesce at the seam; compare as byte sets
        assert two.normalized() == t.flatten(2).normalized()
        assert sum(l for _, l in expected) == two.total_bytes

    def test_flatten_base_offset(self):
        t = contiguous(2, INT)
        assert t.flatten(1, 100).to_pairs() == [(100, 8)]

    def test_flatten_negative_count(self):
        with pytest.raises(ValueError):
            INT.flatten(-1)

    def test_flatten_caches(self):
        t = vector(3, 1, 2, INT)
        assert t.flatten() == t.flatten()

    def test_flatten_matches_typemap_runs(self):
        cases = [
            contiguous(4, INT),
            vector(3, 2, 4, INT),
            hvector(3, 2, 40, DOUBLE),
            indexed([2, 0, 1], [5, 0, 0], INT),
            struct([1, 2], [16, 0], [DOUBLE, INT]),
            subarray([5, 5], [2, 2], [1, 1], INT),
            resized(vector(2, 1, 3, INT), -4, 40),
        ]
        for t in cases:
            for count in (1, 2, 3):
                assert (
                    t.flatten(count).to_pairs()
                    == typemap_regions(t, count)
                ), t.describe()

    @given(small_datatypes())
    @settings(max_examples=150, deadline=None)
    def test_flatten_matches_typemap_property(self, t):
        assert t.flatten().to_pairs() == typemap_regions(t)

    @given(small_datatypes())
    @settings(max_examples=80, deadline=None)
    def test_flatten_two_instances_property(self, t):
        assert t.flatten(2).to_pairs() == typemap_regions(t, 2)

    @given(small_datatypes())
    @settings(max_examples=100, deadline=None)
    def test_size_is_typemap_sum(self, t):
        assert t.size == sum(s for _, s in typemap(t))

    @given(small_datatypes())
    @settings(max_examples=100, deadline=None)
    def test_bounds_cover_typemap(self, t):
        tm = typemap(t)
        if not tm:
            return
        lo = min(d for d, _ in tm)
        hi = max(d + s for d, s in tm)
        assert t.true_lb == lo
        assert t.true_ub == hi
        # lb/ub cover the data unless a resized anywhere in the tree
        # deliberately shrank them (legal in MPI)
        if not _contains_resized(t):
            assert t.lb <= lo and t.ub >= hi


def _contains_resized(t):
    if t.combiner == "resized":
        return True
    return any(_contains_resized(c) for c in t.iter_children())


class TestPack:
    def test_pack_contiguous(self):
        buf = np.arange(16, dtype=np.uint8)
        assert pack(buf, contiguous(4, INT)).tolist() == list(range(16))

    def test_pack_strided(self):
        buf = np.arange(24, dtype=np.uint8)
        t = vector(2, 1, 2, INT)
        assert pack(buf, t).tolist() == [0, 1, 2, 3, 8, 9, 10, 11]

    def test_pack_with_base_offset(self):
        buf = np.arange(24, dtype=np.uint8)
        t = contiguous(1, INT)
        assert pack(buf, t, base_offset=10).tolist() == [10, 11, 12, 13]

    def test_unpack_roundtrip(self, rng):
        t = struct([2, 3], [0, 32], [INT, DOUBLE])
        buf = rng.integers(0, 255, t.true_ub, dtype=np.uint8)
        stream = pack(buf, t)
        assert stream.size == t.size
        out = np.zeros_like(buf)
        unpack(stream, out, t)
        assert np.array_equal(pack(out, t), stream)

    def test_pack_multiple_instances(self, rng):
        t = vector(2, 1, 3, INT)
        buf = rng.integers(0, 255, t.extent * 3 + 16, dtype=np.uint8)
        stream = pack(buf, t, count=3)
        assert stream.size == 3 * t.size

    @given(small_datatypes())
    @settings(max_examples=80, deadline=None)
    def test_pack_matches_typemap_property(self, t):
        tm = typemap(t)
        lo = min((d for d, _ in tm), default=0)
        hi = max((d + s for d, s in tm), default=0)
        base = max(0, -lo)
        buf = np.arange(base + max(hi, 0) + 1, dtype=np.int64).astype(
            np.uint8
        )
        stream = pack(buf, t, base_offset=base)
        expected = np.concatenate(
            [buf[base + d : base + d + s] for d, s in tm]
        ) if tm else np.zeros(0, np.uint8)
        assert np.array_equal(stream, expected)
