"""MPI_Type_get_envelope / get_contents introspection."""

from repro.datatypes import (
    DOUBLE,
    INT,
    contiguous,
    dup,
    hindexed,
    hindexed_block,
    hvector,
    indexed,
    indexed_block,
    resized,
    struct,
    subarray,
    vector,
)


def test_contiguous_contents():
    t = contiguous(5, INT)
    assert t.envelope() == (1, 0, 1, "contiguous")
    ints, addrs, types = t.contents()
    assert ints == (5,)
    assert addrs == ()
    assert types == (INT,)


def test_vector_contents():
    t = vector(3, 2, 4, INT)
    assert t.envelope() == (3, 0, 1, "vector")
    assert t.contents() == ((3, 2, 4), (), (INT,))


def test_hvector_contents():
    t = hvector(3, 2, 40, INT)
    assert t.envelope() == (2, 1, 1, "hvector")
    assert t.contents() == ((3, 2), (40,), (INT,))


def test_indexed_contents():
    t = indexed([2, 1], [0, 4], INT)
    ints, addrs, types = t.contents()
    assert ints == (2, 2, 1, 0, 4)
    assert addrs == ()
    assert t.envelope()[3] == "indexed"


def test_hindexed_contents():
    t = hindexed([2, 1], [0, 16], INT)
    ints, addrs, types = t.contents()
    assert ints == (2, 2, 1)
    assert addrs == (0, 16)


def test_indexed_block_contents():
    t = indexed_block(3, [0, 5, 9], INT)
    ints, addrs, types = t.contents()
    assert ints == (3, 3, 0, 5, 9)


def test_hindexed_block_contents():
    t = hindexed_block(2, [0, 50], INT)
    ints, addrs, types = t.contents()
    assert ints == (2, 2)
    assert addrs == (0, 50)


def test_struct_contents():
    t = struct([1, 2], [0, 8], [INT, DOUBLE])
    ints, addrs, types = t.contents()
    assert ints == (2, 1, 2)
    assert addrs == (0, 8)
    assert types == (INT, DOUBLE)


def test_resized_contents():
    t = resized(INT, -4, 16)
    ints, addrs, types = t.contents()
    assert addrs == (-4, 16)
    assert types == (INT,)


def test_dup_contents():
    t = dup(INT)
    assert t.contents() == ((), (), (INT,))


def test_subarray_contents_roundtrip():
    t = subarray([6, 8], [2, 3], [1, 2], INT)
    ints, addrs, types = t.contents()
    n = ints[0]
    assert n == 2
    assert list(ints[1 : 1 + n]) == [6, 8]
    assert list(ints[1 + n : 1 + 2 * n]) == [2, 3]
    assert list(ints[1 + 2 * n : 1 + 3 * n]) == [1, 2]
    assert ints[-1] == 0  # C order flag


def test_envelope_counts_match_contents():
    cases = [
        contiguous(2, INT),
        vector(2, 1, 3, INT),
        hvector(2, 1, 24, INT),
        indexed([1], [0], INT),
        hindexed([1], [0], INT),
        indexed_block(1, [0, 2], INT),
        hindexed_block(1, [0, 8], INT),
        struct([1], [0], [INT]),
        resized(INT, 0, 8),
        dup(INT),
        subarray([4, 4], [2, 2], [0, 0], INT),
    ]
    for t in cases:
        ni, na, nt, comb = t.envelope()
        ints, addrs, types = t.contents()
        assert (len(ints), len(addrs), len(types)) == (ni, na, nt), comb


def test_iter_children():
    t = struct([1, 1], [0, 8], [INT, DOUBLE])
    assert list(t.iter_children()) == [INT, DOUBLE]
    assert list(INT.iter_children()) == []
