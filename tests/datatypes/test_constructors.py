"""Constructor semantics: size, extent, bounds (MPI-3.1 §4.1 rules)."""

import pytest

from repro.datatypes import (
    BYTE,
    CHAR,
    DOUBLE,
    FLOAT,
    INT,
    LONG,
    LONG_LONG,
    SHORT,
    contiguous,
    dup,
    hindexed,
    hindexed_block,
    hvector,
    indexed,
    indexed_block,
    resized,
    struct,
    subarray,
    vector,
)


class TestPrimitives:
    @pytest.mark.parametrize(
        "t,size",
        [
            (BYTE, 1),
            (CHAR, 1),
            (SHORT, 2),
            (INT, 4),
            (FLOAT, 4),
            (LONG, 8),
            (LONG_LONG, 8),
            (DOUBLE, 8),
        ],
    )
    def test_sizes(self, t, size):
        assert t.size == size
        assert t.extent == size
        assert t.lb == 0 and t.ub == size
        assert t.true_lb == 0 and t.true_ub == size
        assert t.is_predefined
        assert t.is_contiguous

    def test_contents_invalid_on_named(self):
        with pytest.raises(ValueError):
            INT.contents()

    def test_envelope_named(self):
        assert INT.envelope() == (0, 0, 0, "named")

    def test_depth_zero(self):
        assert INT.depth() == 0


class TestContiguous:
    def test_basic(self):
        t = contiguous(5, INT)
        assert t.size == 20
        assert t.extent == 20
        assert t.is_contiguous

    def test_zero_count(self):
        t = contiguous(0, INT)
        assert t.size == 0
        assert t.extent == 0

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            contiguous(-1, INT)

    def test_nested(self):
        t = contiguous(3, contiguous(2, INT))
        assert t.size == 24
        assert t.extent == 24

    def test_of_resized(self):
        # child extent 12 > size 4: instances step by 12
        t = contiguous(3, resized(INT, 0, 12))
        assert t.size == 12
        assert t.extent == 36
        assert t.flatten().to_pairs() == [(0, 4), (12, 4), (24, 4)]

    def test_type_check(self):
        with pytest.raises(TypeError):
            contiguous(3, "INT")


class TestVector:
    def test_basic(self):
        t = vector(3, 2, 4, INT)
        assert t.size == 24
        assert t.extent == (2 * 4 + 2) * 4  # last block end

    def test_extent_formula(self):
        # MPI: ub = ((count-1)*stride + blocklength) * extent(old)
        t = vector(4, 3, 5, INT)
        assert t.ub == ((4 - 1) * 5 + 3) * 4
        assert t.lb == 0

    def test_negative_stride(self):
        t = vector(3, 1, -2, INT)
        assert t.lb == -2 * 2 * 4
        assert t.size == 12

    def test_degenerate_dense(self):
        t = vector(3, 2, 2, INT)  # stride == blocklength: dense
        assert t.flatten().to_pairs() == [(0, 24)]

    def test_hvector_byte_stride(self):
        t = hvector(3, 1, 10, INT)
        assert t.flatten().to_pairs() == [(0, 4), (10, 4), (20, 4)]
        assert t.extent == 24

    def test_zero_count(self):
        assert vector(0, 2, 4, INT).size == 0

    def test_zero_blocklength(self):
        assert vector(3, 0, 4, INT).size == 0


class TestIndexed:
    def test_basic(self):
        t = indexed([2, 1], [0, 4], INT)
        assert t.size == 12
        # displacements in elements: block 1 at byte 16
        assert t.flatten().to_pairs() == [(0, 8), (16, 4)]

    def test_hindexed_bytes(self):
        t = hindexed([1, 1], [0, 6], INT)
        assert t.flatten().to_pairs() == [(0, 4), (6, 4)]

    def test_indexed_block(self):
        t = indexed_block(2, [0, 4, 8], INT)
        assert t.size == 24
        assert t.combiner == "indexed_block"

    def test_hindexed_block(self):
        t = hindexed_block(1, [0, 100], INT)
        assert t.flatten().to_pairs() == [(0, 4), (100, 4)]

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            indexed([1, 2], [0], INT)

    def test_out_of_order_displacements_keep_order(self):
        t = hindexed([1, 1], [8, 0], INT)
        # traversal order is block order, not offset order
        assert t.flatten().to_pairs() == [(8, 4), (0, 4)]

    def test_empty_blocks(self):
        t = indexed([0, 2, 0], [0, 1, 5], INT)
        assert t.size == 8
        assert t.flatten().to_pairs() == [(4, 8)]

    def test_bounds(self):
        t = hindexed([1, 1], [10, 0], INT)
        assert t.lb == 0
        assert t.ub == 14


class TestStruct:
    def test_basic(self):
        t = struct([2, 1], [0, 16], [INT, DOUBLE])
        assert t.size == 16
        assert t.ub == 24

    def test_heterogeneous_flatten(self):
        t = struct([1, 1], [0, 8], [INT, DOUBLE])
        assert t.flatten().to_pairs() == [(0, 4), (8, 8)]

    def test_field_order_preserved(self):
        t = struct([1, 1], [8, 0], [INT, INT])
        assert t.flatten().to_pairs() == [(8, 4), (0, 4)]

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            struct([1], [0, 8], [INT, INT])

    def test_no_alignment_padding(self):
        # we deliberately skip C struct padding (use resized instead)
        t = struct([1, 1], [0, 8], [DOUBLE, CHAR])
        assert t.extent == 9

    def test_empty_fields_ignored_in_size(self):
        t = struct([0, 1], [0, 0], [DOUBLE, INT])
        assert t.size == 4


class TestResizedDup:
    def test_resized(self):
        t = resized(INT, -4, 16)
        assert t.lb == -4
        assert t.ub == 12
        assert t.extent == 16
        assert t.size == 4
        assert t.true_lb == 0 and t.true_ub == 4

    def test_resized_tiling(self):
        t = resized(INT, 0, 10)
        assert t.flatten(3).to_pairs() == [(0, 4), (10, 4), (20, 4)]

    def test_dup_transparent(self):
        t = dup(vector(2, 1, 3, INT))
        assert t.size == 8
        assert t.flatten() == vector(2, 1, 3, INT).flatten()
        assert t.combiner == "dup"


class TestSubarray:
    def test_2d(self):
        t = subarray([4, 6], [2, 3], [1, 2], BYTE)
        assert t.size == 6
        assert t.extent == 24  # full array
        assert t.flatten().to_pairs() == [(8, 3), (14, 3)]

    def test_3d_extent(self):
        t = subarray([10, 10, 10], [2, 2, 2], [0, 0, 0], INT)
        assert t.extent == 4000
        assert t.size == 32

    def test_fortran_order(self):
        c = subarray([4, 6], [2, 3], [1, 2], BYTE, order="C")
        f = subarray([6, 4], [3, 2], [2, 1], BYTE, order="F")
        assert f.flatten() == c.flatten()

    def test_full_array_is_dense(self):
        t = subarray([3, 3], [3, 3], [0, 0], INT)
        assert t.flatten().to_pairs() == [(0, 36)]

    def test_validation(self):
        with pytest.raises(ValueError):
            subarray([4], [5], [0], INT)  # subsize > size
        with pytest.raises(ValueError):
            subarray([4], [2], [3], INT)  # start+subsize > size
        with pytest.raises(ValueError):
            subarray([4], [2], [-1], INT)
        with pytest.raises(ValueError):
            subarray([4, 4], [2], [0], INT)  # rank mismatch
        with pytest.raises(ValueError):
            subarray([4], [2], [0], INT, order="X")
        with pytest.raises(ValueError):
            subarray([], [], [], INT)

    def test_tiling_steps_whole_arrays(self):
        t = subarray([2, 2], [1, 1], [0, 0], BYTE)
        assert t.flatten(2).to_pairs() == [(0, 1), (4, 1)]


class TestMisc:
    def test_describe_runs(self):
        for t in [
            INT,
            contiguous(2, INT),
            vector(2, 1, 3, INT),
            indexed([1], [0], INT),
            struct([1], [0], [INT]),
            resized(INT, 0, 8),
            subarray([2, 2], [1, 1], [0, 0], INT),
            dup(INT),
        ]:
            assert isinstance(t.describe(), str)
            assert isinstance(repr(t), str)

    def test_depth(self):
        assert contiguous(2, vector(2, 1, 3, INT)).depth() == 2

    def test_flat_region_count(self):
        assert vector(5, 1, 2, INT).flat_region_count() == 5
        assert contiguous(5, INT).flat_region_count() == 1
