"""MPI_Type_create_darray."""

import numpy as np
import pytest

from repro.datatypes import (
    DISTRIBUTE_BLOCK,
    DISTRIBUTE_CYCLIC,
    DISTRIBUTE_DFLT_DARG,
    DISTRIBUTE_NONE,
    INT,
    BYTE,
    darray,
    subarray,
)
from repro.dataloops import build_dataloop, stream_regions
from repro.regions import Regions

D = DISTRIBUTE_DFLT_DARG


def brute_force_regions(size, rank, gsizes, distribs, dargs, psizes, elsize):
    """Ground truth by enumerating every global element."""
    n = len(gsizes)
    coords = []
    rem = rank
    for p in reversed(psizes):
        coords.append(rem % p)
        rem //= p
    coords.reverse()

    def owner(dim, idx):
        dist, darg, p = distribs[dim], dargs[dim], psizes[dim]
        if dist == DISTRIBUTE_NONE:
            return 0
        if dist == DISTRIBUTE_BLOCK:
            b = -(-gsizes[dim] // p) if darg == D else darg
            return min(idx // b, p - 1)
        b = 1 if darg == D else darg
        return (idx // b) % p

    pairs = []
    total = 1
    for g in gsizes:
        total *= g
    for lin in range(total):
        idx = []
        rem2 = lin
        for g in reversed(gsizes):
            idx.append(rem2 % g)
            rem2 //= g
        idx.reverse()
        if all(owner(d, idx[d]) == coords[d] for d in range(n)):
            pairs.append((lin * elsize, elsize))
    return Regions.from_pairs(pairs).coalesce()


class TestBlockDistribution:
    def test_equivalent_to_subarray(self):
        """Default BLOCK darray == the corresponding subarray."""
        g = 12
        for rank in range(8):
            da = darray(
                8, rank, [g, g, g], [DISTRIBUTE_BLOCK] * 3, [D] * 3,
                [2, 2, 2], INT,
            )
            i, rest = divmod(rank, 4)
            j, k = divmod(rest, 2)
            sa = subarray(
                [g, g, g], [g // 2] * 3,
                [i * g // 2, j * g // 2, k * g // 2], INT,
            )
            assert da.flatten() == sa.flatten(), rank
            assert da.extent == sa.extent

    def test_uneven_block(self):
        # gsize 10 over 3 procs: blocks of 4, 4, 2
        sizes = []
        for rank in range(3):
            da = darray(3, rank, [10], [DISTRIBUTE_BLOCK], [D], [3], BYTE)
            sizes.append(da.size)
        assert sizes == [4, 4, 2]

    def test_explicit_block_darg(self):
        da = darray(2, 1, [10], [DISTRIBUTE_BLOCK], [7], [2], BYTE)
        assert da.flatten().to_pairs() == [(7, 3)]

    def test_block_darg_too_small(self):
        with pytest.raises(ValueError, match="too small"):
            darray(2, 0, [10], [DISTRIBUTE_BLOCK], [3], [2], BYTE)


class TestCyclicDistribution:
    @pytest.mark.parametrize("rank", range(3))
    def test_cyclic_unit(self, rank):
        da = darray(3, rank, [10], [DISTRIBUTE_CYCLIC], [D], [3], BYTE)
        expect = brute_force_regions(
            3, rank, [10], [DISTRIBUTE_CYCLIC], [D], [3], 1
        )
        assert da.flatten() == expect

    @pytest.mark.parametrize("rank", range(2))
    def test_cyclic_blocks(self, rank):
        da = darray(2, rank, [11], [DISTRIBUTE_CYCLIC], [3], [2], BYTE)
        expect = brute_force_regions(
            2, rank, [11], [DISTRIBUTE_CYCLIC], [3], [2], 1
        )
        assert da.flatten() == expect

    def test_mixed_2d(self):
        gsizes = [6, 8]
        for rank in range(4):
            da = darray(
                4, rank, gsizes,
                [DISTRIBUTE_CYCLIC, DISTRIBUTE_BLOCK],
                [2, D], [2, 2], INT,
            )
            expect = brute_force_regions(
                4, rank, gsizes,
                [DISTRIBUTE_CYCLIC, DISTRIBUTE_BLOCK],
                [2, D], [2, 2], 4,
            )
            assert da.flatten() == expect, rank


class TestPartition:
    @pytest.mark.parametrize(
        "distribs,dargs",
        [
            ([DISTRIBUTE_BLOCK] * 2, [D, D]),
            ([DISTRIBUTE_CYCLIC] * 2, [D, 3]),
            ([DISTRIBUTE_BLOCK, DISTRIBUTE_CYCLIC], [D, 2]),
            ([DISTRIBUTE_NONE, DISTRIBUTE_BLOCK], [D, D]),
        ],
    )
    def test_ranks_partition_array(self, distribs, dargs):
        """All ranks' types tile the global array exactly once."""
        gsizes = [7, 9]
        psizes = [1, 4] if distribs[0] == DISTRIBUTE_NONE else [2, 2]
        size = psizes[0] * psizes[1]
        union = Regions.concat(
            [
                darray(size, r, gsizes, distribs, dargs, psizes, BYTE)
                .flatten()
                for r in range(size)
            ]
        )
        total = gsizes[0] * gsizes[1]
        assert union.total_bytes == total  # disjoint
        assert union.normalized().to_pairs() == [(0, total)]

    def test_extent_is_full_array(self):
        da = darray(4, 2, [8, 8], [DISTRIBUTE_BLOCK] * 2, [D, D], [2, 2], INT)
        assert da.extent == 8 * 8 * 4


class TestOrderAndValidation:
    def test_fortran_order(self):
        c = darray(2, 1, [4, 6], [DISTRIBUTE_BLOCK] * 2, [D, D], [2, 1], BYTE)
        f = darray(2, 1, [6, 4], [DISTRIBUTE_BLOCK] * 2, [D, D], [1, 2],
                   BYTE, order="F")
        assert f.flatten() == c.flatten()

    def test_grid_size_mismatch(self):
        with pytest.raises(ValueError, match="grid"):
            darray(4, 0, [8], [DISTRIBUTE_BLOCK], [D], [2], BYTE)

    def test_rank_out_of_range(self):
        with pytest.raises(ValueError, match="rank"):
            darray(2, 2, [8], [DISTRIBUTE_BLOCK], [D], [2], BYTE)

    def test_none_requires_psize_one(self):
        with pytest.raises(ValueError, match="psize"):
            darray(2, 0, [8], [DISTRIBUTE_NONE], [D], [2], BYTE)

    def test_bad_order(self):
        with pytest.raises(ValueError):
            darray(1, 0, [4], [DISTRIBUTE_BLOCK], [D], [1], BYTE, order="Z")

    def test_envelope_roundtrip(self):
        da = darray(4, 1, [6, 6], [DISTRIBUTE_CYCLIC, DISTRIBUTE_BLOCK],
                    [2, D], [2, 2], INT)
        ni, na, nt, comb = da.envelope()
        assert comb == "darray"
        ints, addrs, types = da.contents()
        assert len(ints) == ni and types == (INT,)
        assert ints[0] == 4 and ints[1] == 1 and ints[2] == 2

    def test_describe(self):
        da = darray(1, 0, [4], [DISTRIBUTE_BLOCK], [D], [1], BYTE)
        assert "darray" in da.describe()


class TestDataloopEquivalence:
    @pytest.mark.parametrize("rank", range(4))
    def test_builder_matches_flatten(self, rank):
        da = darray(
            4, rank, [6, 10],
            [DISTRIBUTE_CYCLIC, DISTRIBUTE_BLOCK], [D, D], [2, 2], INT,
        )
        loop = build_dataloop(da)
        assert loop.extent == da.extent
        assert loop.data_size == da.size
        assert stream_regions(loop) == da.flatten()
        assert stream_regions(loop, count=2) == da.flatten(2)

    def test_through_the_file_system(self, rng):
        """darray as a file view, written and read back."""
        from repro.datatypes import contiguous
        from repro.mpiio import File, SimMPI
        from repro.pvfs import PVFS
        from repro.simulation import Environment

        env = Environment()
        fs = PVFS(env, n_servers=3, strip_size=64)
        mpi = SimMPI(fs, 4)
        g = 8

        def rank_main(ctx):
            f = yield from File.open(ctx, "/da")
            ft = darray(
                4, ctx.rank, [g, g],
                [DISTRIBUTE_CYCLIC, DISTRIBUTE_BLOCK], [D, D], [2, 2], INT,
            )
            f.set_view(0, INT, ft)
            n = ft.size // 4
            buf = (np.arange(n, dtype=np.int32) + ctx.rank * 1000).view(
                np.uint8
            )
            yield from f.write_at(0, contiguous(n, INT), 1, buf,
                                  method="datatype_io")
            out = np.zeros_like(buf)
            yield from f.read_at(0, contiguous(n, INT), 1, out,
                                 method="list_io")
            assert np.array_equal(out, buf)
            return True

        assert all(mpi.run(rank_main))
